#!/usr/bin/env python3
"""Closed-loop anycast traffic engineering on a generated Internet.

The manual move in ``anycast_catchment.py`` — prepend at the overloaded
site, re-measure, eyeball the shift — is exactly the loop operators end
up automating.  This example runs that automation:

1. deploy a three-site anycast service onto a generated Internet
   (:meth:`~repro.anycast.AnycastService.deploy` wires a fresh origin AS
   under nine transit uplinks);
2. map a Zipf-weighted client population to sites;
3. hand the :class:`~repro.anycast.TrafficEngineer` per-site load
   targets and let it sweep prepend / poison / uplink-drop moves — the
   prepend candidates screened through single-site "solo footprint"
   ladders that ride the propagation engine's cheap shift regime;
4. print the iteration-by-iteration record: what was tried, what was
   applied, how the imbalance and churn evolved, and which delta regimes
   the engine used to pay for it.

Then a site fails mid-operation and the engineer re-runs against the
survivors — the failover rebalance.

Run:  python examples/anycast_rebalance.py
"""

from repro.anycast import (
    AnycastService,
    AnycastSite,
    CatchmentMap,
    EngineerConfig,
    TrafficEngineer,
)
from repro.inet.gen import InternetConfig, build_internet
from repro.inet.topology import ASKind
from repro.workloads import zipf_clients


def main() -> None:
    net = build_internet(
        InternetConfig(n_ases=2000, total_prefixes=200_000, seed=42)
    )
    graph = net.graph
    transits = [n.asn for n in graph.nodes() if n.kind == ASKind.TRANSIT][:9]
    service = AnycastService.deploy(
        graph,
        [
            AnycastSite(name="ams01", transits=tuple(transits[0:3])),
            AnycastSite(name="gru01", transits=tuple(transits[3:6])),
            AnycastSite(name="sea01", transits=tuple(transits[6:9])),
        ],
    )
    population = zipf_clients(graph, ases=400, clients=1_000_000, seed=5)
    print(
        f"anycast AS{service.asn}: 3 sites, "
        f"{population.total_clients} clients across {population.n_ases} ASes\n"
    )
    print("\n".join(CatchmentMap.compute(service, population).render()))

    targets = {"ams01": 0.34, "gru01": 0.33, "sea01": 0.33}
    print(f"\n== rebalancing toward {targets} ==")
    engineer = TrafficEngineer(
        service, population, targets, EngineerConfig(max_iterations=6, seed=7)
    )
    report = engineer.rebalance()
    for record in report.iterations:
        applied = record.applied or "(no improving move)"
        print(
            f"iter {record.iteration}: imbalance {record.imbalance:.3f} "
            f"-> {record.score_after:.3f}  churn {record.churn:.1%}"
        )
        print(f"  applied: {applied}")
        print(f"  engine regimes: {record.delta_regimes}")
    print(
        f"\nimbalance {report.imbalance_before:.3f} -> "
        f"{report.imbalance_after:.3f} in {len(report.iterations)} iterations"
        f"{' (converged)' if report.converged else ''}"
    )
    print(f"shift-regime iterations: {report.shift_iterations}")

    print("\n== site gru01 fails; rebalancing the survivors ==")
    service.fail_site("gru01")
    survivors = {"ams01": 0.5, "sea01": 0.5}
    failover = TrafficEngineer(
        service, population, survivors, EngineerConfig(max_iterations=4, seed=7)
    ).rebalance()
    print("\n".join(CatchmentMap.compute(service, population).render()))
    print(
        f"\nfailover rebalance: imbalance {failover.imbalance_before:.3f} -> "
        f"{failover.imbalance_after:.3f}; moves: {failover.moves_applied}"
    )
    print("\nlooking-glass view:")
    print("\n".join(service.describe()))
    print("done.")


if __name__ == "__main__":
    main()
