#!/usr/bin/env python3
"""Looking glass + telemetry walkthrough: observe the testbed like an
operator.

The paper's operators need to watch what every experiment announces and
where it propagates (§4).  This example stands up an observed testbed,
runs a small steering experiment, and then asks the operator questions:

1. ``testbed.observe()`` installs the collector — metrics registry,
   tracer on the control path, BMP-style route monitor on every mux;
2. a client announces with steering (selective peers, prepend, poison);
3. the looking glass answers "who originates this prefix, and what does
   the Internet see?" from the converged and monitored state;
4. the trace of the announcement renders as a causal span tree;
5. the registry exports a Prometheus-style metrics snapshot.

Run:  PYTHONPATH=src python examples/looking_glass.py
"""

from repro.core import Testbed
from repro.inet.gen import InternetConfig


def main() -> None:
    print("== Building and observing the testbed ==")
    testbed = Testbed.build_default(
        InternetConfig(n_ases=600, total_prefixes=40_000, seed=23)
    )
    collector = testbed.observe()
    print(f"collector live: {collector.stats()}\n")

    print("== A steered announcement ==")
    client = testbed.register_client("lg-demo", researcher="you")
    client.attach("gatech01")
    client.attach("amsterdam01")
    prefix = client.prefixes[0]
    gatech_peers = sorted(testbed.server("gatech01").neighbor_asns)
    client.announce(prefix, servers=["gatech01"],
                    peers=gatech_peers[:2], prepend=1)
    client.announce(prefix, servers=["amsterdam01"])
    testbed._flush_dirty()
    print(f"announced {prefix}: gatech01 limited to peers "
          f"{gatech_peers[:2]} with prepend 1, amsterdam01 to all peers\n")

    print("== Looking glass: the operator's view ==")
    glass = collector.glass
    vantages = [asn for asn in glass.neighbors("washington01")[:2]]
    print(glass.render(prefix, vantages=vantages))
    communities = glass.communities(prefix)
    for server in sorted(communities):
        print(f"  {server} post-policy communities: "
              f"{', '.join(communities[server]) or '(none)'}")
    print()

    print("== The announcement as a span tree ==")
    # The deferred convergence joins the trace of the announce that last
    # dirtied the prefix — the amsterdam01 one here.
    root = collector.tracer.find("client.announce")[-1]
    print(collector.tracer.render(root.trace_id))
    print()

    print("== BMP-style route monitoring stream (first 5 messages) ==")
    for message in collector.monitor.messages[:5]:
        print(f"  {message}")
    print()

    print("== Metrics snapshot (Prometheus text format) ==")
    # peering_propagation_seconds measures wall-clock compute time — the
    # one intentionally non-deterministic family; everything else in the
    # snapshot is identical run to run.
    print("\n".join(
        line
        for line in collector.export_metrics().splitlines()
        if not line.startswith("peering_propagation_seconds")
    ))


if __name__ == "__main__":
    main()
