#!/usr/bin/env python3
"""PECAN-style joint content/network routing measurement.

PECAN (SIGMETRICS 2013, [53] in the paper) "used PEERING announcements to
uncover alternate paths in the Internet and traffic to measure their
performance": by steering which upstream carries its prefix, a content
provider can measure — not model — the paths clients would use, then pick
the best ingress per client population.

Reproduction:

1. announce the service prefix via each upstream at a university mux,
   one at a time;
2. for each configuration, measure per-client AS-path length (our
   stand-in for latency) with data-plane probes;
3. build the per-client best-ingress table and quantify the win of joint
   selection over any single static configuration.

Run:  python examples/pecan_path_selection.py
"""

from statistics import mean

from repro.core import Testbed
from repro.inet.gen import InternetConfig
from repro.net.addr import IPAddress
from repro.net.packet import Packet
from repro.workloads import client_population


def measure(testbed, clients, target):
    """Per-client hop count to the service (None = unreachable)."""
    results = {}
    for client_asn in clients:
        delivery = testbed.dataplane.send(
            client_asn, Packet(src=IPAddress("198.18.0.1"), dst=target)
        )
        results[client_asn] = (
            delivery.hops if delivery.status.value == "delivered" else None
        )
    return results


def main() -> None:
    testbed = Testbed.build_default(
        InternetConfig(n_ases=1400, total_prefixes=140_000, seed=53)
    )
    service = testbed.register_client("pecan", researcher="valancius")
    prefix = service.prefixes[0]
    service.attach("gatech01")
    server = testbed.server("gatech01")
    upstreams = sorted(server.neighbor_asns)
    target = prefix.first_address() + 1
    clients = client_population(testbed.graph, 120, seed=3)
    print(f"service prefix {prefix}; {len(upstreams)} upstreams at gatech01; "
          f"{len(clients)} client ASes\n")

    # Measure each single-upstream configuration.  Configurations are
    # spaced out in (simulated) time: the mux's flap damping would — and
    # should — suppress a prefix that flaps between upstreams every few
    # seconds, so the experiment paces itself like the paper's beacons.
    per_config = {}
    for upstream in upstreams:
        testbed.engine.run_for(3600)
        service.withdraw(prefix)
        service.announce(prefix, peers=[upstream])
        per_config[upstream] = measure(testbed, clients, target)
        reached = [h for h in per_config[upstream].values() if h is not None]
        print(f"announce via AS{upstream}: {len(reached)}/{len(clients)} clients, "
              f"mean path {mean(reached):.2f} AS hops")

    # Joint selection: the best ingress per client.
    best_per_client = {}
    for client_asn in clients:
        candidates = [
            (hops, upstream)
            for upstream, results in per_config.items()
            if (hops := results[client_asn]) is not None
        ]
        if candidates:
            best_per_client[client_asn] = min(candidates)

    joint = mean(hops for hops, _ in best_per_client.values())
    static_means = {
        upstream: mean(h for h in results.values() if h is not None)
        for upstream, results in per_config.items()
    }
    best_static = min(static_means.values())
    print(f"\nbest static configuration: mean {best_static:.2f} hops")
    print(f"joint per-client selection: mean {joint:.2f} hops "
          f"({100 * (best_static - joint) / best_static:.1f}% better)")

    switchers = sum(
        1
        for _client, (hops, upstream) in best_per_client.items()
        if static_means[upstream] != best_static
    )
    print(f"clients whose best ingress is NOT the best-on-average one: "
          f"{switchers}/{len(best_per_client)}")
    print("done.")


if __name__ == "__main__":
    main()
