#!/usr/bin/env python3
"""Deploying a real anycast service on PEERING.

§3 "Deploying real services": "researchers can advertise services on real
IP addresses and potentially attract traffic to them, e.g., by anycasting
a prefix from all PEERING providers and peers."

This example runs that experiment:

1. announce one prefix simultaneously from Amsterdam (IXP, many peers),
   Atlanta, and Beijing (universities, transit upstreams);
2. sample a weighted client population and measure the *catchment* — which
   site each client's traffic lands at;
3. show the leverage of the IXP site (rich peering pulls in most clients);
4. shift load by prepending at the dominant site and re-measure — the
   standard anycast traffic-engineering move.

Run:  python examples/anycast_catchment.py
"""

from collections import Counter

from repro.core import AnnouncementSpec, Testbed
from repro.inet.gen import InternetConfig
from repro.workloads import client_population


SITES = ["amsterdam01", "gatech01", "tsinghua01"]


def measure_catchment(testbed, prefix, sites):
    """Which announcement site each AS's traffic reaches.

    Each site announces through a disjoint peer set, so the first hop
    after PEERING... actually the catchment is identified by the peer the
    packet enters PEERING through: we recover it from the forwarding
    chain's last non-PEERING AS and match it against site peer sets.
    """
    outcome = testbed.outcome_for(prefix)
    site_peers = {name: testbed.server(name).neighbor_asns for name in sites}
    catchment = Counter()
    assignments = {}
    for asn, _route in outcome.items():
        if asn == testbed.asn:
            continue
        chain = outcome.forwarding_chain(asn)
        if chain[-1] != testbed.asn or len(chain) < 2:
            continue
        entry = chain[-2]  # the neighbor that hands traffic to PEERING
        for name, peers in site_peers.items():
            if entry in peers:
                catchment[name] += 1
                assignments[asn] = name
                break
    return catchment, assignments


def main() -> None:
    testbed = Testbed.build_default(
        InternetConfig(n_ases=1500, total_prefixes=150_000, seed=42)
    )
    client = testbed.register_client("anycast", researcher="cdn-team")
    prefix = client.prefixes[0]
    for site in SITES:
        client.attach(site)
    client.announce(prefix)
    print(f"anycasting {prefix} from {', '.join(SITES)}\n")

    catchment, assignments = measure_catchment(testbed, prefix, SITES)
    total = sum(catchment.values())
    print("catchment by announcement site (all ASes with a route):")
    for site, count in catchment.most_common():
        print(f"  {site:14s} {count:5d} ASes ({100 * count / total:.1f}%)")

    population = client_population(testbed.graph, 100, seed=5)
    served = Counter(assignments.get(asn, "none") for asn in population)
    print("\ncatchment over a user-weighted client population (100 ASes):")
    for site, count in served.most_common():
        print(f"  {site:14s} {count:3d} clients")

    dominant = catchment.most_common(1)[0][0]
    print(f"\n== shifting load away from {dominant} with 3x prepending ==")
    server = testbed.server(dominant)
    server.announce(
        "anycast", prefix, AnnouncementSpec(prepend=3)
    )
    catchment_after, _ = measure_catchment(testbed, prefix, SITES)
    print("catchment after prepending:")
    for site in SITES:
        before, after = catchment[site], catchment_after[site]
        arrow = "->"
        print(f"  {site:14s} {before:5d} {arrow} {after:5d}")
    moved = catchment[dominant] - catchment_after[dominant]
    print(f"\n{moved} ASes moved off {dominant}")
    print("done.")


if __name__ == "__main__":
    main()
