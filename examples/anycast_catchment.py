#!/usr/bin/env python3
"""Deploying a real anycast service on PEERING.

§3 "Deploying real services": "researchers can advertise services on real
IP addresses and potentially attract traffic to them, e.g., by anycasting
a prefix from all PEERING providers and peers."

This example runs that experiment through :mod:`repro.anycast`:

1. announce one prefix simultaneously from Amsterdam (IXP, many peers),
   Atlanta, and Beijing (universities, transit upstreams) by wrapping the
   testbed muxes in an :class:`~repro.anycast.AnycastService`;
2. sample a Zipf-weighted client population and compute the *catchment* —
   which site each client's traffic lands at — from the compiled route
   table in one pass;
3. compare the sites' pull (the transit sites soak up their upstreams'
   customer cones; the IXP site serves what its peers bring);
4. shift load by prepending at the dominant site and re-measure — the
   standard anycast traffic-engineering move — and read the stability
   report: exactly which flows moved.

Run:  python examples/anycast_catchment.py
"""

from repro.anycast import AnycastService, CatchmentMap
from repro.core import Testbed
from repro.inet.gen import InternetConfig
from repro.workloads import zipf_clients


SITES = ["amsterdam01", "gatech01", "tsinghua01"]


def main() -> None:
    testbed = Testbed.build_default(
        InternetConfig(n_ases=1500, total_prefixes=150_000, seed=42)
    )
    client = testbed.register_client("anycast", researcher="cdn-team")
    prefix = client.prefixes[0]
    for site in SITES:
        client.attach(site)

    service = AnycastService.from_testbed(testbed, site_names=SITES, prefix=prefix)
    print(f"anycasting {prefix} from {', '.join(SITES)}\n")

    population = zipf_clients(testbed.graph, ases=100, clients=100_000, seed=5)
    catchment = CatchmentMap.compute(service, population)
    print("catchment over a user-weighted client population "
          f"({population.n_ases} ASes, {population.total_clients} clients):")
    print("\n".join(catchment.render()))

    dominant = max(
        catchment.volume_by_site, key=lambda s: catchment.volume_by_site[s]
    )
    print(f"\n== shifting load away from {dominant} with 3x prepending ==")
    service.adjust(dominant, prepend=3)
    after = CatchmentMap.compute(service, population)
    print("\n".join(after.render()))

    shift = catchment.diff(after)
    print()
    print("\n".join(shift.render()))
    lost, _gained = shift.site_churn().get(dominant, (0, 0))
    print(f"\n{lost} clients moved off {dominant}")
    print("done.")


if __name__ == "__main__":
    main()
