#!/usr/bin/env python3
"""Mux failure and recovery, end to end.

The PEERING paper (§3) argues the testbed must keep researcher
experiments alive through the failures a real AS sees: flapping transit
links, crashing mux processes, whole sites going dark.  This example
walks every layer of the robustness subsystem:

1. a client attaches to gatech01 with resilient BGP sessions
   (auto-reconnect + graceful restart);
2. a scripted :class:`~repro.faults.FaultPlan` bounces its sessions —
   watch them re-establish with exponential backoff;
3. the mux crashes and restarts — sessions are re-provisioned and the
   client's announcements return on their own;
4. the mux dies for good — the client fails over to the usc01 backup,
   carrying its announcements along.

Steps 3-4 are *manual* choreography (scripted restarts, explicit
failover wiring).  ``examples/self_healing.py`` shows the supervised
version: ``testbed.supervise()`` installs a watchdog + control journal
that detect, restart, and restore with zero manual calls.

Run:  python examples/mux_failover.py
"""

from repro.core import Testbed
from repro.faults import FaultPlan
from repro.inet.gen import InternetConfig


def banner(text: str) -> None:
    print(f"\n== {text} ==")


def main() -> None:
    banner("Building the testbed")
    testbed = Testbed.build_default(
        InternetConfig(n_ases=400, total_prefixes=30_000, seed=7)
    )
    engine = testbed.engine
    engine.seed = 2014

    # Print every fault/recovery event as it happens.
    testbed.events.subscribe(print)

    banner("Attaching a resilient client to gatech01")
    client = testbed.register_client("failover-demo", researcher="you")
    router = client.attach_bgp(
        "gatech01",
        resilient=True,
        idle_hold_time=2.0,
        graceful_restart=True,
    )
    prefix = client.prefixes[0]
    router.originate(prefix)
    engine.run_for(1)
    sessions = client.attachments["gatech01"].sessions
    print(f"{len(sessions)} BGP sessions established, {prefix} announced")
    print(f"reachable from {len(testbed.outcome_for(prefix).reachable_asns())} ASes")

    banner("Bouncing every session twice (transport loss, no CEASE)")
    plan = FaultPlan(engine, "demo")
    for i, session in enumerate(sessions.values()):
        plan.bounce_session(session, at=engine.now + 2.0 + i, times=2, spacing=20.0)
    engine.run_for(60)
    for session in sessions.values():
        spaced = ", ".join(f"{delay:.2f}s" for _, delay in session.reconnect_log)
        print(
            f"{session.config.description}: established {session.established_count}x,"
            f" backoff delays [{spaced}]"
        )

    banner("Crashing gatech01 for 15 seconds")
    gatech = testbed.server("gatech01")
    plan.crash_mux(gatech, at=engine.now + 1.0, down_for=15.0)
    engine.run_for(5)
    print(f"mux alive={gatech.alive}; prefix announced: "
          f"{prefix in testbed.announced_prefixes()}")
    engine.run_for(60)
    print(f"mux alive={gatech.alive}; sessions up: "
          f"{sum(s.established for s in sessions.values())}/{len(sessions)}; "
          f"prefix announced: {prefix in testbed.announced_prefixes()}")

    banner("Killing gatech01 for good — automatic failover to usc01")
    client.enable_failover("gatech01", "usc01")
    gatech.crash()
    engine.run_for(30)
    backup = client.attachments["usc01"]
    print(f"attached to: {sorted(client.attachments)}")
    print(f"usc01 sessions up: "
          f"{sum(s.established for s in backup.sessions.values())}"
          f"/{len(backup.sessions)}")
    print(f"prefix announced: {prefix in testbed.announced_prefixes()}, reachable "
          f"from {len(testbed.outcome_for(prefix).reachable_asns())} ASes")

    banner("Event log (faults and recoveries)")
    interesting = testbed.events.of_kind(
        "mux-crash", "mux-restart", "session-reprovisioned", "client-failover"
    )
    print(f"{len(testbed.events)} events total; the structural ones:")
    for event in interesting:
        print(f"  {event}")


if __name__ == "__main__":
    main()
