#!/usr/bin/env python3
"""The supervised testbed healing itself — zero manual calls.

``examples/mux_failover.py`` walks the robustness *mechanisms* with the
operator driving: it schedules the restart, wires the failover.  This
example installs the supervision layer (``repro.guard``) and then does
nothing but inject faults and watch:

1. ``testbed.supervise()`` — one call wires circuit breakers, the
   quarantine manager, the mux watchdog, and the control journal;
2. a well-behaved client announces a prefix; a misbehaving client
   starts an update storm;
3. the storming client's circuit breaker trips (sessions dropped), it
   re-offends after the half-open probe, and lands in quarantine —
   withdrawn everywhere, re-admitted only after the backoff expires;
4. a mux HARD-crashes (in-memory state wiped) and another wedges; the
   watchdog detects both, restarts them, and the journal replays the
   well-behaved client's announcements route-for-route;
5. the quarantine expires, the offender's sessions re-establish, and
   its announcement returns — the testbed forgave, on schedule.

Nothing after step 2 touches the testbed API: every recovery below is
the supervisor's own doing.

Run:  python examples/self_healing.py
"""

from repro.bgp.attributes import ASPath, Origin, PathAttributes
from repro.core import Testbed
from repro.core.alerts import Severity
from repro.faults import FaultPlan
from repro.guard import BreakerConfig, QuarantineConfig, WatchdogConfig
from repro.inet.gen import InternetConfig


def banner(text: str) -> None:
    print(f"\n== {text} ==")


def main() -> None:
    banner("Building a supervised testbed")
    testbed = Testbed.build_default(
        InternetConfig(n_ases=400, total_prefixes=30_000, seed=7)
    )
    engine = testbed.engine
    engine.seed = 2014
    supervisor = testbed.supervise(
        breaker=BreakerConfig(
            window_seconds=10.0, max_updates_per_window=20,
            max_flaps_per_window=8, cooldown=20.0, probe_window=10.0,
        ),
        quarantine=QuarantineConfig(strike_threshold=2, base_duration=80.0),
        watchdog=WatchdogConfig(probe_interval=2.0, restart_delay=5.0),
    )
    print(f"supervising {len(testbed.servers)} muxes; journal is write-ahead")

    banner("A good citizen and a storm-to-be")
    good = testbed.register_client("good", researcher="alice")
    good_router = good.attach_bgp(
        "gatech01", resilient=True, idle_hold_time=2.0, graceful_restart=True
    )
    good_prefix = good.prefixes[0]
    good_router.originate(good_prefix)

    bad = testbed.register_client("bad", researcher="mallory")
    bad.attach_bgp("usc01", resilient=True, idle_hold_time=2.0)
    bad_att = bad.attachments["usc01"]
    bad_att.router.originate(bad.prefixes[0])
    engine.run_for(1)
    print(f"good announces {good_prefix}, bad announces {bad.prefixes[0]}")
    routes_before = testbed.outcome_for(good_prefix)
    print(f"good prefix reachable from {len(routes_before.reachable_asns())} ASes")

    banner("Injecting chaos (storm + hard crash + wedge); hands off from here")
    storm_session = bad_att.sessions[sorted(bad_att.sessions)[0]]
    storm_attrs = PathAttributes(
        origin=Origin.IGP, as_path=ASPath(), next_hop=bad_att.tunnel.address
    )
    plan = FaultPlan(engine, "chaos")
    plan.storm_updates(
        storm_session, bad.prefixes[0], storm_attrs, at=5.0,
        updates=400, interval=0.25,
    )
    plan.crash_mux(testbed.server("gatech01"), at=10.0, hard=True)
    plan.wedge_mux(testbed.server("wisconsin01"), at=30.0)

    engine.run_for(60)
    print(f"\nstate at t={engine.now:.0f}:")
    print(f"  good prefix announced: {good_prefix in testbed.announced_prefixes()}")
    print(f"  bad client quarantined: {supervisor.quarantine.is_quarantined('bad')}")
    print(f"  bad prefix announced: {bad.prefixes[0] in testbed.announced_prefixes()}")
    print(f"  gatech01 healthy: {testbed.server('gatech01').probe()}")
    print(f"  wisconsin01 healthy: {testbed.server('wisconsin01').probe()}")

    banner("Letting the quarantine run its course")
    engine.run_for(240)
    outcome = testbed.outcome_for(good_prefix)
    identical = all(
        outcome.as_path(asn) == routes_before.as_path(asn)
        for asn in testbed.graph.asns()
    )
    print(f"good prefix restored route-for-route identical: {identical}")
    print(f"bad client quarantined: {supervisor.quarantine.is_quarantined('bad')}")
    print(f"bad prefix announced again: "
          f"{bad.prefixes[0] in testbed.announced_prefixes()}")
    print(f"watchdog: {supervisor.watchdog.probes} probes, "
          f"{supervisor.watchdog.restarts} restarts, "
          f"{supervisor.watchdog.kills} wedge kills")
    print(f"journal: {testbed.journal.stats()}")

    banner("The escalation trail (warning and above)")
    for event in testbed.events.of_severity(Severity.WARNING):
        print(f"  {event}")


if __name__ == "__main__":
    main()
