#!/usr/bin/env python3
"""Quickstart: stand up PEERING, run an experiment, exchange routes and
traffic with the (simulated) Internet.

This walks the workflow from §3 of the paper:

1. the operators build the testbed (Internet + nine servers);
2. a researcher proposes an experiment, the board vets it, a /24 out of
   PEERING's /19 is allocated;
3. the client attaches to muxes, announces its prefix, and watches the
   announcement propagate;
4. traffic flows: an Internet host reaches the experiment through the
   tunnel, and the client probes outward.

Run:  python examples/quickstart.py
"""

from repro.core import Testbed
from repro.inet.gen import InternetConfig
from repro.inet.routing import Announcement, propagate
from repro.net.addr import IPAddress, Prefix
from repro.net.packet import Packet


def main() -> None:
    print("== Building the testbed (synthetic Internet + 9 PEERING servers) ==")
    testbed = Testbed.build_default(
        InternetConfig(n_ases=1000, total_prefixes=100_000, seed=7)
    )
    summary = testbed.summary()
    print(f"AS{summary['asn']} with servers at: {', '.join(summary['sites'])}")
    amsterdam = testbed.server("amsterdam01")
    print(f"amsterdam01 peers with {len(amsterdam.neighbor_asns)} ASes "
          f"(route server + bilateral)\n")

    print("== Registering an experiment ==")
    client = testbed.register_client("quickstart", researcher="you")
    prefix = client.prefixes[0]
    print(f"advisory board approved; allocated {prefix}\n")

    print("== Announcing from two sites ==")
    client.attach("amsterdam01")
    client.attach("gatech01")
    results = client.announce(prefix)
    for site, decision in results.items():
        print(f"  {site}: {decision.verdict.value}")
    outcome = testbed.outcome_for(prefix)
    print(f"route propagated to {len(outcome.reachable_asns())} of "
          f"{len(testbed.graph)} ASes\n")

    print("== Per-peer routes (the mux relays every peer's route) ==")
    dest = next(
        node.asn
        for node in testbed.graph.nodes()
        if node.kind.value == "access" and node.asn not in amsterdam.neighbor_asns
    )
    routes = client.routes_toward(dest)["amsterdam01"]
    print(f"amsterdam01 hears {len(routes)} peer routes toward AS{dest}; first 3:")
    for peer_asn, route in list(routes.items())[:3]:
        print(f"  via AS{peer_asn}: path {' '.join(map(str, route.path))}")
    print()

    print("== Traffic: an Internet host reaches the experiment ==")
    src_asn = dest
    packet = Packet(src=IPAddress("198.18.1.1"), dst=prefix.first_address() + 10)
    delivery = testbed.send_from(src_asn, packet)
    print(f"delivery: {delivery.status.value} along AS path "
          f"{' -> '.join(map(str, delivery.path))}")
    print(f"client received {len(client.received_packets)} packet(s) via tunnel\n")

    print("== Traffic: the client probes outward ==")
    target_prefix = Prefix("203.0.113.0/24")
    testbed.dataplane.install(
        target_prefix,
        propagate(testbed.graph, Announcement.single(dest)),
        owner=dest,
    )
    delivery = client.ping(target_prefix.first_address() + 1)
    print(f"ping: {delivery.status.value}, AS path "
          f"{' -> '.join(map(str, delivery.path))}")

    print("\n== Steering: withdraw, then announce via one peer with prepending ==")
    client.withdraw(prefix)
    some_peers = sorted(amsterdam.neighbor_asns)[:5]
    client.announce(prefix, servers=["amsterdam01"], peers=some_peers, prepend=2)
    outcome = testbed.outcome_for(prefix)
    sample = next(iter(some_peers))
    print(f"AS{sample} now sees path: {outcome.as_path(sample)}")
    print("done.")


if __name__ == "__main__":
    main()
