#!/usr/bin/env python3
"""An ARROW-style deployed service on PEERING servers.

ARROW ("One Tunnel is (Often) Enough", SIGCOMM 2014, [42] in the paper)
demonstrated an incrementally deployable answer to black holes, DoS, and
prefix hijacking: a provider sells a *tunnel* into a healthy part of the
Internet, bypassing a broken segment.  The paper notes ARROW built its
real-world prototype on an early version of PEERING.

This example deploys the service with the server-side packet-processing
API (§3 "Deploying real services"):

1. a customer AS suffers a black hole: the transit AS on its path to a
   destination silently drops traffic;
2. the customer buys an ARROW tunnel: its traffic is steered to a
   PEERING prefix (the tunnel ingress at the Amsterdam server);
3. a pipeline rule at the server rewrites tunneled packets to their true
   destination and re-injects them from PEERING's AS — whose own routes
   avoid the broken transit;
4. end-to-end connectivity is restored without the customer's provider
   fixing anything.

Run:  python examples/arrow_tunnel_service.py
"""

from repro.core import Action, Match, Rule, ServiceHost, Testbed
from repro.core.services import Verdict
from repro.inet.gen import InternetConfig
from repro.inet.routing import Announcement, propagate
from repro.net.addr import IPAddress, Prefix
from repro.net.packet import Packet


def main() -> None:
    testbed = Testbed.build_default(
        InternetConfig(n_ases=1200, total_prefixes=120_000, seed=2014)
    )
    graph = testbed.graph

    # The ARROW operator is a PEERING experiment with a public ingress.
    operator = testbed.register_client("arrow", researcher="peter-et-al")
    ingress_prefix = operator.prefixes[0]
    operator.attach("amsterdam01")
    operator.attach("gatech01")
    operator.announce(ingress_prefix)
    ingress_ip = ingress_prefix.first_address() + 1
    print(f"ARROW ingress live at {ingress_ip} (anycast from 2 sites)")

    # A destination service somewhere on the Internet.
    dest_asn = next(
        n.asn for n in graph.nodes() if n.kind.value == "content"
    )
    dst_prefix = Prefix("203.0.113.0/24")
    testbed.dataplane.install(
        dst_prefix, propagate(graph, Announcement.single(dest_asn)), owner=dest_asn
    )
    target = dst_prefix.first_address() + 80

    # The customer: an access AS whose path to the destination crosses a
    # transit we will break.
    customer_asn = next(
        n.asn
        for n in graph.nodes()
        if n.kind.value == "access"
        and len(testbed.dataplane.send(
            n.asn, Packet(src=IPAddress("198.18.0.1"), dst=target)
        ).path) >= 4
    )
    baseline = testbed.dataplane.send(
        customer_asn, Packet(src=IPAddress("198.18.0.1"), dst=target)
    )
    broken_transit = baseline.path[1]
    print(f"customer AS{customer_asn} -> {target}: path "
          f"{' -> '.join(map(str, baseline.path))}")

    # Black hole: the transit drops traffic for the destination prefix.
    # (Control plane still points through it, the LIFEGUARD scenario.)
    class BlackholingOutcome:
        def __init__(self, outcome, victim):
            self._outcome, self._victim = outcome, victim

        def route(self, asn):
            if asn == self._victim:
                return None  # drops everything for this prefix
            return self._outcome.route(asn)

    original = testbed.dataplane._outcomes[dst_prefix]
    testbed.dataplane._outcomes[dst_prefix] = BlackholingOutcome(
        original, broken_transit
    )
    broken = testbed.dataplane.send(
        customer_asn, Packet(src=IPAddress("198.18.0.1"), dst=target)
    )
    print(f"\n*** AS{broken_transit} blackholes {dst_prefix}: "
          f"customer delivery = {broken.status.value} ***")

    # The ARROW service: a pipeline rule at the PEERING servers rewrites
    # tunnel traffic (dst = ingress) to the true destination and lets
    # PEERING's own (healthy) routes carry it.
    host = ServiceHost(testbed.server("amsterdam01"))
    host.pipeline.add_rule(
        Rule(
            "arrow-decap",
            Match(dst=Prefix(str(ingress_ip), 32)),
            Action.REWRITE,
            rewrite_dst=target,
        )
    )

    # Customer sends via the tunnel: traffic to the ARROW ingress...
    tunneled = testbed.dataplane.send(
        customer_asn, Packet(src=IPAddress("198.18.0.1"), dst=ingress_ip,
                             payload={"inner-dst": str(target)})
    )
    print(f"\ncustomer -> ARROW ingress: {tunneled.status.value} along "
          f"{' -> '.join(map(str, tunneled.path))}")
    # The tunnel leg may even cross the broken AS: the hole only swallows
    # traffic addressed to the destination prefix, and tunneled packets
    # are addressed to the ARROW ingress.
    assert tunneled.final_asn == testbed.asn

    # ...which the server rewrites and re-injects from PEERING.
    verdict, rewritten = host.process(tunneled.packet)
    assert rewritten is not None and rewritten.dst == target
    second_leg = testbed.dataplane.send(testbed.asn, rewritten)
    print(f"ARROW -> destination: {second_leg.status.value} along "
          f"{' -> '.join(map(str, second_leg.path))}")

    restored = (
        tunneled.status.value == "delivered"
        and second_leg.status.value == "delivered"
        and broken_transit not in second_leg.path
    )
    print(f"\nend-to-end restored avoiding AS{broken_transit}: {restored}")
    assert restored
    print("done.")


if __name__ == "__main__":
    main()
