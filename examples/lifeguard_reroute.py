#!/usr/bin/env python3
"""LIFEGUARD-style failure avoidance with AS-path poisoning.

LIFEGUARD (SIGCOMM 2012, [29] in the paper) used PEERING-style route
injection to *route around* a failed AS: when the default path to a
destination traverses a broken network, re-announcing your prefix with
that network's ASN poisoned into the path forces it (and only it) to drop
the route, so the Internet converges onto paths that avoid it.

This example reproduces the mechanism end to end:

1. the experiment announces its prefix and observes the inbound paths a
   set of vantage ASes use;
2. we break the most-used transit AS (simulated blackhole: it drops all
   traffic to our prefix);
3. reachability collapses for the vantages routing through it;
4. the client re-announces with the broken AS poisoned;
5. reachability recovers over alternate paths that avoid the poisoned AS.

Run:  python examples/lifeguard_reroute.py
"""

from collections import Counter

from repro.core import Testbed
from repro.inet.gen import InternetConfig
from repro.net.addr import IPAddress
from repro.net.packet import Packet
from repro.workloads import client_population


def probe_all(testbed, vantages, target):
    """Ping the target prefix from every vantage; returns delivered set
    and the AS paths used."""
    delivered = {}
    for vantage in vantages:
        packet = Packet(src=IPAddress("198.18.0.1"), dst=target)
        delivery = testbed.dataplane.send(vantage, packet)
        delivered[vantage] = delivery
    return delivered


def main() -> None:
    testbed = Testbed.build_default(
        InternetConfig(n_ases=1200, total_prefixes=120_000, seed=29)
    )
    client = testbed.register_client("lifeguard", researcher="ethan")
    prefix = client.prefixes[0]
    client.attach("amsterdam01")
    client.attach("gatech01")
    client.announce(prefix)
    target = prefix.first_address() + 1

    vantages = client_population(testbed.graph, 60, seed=12)
    print(f"announced {prefix}; probing from {len(vantages)} vantage ASes")

    deliveries = probe_all(testbed, vantages, target)
    ok = [v for v, d in deliveries.items() if d.status.value == "delivered"]
    print(f"baseline reachability: {len(ok)}/{len(vantages)}")

    # Find the transit AS most inbound paths traverse (excluding ourselves).
    transit_usage = Counter()
    for delivery in deliveries.values():
        for asn in delivery.path[1:-1]:
            if asn != testbed.asn:
                transit_usage[asn] += 1
    villain, uses = transit_usage.most_common(1)[0]
    print(f"most-used inbound transit: AS{villain} (on {uses} paths)")

    # Break it: it silently drops traffic to our prefix (a "black hole";
    # control plane still points through it).
    print(f"\n*** AS{villain} starts blackholing our traffic ***")
    testbed.dataplane.register_tap(villain, lambda packet: None)
    outcome = testbed.outcome_for(prefix)
    victims = [
        v for v in vantages
        if villain in outcome.forwarding_chain(v)
    ]
    print(f"{len(victims)} vantages route through the broken AS "
          "(their traffic now dies there)")

    # LIFEGUARD move: re-announce with the broken AS poisoned.
    print(f"\nre-announcing {prefix} with AS{villain} poisoned")
    client.withdraw(prefix)
    results = client.announce(prefix, poison=[villain])
    assert all(d.allowed for d in results.values()), "safety filters object?"

    outcome = testbed.outcome_for(prefix)
    still_broken = [
        v for v in victims if villain in outcome.forwarding_chain(v)
    ]
    recovered = [
        v
        for v in victims
        if villain not in outcome.forwarding_chain(v) and outcome.reaches(v)
    ]
    unreachable = [v for v in victims if not outcome.reaches(v)]
    print(f"after poisoning: {len(recovered)} recovered via alternate paths, "
          f"{len(unreachable)} lost the route entirely, "
          f"{len(still_broken)} still traverse AS{villain}")
    assert not still_broken, "poisoned AS must not remain on any path"

    deliveries = probe_all(testbed, vantages, target)
    ok_after = [v for v, d in deliveries.items() if d.status.value == "delivered"]
    print(f"reachability after reroute: {len(ok_after)}/{len(vantages)}")
    print("done.")


if __name__ == "__main__":
    main()
