#!/usr/bin/env python3
"""Attack campaign walkthrough: hijacks and leaks vs. defense deployment.

The route-security subsystem (``repro.secroute``) exists to answer one
question quantitatively: *how much deployment does each defense need
before the testbed's announcements survive an attack?*  This example
runs the full seeded campaign and prints the coverage-vs-deployment
table for the three scenarios:

1. **origin hijack** — the attacker announces the victim's exact
   prefix; RPKI origin validation (RFC 6811) at deploying ASes drops
   the Invalid routes;
2. **sub-prefix hijack** — the attacker announces a more-specific; the
   covering ROA's maxLength makes it Invalid, but longest-prefix match
   means only ROV deployers (and ASes behind them) stay protected;
3. **route leak** — a multihomed stub re-originates its learned path,
   which is RPKI-*Valid*; containment comes from Peerlock at the tier-1
   clique and Peerlock-lite at transit ASes.

Everything derives from one seed: rerunning this script reproduces the
same table bit-for-bit, and the reference propagation path produces the
same numbers as the compiled engine.

The *data-plane* side of the route-security suite — RFC 5575 FlowSpec
filtering against DDoS traffic, with the same deployment-rate sweep —
lives in ``examples/ddos_scrubbing.py``.

Run:  PYTHONPATH=src python examples/hijack_campaign.py
"""

from repro.secroute import CampaignConfig, RovMode, run_campaign
from repro.telemetry.metrics import MetricsRegistry


def main() -> None:
    config = CampaignConfig(
        seed=1914,
        rates=(0.0, 0.25, 0.5, 0.75, 1.0),
        trials=3,
        n_ases=150,
        n_tier1=5,
    )
    metrics = MetricsRegistry()

    print("== Attack campaign: drop-invalid ROV + Peerlock ==")
    result = run_campaign(config, metrics=metrics)
    print(f"victim AS{result.victim}, attacker AS{result.attacker}, "
          f"leaker AS{result.leaker} on a {config.n_ases}-AS internet\n")
    print("protection coverage vs. defense deployment rate "
          f"(mean of {config.trials} seeded trials):\n")
    print(result.table())
    print(f"\nleaked routes contained by Peerlock: {result.leaks_contained}")

    print("\n== Same campaign, deprefer-invalid ROV ==")
    deprefer = run_campaign(
        CampaignConfig(
            seed=config.seed,
            rates=config.rates,
            trials=config.trials,
            rov_mode=RovMode.DEPREFER_INVALID,
            n_ases=config.n_ases,
            n_tier1=config.n_tier1,
        )
    )
    print(deprefer.table())
    print("""
(deprefer matches drop-invalid on origin-hijack *coverage* — an AS whose
 only route is the attacker's scores as unprotected either way; dropping
 merely blackholes it instead.  And deprefer gives zero sub-prefix
 protection: nobody holds a competing route for the more-specific, so
 every deployer accepts the Invalid route "as a last resort" and
 longest-prefix match does the rest — the RFC 7115 argument for
 dropping Invalids outright.)""")

    print("\n== RFC 6811 verdicts observed during the campaign ==")
    verdicts = metrics.get("peering_secroute_rov_verdicts_total")
    assert verdicts is not None
    for state in ("valid", "not-found", "invalid"):
        print(f"  {state:>10}: {int(verdicts.labels(state).value)}")


if __name__ == "__main__":
    main()
