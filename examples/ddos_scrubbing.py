#!/usr/bin/env python3
"""DDoS scrubbing walkthrough: FlowSpec defense vs. attack volume.

The FlowSpec subsystem (``repro.secroute.flowspec``) pushes RFC 5575
traffic filters upstream from a victim: "drop / rate-limit / redirect
traffic matching this flow toward my prefix".  This example runs the
seeded DDoS campaign and prints the absorbed/leaked/collateral table
for three defense postures across a FlowSpec deployment-rate sweep:

1. **surgical discard** — the victim announces a rule matching the
   attack 5-tuple (UDP/123, NTP-reflection flavor) with
   ``traffic-rate 0``; attack packets die at the first deploying AS on
   their path, legitimate traffic is untouched;
2. **scrubber redirect** — same match, diverted to a scrubbing AS
   instead of dropped (the attack volume is absorbed somewhere it can
   be studied);
3. **blunt discard** — a destination-prefix-only discard: maximal
   absorption, maximal collateral damage to bystander traffic.

It then shows the graceful-degradation machinery under a *rule flood*:
per-AS install limits held by most-specific-first eviction (RFC 5575
§5.1 order), rogue rules rejected by §6 validation (the originator must
own the best-match unicast route for the traffic it filters), and a
churning originator quarantined by the flood breaker — all surfaced
through the looking glass.

Everything derives from one seed: rerunning this script reproduces the
same tables bit-for-bit (the ``bench_flowspec.py`` CI gate holds it to
that).  The control-plane attacks FlowSpec composes with live in
``examples/hijack_campaign.py``.

Run:  PYTHONPATH=src python examples/ddos_scrubbing.py
"""

import types

from repro.secroute.ddos import DdosCampaignConfig, run_ddos_campaign
from repro.telemetry.lookingglass import LookingGlass
from repro.telemetry.metrics import MetricsRegistry


def main() -> None:
    config = DdosCampaignConfig()
    metrics = MetricsRegistry()

    print("== DDoS campaign: FlowSpec deployment sweep ==")
    result = run_ddos_campaign(config, metrics=metrics, return_distributor=True)
    print(
        f"victim AS{result.victim} (prefix 198.18.128.0/20), "
        f"scrubber AS{result.scrubber}, {config.n_sources} Zipf-weighted "
        f"attack sources sending {result.attack_volume} packets, "
        f"{result.legit_volume} bystander packets\n"
    )
    print("attack volume absorbed / leaked, legitimate volume lost "
          f"(mean of {config.trials} seeded trials):\n")
    print(result.table())
    print("""
(surgical rules absorb the attack with zero collateral; the blunt
 prefix-wide discard absorbs the same attack volume but takes the
 bystanders with it.  Absorbed volume is monotone in deployment rate
 by construction: rate sweeps nest their deployer sets.)""")

    print("== Rule flood: graceful degradation ==")
    flood = result.rule_flood
    assert flood is not None
    print(f"  rules offered:            {flood.rules_offered}")
    print(f"  per-AS install limit:     {flood.install_limit}")
    print(f"  max installed at one AS:  {flood.max_installed_at_one_as} "
          f"(limit {'held' if flood.limits_respected else 'VIOLATED'})")
    print(f"  evicted (least-specific): {flood.evicted}")
    print(f"  rejected by §6 validation:{flood.rejected_validation:>6}")
    print(f"  rejected while quarantined:{flood.rejected_quarantine:>5}")
    print(f"  quarantined originators:  "
          + ", ".join(f"AS{a}" for a in flood.quarantined))

    print("\n== Looking glass: FlowSpec view after the flood ==")
    distributor = result.distributor  # type: ignore[attr-defined]
    testbed = types.SimpleNamespace(
        outcome_for=lambda prefix: None, _announced={}, servers={}, asn=result.victim
    )
    glass = LookingGlass(testbed, flowspec=distributor)
    stats = glass.flowspec_stats()
    print(f"  installed now: {stats['installed_now']} "
          f"(max {stats['max_installed_at_one_as']}/AS, "
          f"limit {stats['install_limit']})")
    sample_as = max(
        distributor.installed_counts(), key=lambda a: (distributor.installed_counts()[a], -a)
    )
    print(f"  most-loaded vantage AS{sample_as}, most-specific rules first:")
    for rule in glass.flowspec_rules(sample_as)[:4]:
        print(f"    {rule}")

    print("\n== FlowSpec lifecycle counters ==")
    for name in (
        "peering_flowspec_rules_installed_total",
        "peering_flowspec_rules_evicted_total",
        "peering_flowspec_originator_quarantines_total",
    ):
        family = metrics.get(name)
        assert family is not None
        print(f"  {name}: {int(family.value)}")
    rejected = metrics.get("peering_flowspec_rules_rejected_total")
    assert rejected is not None
    for reason in ("validation", "limit", "quarantine", "stale"):
        print(f"  peering_flowspec_rules_rejected_total{{reason={reason}}}: "
              f"{int(rejected.labels(reason).value)}")


if __name__ == "__main__":
    main()
