#!/usr/bin/env python3
"""Studying man-in-the-middle BGP interception (Pilosov–Kapela style).

§2 of the paper: "a researcher is using PEERING to study man-in-the-middle
hijacks, in which an attacker uses BGP to intercept traffic to inspect
before forwarding it to the destination.  Emulating an attack requires
rich interdomain connectivity to successfully divert traffic, then
intradomain control to experiment with approaches to return it."

Here both the victim and the "attacker" are PEERING experiments (the only
safe way to study this: the safety layer confines the hijack to testbed
prefixes).  The attacker announces a *more-specific* of the victim's
prefix from a different site, diverts a measurable share of the Internet,
inspects the packets, and tunnels them onward to the victim so end-to-end
connectivity survives — the interception, not blackholing, variant.

Run:  python examples/mitm_interception.py
"""

from repro.core import Testbed
from repro.inet.gen import InternetConfig
from repro.net.addr import IPAddress
from repro.net.packet import Packet
from repro.workloads import client_population


def main() -> None:
    testbed = Testbed.build_default(
        InternetConfig(n_ases=1200, total_prefixes=120_000, seed=1337)
    )

    # One experiment, two clients: the victim service and the interceptor.
    victim = testbed.register_client("victim-svc", researcher="alice")
    prefix = victim.prefixes[0]
    victim.attach("gatech01")
    victim.announce(prefix)
    target = prefix.first_address() + 80

    vantages = client_population(testbed.graph, 80, seed=9)
    baseline = {}
    for vantage in vantages:
        delivery = testbed.dataplane.send(
            vantage, Packet(src=IPAddress("198.18.0.1"), dst=target)
        )
        baseline[vantage] = delivery
    print(f"victim announces {prefix} from gatech01; "
          f"{sum(d.status.value == 'delivered' for d in baseline.values())}"
          f"/{len(vantages)} vantages reach it\n")

    # The interception: the same experiment announces a covering
    # more-specific from the IXP site (rich connectivity = wide diversion).
    more_specific = next(prefix.subnets(25))
    intercepted_packets = []
    victim.attach("amsterdam01")
    decision = victim.announce(more_specific, servers=["amsterdam01"])
    print(f"interceptor announces more-specific {more_specific} from "
          f"amsterdam01: {decision['amsterdam01'].verdict.value}")

    # Traffic that lands on the interceptor (at the testbed AS via the
    # amsterdam peers) is inspected, then forwarded to the victim —
    # modeled by the tunnel delivery inside the testbed plus a tap.
    testbed.dataplane.register_tap(testbed.asn, intercepted_packets.append)

    diverted = 0
    still_working = 0
    for vantage in vantages:
        delivery = testbed.dataplane.send(
            vantage, Packet(src=IPAddress("198.18.0.1"), dst=target)
        )
        if delivery.status.value == "delivered" and delivery.final_asn == testbed.asn:
            still_working += 1
            # Which announcement pulled it in?  The more specific wins LPM,
            # so any path entering via an amsterdam peer was diverted.
            entry = delivery.path[-2] if len(delivery.path) >= 2 else None
            if entry in testbed.server("amsterdam01").neighbor_asns:
                diverted += 1

    print(f"\nafter interception announcement:")
    print(f"  end-to-end still delivered: {still_working}/{len(vantages)} "
          "(interception, not blackholing)")
    print(f"  diverted through the interceptor's site: {diverted}")
    print(f"  packets inspected at the interceptor: {len(intercepted_packets)}")

    # Safety check: an experiment CANNOT do this to space it does not own.
    mallory = testbed.register_client("mallory", researcher="mallory")
    mallory.attach("amsterdam01")
    verdicts = mallory.announce(prefix)
    print(f"\ncontrol: unrelated experiment hijacking {prefix}: "
          f"{verdicts['amsterdam01'].verdict.value} (safety filters)")
    print("done.")


if __name__ == "__main__":
    main()
