#!/usr/bin/env python3
"""Scheduled announcements + automatic measurement collection.

The paper's "prototype web service that lets users schedule announcements
without setting up a client software router", combined with the automatic
control/data-plane collection toward PEERING prefixes (§3 "Easing
management").  The pattern is a classic *BGP beacon*: announce for an
hour, withdraw for an hour, while collectors record how the control and
data planes track the schedule — the measurement design behind BGP
convergence studies [30, 37].

Run:  python examples/scheduled_beacon.py
"""

from repro.core import (
    AnnouncementScheduler,
    ControlPlaneCollector,
    DataPlaneCollector,
    Testbed,
)
from repro.inet.gen import InternetConfig
from repro.workloads import client_population

HOUR = 3600.0


def main() -> None:
    testbed = Testbed.build_default(
        InternetConfig(n_ases=700, total_prefixes=70_000, seed=37)
    )
    client = testbed.register_client("beacon", researcher="mao-et-al")
    prefix = client.prefixes[0]
    client.attach("amsterdam01")

    scheduler = AnnouncementScheduler(testbed.engine, testbed.servers)
    scheduler.on_notify = lambda task, msg: print(
        f"  [t={testbed.engine.now:7.0f}] task {task.task_id}: {msg}"
    )

    print("== Booking a 2-up/2-down beacon schedule ==")
    for cycle in range(2):
        start = cycle * 2 * HOUR + 60.0
        scheduler.schedule(
            "beacon", prefix, "amsterdam01", start=start, duration=HOUR
        )

    vantages = client_population(testbed.graph, 25, seed=8)
    control = ControlPlaneCollector(testbed, vantages)
    data = DataPlaneCollector(testbed, vantages)
    # Collect every 30 simulated minutes across the whole schedule.
    rounds = 9
    control.schedule_rounds(interval=1800.0, rounds=rounds)
    data.schedule_rounds(interval=1800.0, rounds=rounds)

    print("\n== Running the schedule ==")
    testbed.engine.run(until=5 * HOUR)

    print("\n== What the collectors saw ==")
    by_time = {}
    for observation in control.observations:
        bucket = by_time.setdefault(observation.time, [0, 0])
        bucket[0] += 1
        if observation.reachable:
            bucket[1] += 1
    print(" time(h) | vantages with route | probes delivered")
    probe_by_time = {}
    for observation in data.observations:
        bucket = probe_by_time.setdefault(observation.time, [0, 0])
        bucket[0] += 1
        if observation.delivered:
            bucket[1] += 1
    for t in sorted(by_time):
        total, reachable = by_time[t]
        dtotal, delivered = probe_by_time.get(t, (0, 0))
        print(f"  {t / HOUR:5.1f}  |      {reachable:3d}/{total:3d}      |"
              f"    {delivered:3d}/{dtotal:3d}")

    up = [t for t, (n, r) in by_time.items() if n and r > n * 0.8]
    down = [t for t, (n, r) in by_time.items() if n and r == 0]
    print(f"\nrounds with the beacon visible: {len(up)}; dark: {len(down)}")

    blob = control.export_mrt()
    print(f"control-plane log exported as MRT: {len(blob)} bytes "
          f"({len(control.observations)} records)")
    print("done.")


if __name__ == "__main__":
    main()
