#!/usr/bin/env python3
"""The §4.2 experiment: emulate Hurricane Electric's backbone with
MinineXt and couple it to PEERING at AMS-IX.

"We emulated the PoP-level global backbone of Hurricane Electric (HE),
using data from Topology Zoo.  We set up a Quagga routing engine for each
of the 24 PoPs, configured each PoP to originate a prefix, and configured
sessions between adjacent PoPs.  We then connected the emulated Amsterdam
PoP to peer at AMS-IX via PEERING ... Routes from AMS-IX propagated
through the emulated HE topology, and MinineXt forwarded routes from
emulated PoPs out to the Internet via AMS-IX."

Run:  python examples/hurricane_electric_emulation.py
"""

from repro.core import MuxMode, Testbed
from repro.emulation import MinineXt, hurricane_electric
from repro.inet.gen import InternetConfig
from repro.net.addr import Prefix

HE_PRIVATE_ASN = 64700  # the emulated HE runs behind a private ASN


def main() -> None:
    print("== Building PEERING and the emulated HE backbone ==")
    testbed = Testbed.build_default(
        InternetConfig(n_ases=800, total_prefixes=80_000, seed=24)
    )
    topology = hurricane_electric()
    emulation = MinineXt.from_zoo(topology, engine=testbed.engine)
    for pop in topology.pops:
        emulation.add_quagga(pop.name, asn=HE_PRIVATE_ASN)
    sessions = emulation.ibgp_adjacent_sessions()
    print(f"{len(topology.pops)} PoPs, {emulation.lsdb.link_count()} links, "
          f"{sessions} iBGP sessions between adjacent PoPs")

    print("\n== Each PoP originates a prefix ==")
    client = testbed.register_client("he-emulation", researcher="§4.2",
                                     prefix_count=8)
    pop_prefixes = {}
    # Slice client /24s into per-PoP /27s (24 PoPs need 3 /24s).
    available = iter(
        sub for prefix in client.prefixes for sub in prefix.subnets(27)
    )
    for pop in topology.pops:
        pop_prefix = next(available)
        pop_prefixes[pop.name] = pop_prefix
        emulation.container(pop.name).service.originate(pop_prefix)
    emulation.converge(duration=300)
    tables = emulation.total_routes()
    print(f"intradomain convergence: every PoP holds "
          f"{min(tables.values())}..{max(tables.values())} routes "
          f"(expect {len(topology.pops)})")

    print("\n== Connecting the emulated AMS PoP to PEERING at AMS-IX ==")
    # The AMS PoP speaks eBGP to the mux through the client's BGP session.
    router = client.attach_bgp("amsterdam01", local_asn=HE_PRIVATE_ASN)
    # Bridge: the client-side router IS the AMS PoP's external face; feed
    # it the PoP prefixes the backbone carries.
    for pop_name, pop_prefix in pop_prefixes.items():
        router.originate(pop_prefix)
    emulation.converge(duration=120)

    announced = [p for p in testbed.announced_prefixes()]
    print(f"PoP prefixes now announced to the Internet via AMS-IX: "
          f"{len(announced)}")
    sample_prefix = pop_prefixes["HKG"]
    outcome = testbed.outcome_for(sample_prefix)
    print(f"e.g. {sample_prefix} (Hong Kong PoP) reaches "
          f"{len(outcome.reachable_asns())} ASes; a sample path: "
          f"{next(iter(outcome.items()))[1].path}")

    # Note: the public ASN on those paths is PEERING's, because the mux
    # strips the emulated domain's private ASN (§3).
    for asn, route in outcome.items():
        assert HE_PRIVATE_ASN not in route.path, "private ASN leaked!"
    print("verified: the private HE ASN never appears on public paths "
          "(mux strips it)")

    print("\n== Routes from AMS-IX propagate INTO the emulated backbone ==")
    amsterdam = testbed.server("amsterdam01")
    some_dest = sorted(amsterdam.neighbor_asns)[0]
    dst_prefix = Prefix("203.0.113.0/24")
    sent = amsterdam.relay_destination("he-emulation", some_dest, dst_prefix)
    print(f"mux relayed {sent} peer route(s) for {dst_prefix} to the client")
    best = router.best_route(dst_prefix)
    print(f"AMS PoP gateway selected: {best.attributes.as_path} via tunnel")

    print(f"\n== Resource footprint ({len(topology.pops)} Quagga routers) ==")
    megabytes = emulation.modeled_memory_bytes() / (1024 * 1024)
    print(f"modeled Quagga memory for the whole emulation: {megabytes:.0f} MB"
          " (the paper ran it in 8 GB on a commodity desktop)")
    print(f"IGP path SEA -> AMS: {' -> '.join(emulation.igp_path('SEA', 'AMS'))}")
    print("done.")


if __name__ == "__main__":
    main()
