"""Benchmark: fault recovery under the supervision layer.

Standalone script (no pytest-benchmark dependency) so CI can run it as a
smoke step and gate on regressions:

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py \\
        --quick --output BENCH_fault_recovery.json --check

Measures three recovery paths on a seeded testbed:

* **link_flap** — simulated seconds from a severed transport back to
  ESTABLISHED under RFC 4271 IdleHold backoff (20 flaps);
* **crash_recovery** — a HARD mux crash (in-memory announcement state
  wiped) under watchdog + control journal: detection latency, end-to-end
  recovery latency with ZERO manual calls, and the journal-replay restore
  rate in routes/second (wall clock);
* **containment** — an update storm from a misbehaving client: simulated
  seconds from storm start to the circuit breaker tripping, and how many
  updates the mux absorbed before cutting the client off.

``--check`` compares the *simulated* latencies against the committed
baseline (``BENCH_fault_recovery_baseline.json``).  Simulated time is
machine-independent — the event engine is deterministic — so the gate is
tight (1.5x) and still immune to slow CI machines.  The wall-clock
restore rate is reported but not gated.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bgp.session import BGPSession, SessionConfig
from repro.core import Testbed
from repro.faults import FaultPlan, Link
from repro.guard import BreakerConfig, QuarantineConfig, WatchdogConfig
from repro.inet.gen import InternetConfig
from repro.net.addr import IPAddress
from repro.sim import Engine

BASELINE = Path(__file__).with_name("BENCH_fault_recovery_baseline.json")


# -- link flap recovery -------------------------------------------------------


def build_link(engine, idle_hold_time=2.0):
    left = BGPSession(
        engine,
        SessionConfig(
            local_asn=47065,
            peer_asn=3356,
            local_id=IPAddress("10.0.0.1"),
            hold_time=90,
            auto_reconnect=True,
            idle_hold_time=idle_hold_time,
            description="bench-L",
        ),
    )
    right = BGPSession(
        engine,
        SessionConfig(
            local_asn=3356,
            peer_asn=47065,
            local_id=IPAddress("10.0.0.2"),
            hold_time=90,
            passive=True,
            auto_reconnect=True,
            idle_hold_time=idle_hold_time,
            description="bench-R",
        ),
    )
    link = Link(engine, left, right, name="bench")
    link.start()
    return link


def run_link_flap(idle_hold_time: float = 2.0, flaps: int = 20):
    engine = Engine(seed=2014)
    link = build_link(engine, idle_hold_time=idle_hold_time)
    gaps = []
    for _ in range(flaps):
        down_at = engine.now
        link.sever()
        while not link.established:
            engine.step()
        gaps.append(engine.now - down_at)
        engine.run_for(5)  # settle before the next flap
    return {
        "idle_hold_s": idle_hold_time,
        "flaps": flaps,
        "mean_downtime_s": round(sum(gaps) / len(gaps), 3),
        "worst_downtime_s": round(max(gaps), 3),
        "reconnect_attempts": link.left.reconnect_attempts
        + link.right.reconnect_attempts,
    }


# -- supervised crash recovery ------------------------------------------------


def build_supervised_testbed(quick: bool):
    if quick:
        config = InternetConfig(n_ases=120, total_prefixes=5_000, seed=99)
    else:
        config = InternetConfig(n_ases=300, total_prefixes=20_000, seed=99)
    tb = Testbed.build_default(config)
    tb.supervise(
        # Programmatic clients announce more prefixes than the default
        # max-prefix ceiling; the bench measures recovery, not limits.
        breaker=BreakerConfig(max_prefixes=1024),
        quarantine=QuarantineConfig(),
        watchdog=WatchdogConfig(probe_interval=5.0, restart_delay=10.0),
    )
    return tb


def run_crash_recovery(quick: bool):
    tb = build_supervised_testbed(quick)
    # The allocation pool is PEERING's /19 — 32 /24s — so the route count
    # is capped; full mode scales the internet, not the announcement set.
    n_clients = 4 if quick else 6
    prefixes_each = 8 if quick else 5
    server = tb.server("gatech01")
    expected = {}
    for i in range(n_clients):
        client = tb.register_client(
            f"bench{i}", "operator", prefix_count=prefixes_each
        )
        client.attach("gatech01")
        for prefix in client.prefixes:
            decision = server.announce(client.client_id, prefix)
            assert decision.allowed, decision
        expected[client.client_id] = set(client.prefixes)
    total_routes = sum(len(p) for p in expected.values())
    tb.engine.run_for(1)
    assert all(p in tb.announced_prefixes() for ps in expected.values() for p in ps)

    # Hard crash: memory wiped; only the watchdog + journal bring it back.
    crashed_at = tb.engine.now
    server.crash(hard=True)
    assert not any(
        p in tb.announced_prefixes() for ps in expected.values() for p in ps
    )

    def restored():
        return all(
            set(server.announcements_for(cid)) == ps
            for cid, ps in expected.items()
        )

    deadline = crashed_at + 600
    while not restored() and tb.engine.now < deadline:
        tb.engine.step()
    assert restored(), "watchdog failed to restore announcements"
    announced = set(tb.announced_prefixes())
    assert all(p in announced for ps in expected.values() for p in ps)

    detected = next(
        e.time for e in tb.events.of_kind("watchdog-crash-detected")
    )
    recovery_latency = tb.engine.now - crashed_at

    # Journal replay rate, wall clock: crash again and time restart()
    # itself — the replay is synchronous, so this isolates restore cost
    # from watchdog probe cadence.
    server.crash(hard=True)
    start = time.perf_counter()
    server.restart()
    restore_wall = time.perf_counter() - start
    assert restored()

    return {
        "clients": n_clients,
        "routes": total_routes,
        "journal_records": tb.journal.stats()["records"],
        "detect_latency_s": round(detected - crashed_at, 3),
        "recovery_latency_s": round(recovery_latency, 3),
        "manual_calls": 0,
        "restore_wall_s": round(restore_wall, 6),
        "routes_restored_per_s": round(total_routes / restore_wall, 1),
    }


# -- storm containment --------------------------------------------------------


def run_containment(quick: bool):
    from repro.bgp.attributes import ASPath, Origin, PathAttributes

    tb = build_supervised_testbed(quick)
    client = tb.register_client("storm", "operator")
    client.attach_bgp("usc01", resilient=True, idle_hold_time=2.0)
    tb.engine.run_for(1)
    att = client.attachments["usc01"]
    att.router.originate(client.prefixes[0])
    tb.engine.run_for(1)
    sess = att.sessions[sorted(att.sessions)[0]]
    attrs = PathAttributes(
        origin=Origin.IGP, as_path=ASPath(), next_hop=att.tunnel.address
    )
    storm_at = 3.0
    plan = FaultPlan(tb.engine, "containment")
    plan.storm_updates(
        sess, client.prefixes[0], attrs, at=storm_at, updates=200, interval=0.25
    )
    tb.engine.run_for(60)
    trip = next(e for e in tb.events.of_kind("breaker-open"))
    absorbed = sum(
        1 for t, action, _ in plan.log
        if action == "storm-update" and t <= trip.time
    )
    return {
        "containment_latency_s": round(trip.time - storm_at, 3),
        "updates_absorbed": absorbed,
        "trip_reason": trip.detail_dict()["reason"],
        "sessions_torn_down": len(tb.events.of_kind("session-down")),
    }


# -- harness ------------------------------------------------------------------


def run_benchmarks(quick: bool):
    return {
        "config": {"quick": quick},
        "link_flap": run_link_flap(),
        "crash_recovery": run_crash_recovery(quick),
        "containment": run_containment(quick),
    }


# (section, metric) pairs gated by --check: all simulated-time values,
# deterministic across machines.
GATED = [
    ("link_flap", "mean_downtime_s"),
    ("crash_recovery", "detect_latency_s"),
    ("crash_recovery", "recovery_latency_s"),
    ("containment", "containment_latency_s"),
]
GATE_RATIO = 1.5


def check_regression(results) -> int:
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; skipping regression check")
        return 0
    baseline = json.loads(BASELINE.read_text())
    if baseline.get("config", {}).get("quick") != results["config"]["quick"]:
        print("baseline/run mode mismatch (quick vs full); skipping check")
        return 0
    failures = 0
    for section, metric in GATED:
        base = baseline[section][metric]
        now = results[section][metric]
        ceiling = base * GATE_RATIO
        verdict = "ok" if now <= ceiling else "FAIL"
        print(
            f"regression gate: {section}.{metric} = {now:g} sim s "
            f"(baseline {base:g}, ceiling {ceiling:g}) {verdict}"
        )
        if now > ceiling:
            failures += 1
    rate = results["crash_recovery"]["routes_restored_per_s"]
    print(f"info (not gated): journal restore rate {rate:g} routes/s")
    if failures:
        print(f"FAIL: {failures} recovery metric(s) regressed >{GATE_RATIO}x")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small config for CI smoke runs"
    )
    parser.add_argument(
        "--output", default="BENCH_fault_recovery.json", help="result JSON path"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail when a simulated recovery latency regresses >{GATE_RATIO}x"
        " vs the committed baseline",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks(args.quick)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    if args.check:
        return check_regression(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
