"""Fault recovery: how fast sessions heal, and what it costs.

The robustness subsystem (``repro.faults``) promises that a testbed full
of flapping links and crashing muxes converges back to ESTABLISHED
without operator action.  This bench quantifies that:

* **link flap recovery** — simulated seconds from a severed transport to
  re-established, as a function of the IdleHold base (the RFC 4271
  backoff knob);
* **lossy wire establishment** — ConnectRetry cost of standing up a
  session over a wire that drops a fraction of all messages;
* **mux crash recovery** — wall-clock (simulated) gap between a mux
  restart and every client session healing, plus the re-provisioning
  traffic it took.
"""

import pytest
from conftest import emit

from repro.bgp.session import BGPSession, SessionConfig
from repro.core import Testbed
from repro.faults import FaultConfig, FaultPlan, Link
from repro.inet.gen import InternetConfig
from repro.net.addr import IPAddress
from repro.sim import Engine


def build_link(engine, idle_hold_time=2.0, fault_config=None, hold_time=90):
    left = BGPSession(
        engine,
        SessionConfig(
            local_asn=47065,
            peer_asn=3356,
            local_id=IPAddress("10.0.0.1"),
            hold_time=hold_time,
            auto_reconnect=True,
            idle_hold_time=idle_hold_time,
            description="bench-L",
        ),
    )
    right = BGPSession(
        engine,
        SessionConfig(
            local_asn=3356,
            peer_asn=47065,
            local_id=IPAddress("10.0.0.2"),
            hold_time=hold_time,
            passive=True,
            auto_reconnect=True,
            idle_hold_time=idle_hold_time,
            description="bench-R",
        ),
    )
    link = Link(engine, left, right, name="bench", fault_config=fault_config)
    link.start()
    return link


def run_flap_recovery(idle_hold_time: float, flaps: int = 20):
    engine = Engine(seed=2014)
    link = build_link(engine, idle_hold_time=idle_hold_time)
    gaps = []
    for _ in range(flaps):
        down_at = engine.now
        link.sever()
        while not link.established:
            engine.step()
        gaps.append(engine.now - down_at)
        engine.run_for(5)  # settle before the next flap
    return {
        "mean": sum(gaps) / len(gaps),
        "worst": max(gaps),
        "attempts": link.left.reconnect_attempts + link.right.reconnect_attempts,
    }


@pytest.mark.parametrize("idle_hold", [0.5, 2.0, 5.0])
def test_link_flap_recovery(benchmark, idle_hold):
    result = benchmark.pedantic(
        run_flap_recovery, args=(idle_hold,), rounds=1, iterations=1
    )
    emit(
        f"link flap recovery, IdleHold base {idle_hold:g}s (20 flaps)",
        [
            ["mean downtime (sim s)", f"{result['mean']:.2f}"],
            ["worst downtime (sim s)", f"{result['worst']:.2f}"],
            ["reconnect attempts", result["attempts"]],
        ],
    )
    benchmark.extra_info.update(result)


def run_lossy_establishment(drop_rate: float):
    engine = Engine(seed=2014)
    # A short hold time bounds how long a half-open handshake can wedge
    # before the OpenSent hold timer retries it.
    link = build_link(
        engine,
        idle_hold_time=1.0,
        fault_config=FaultConfig(drop_rate=drop_rate),
        hold_time=15,
    )
    engine.run_for(600)
    stats = link.injector.stats
    return {
        "establishments": link.left.established_count,
        "retries": link.left.connect_retry_count + link.right.connect_retry_count,
        "dropped": stats.dropped,
        "seen": stats.seen,
    }


@pytest.mark.parametrize("drop_rate", [0.0, 0.1, 0.3])
def test_lossy_wire_establishment(benchmark, drop_rate):
    result = benchmark.pedantic(
        run_lossy_establishment, args=(drop_rate,), rounds=1, iterations=1
    )
    assert result["establishments"] >= 1
    emit(
        f"establishment over a {drop_rate:.0%}-loss wire (600 sim s)",
        [
            ["messages seen / dropped", f"{result['seen']} / {result['dropped']}"],
            ["ConnectRetry failures", result["retries"]],
            ["(re)establishments", result["establishments"]],
        ],
    )
    benchmark.extra_info.update(result)


def run_mux_crash_recovery():
    tb = Testbed.build_default(
        InternetConfig(n_ases=200, total_prefixes=10_000, seed=99)
    )
    client = tb.register_client("bench", "operator")
    router = client.attach_bgp(
        "gatech01",
        resilient=True,
        idle_hold_time=2.0,
        graceful_restart=True,
    )
    router.originate(client.prefixes[0])
    tb.engine.run_for(1)
    gt = tb.server("gatech01")
    plan = FaultPlan(tb.engine, "bench")
    plan.crash_mux(gt, at=10.0, down_for=30.0)
    sessions = client.attachments["gatech01"].sessions
    tb.engine.run_for(39)  # to the restart
    restart_at = tb.engine.now
    while not all(s.established for s in sessions.values()):
        tb.engine.step()
    reprovisioned = len(tb.events.of_kind("session-reprovisioned"))
    return {
        "heal_time": tb.engine.now - restart_at,
        "sessions": len(sessions),
        "reprovisioned": reprovisioned,
    }


def test_mux_crash_recovery(benchmark):
    result = benchmark.pedantic(run_mux_crash_recovery, rounds=1, iterations=1)
    emit(
        "mux crash (30 sim s outage) to full session recovery",
        [
            ["sessions healed", result["sessions"]],
            ["re-provisioned channels", result["reprovisioned"]],
            ["heal time after restart (sim s)", f"{result['heal_time']:.2f}"],
        ],
    )
    benchmark.extra_info.update(result)
