"""§4.1 "Rich interdomain peering" — obtaining peers at AMS-IX.

Reproduces the membership/peering numbers:

* 669 member ASes, 554 on the route servers (instant multilateral
  peering on session establishment);
* of the 115 others: 48 open / 12 closed / 40 case-by-case / 15 unlisted;
* bilateral requests to open-policy members: "the vast majority
  accepted", a handful unresponsive, one replied with questions.
"""

import pytest
from conftest import emit

from repro.inet.gen import AmsIxConfig, InternetConfig, build_amsix, build_internet
from repro.inet.ixp import RequestOutcome
from repro.inet.topology import ASKind, ASNode, PeeringPolicy


@pytest.fixture(scope="module")
def world():
    internet = build_internet(InternetConfig())
    ixp = build_amsix(internet)
    peering = ASNode(asn=47065, name="PEERING", kind=ASKind.TESTBED)
    internet.graph.add_as(peering)
    ixp.add_member(47065)
    return internet, ixp


def test_membership_structure(world, benchmark):
    _internet, ixp = world
    census = benchmark(ixp.policy_census)
    rows = [
        ["member ASes", ixp.member_count() - 1, "(paper: 669)"],
        ["route-server members", len(ixp.route_server_members()), "(paper: 554)"],
        ["bilateral-only members", len(ixp.non_route_server_members()) - 1, "(paper: 115)"],
        ["  open policy", census.get(PeeringPolicy.OPEN, 0), "(paper: 48)"],
        ["  closed policy", census.get(PeeringPolicy.CLOSED, 0), "(paper: 12)"],
        ["  case-by-case", census.get(PeeringPolicy.CASE_BY_CASE, 0), "(paper: 40)"],
        ["  unlisted", census.get(PeeringPolicy.UNLISTED, 0), "(paper: 15)"],
    ]
    emit("§4.1: AMS-IX membership", rows)
    assert ixp.member_count() - 1 == 669  # excluding PEERING itself
    assert len(ixp.route_server_members()) == 554
    assert census[PeeringPolicy.OPEN] == 48
    assert census[PeeringPolicy.CLOSED] == 12
    assert census[PeeringPolicy.CASE_BY_CASE] == 40
    assert census[PeeringPolicy.UNLISTED] == 15


def test_route_server_instant_peering(world, benchmark):
    """One session to the route server = peering with all RS members."""
    _internet, ixp = world

    gained = benchmark.pedantic(
        ixp.join_route_server, args=(47065,), rounds=1, iterations=1
    )
    emit(
        "§4.1: route-server join",
        [["peers gained instantly", len(gained), "(paper: 554)"]],
    )
    assert len(gained) == 554


def test_bilateral_requests_mostly_accepted(world, benchmark):
    _internet, ixp = world

    def campaign():
        return ixp.request_all_open(47065)

    results = benchmark.pedantic(campaign, rounds=1, iterations=1)
    outcomes = {}
    for request in results:
        outcomes[request.outcome] = outcomes.get(request.outcome, 0) + 1
    accepted = outcomes.get(RequestOutcome.ACCEPTED, 0)
    emit(
        "§4.1: bilateral requests to open-policy members",
        [
            ["requests sent", len(results), "(paper: 'a few dozen')"],
            ["accepted", accepted, "(paper: 'the vast majority')"],
            ["no response", outcomes.get(RequestOutcome.NO_RESPONSE, 0), "(paper: 'a handful')"],
            ["asked questions", outcomes.get(RequestOutcome.QUESTIONS, 0), "(paper: 1)"],
            ["rejected", outcomes.get(RequestOutcome.REJECTED, 0), ""],
        ],
    )
    assert len(results) == 48
    assert accepted / len(results) > 0.7  # the vast majority
    assert outcomes.get(RequestOutcome.NO_RESPONSE, 0) <= 10
