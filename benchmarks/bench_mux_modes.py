"""Ablation (§3 design choice): Quagga-mode vs BIRD-mode muxes.

"While Quagga suffices in our current deployment, it requires a single
connection between client and server for each upstream peer and thus
cannot support large IXPs with many peers.  We plan to substitute ...
the BIRD software router, which enables lightweight multiplexing by
using BGP Additional Paths."

Measured: session count, handshake message volume, and route-relay
message count per client as the peer count grows, for both modes.
Expected shape: Quagga-mode grows O(peers) per client; BIRD-mode is O(1)
sessions with ADD-PATH path ids doing the multiplexing.
"""

import pytest
from conftest import emit

from repro.core import MuxMode, Testbed
from repro.inet.gen import InternetConfig
from repro.net.addr import Prefix

PEER_COUNTS = [4, 16, 64, 256]


@pytest.fixture(scope="module")
def world():
    return Testbed.build_default(InternetConfig(n_ases=2200, seed=6))


def attach_and_count(testbed, name, mode, peer_asns):
    client = testbed.register_client(name, researcher="bench")
    attachment = client.attach("amsterdam01", mode=mode, peer_asns=peer_asns)
    server = testbed.server("amsterdam01")
    sessions = server.client_session_count(name)
    return client, attachment, sessions


@pytest.mark.parametrize("n_peers", PEER_COUNTS)
def test_mux_mode_scaling(world, benchmark, n_peers):
    testbed = world
    server = testbed.server("amsterdam01")
    peer_asns = sorted(server.neighbor_asns)[:n_peers]
    if len(peer_asns) < n_peers:
        pytest.skip(f"only {len(peer_asns)} peers at this scale")

    def run():
        results = {}
        for mode in (MuxMode.QUAGGA, MuxMode.BIRD):
            name = f"bench-{mode.value}-{n_peers}"
            client, attachment, sessions = attach_and_count(
                testbed, name, mode, peer_asns
            )
            results[mode.value] = {"sessions": sessions}
            client.detach("amsterdam01")
            testbed.retire_experiment(name)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"mux scaling at {n_peers} peers",
        [
            ["quagga-mode sessions/client", results["quagga"]["sessions"]],
            ["bird-mode sessions/client", results["bird"]["sessions"]],
        ],
    )
    assert results["quagga"]["sessions"] == n_peers
    assert results["bird"]["sessions"] == 1


def test_route_relay_equivalence(world, benchmark):
    """Both modes must deliver the same per-peer route information; BIRD
    mode just multiplexes it with path ids."""
    testbed = world
    server = testbed.server("amsterdam01")
    peer_asns = sorted(server.neighbor_asns)[:16]
    dest = next(
        node.asn
        for node in testbed.graph.nodes()
        if node.kind.value == "access" and node.asn not in server.neighbor_asns
    )
    prefix = Prefix("203.0.113.0/24")

    def run():
        clients = {}
        for mode in (MuxMode.QUAGGA, MuxMode.BIRD):
            name = f"relay-{mode.value}"
            client = testbed.register_client(name, researcher="bench")
            router = client.attach_bgp(
                "amsterdam01", mode=mode, local_asn=64512, peer_asns=peer_asns
            )
            sent = server.relay_destination(name, dest, prefix)
            received = [r for r in router.loc_rib.candidates(prefix)]
            clients[mode.value] = (sent, len(received), router)
        return clients

    clients = benchmark.pedantic(run, rounds=1, iterations=1)

    quagga_sent, quagga_recv, _ = clients["quagga"]
    bird_sent, bird_recv, bird_router = clients["bird"]
    emit(
        "route relay equivalence (16 peers)",
        [
            ["quagga-mode routes relayed", quagga_sent],
            ["bird-mode routes relayed", bird_sent],
            ["quagga-mode candidates at client", quagga_recv],
            ["bird-mode candidates at client", bird_recv],
        ],
    )
    assert quagga_sent == bird_sent
    # BIRD-mode ADD-PATH preserves every alternate on one session.
    assert bird_recv == bird_sent
