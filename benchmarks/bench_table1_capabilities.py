"""Table 1: testbed capability matrix.

Regenerates the paper's Table 1 from the structural platform models and
verifies every cell, plus the caption's claim that no two non-PEERING
systems combine to cover PEERING's goal set.
"""

from conftest import emit

from repro.testbeds import (
    ALL_TESTBEDS,
    PAPER_TABLE_1,
    Goal,
    Support,
    capability_matrix,
    no_two_combine,
)

_ROW_LABELS = {
    Goal.INTERDOMAIN: "Interdomain",
    Goal.RICH_CONNECTIVITY: "Rich conn.",
    Goal.TRAFFIC: "Traffic",
    Goal.REAL_SERVICES: "Real services",
    Goal.INTRADOMAIN: "Intradomain",
    Goal.OPEN_SIMULTANEOUS: "Open/Simult.",
}

_COLUMNS = ["PL", "VN", "EM", "MN", "RC", "BC", "TP", "PR"]


def test_table1(benchmark):
    matrix = benchmark(capability_matrix)

    rows = []
    for goal in Goal:
        rows.append(
            [_ROW_LABELS[goal].ljust(13)]
            + [matrix[short][goal].symbol for short in _COLUMNS]
        )
    emit("Table 1: testbed capabilities", rows, header=["goal".ljust(13)] + _COLUMNS)

    # Every cell matches the published table.
    mismatches = [
        (goal.value, short)
        for goal, row in PAPER_TABLE_1.items()
        for short, symbol in row.items()
        if matrix[short][goal].symbol != symbol
    ]
    assert mismatches == []

    # Only PEERING meets every goal.
    assert all(support is Support.YES for support in matrix["PR"].values())
    for model in ALL_TESTBEDS:
        if model.short != "PR":
            assert any(
                support is not Support.YES for support in matrix[model.short].values()
            )

    # Caption claim.
    assert no_two_combine()
