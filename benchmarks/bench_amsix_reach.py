"""§4.1 "Who do we peer with? / Which destinations can we reach?"

Reproduces, on the full-scale synthetic Internet:

* peer routes to >131K prefixes, about a quarter of the Internet;
* peers based in 59 countries;
* peering with ≥13 of the top-50 and ~27 of the top-100 ASes by
  customer-cone size;
* named content/CDN networks among the peers.
"""

import pytest
from conftest import emit

from repro.inet.analysis import (
    country_coverage,
    peer_reachability,
    top_cone_overlap,
)
from repro.inet.topology import ASKind


@pytest.fixture(scope="module")
def amsterdam(paper_testbed):
    return paper_testbed, paper_testbed.server("amsterdam01")


def test_destination_reach(amsterdam, benchmark):
    testbed, server = amsterdam
    reach = benchmark(peer_reachability, testbed.graph, testbed.asn)
    emit(
        "§4.1: destinations reachable via peer routes",
        [
            ["peers", reach.peer_count, "(paper: ~600)"],
            ["reachable prefixes", reach.reachable_prefixes, "(paper: >131,000)"],
            ["total prefixes", reach.total_prefixes, "(2014 table: ~520,000)"],
            ["fraction", f"{reach.prefix_fraction:.2f}", "(paper: ~0.25)"],
        ],
    )
    assert reach.peer_count > 500
    assert 0.15 < reach.prefix_fraction < 0.40  # "one quarter of the Internet"
    assert reach.reachable_prefixes > 80_000


def test_countries(amsterdam, benchmark):
    testbed, server = amsterdam
    peers = set(testbed.graph.peers(testbed.asn))
    countries = benchmark(country_coverage, testbed.graph, peers)
    emit("§4.1: peer countries", [["countries", len(countries), "(paper: 59)"]])
    assert len(countries) >= 40  # worldwide footprint


def test_top_cone_ranks(amsterdam, benchmark):
    testbed, server = amsterdam
    peers = set(testbed.graph.peers(testbed.asn))
    overlap = benchmark(top_cone_overlap, testbed.graph, peers, (50, 100))
    emit(
        "§4.1: large-AS peers by customer cone",
        [
            ["of the top 50", overlap[50], "(paper: >=13)"],
            ["of the top 100", overlap[100], "(paper: 27)"],
        ],
    )
    assert overlap[50] >= 5  # several of the biggest networks peer
    assert overlap[100] >= overlap[50]


def test_content_networks_among_peers(amsterdam, benchmark):
    testbed, server = amsterdam
    peers = benchmark(lambda: set(testbed.graph.peers(testbed.asn)))
    content_peers = [
        testbed.graph.get(asn).name
        for asn in peers
        if testbed.graph.get(asn).kind is ASKind.CONTENT
    ]
    named = [n for n in content_peers if n and not n.startswith("CDN-")][:12]
    emit(
        "§4.1: content/CDN networks among the peers",
        [[", ".join(sorted(named))], ["content peers total", len(content_peers)]],
    )
    assert len(content_peers) >= 50  # content providers peer openly
