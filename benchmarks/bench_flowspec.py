"""Benchmark + determinism gate for the FlowSpec DDoS campaign.

Standalone script (no pytest dependency) so CI can run it in the
``security-scenarios`` job:

    PYTHONPATH=src python benchmarks/bench_flowspec.py \\
        --output BENCH_flowspec.json --check

Runs the DDoS-scrubbing campaign (surgical discard, scrubber redirect,
blunt discard) across the FlowSpec deployment-rate sweep plus the
rule-flood robustness scenario, and reports:

* the absorbed / leaked / collateral table per defense posture;
* the rule-flood outcome (install-limit ceiling, eviction/rejection
  counts, quarantined originators);
* wall-clock per campaign run.

``--check`` is a *determinism and robustness* gate, not a speed gate:

* the campaign is fully seeded, so the scenario tables must match the
  committed baseline (``BENCH_flowspec_baseline.json``) **exactly** —
  two seeded runs are byte-identical, and any drift means FlowSpec
  semantics changed (regenerate deliberately: rerun without ``--check``
  and commit the output);
* every absorbed-volume curve must be monotone non-decreasing in
  deployment rate (guaranteed by nested deployer sampling — a violation
  is a bug, not noise);
* the rule-flood scenario must never exceed the per-AS install limit
  and must end with the churning originator quarantined.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.secroute.ddos import DdosCampaignConfig, run_ddos_campaign

BASELINE = Path(__file__).with_name("BENCH_flowspec_baseline.json")


def campaign_config(quick: bool) -> DdosCampaignConfig:
    if quick:
        return DdosCampaignConfig(
            seed=2014,
            rates=(0.0, 0.5, 1.0),
            trials=2,
            n_ases=100,
            n_tier1=5,
            n_sources=12,
            attack_packets=200,
        )
    return DdosCampaignConfig(seed=2014)


def run_benchmarks(quick: bool):
    config = campaign_config(quick)

    start = time.perf_counter()
    result = run_ddos_campaign(config)
    first_s = time.perf_counter() - start

    start = time.perf_counter()
    rerun = run_ddos_campaign(config)
    second_s = time.perf_counter() - start

    print(result.table())
    payload = result.to_dict()
    return {
        "config": {
            "quick": quick,
            "seed": config.seed,
            "rates": list(config.rates),
            "trials": config.trials,
            "n_ases": config.n_ases,
            "n_tier1": config.n_tier1,
            "n_sources": config.n_sources,
            "attack_packets": config.attack_packets,
            "install_limit": config.install_limit,
            "churn_budget": config.churn_budget,
        },
        "campaign": payload,
        "reruns_identical": json.dumps(payload, sort_keys=True)
        == json.dumps(rerun.to_dict(), sort_keys=True),
        "monotone": {
            name: scenario.is_monotone_absorbed()
            for name, scenario in result.scenarios.items()
        },
        "rule_flood_ok": result.rule_flood is not None
        and result.rule_flood.limits_respected
        and bool(result.rule_flood.quarantined),
        "timing": {
            "first_run_s": round(first_s, 3),
            "second_run_s": round(second_s, 3),
        },
    }


def check_regression(results) -> int:
    failures = []
    if not results["reruns_identical"]:
        failures.append("two seeded campaign runs differ (determinism broken)")
    for name, monotone in results["monotone"].items():
        if not monotone:
            failures.append(f"{name} absorbed-volume curve is not monotone")
    if not results["rule_flood_ok"]:
        failures.append(
            "rule-flood scenario violated install limits or failed to quarantine"
        )
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        if baseline["config"] != results["config"]:
            print("baseline config differs; skipping exact-table comparison")
        elif (
            baseline["campaign"]["scenarios"] != results["campaign"]["scenarios"]
            or baseline["campaign"]["rule_flood"] != results["campaign"]["rule_flood"]
        ):
            failures.append(
                "campaign tables drifted from the committed baseline "
                "(seeded campaign: this means FlowSpec semantics changed)"
            )
    else:
        print(f"no baseline at {BASELINE}; skipping exact-table comparison")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        "determinism gate: tables match baseline, absorbed curves monotone, "
        "install limits held, flooder quarantined"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small config for CI smoke runs"
    )
    parser.add_argument(
        "--output", default="BENCH_flowspec.json", help="result JSON path"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on table drift vs committed baseline, broken monotonicity, "
        "or rule-flood limit violations",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks(args.quick)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    if args.check:
        return check_regression(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
