"""Benchmark: population-scale anycast catchment mapping + the closed-loop
traffic engineer.

Standalone script (no pytest-benchmark dependency) so CI can run it as a
smoke step and gate on regressions:

    PYTHONPATH=src python benchmarks/bench_anycast.py \\
        --output BENCH_anycast.json --check

The full run deploys a three-site anycast service onto a CAIDA-calibrated
50k-AS topology (``build_caida_like``) and measures:

* **mapping** — a batch of steering variants of the service's
  multi-origin announcement converged in **one** ``propagate_many``
  sweep, every outcome mapped against a >=1.2M-client Zipf population
  through the compiled root-array fast path.  Headline:
  ``clients_mapped_per_s`` (clients x variants / wall-clock for sweep +
  mapping).
* **engineer** — a full :class:`~repro.anycast.TrafficEngineer`
  rebalance toward even per-site targets: iterations to convergence,
  how many of them rode the engine's *shift* delta regime (the prepend
  screen's solo ladders — the "cheap by construction" property), the
  imbalance drop, and wall-clock.  The whole rebalance is then re-run
  from a fresh world and the two reports compared byte-for-byte.

``--check`` gates against ``BENCH_anycast_baseline.json``:

* ``clients_mapped_per_s`` may not degrade more than 3x (6x headroom in
  ``--quick``, where the sweep overhead amortizes over a far smaller
  population);
* >= 2 engineer iterations must ride the shift regime (hard, both
  modes);
* the rebalance must not worsen imbalance (hard);
* the rebalance must be byte-identical across reruns under the fixed
  seed (hard).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.anycast import (
    AnycastService,
    AnycastSite,
    CatchmentMap,
    EngineerConfig,
    SiteSteering,
    TrafficEngineer,
)
from repro.inet.engine import default_parallelism
from repro.inet.gen import InternetConfig, build_caida_like, build_internet
from repro.inet.topology import ASKind
from repro.workloads import zipf_clients

BASELINE = Path(__file__).with_name("BENCH_anycast_baseline.json")

# Hard floor: evaluating iterations of the engineer that rode the shift
# regime (prepend screening through single-spec solo ladders).
SHIFT_ITERATIONS_FLOOR = 2

N_SITES = 3
UPLINKS_PER_SITE = 3
SWEEP_VARIANTS = 8
ENGINEER_SEED = 7


def build_world(quick: bool, seed_offset: int = 0):
    """A deployed service + population.  ``seed_offset`` keeps the world
    identical across determinism reruns (offset 0 both times) while
    letting future variants perturb it."""
    if quick:
        net = build_internet(
            InternetConfig(n_ases=2000, total_prefixes=150_000, seed=42)
        )
        pop_ases, pop_clients = 400, 120_000
    else:
        net = build_caida_like(50_000)
        pop_ases, pop_clients = 20_000, 1_200_000
    graph = net.graph
    transits = sorted(
        (n for n in graph.nodes() if n.kind == ASKind.TRANSIT),
        key=lambda n: (-n.prefix_count, n.asn),
    )
    picks = [n.asn for n in transits[: N_SITES * UPLINKS_PER_SITE]]
    sites = [
        AnycastSite(
            name=f"site{i:02d}",
            transits=tuple(
                picks[i * UPLINKS_PER_SITE : (i + 1) * UPLINKS_PER_SITE]
            ),
        )
        for i in range(N_SITES)
    ]
    service = AnycastService.deploy(graph, sites)
    population = zipf_clients(
        graph, ases=pop_ases, clients=pop_clients, seed=5 + seed_offset
    )
    return graph, service, population


def bench_mapping(service, population, workers: int):
    """One batched parallel sweep over SWEEP_VARIANTS steering variants,
    every outcome mapped against the full population."""
    site0 = service.sites[0].name
    variants = [
        service.announcement({site0: SiteSteering(prepend=depth)})
        for depth in range(SWEEP_VARIANTS)
    ]
    # Warm the compile (excluded: one-time cost, not mapping throughput).
    service.engine.propagate(variants[0])
    start = time.perf_counter()
    maps = CatchmentMap.compute_many(
        service, population, variants, parallel=workers
    )
    elapsed = time.perf_counter() - start
    clients_mapped = population.total_clients * len(maps)
    assert all(
        sum(m.volume_by_site.values()) + m.unserved_volume
        == population.total_clients
        for m in maps
    )
    return {
        "variants": len(maps),
        "population_clients": population.total_clients,
        "population_ases": population.n_ases,
        "sweep_s": round(elapsed, 3),
        "clients_mapped": clients_mapped,
        "clients_mapped_per_s": round(clients_mapped / elapsed),
    }


# Deliberately skewed targets (by site order): a near-even natural
# catchment satisfies even targets immediately, which would let the
# engineer stop after one look — the gates want it to *work*.
TARGET_SKEW = (0.5, 0.3, 0.2)


def run_engineer(service, population, workers: int):
    names = service.active_site_names()
    targets = {name: TARGET_SKEW[i] for i, name in enumerate(names)}
    engineer = TrafficEngineer(
        service,
        population,
        targets,
        EngineerConfig(max_iterations=6, seed=ENGINEER_SEED, parallel=workers),
    )
    start = time.perf_counter()
    report = engineer.rebalance()
    elapsed = time.perf_counter() - start
    return report, elapsed


def bench_engineer(quick: bool, workers: int, first_report):
    report, elapsed = first_report
    # Determinism: the identical world, rebuilt from scratch, must
    # produce a byte-identical report under the fixed seed.
    _, service, population = build_world(quick)
    rerun, _ = run_engineer(service, population, workers)
    return {
        "iterations": len(report.iterations),
        "shift_iterations": report.shift_iterations,
        "converged": report.converged,
        "imbalance_before": round(report.imbalance_before, 6),
        "imbalance_after": round(report.imbalance_after, 6),
        "moves_applied": report.moves_applied,
        "rebalance_s": round(elapsed, 3),
        "deterministic": report.to_json() == rerun.to_json(),
    }


def run_benchmarks(quick: bool, workers: int):
    build_start = time.perf_counter()
    graph, service, population = build_world(quick)
    build_s = time.perf_counter() - build_start
    mapping = bench_mapping(service, population, workers)
    # The engineer starts from default steering: rebuild the service's
    # steering state is unnecessary (bench_mapping never mutates it).
    engineer = bench_engineer(
        quick, workers, run_engineer(service, population, workers)
    )
    return {
        "config": {
            "quick": quick,
            "n_ases": len(graph),
            "sites": N_SITES,
            "uplinks_per_site": UPLINKS_PER_SITE,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "build_s": round(build_s, 3),
        },
        "mapping": mapping,
        "engineer": engineer,
    }


def _gate(label, ok, detail, failures):
    print(f"regression gate [{label}]: {detail} {'ok' if ok else 'FAIL'}")
    if not ok:
        failures.append(label)


def check_regression(results, quick: bool = False) -> int:
    failures: list = []
    engineer = results["engineer"]
    _gate(
        "shift iterations",
        engineer["shift_iterations"] >= SHIFT_ITERATIONS_FLOOR,
        f"{engineer['shift_iterations']} (floor {SHIFT_ITERATIONS_FLOOR})",
        failures,
    )
    _gate(
        "imbalance not worsened",
        engineer["imbalance_after"] <= engineer["imbalance_before"] + 1e-9,
        f"{engineer['imbalance_before']} -> {engineer['imbalance_after']}",
        failures,
    )
    _gate(
        "deterministic rerun",
        engineer["deterministic"],
        "byte-identical" if engineer["deterministic"] else "reports differ",
        failures,
    )
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        base_rate = baseline["mapping"]["clients_mapped_per_s"]
        # Quick runs map a much smaller population, so the per-sweep
        # overhead amortizes worse; give them double headroom.
        div = 6 if quick else 3
        rate = results["mapping"]["clients_mapped_per_s"]
        _gate(
            "clients mapped/s",
            rate >= base_rate / div,
            f"{rate} (floor {round(base_rate / div)})",
            failures,
        )
    else:
        print(f"no baseline at {BASELINE}; skipping throughput gate")
    if failures:
        print(f"FAIL: regressed vs gates: {', '.join(failures)}")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small config for CI smoke runs"
    )
    parser.add_argument("--output", default=None, help="result JSON path")
    parser.add_argument(
        "--workers",
        "--parallel",
        dest="workers",
        type=int,
        default=None,
        help="workers for the batched sweep (default: cpu_count - 1)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on regression vs committed baseline (mapping rate) "
        "or broken invariants (shift iterations, imbalance, determinism)",
    )
    args = parser.parse_args(argv)
    workers = args.workers or default_parallelism()
    results = run_benchmarks(args.quick, workers)
    output = args.output or "BENCH_anycast.json"
    Path(output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    if args.check:
        return check_regression(results, quick=args.quick)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
