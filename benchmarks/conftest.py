"""Shared fixtures for the benchmark suite.

The paper-scale world (4000 ASes, the full 669-member AMS-IX) is built
once per session; individual benchmarks slice it.
"""

import pytest

from repro.core import Testbed
from repro.inet.gen import InternetConfig


PAPER_CONFIG = InternetConfig()  # 4000 ASes, ~520K prefixes


@pytest.fixture(scope="session")
def paper_testbed():
    """The paper's deployment at full scale (full AMS-IX membership)."""
    return Testbed.build_default(PAPER_CONFIG)


def emit(title, rows, header=None):
    """Print a reproduced table; shown with ``pytest -s`` and captured in
    benchmark logs."""
    print(f"\n=== {title} ===")
    if header:
        print("  " + " | ".join(str(h) for h in header))
    for row in rows:
        print("  " + " | ".join(str(cell) for cell in row))
