"""§4.1 Alexa destination coverage.

The paper: DNS for the Alexa Top 500 → peer routes to 157 of them; the
500 pages embed 49,776 resources from 4,182 FQDNs resolving to 2,757
distinct IPs, of which peer routes cover 1,055 (38%) — because content is
concentrated on CDNs that peer openly.

Shape checks here: resource-IP coverage substantially exceeds the global
prefix fraction (content over-coverage), and both site and IP coverage
land near the paper's ratios.
"""

import pytest
from conftest import emit

from repro.inet.analysis import peer_reachability
from repro.workloads import WebConfig, build_web_ecosystem


@pytest.fixture(scope="module")
def web(paper_testbed):
    ecosystem = build_web_ecosystem(paper_testbed.graph, WebConfig(site_count=500))
    reach = peer_reachability(paper_testbed.graph, paper_testbed.asn)
    return paper_testbed, ecosystem, reach


def test_alexa_coverage(web, benchmark):
    testbed, ecosystem, reach = web
    coverage = benchmark(ecosystem.coverage, reach.reachable_asns)
    rows = [
        ["top sites", coverage["sites"], "(paper: 500)"],
        ["sites w/ peer routes", coverage["sites_covered"], "(paper: 157)"],
        ["resources", coverage["resources"], "(paper: 49,776)"],
        ["distinct FQDNs", coverage["fqdns"], "(paper: 4,182)"],
        ["distinct IPs", coverage["ips"], "(paper: 2,757)"],
        ["IPs w/ peer routes", coverage["ips_covered"], "(paper: 1,055)"],
        [
            "IP coverage",
            f"{coverage['ips_covered'] / coverage['ips']:.2f}",
            "(paper: 0.38)",
        ],
        [
            "site coverage",
            f"{coverage['sites_covered'] / coverage['sites']:.2f}",
            "(paper: 0.31)",
        ],
    ]
    emit("§4.1: Alexa-style destination coverage", rows)

    assert coverage["sites"] == 500
    assert 30_000 < coverage["resources"] < 80_000
    assert 1_000 < coverage["fqdns"] <= 4_200
    # Site coverage in the paper's ballpark (157/500 = 0.31).
    site_fraction = coverage["sites_covered"] / coverage["sites"]
    assert 0.15 < site_fraction < 0.60
    # IP coverage likewise (1055/2757 = 0.38).
    ip_fraction = coverage["ips_covered"] / coverage["ips"]
    assert 0.20 < ip_fraction < 0.70


def test_content_overcoverage(web, benchmark):
    """The load-bearing claim: popular-content IPs are covered far better
    than the Internet at large (38% of IPs vs 25% of prefixes), because
    the big CDNs peer."""
    testbed, ecosystem, reach = web
    coverage = benchmark(ecosystem.coverage, reach.reachable_asns)
    ip_fraction = coverage["ips_covered"] / coverage["ips"]
    emit(
        "§4.1: content over-coverage",
        [
            ["resource-IP coverage", f"{ip_fraction:.2f}"],
            ["global prefix coverage", f"{reach.prefix_fraction:.2f}"],
        ],
    )
    assert ip_fraction > reach.prefix_fraction


def test_resource_fetch_weighted_coverage(web, benchmark):
    """Weighted by fetch volume the coverage is even higher: the most
    popular FQDNs are the CDN-hosted ones."""
    testbed, ecosystem, reach = web

    def count():
        fetches = covered = 0
        for site in ecosystem.sites:
            for resource in site.resources:
                fetches += 1
                if resource.asn in reach.reachable_asns:
                    covered += 1
        return fetches, covered

    fetches, covered = benchmark(count)
    emit(
        "§4.1 (extension): fetch-weighted coverage",
        [["fetches covered", f"{covered}/{fetches}", f"{covered / fetches:.2f}"]],
    )
    coverage = ecosystem.coverage(reach.reachable_asns)
    assert covered / fetches >= coverage["ips_covered"] / coverage["ips"]
