"""Ablation (§3 "Enforcing safety"): hostile-client scenarios.

Exercises every safety property the paper promises the Internet:
hijacks of external space, cross-experiment prefix theft, route leaks,
coarse covering announcements, flap storms (damping), announcement
floods (rate limiting), and uncontrolled spoofing — each must be blocked
at the mux, while the legitimate baseline continues to work.
"""

import pytest
from conftest import emit

from repro.bgp.attributes import ASPath
from repro.core import SafetyVerdict, Testbed
from repro.inet.gen import InternetConfig
from repro.net.addr import IPAddress, Prefix
from repro.net.packet import Packet


@pytest.fixture(scope="module")
def world():
    testbed = Testbed.build_default(
        InternetConfig(n_ases=700, total_prefixes=60_000, seed=66)
    )
    victim = testbed.register_client("victim", researcher="alice")
    victim.attach("gatech01")
    victim.announce(victim.prefixes[0])
    mallory = testbed.register_client("mallory", researcher="mallory")
    mallory.attach("gatech01")
    return testbed, victim, mallory


def test_hostile_client_gauntlet(world, benchmark):
    testbed, victim, mallory = world
    server = testbed.server("gatech01")
    now = testbed.engine.now
    allocated = set(testbed.allocated_prefixes("mallory"))
    pool = testbed.pool

    def gauntlet():
        attempts = {
            "hijack external space": server.safety.check_announcement(
                "mallory", Prefix("8.8.8.0/24"), ASPath(),
                allocated=allocated, testbed_space=pool.contains(Prefix("8.8.8.0/24")),
                now=now,
            ),
            "steal another experiment's prefix": server.safety.check_announcement(
                "mallory", victim.prefixes[0], ASPath(),
                allocated=allocated,
                testbed_space=pool.contains(victim.prefixes[0]),
                now=now,
            ),
            "cover the whole /19": server.safety.check_announcement(
                "mallory", Prefix("184.164.224.0/19"), ASPath(),
                allocated=allocated,
                testbed_space=True,
                now=now,
            ),
            "leak a learned route": server.safety.check_announcement(
                "mallory", mallory.prefixes[0], ASPath.from_asns([64512, 3356]),
                allocated=allocated, testbed_space=True, now=now,
            ),
        }
        return attempts

    attempts = benchmark(gauntlet)
    rows = [[scenario, decision.verdict.value] for scenario, decision in attempts.items()]
    emit("safety gauntlet (control plane)", rows)
    assert attempts["hijack external space"].verdict is SafetyVerdict.PREFIX_OUTSIDE_TESTBED
    assert attempts["steal another experiment's prefix"].verdict is SafetyVerdict.PREFIX_NOT_ALLOCATED
    assert attempts["cover the whole /19"].verdict is SafetyVerdict.PREFIX_TOO_COARSE
    assert attempts["leak a learned route"].verdict is SafetyVerdict.ROUTE_LEAK


def test_flap_storm_contained(world, benchmark):
    """A client flapping its own prefix gets damped; the damper state is
    per (client, prefix) so the victim is unaffected."""
    testbed, victim, mallory = world
    prefix = mallory.prefixes[0]

    def storm():
        verdicts = []
        for _ in range(8):
            decisions = mallory.announce(prefix)
            verdicts.append(decisions["gatech01"].verdict)
            mallory.withdraw(prefix)
        return verdicts

    verdicts = benchmark.pedantic(storm, rounds=1, iterations=1)
    damped = sum(1 for v in verdicts if v is SafetyVerdict.DAMPED)
    emit(
        "flap storm",
        [
            ["announce/withdraw cycles", len(verdicts)],
            ["cycles suppressed by damping", damped],
        ],
    )
    assert damped >= 1
    # The victim's announcement is untouched.
    assert victim.prefixes[0] in testbed.announced_prefixes()


def test_spoofing_contained(world, benchmark):
    testbed, victim, mallory = world
    spoofed = Packet(src=IPAddress("8.8.4.4"), dst=IPAddress("203.0.113.1"))
    legit = Packet(
        src=mallory.prefixes[0].first_address() + 1, dst=IPAddress("203.0.113.1")
    )
    server = testbed.server("gatech01")
    blocked_before = server.safety.blocked_count()

    def send_both():
        mallory.send(spoofed)
        mallory.send(legit)

    benchmark.pedantic(send_both, rounds=1, iterations=1)
    blocked = server.safety.blocked_count() - blocked_before
    emit("spoofing control", [["spoofed packets blocked", blocked, "of 1 sent"]])
    assert blocked == 1


def test_stability_toward_peers(world, benchmark):
    """§3: 'From the perspective of each upstream AS, the AS only connects
    to PEERING, which maintains a stable BGP session across experiments.'
    Clients coming and going must not change PEERING's adjacencies."""
    testbed, _victim, _mallory = world
    before = set(testbed.graph.neighbors(testbed.asn))

    def churn():
        transient = testbed.register_client("transient", researcher="t")
        transient.attach("gatech01")
        transient.announce(transient.prefixes[0])
        transient.detach("gatech01")
        testbed.retire_experiment("transient")

    benchmark.pedantic(churn, rounds=1, iterations=1)
    after = set(testbed.graph.neighbors(testbed.asn))
    emit(
        "session stability across experiments",
        [["adjacencies before", len(before)], ["after churn", len(after)]],
    )
    assert before == after
