"""§4.2 "Scalable intradomain emulation" — the Hurricane Electric run.

Reproduces the experiment end to end: 24 Quagga PoPs from Topology Zoo,
iBGP sessions between adjacent PoPs, one prefix originated per PoP, the
Amsterdam PoP coupled to the AMS-IX mux; routes flow both directions.
Also reports the modeled memory footprint ("ran on a commodity desktop
using 8GB RAM").
"""

import pytest
from conftest import emit

from repro.core import Testbed
from repro.emulation import MinineXt, QuaggaMemoryModel, hurricane_electric
from repro.inet.gen import InternetConfig
from repro.net.addr import Prefix

HE_ASN = 64700


def build_emulation(engine=None):
    topology = hurricane_electric()
    emulation = MinineXt.from_zoo(topology, engine=engine)
    for pop in topology.pops:
        emulation.add_quagga(pop.name, asn=HE_ASN)
    emulation.ibgp_adjacent_sessions()
    for i, pop in enumerate(topology.pops):
        emulation.container(pop.name).service.originate(
            Prefix(f"216.218.{i}.0/24")
        )
    emulation.converge(duration=600)
    return topology, emulation


def test_he_backbone_convergence(benchmark):
    topology, emulation = benchmark.pedantic(
        build_emulation, rounds=1, iterations=1
    )
    tables = emulation.total_routes()
    emit(
        "§4.2: HE backbone emulation",
        [
            ["PoPs", len(topology.pops), "(paper: 24)"],
            ["links", emulation.lsdb.link_count()],
            ["routes per PoP", f"{min(tables.values())}..{max(tables.values())}"],
        ],
    )
    assert len(topology.pops) == 24
    assert all(count == 24 for count in tables.values())


def test_he_coupled_to_amsix(benchmark):
    """Routes from AMS-IX propagate through the emulated HE topology and
    PoP prefixes flow out to the Internet."""
    testbed = benchmark.pedantic(
        Testbed.build_default,
        args=(InternetConfig(n_ases=1000, total_prefixes=100_000, seed=4),),
        rounds=1,
        iterations=1,
    )
    topology = hurricane_electric()
    emulation = MinineXt.from_zoo(topology, engine=testbed.engine)
    for pop in topology.pops:
        emulation.add_quagga(pop.name, asn=HE_ASN)
    emulation.ibgp_adjacent_sessions()

    client = testbed.register_client("he", researcher="bench", prefix_count=8)
    gateway = client.attach_bgp("amsterdam01", local_asn=HE_ASN)
    pop_prefixes = {}
    available = iter(
        sub for prefix in client.prefixes for sub in prefix.subnets(27)
    )
    for pop in topology.pops:
        pop_prefix = next(available)
        pop_prefixes[pop.name] = pop_prefix
        emulation.container(pop.name).service.originate(pop_prefix)
        gateway.originate(pop_prefix)
    emulation.converge(duration=600)

    announced = set(testbed.announced_prefixes())
    outward = sum(1 for p in pop_prefixes.values() if p in announced)

    amsterdam = testbed.server("amsterdam01")
    dest = sorted(amsterdam.neighbor_asns)[0]
    inward = amsterdam.relay_destination("he", dest, Prefix("203.0.113.0/24"))
    best = gateway.best_route(Prefix("203.0.113.0/24"))

    # No private-ASN leak on any public path.
    leaked = 0
    for pop_prefix in pop_prefixes.values():
        outcome = testbed.outcome_for(pop_prefix)
        leaked += sum(1 for _asn, route in outcome.items() if HE_ASN in route.path)

    emit(
        "§4.2: HE <-> AMS-IX coupling",
        [
            ["PoP prefixes announced outward", f"{outward}/24"],
            ["peer routes relayed inward", inward],
            ["gateway selected a route", best is not None],
            ["private-ASN leaks on public paths", leaked, "(must be 0)"],
        ],
    )
    assert outward == 24
    assert inward >= 1
    assert best is not None
    assert leaked == 0


def test_he_memory_fits_commodity_desktop(benchmark):
    _topology, emulation = benchmark.pedantic(build_emulation, rounds=1, iterations=1)
    model = QuaggaMemoryModel()
    total = emulation.modeled_memory_bytes(model)
    emit(
        "§4.2: emulation footprint",
        [
            ["modeled memory", f"{total / 2**30:.2f} GB", "(paper: ran in 8 GB)"],
            ["per-PoP baseline", f"{model.baseline / 2**20:.0f} MB"],
        ],
    )
    assert total < 8 * 2**30
