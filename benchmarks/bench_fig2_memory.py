"""Figure 2: BGP table memory usage as #prefixes and #peers increase.

The paper loads one Quagga router with N peers × X routes and plots
resident table memory.  We regenerate both series:

* **measured** — tracemalloc-observed memory of our own router's RIBs
  under exactly that workload (real UPDATE messages through real
  sessions);
* **modeled** — the calibrated Quagga memory model
  (:class:`repro.emulation.quagga.QuaggaMemoryModel`), which extends the
  curve to the Internet-scale 500K point the paper shows.

Shape checks: memory grows ~linearly in prefixes for fixed peers, and
~linearly in peers for fixed prefixes (the per-path term dominates).
"""

import sys

import pytest
from conftest import emit

from repro.bgp.policy import RouteMap
from repro.bgp.router import BGPRouter, PeerConfig, connect_routers
from repro.emulation.quagga import QuaggaMemoryModel
from repro.net.addr import IPAddress, Prefix
from repro.sim import Engine

PEER_COUNTS = [1, 2, 4, 8]
PREFIX_COUNTS = [1_000, 3_000, 9_000]

DENY_ALL = RouteMap(name="deny-all")  # listener never re-exports


def _prefixes(count):
    """Distinct /24s out of 10.0.0.0/8 (room for 64K)."""
    base = IPAddress("10.0.0.0").value
    return [
        Prefix(IPAddress(base + (i << 8)), 24) for i in range(count)
    ]


def load_router(n_peers: int, n_prefixes: int) -> BGPRouter:
    """One listener; ``n_peers`` senders each announce ``n_prefixes``."""
    engine = Engine()
    listener = BGPRouter(engine, asn=65000, router_id=IPAddress("10.255.0.1"))
    prefixes = _prefixes(n_prefixes)
    for i in range(n_peers):
        sender = BGPRouter(
            engine, asn=65001 + i, router_id=IPAddress(f"10.254.0.{i + 1}")
        )
        connect_routers(
            engine,
            listener,
            PeerConfig(
                peer_id=f"peer-{i}",
                remote_asn=sender.asn,
                local_address=listener.router_id,
                export_policy=DENY_ALL,
            ),
            sender,
            PeerConfig(
                peer_id="to-listener",
                remote_asn=listener.asn,
                local_address=sender.router_id,
            ),
        )
        for prefix in prefixes:
            sender.originate(prefix)
    engine.run_for(10)
    return listener


def deep_sizeof(obj, seen=None) -> int:
    """Recursive ``sys.getsizeof`` over the object graph (ids deduped) —
    the resident size of the router's table structures."""
    if seen is None:
        seen = set()
    oid = id(obj)
    if oid in seen:
        return 0
    seen.add(oid)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_sizeof(key, seen) + deep_sizeof(value, seen)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_sizeof(item, seen)
    elif hasattr(obj, "__dict__"):
        size += deep_sizeof(vars(obj), seen)
    elif hasattr(obj, "__slots__"):
        for slot in obj.__slots__:
            if hasattr(obj, slot):
                size += deep_sizeof(getattr(obj, slot), seen)
    return size


def measure_memory(n_peers: int, n_prefixes: int) -> int:
    """Bytes held by the router's RIB structures under the Figure 2
    workload (deep walk of Adj-RIB-Ins + Loc-RIB)."""
    router = load_router(n_peers, n_prefixes)
    assert router.table_size() == n_prefixes
    assert router.adj_in_size() == n_peers * n_prefixes
    seen = set()
    total = deep_sizeof(router.loc_rib, seen)
    for peer_id in router.peers():
        total += deep_sizeof(router.peer(peer_id).adj_in, seen)
        total += deep_sizeof(router.peer(peer_id).adj_out, seen)
    return total


@pytest.mark.parametrize("n_peers", PEER_COUNTS)
def test_fig2_memory_vs_peers(benchmark, n_peers):
    """One Figure 2 series: fixed 3K prefixes, growing peer count."""
    n_prefixes = 3_000
    benchmark.pedantic(load_router, args=(n_peers, n_prefixes), rounds=1, iterations=1)
    measured = measure_memory(n_peers, n_prefixes)
    modeled = QuaggaMemoryModel().table_bytes(n_prefixes, n_peers)
    benchmark.extra_info["measured_mb"] = round(measured / 2**20, 1)
    benchmark.extra_info["modeled_quagga_mb"] = round(modeled / 2**20, 1)


def test_fig2_full_grid(benchmark):
    """The whole figure: memory grid + linearity shape checks."""
    model = QuaggaMemoryModel()
    benchmark.pedantic(load_router, args=(2, 2_000), rounds=1, iterations=1)
    rows = []
    measured_grid = {}
    for n_prefixes in PREFIX_COUNTS:
        for n_peers in PEER_COUNTS:
            measured = measure_memory(n_peers, n_prefixes)
            measured_grid[(n_prefixes, n_peers)] = measured
            rows.append(
                [
                    f"{n_prefixes:6d} prefixes",
                    f"{n_peers} peers",
                    f"measured(ours) {measured / 2**20:7.1f} MB",
                    f"modeled(quagga) {model.table_megabytes(n_prefixes, n_peers):7.1f} MB",
                ]
            )
    # The paper's headline point: an Internet-scale table.
    rows.append(
        [
            "500000 prefixes",
            "1 peers",
            "measured(ours)    (extrapolated)",
            f"modeled(quagga) {model.table_megabytes(500_000, 1):7.1f} MB",
        ]
    )
    emit("Figure 2: BGP table memory", rows)

    # Shape: linear-ish growth in peers at fixed prefixes...
    for n_prefixes in PREFIX_COUNTS:
        series = [measured_grid[(n_prefixes, n)] for n in PEER_COUNTS]
        assert series == sorted(series)
        # 8 peers should cost ~4-12x of 1 peer (linear in the per-path term)
        ratio = series[-1] / series[0]
        assert 2.5 < ratio < 16, f"peers ratio {ratio} not ~linear"
    # ...and in prefixes at fixed peers.
    for n_peers in PEER_COUNTS:
        series = [measured_grid[(n, n_peers)] for n in PREFIX_COUNTS]
        assert series == sorted(series)
        ratio = series[-1] / series[0]
        expected = PREFIX_COUNTS[-1] / PREFIX_COUNTS[0]
        assert expected / 3 < ratio < expected * 3
