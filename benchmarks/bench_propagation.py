"""Benchmark: compiled propagation engine vs the reference propagator.

Standalone script (no pytest-benchmark dependency) so CI can run it as a
smoke step and gate on regressions:

    PYTHONPATH=src python benchmarks/bench_propagation.py \\
        --output BENCH_propagation.json --check

Measures four regimes on a seeded internet:

* **single_shot** — one cold announcement, reference ``propagate()`` vs
  ``PropagationEngine.propagate(use_cache=False)``;
* **cached** — the same announcement served repeatedly from the LRU
  result cache;
* **delta** — a single-announcement steering change (prepend bump)
  recomputed via ``propagate_delta`` against a full reconvergence;
* **sweep** — a 100-point steering sweep (selective announcement +
  prepend + poison variations from one origin), reference serial vs
  engine serial (delta-chained) vs ``propagate_many(parallel=N)``.

``--scale`` switches to the Internet-scale harness: a CAIDA-calibrated
50k-AS topology from ``build_caida_like``, timing graph build, compile +
first convergence, the delta regimes, and a 100-point delta-chained
sweep.  Results go to ``BENCH_propagation_scale.json`` and are gated
against ``BENCH_propagation_scale_baseline.json``.

``--check`` compares measured speedups against the committed baseline
and fails when one degrades by more than 2x — a ratio-of-ratios gate, so
it tolerates slow CI machines but catches real regressions in the
compiled kernel.  The delta gate additionally enforces the hard 10x
floor for single-announcement incremental reconvergence, and the scale
gate bounds the 50k sweep wall-clock relative to its baseline.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.inet.engine import PropagationEngine, default_parallelism
from repro.inet.gen import (
    InternetConfig,
    build_caida_like,
    build_internet,
    degree_stats,
)
from repro.inet.routing import Announcement, OriginSpec, propagate

BASELINE = Path(__file__).with_name("BENCH_propagation_baseline.json")
SCALE_BASELINE = Path(__file__).with_name(
    "BENCH_propagation_scale_baseline.json"
)

# Hard floor for the delta regime: a single-announcement steering change
# must reconverge at least this much faster than a full recompute.
DELTA_FLOOR = 10.0


def build_world(quick: bool):
    if quick:
        config = InternetConfig(n_ases=300, total_prefixes=5000, seed=99)
    else:
        config = InternetConfig(n_ases=1500, total_prefixes=150_000, seed=99)
    inet = build_internet(config)
    return inet.graph


def pick_origin(graph):
    """The best-connected AS — worst case for propagation fan-out."""
    return max(
        sorted(graph.asns()),
        key=lambda a: len(graph.providers(a)) + len(graph.peers(a)),
    )


def steering_sweep(graph, origin, points):
    """Announcement variations a steering experiment would sweep over."""
    rng = random.Random(1)
    neighbors = sorted(graph.neighbors(origin))
    asns = sorted(graph.asns())
    sweep = []
    for _ in range(points):
        announce_to = None
        if neighbors and rng.random() < 0.7:
            announce_to = tuple(
                n for n in neighbors if rng.random() < 0.5
            )
        poison = ()
        if rng.random() < 0.3:
            poison = (rng.choice(asns),)
        spec = OriginSpec(
            asn=origin,
            prepend=rng.randint(0, 3),
            poison=poison,
            announce_to=announce_to,
        )
        sweep.append(Announcement(origins=(spec,)))
    return sweep


def timed(fn, repeat=1):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def delta_regime(engine, origin, repeat=5):
    """Single-announcement steering change: full vs incremental.

    A prepend bump is the canonical steering knob (PEERING §3) and the
    cheapest delta class — same origin/export sets, uniform path-length
    shift — so this measures the engine's best-case incremental
    reconvergence against a cold full converge of the same variant.
    """
    base = Announcement.single(origin)
    variant = Announcement(origins=(OriginSpec(asn=origin, prepend=2),))
    prev = engine.propagate(base, use_cache=False)

    full_s = timed(
        lambda: engine.propagate(variant, use_cache=False), repeat
    )
    delta_s = timed(
        lambda: engine.propagate_delta(prev, variant, use_cache=False),
        repeat,
    )
    return {
        "full_s": round(full_s, 6),
        "delta_s": round(delta_s, 6),
        "speedup": round(full_s / delta_s, 1),
    }


def run_benchmarks(quick: bool, parallel: int):
    graph = build_world(quick)
    origin = pick_origin(graph)
    announcement = Announcement.single(origin)
    engine = PropagationEngine(graph)
    engine.compiled()  # compile outside the timed region

    repeat = 3
    single_ref = timed(lambda: propagate(graph, announcement), repeat)
    single_eng = timed(
        lambda: engine.propagate(announcement, use_cache=False), repeat
    )

    engine.cache.clear()
    engine.propagate(announcement)  # warm the cache

    def cached_run():
        for _ in range(100):
            engine.propagate(announcement)

    cached_100 = timed(cached_run, repeat)

    delta = delta_regime(engine, origin)

    points = 20 if quick else 100
    sweep = steering_sweep(graph, origin, points)

    def ref_sweep():
        for item in sweep:
            propagate(graph, item)

    def eng_sweep():
        engine.propagate_many(sweep, use_cache=False)

    def eng_sweep_parallel():
        engine.propagate_many(sweep, parallel=parallel, use_cache=False)

    sweep_repeat = 1 if quick else 2
    sweep_ref = timed(ref_sweep, sweep_repeat)
    sweep_eng = timed(eng_sweep, sweep_repeat)
    sweep_par = timed(eng_sweep_parallel, sweep_repeat)

    return {
        "config": {
            "quick": quick,
            "n_ases": len(graph),
            "sweep_points": points,
            "origin": origin,
            "parallel_workers": parallel,
        },
        "single_shot": {
            "reference_s": round(single_ref, 6),
            "engine_s": round(single_eng, 6),
            "speedup": round(single_ref / single_eng, 3),
        },
        "cached": {
            "per_hit_us": round(cached_100 / 100 * 1e6, 3),
            "speedup_vs_reference": round(single_ref / (cached_100 / 100), 1),
        },
        "delta": delta,
        "sweep": {
            "reference_s": round(sweep_ref, 6),
            "engine_serial_s": round(sweep_eng, 6),
            "engine_parallel_s": round(sweep_par, 6),
            "serial_speedup": round(sweep_ref / sweep_eng, 3),
            "parallel_speedup": round(sweep_ref / sweep_par, 3),
        },
        "engine_stats": engine.stats(),
    }


def run_scale_benchmarks(n_ases: int):
    """Internet-scale regime: CAIDA-calibrated topology, delta sweeps.

    No reference-propagator comparison here — at 50k ASes the reference
    run would dominate the whole benchmark; the gates are the delta
    speedup (machine-independent ratio) and the sweep wall-clock
    relative to the committed baseline.
    """
    build_start = time.perf_counter()
    world = build_caida_like(n_ases)
    build_s = time.perf_counter() - build_start
    graph = world.graph

    engine = PropagationEngine(graph)
    origin = pick_origin(graph)
    announcement = Announcement.single(origin)

    compile_start = time.perf_counter()
    engine.compiled()
    engine.propagate(announcement, use_cache=False)
    first_converge_s = time.perf_counter() - compile_start

    repeat_converge_s = timed(
        lambda: engine.propagate(announcement, use_cache=False), 3
    )

    delta = delta_regime(engine, origin)

    sweep = steering_sweep(graph, origin, 100)
    sweep_s = timed(lambda: engine.propagate_many(sweep, use_cache=False))
    stats = engine.stats()

    return {
        "config": {
            "scale": True,
            "n_ases": len(graph),
            "sweep_points": len(sweep),
            "origin": origin,
        },
        "topology": {
            "build_s": round(build_s, 3),
            **{k: round(v, 4) for k, v in degree_stats(graph).items()},
        },
        "converge": {
            "compile_and_first_s": round(first_converge_s, 3),
            "repeat_full_s": round(repeat_converge_s, 6),
        },
        "delta": delta,
        "sweep": {
            "total_s": round(sweep_s, 3),
            "per_point_ms": round(sweep_s / len(sweep) * 1e3, 3),
        },
        "engine_stats": stats,
    }


def _gate(label, now, floor, failures):
    status = "ok" if now >= floor else "FAIL"
    print(f"regression gate [{label}]: {now:.2f} (floor {floor:.2f}) {status}")
    if now < floor:
        failures.append(label)


def check_regression(results, quick: bool = False) -> int:
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; skipping regression check")
        return 0
    baseline = json.loads(BASELINE.read_text())
    failures: list = []
    # Quick smoke runs use a 300-AS world but the committed baseline is
    # recorded at full size, where the compiled engine's advantage is
    # larger; give them 4x headroom instead of 2x.
    div = 4 if quick else 2
    _gate(
        "single-shot speedup",
        results["single_shot"]["speedup"],
        baseline["single_shot"]["speedup"] / div,
        failures,
    )
    _gate(
        "sweep serial speedup",
        results["sweep"]["serial_speedup"],
        baseline["sweep"]["serial_speedup"] / div,
        failures,
    )
    if quick:
        # The delta ratio grows with topology size (fixed per-call cost
        # vs O(n) full reconvergence), so a 300-AS smoke run can't be
        # held to a floor derived from the full-size baseline.
        print("regression gate [delta speedup]: skipped in --quick "
              "(gated in full and --scale runs)")
    else:
        base_delta = baseline.get("delta", {}).get("speedup", DELTA_FLOOR)
        _gate(
            "delta speedup",
            results["delta"]["speedup"],
            max(DELTA_FLOOR, base_delta / 2),
            failures,
        )
    if failures:
        print(f"FAIL: regressed vs committed baseline: {', '.join(failures)}")
        return 1
    return 0


def check_scale_regression(results) -> int:
    if not SCALE_BASELINE.exists():
        print(f"no baseline at {SCALE_BASELINE}; skipping regression check")
        return 0
    baseline = json.loads(SCALE_BASELINE.read_text())
    failures: list = []
    base_delta = baseline["delta"]["speedup"]
    _gate(
        "scale delta speedup",
        results["delta"]["speedup"],
        max(DELTA_FLOOR, base_delta / 2),
        failures,
    )
    # Absolute wall-clock bound, but relative to the committed baseline
    # (which itself records a single-digit-second sweep) so slow CI
    # machines get 3x headroom before this trips.
    sweep_budget = baseline["sweep"]["total_s"] * 3
    _gate(
        "scale sweep budget (inverted, s)",
        sweep_budget - results["sweep"]["total_s"],
        0.0,
        failures,
    )
    if failures:
        print(f"FAIL: regressed vs committed baseline: {', '.join(failures)}")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small config for CI smoke runs"
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="Internet-scale regime: 50k-AS CAIDA-like topology",
    )
    parser.add_argument(
        "--n-ases",
        type=int,
        default=50_000,
        help="topology size for --scale (default 50000)",
    )
    parser.add_argument(
        "--output", default=None, help="result JSON path"
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        help="workers for the parallel sweep (default: cpu_count - 1)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on >2x regression vs committed baseline "
        "(single-shot, sweep, and delta gates; 10x delta floor)",
    )
    args = parser.parse_args(argv)

    if args.scale:
        results = run_scale_benchmarks(args.n_ases)
        output = args.output or "BENCH_propagation_scale.json"
    else:
        parallel = args.parallel or default_parallelism()
        results = run_benchmarks(args.quick, parallel)
        output = args.output or "BENCH_propagation.json"
    Path(output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    if args.check:
        if args.scale:
            return check_scale_regression(results)
        return check_regression(results, quick=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
