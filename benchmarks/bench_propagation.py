"""Benchmark: compiled propagation engine vs the reference propagator.

Standalone script (no pytest-benchmark dependency) so CI can run it as a
smoke step and gate on regressions:

    PYTHONPATH=src python benchmarks/bench_propagation.py \\
        --output BENCH_propagation.json --check

Measures four regimes on a seeded internet:

* **single_shot** — one cold announcement, reference ``propagate()`` vs
  ``PropagationEngine.propagate(use_cache=False)``;
* **cached** — the same announcement served repeatedly from the LRU
  result cache;
* **delta** — a single-announcement steering change (prepend bump)
  recomputed via ``propagate_delta`` against a full reconvergence;
* **sweep** — a 100-point steering sweep (a handful of steering configs
  x prepend levels, shuffled — the shape the engine's affinity
  partitioner is built to recover), reference serial vs engine serial
  (delta-chained) vs ``propagate_many(parallel=N)`` worker chains.

``--scale`` switches to the Internet-scale harness: a CAIDA-calibrated
50k-AS topology from ``build_caida_like`` (or an ingested serial
snapshot via ``--topology``), timing graph build, compile + first
convergence, the delta regimes, the **cone** regime (a poison change
whose catchment is ~5% of the topology, the mid-size-cone case the
incremental reconverger targets), and a 100-point sweep serial vs
parallel.  Results go to ``BENCH_propagation_scale.json`` and are gated
against ``BENCH_propagation_scale_baseline.json``.

``--check`` compares measured speedups against the committed baseline
and fails when one degrades by more than 2x — a ratio-of-ratios gate, so
it tolerates slow CI machines but catches real regressions in the
compiled kernel.  The delta gate additionally enforces the hard 10x
floor for single-announcement incremental reconvergence; the scale run
adds a 3x floor for the cone regime, a 2x floor for the parallel sweep
over serial delta chaining (enforced only on machines with >= 4 CPUs —
the fan-out cannot win on a 1-core box), and bounds the 50k sweep
wall-clock relative to its baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

from repro.inet.engine import PropagationEngine, default_parallelism
from repro.inet.gen import (
    InternetConfig,
    build_caida_like,
    build_internet,
    degree_stats,
    load_caida_serial,
)
from repro.inet.routing import Announcement, OriginSpec, propagate

BASELINE = Path(__file__).with_name("BENCH_propagation_baseline.json")
SCALE_BASELINE = Path(__file__).with_name(
    "BENCH_propagation_scale_baseline.json"
)

# Hard floor for the delta regime: a single-announcement steering change
# must reconverge at least this much faster than a full recompute.
DELTA_FLOOR = 10.0
# Hard floor for the cone regime at scale: a mid-size (~5%) catchment
# change must beat a full reconvergence by at least this much.
CONE_FLOOR = 3.0
# Hard floor for the parallel sweep at scale: worker delta chains must
# beat the serial delta chain by at least this much — only meaningful
# with real cores to fan out over.
PARALLEL_FLOOR = 2.0
PARALLEL_GATE_MIN_CPUS = 4


def build_world(quick: bool):
    if quick:
        config = InternetConfig(n_ases=300, total_prefixes=5000, seed=99)
    else:
        config = InternetConfig(n_ases=1500, total_prefixes=150_000, seed=99)
    inet = build_internet(config)
    return inet.graph


def pick_origin(graph):
    """The best-connected AS — worst case for propagation fan-out."""
    return max(
        sorted(graph.asns()),
        key=lambda a: len(graph.providers(a)) + len(graph.peers(a)),
    )


def steering_sweep(graph, origin, points, groups=None):
    """Announcement variations a steering experiment would sweep over:
    a handful of steering *configs* (announce-to + poison choices), each
    swept across prepend levels, then shuffled.  Points sharing a config
    differ only by prepend — the shift regime — so a delta chain pays
    one full converge per config; the shuffle makes sure nothing gets
    that for free from input order (the engine's affinity partitioner
    has to regroup them)."""
    rng = random.Random(1)
    neighbors = sorted(graph.neighbors(origin))
    asns = sorted(graph.asns())
    if groups is None:
        groups = max(1, points // 10)
    configs = []
    for _ in range(groups):
        announce_to = None
        if neighbors and rng.random() < 0.7:
            announce_to = tuple(
                n for n in neighbors if rng.random() < 0.5
            )
        poison = ()
        if rng.random() < 0.3:
            poison = (rng.choice(asns),)
        configs.append((poison, announce_to))
    sweep = []
    for i in range(points):
        poison, announce_to = configs[i % groups]
        spec = OriginSpec(
            asn=origin,
            prepend=(i // groups) % 8,
            poison=poison,
            announce_to=announce_to,
        )
        sweep.append(Announcement(origins=(spec,)))
    rng.shuffle(sweep)
    return sweep


def timed(fn, repeat=1):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def delta_regime(engine, origin, repeat=5):
    """Single-announcement steering change: full vs incremental.

    A prepend bump is the canonical steering knob (PEERING §3) and the
    cheapest delta class — same origin/export sets, uniform path-length
    shift — so this measures the engine's best-case incremental
    reconvergence against a cold full converge of the same variant.
    """
    base = Announcement.single(origin)
    variant = Announcement(origins=(OriginSpec(asn=origin, prepend=2),))
    prev = engine.propagate(base, use_cache=False)

    full_s = timed(
        lambda: engine.propagate(variant, use_cache=False), repeat
    )
    delta_s = timed(
        lambda: engine.propagate_delta(prev, variant, use_cache=False),
        repeat,
    )
    return {
        "full_s": round(full_s, 6),
        "delta_s": round(delta_s, 6),
        "speedup": round(full_s / delta_s, 1),
    }


def cone_regime(engine, graph, target_frac=0.045, repeat=5):
    """Mid-size-cone steering change: full vs incremental reconvergence.

    The announcement anycasts from a stable tier-1 origin and a *dirty*
    transit origin that prepends itself unattractive: the dirty origin's
    customers still prefer its route (customer routes win regardless of
    length), everyone else prefers the tier-1 — so the dirty catchment
    tracks the transit AS's customer cone.  The measured change poisons
    one AS inside that catchment, which reclassifies as the cone regime:
    withdraw + reseed work proportional to the catchment, not to n.
    The transit origin is chosen so the catchment lands near
    ``target_frac`` of the topology (~5% by default, the middle of the
    1-10% band the cone reconverger targets; the default sits just
    under the midpoint because the speedup curve is steep there and the
    gate needs headroom over its 3x floor).
    """
    n = len(graph)
    target = max(2, int(n * target_frac))
    stable = min(graph.tier1_clique())
    # Cheap screen first (direct customer count), then the real cone
    # size for the shortlist only — full rank_by_cone() walks every
    # AS's cone, which at 50k costs more than the bench itself.
    shortlist = sorted(
        (
            a for a in graph.asns()
            if graph.customers(a) and graph.providers(a)
        ),
        key=lambda a: -len(graph.customers(a)),
    )[:200]
    shortlist.sort(key=lambda a: abs(len(graph.customer_cone(a)) - target))

    def catchment_of(cand):
        """One converge; count slots routed toward the dirty spec (1)."""
        ann = Announcement(
            origins=(OriginSpec(asn=stable), OriginSpec(asn=cand, prepend=3))
        )
        out = engine.propagate(ann, use_cache=False)
        return ann, out, sum(
            1 for k, r in zip(out._kind, out._root) if k and r == 1
        )

    # Cone size only bounds the catchment from below: peer-rich
    # candidates attract far more (peer routes beat the provider path
    # to the stable tier-1 regardless of prepend), so measure the real
    # catchment for a few near-target cones and keep the closest.
    dirty = base_ann = base = catchment = None
    for cand in shortlist[:8]:
        ann, out, caught = catchment_of(cand)
        if catchment is None or abs(caught - target) < abs(catchment - target):
            dirty, base_ann, base, catchment = cand, ann, out, caught
    cone = graph.customer_cone(dirty)
    poison_target = max(a for a in cone if a != dirty)
    variant = Announcement(
        origins=(
            OriginSpec(asn=stable),
            OriginSpec(asn=dirty, prepend=3, poison=(poison_target,)),
        )
    )
    cones_before = engine.stats()["delta"]["cone"]
    full_s = timed(
        lambda: engine.propagate(variant, use_cache=False), repeat
    )
    delta_s = timed(
        lambda: engine.propagate_delta(base, variant, use_cache=False),
        repeat,
    )
    cone_runs = engine.stats()["delta"]["cone"] - cones_before
    return {
        "dirty_origin": dirty,
        "cone_size": len(cone),
        "catchment": catchment,
        "catchment_frac": round(catchment / n, 4),
        "cone_runs": cone_runs,
        "full_s": round(full_s, 6),
        "delta_s": round(delta_s, 6),
        "speedup": round(full_s / delta_s, 2),
    }


def run_benchmarks(quick: bool, parallel: int):
    graph = build_world(quick)
    origin = pick_origin(graph)
    announcement = Announcement.single(origin)
    engine = PropagationEngine(graph)
    engine.compiled()  # compile outside the timed region

    repeat = 3
    single_ref = timed(lambda: propagate(graph, announcement), repeat)
    single_eng = timed(
        lambda: engine.propagate(announcement, use_cache=False), repeat
    )

    engine.cache.clear()
    engine.propagate(announcement)  # warm the cache

    def cached_run():
        for _ in range(100):
            engine.propagate(announcement)

    cached_100 = timed(cached_run, repeat)

    delta = delta_regime(engine, origin)

    points = 20 if quick else 100
    sweep = steering_sweep(graph, origin, points)

    def ref_sweep():
        for item in sweep:
            propagate(graph, item)

    def eng_sweep():
        engine.propagate_many(sweep, use_cache=False)

    def eng_sweep_parallel():
        engine.propagate_many(sweep, parallel=parallel, use_cache=False)

    sweep_repeat = 1 if quick else 2
    sweep_ref = timed(ref_sweep, sweep_repeat)
    sweep_eng = timed(eng_sweep, sweep_repeat)
    sweep_par = timed(eng_sweep_parallel, sweep_repeat)

    return {
        "config": {
            "quick": quick,
            "n_ases": len(graph),
            "sweep_points": points,
            "origin": origin,
            "parallel_workers": parallel,
        },
        "single_shot": {
            "reference_s": round(single_ref, 6),
            "engine_s": round(single_eng, 6),
            "speedup": round(single_ref / single_eng, 3),
        },
        "cached": {
            "per_hit_us": round(cached_100 / 100 * 1e6, 3),
            "speedup_vs_reference": round(single_ref / (cached_100 / 100), 1),
        },
        "delta": delta,
        "sweep": {
            "reference_s": round(sweep_ref, 6),
            "engine_serial_s": round(sweep_eng, 6),
            "engine_parallel_s": round(sweep_par, 6),
            "serial_speedup": round(sweep_ref / sweep_eng, 3),
            "parallel_speedup": round(sweep_ref / sweep_par, 3),
        },
        "engine_stats": engine.stats(),
    }


def run_scale_benchmarks(n_ases: int, workers: int, topology: str = None):
    """Internet-scale regime: CAIDA-calibrated topology, delta sweeps.

    No reference-propagator comparison here — at 50k ASes the reference
    run would dominate the whole benchmark; the gates are the delta and
    cone speedups (machine-independent ratios), the parallel-vs-serial
    sweep ratio (on machines with enough cores), and the sweep
    wall-clock relative to the committed baseline.  ``topology`` swaps
    the generator for :func:`load_caida_serial` on a published (or
    fixture) AS-relationship snapshot.
    """
    build_start = time.perf_counter()
    if topology:
        world = load_caida_serial(topology)
    else:
        world = build_caida_like(n_ases)
    build_s = time.perf_counter() - build_start
    graph = world.graph

    engine = PropagationEngine(graph)
    origin = pick_origin(graph)
    announcement = Announcement.single(origin)

    compile_start = time.perf_counter()
    engine.compiled()
    engine.propagate(announcement, use_cache=False)
    first_converge_s = time.perf_counter() - compile_start

    repeat_converge_s = timed(
        lambda: engine.propagate(announcement, use_cache=False), 3
    )

    delta = delta_regime(engine, origin)
    cone = cone_regime(engine, graph)

    sweep = steering_sweep(graph, origin, 100)
    serial_s = timed(lambda: engine.propagate_many(sweep, use_cache=False))
    parallel_s = timed(
        lambda: engine.propagate_many(
            sweep, parallel=workers, use_cache=False
        )
    )
    stats = engine.stats()

    return {
        "config": {
            "scale": True,
            "n_ases": len(graph),
            "sweep_points": len(sweep),
            "origin": origin,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "topology": topology,
        },
        "topology": {
            "build_s": round(build_s, 3),
            "source": topology or "build_caida_like",
            **{k: round(v, 4) for k, v in degree_stats(graph).items()},
        },
        "converge": {
            "compile_and_first_s": round(first_converge_s, 3),
            "repeat_full_s": round(repeat_converge_s, 6),
        },
        "delta": delta,
        "cone": cone,
        "sweep": {
            "total_s": round(serial_s, 3),
            "per_point_ms": round(serial_s / len(sweep) * 1e3, 3),
            "parallel_s": round(parallel_s, 3),
            "parallel_vs_serial": round(serial_s / parallel_s, 3),
        },
        "engine_stats": stats,
    }


def _gate(label, now, floor, failures):
    status = "ok" if now >= floor else "FAIL"
    print(f"regression gate [{label}]: {now:.2f} (floor {floor:.2f}) {status}")
    if now < floor:
        failures.append(label)


def check_regression(results, quick: bool = False) -> int:
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; skipping regression check")
        return 0
    baseline = json.loads(BASELINE.read_text())
    failures: list = []
    # Quick smoke runs use a 300-AS world but the committed baseline is
    # recorded at full size, where the compiled engine's advantage is
    # larger; give them 4x headroom instead of 2x.
    div = 4 if quick else 2
    _gate(
        "single-shot speedup",
        results["single_shot"]["speedup"],
        baseline["single_shot"]["speedup"] / div,
        failures,
    )
    _gate(
        "sweep serial speedup",
        results["sweep"]["serial_speedup"],
        baseline["sweep"]["serial_speedup"] / div,
        failures,
    )
    if quick:
        # The delta ratio grows with topology size (fixed per-call cost
        # vs O(n) full reconvergence), so a 300-AS smoke run can't be
        # held to a floor derived from the full-size baseline.
        print("regression gate [delta speedup]: skipped in --quick "
              "(gated in full and --scale runs)")
    else:
        base_delta = baseline.get("delta", {}).get("speedup", DELTA_FLOOR)
        _gate(
            "delta speedup",
            results["delta"]["speedup"],
            max(DELTA_FLOOR, base_delta / 2),
            failures,
        )
    if failures:
        print(f"FAIL: regressed vs committed baseline: {', '.join(failures)}")
        return 1
    return 0


def check_scale_regression(results) -> int:
    if not SCALE_BASELINE.exists():
        print(f"no baseline at {SCALE_BASELINE}; skipping regression check")
        return 0
    baseline = json.loads(SCALE_BASELINE.read_text())
    failures: list = []
    base_delta = baseline["delta"]["speedup"]
    _gate(
        "scale delta speedup",
        results["delta"]["speedup"],
        max(DELTA_FLOOR, base_delta / 2),
        failures,
    )
    base_cone = baseline.get("cone", {}).get("speedup", CONE_FLOOR)
    _gate(
        "scale cone speedup",
        results["cone"]["speedup"],
        max(CONE_FLOOR, base_cone / 2),
        failures,
    )
    # The parallel fan-out can only beat the serial delta chain with
    # real cores behind it; a 1-core box timeshares the workers and
    # adds pure overhead, so the gate keys off the measuring machine.
    cpus = results["config"].get("cpu_count") or 0
    workers = results["config"].get("workers") or 0
    if cpus >= PARALLEL_GATE_MIN_CPUS and workers >= 2:
        base_par = baseline["sweep"].get("parallel_vs_serial", PARALLEL_FLOOR)
        _gate(
            "scale parallel sweep vs serial",
            results["sweep"]["parallel_vs_serial"],
            max(PARALLEL_FLOOR, base_par / 2),
            failures,
        )
    else:
        print(
            "regression gate [scale parallel sweep vs serial]: skipped "
            f"({cpus} CPUs, {workers} workers; needs >= "
            f"{PARALLEL_GATE_MIN_CPUS} CPUs)"
        )
    # Absolute wall-clock bound, but relative to the committed baseline
    # (which itself records a single-digit-second sweep) so slow CI
    # machines get 3x headroom before this trips.  Only comparable when
    # the topology matches the one the baseline was recorded on.
    same_world = (
        results["config"].get("topology") == baseline["config"].get("topology")
        and results["config"]["n_ases"] == baseline["config"]["n_ases"]
    )
    if same_world:
        sweep_budget = baseline["sweep"]["total_s"] * 3
        _gate(
            "scale sweep budget (inverted, s)",
            sweep_budget - results["sweep"]["total_s"],
            0.0,
            failures,
        )
    else:
        print(
            "regression gate [scale sweep budget]: skipped "
            "(topology differs from baseline)"
        )
    if failures:
        print(f"FAIL: regressed vs committed baseline: {', '.join(failures)}")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small config for CI smoke runs"
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="Internet-scale regime: 50k-AS CAIDA-like topology",
    )
    parser.add_argument(
        "--n-ases",
        type=int,
        default=50_000,
        help="topology size for --scale (default 50000)",
    )
    parser.add_argument(
        "--topology",
        default=None,
        help="CAIDA AS-relationship serial snapshot to ingest for "
        "--scale instead of generating one (.gz/.bz2 ok); e.g. the "
        "checked-in tests/data/caida-as-rel-150.txt fixture",
    )
    parser.add_argument(
        "--output", default=None, help="result JSON path"
    )
    parser.add_argument(
        "--workers",
        "--parallel",
        dest="workers",
        type=int,
        default=None,
        help="workers for the parallel sweep (default: cpu_count - 1)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on >2x regression vs committed baseline "
        "(single-shot, sweep, and delta gates; 10x delta floor)",
    )
    args = parser.parse_args(argv)

    workers = args.workers or default_parallelism()
    if args.scale:
        results = run_scale_benchmarks(
            args.n_ases, workers, topology=args.topology
        )
        output = args.output or "BENCH_propagation_scale.json"
    else:
        results = run_benchmarks(args.quick, workers)
        output = args.output or "BENCH_propagation.json"
    Path(output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    if args.check:
        if args.scale:
            return check_scale_regression(results)
        return check_regression(results, quick=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
