"""Benchmark: compiled propagation engine vs the reference propagator.

Standalone script (no pytest-benchmark dependency) so CI can run it as a
smoke step and gate on regressions:

    PYTHONPATH=src python benchmarks/bench_propagation.py \\
        --output BENCH_propagation.json --check

Measures three regimes on a seeded internet:

* **single_shot** — one cold announcement, reference ``propagate()`` vs
  ``PropagationEngine.propagate(use_cache=False)``;
* **cached** — the same announcement served repeatedly from the LRU
  result cache;
* **sweep** — a 100-point steering sweep (selective announcement +
  prepend + poison variations from one origin), reference serial vs
  engine serial vs ``propagate_many(parallel=N)``.

``--check`` compares the measured single-shot speedup against the
committed baseline (``BENCH_propagation_baseline.json``) and fails when
it degrades by more than 2x — a ratio-of-ratios gate, so it tolerates
slow CI machines but catches real regressions in the compiled kernel.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.inet.engine import PropagationEngine, default_parallelism
from repro.inet.gen import InternetConfig, build_internet
from repro.inet.routing import Announcement, OriginSpec, propagate

BASELINE = Path(__file__).with_name("BENCH_propagation_baseline.json")


def build_world(quick: bool):
    if quick:
        config = InternetConfig(n_ases=300, total_prefixes=5000, seed=99)
    else:
        config = InternetConfig(n_ases=1500, total_prefixes=150_000, seed=99)
    inet = build_internet(config)
    return inet.graph


def pick_origin(graph):
    """The best-connected AS — worst case for propagation fan-out."""
    return max(
        sorted(graph.asns()),
        key=lambda a: len(graph.providers(a)) + len(graph.peers(a)),
    )


def steering_sweep(graph, origin, points):
    """Announcement variations a steering experiment would sweep over."""
    rng = random.Random(1)
    neighbors = sorted(graph.neighbors(origin))
    asns = sorted(graph.asns())
    sweep = []
    for _ in range(points):
        announce_to = None
        if neighbors and rng.random() < 0.7:
            announce_to = tuple(
                n for n in neighbors if rng.random() < 0.5
            )
        poison = ()
        if rng.random() < 0.3:
            poison = (rng.choice(asns),)
        spec = OriginSpec(
            asn=origin,
            prepend=rng.randint(0, 3),
            poison=poison,
            announce_to=announce_to,
        )
        sweep.append(Announcement(origins=(spec,)))
    return sweep


def timed(fn, repeat=1):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmarks(quick: bool, parallel: int):
    graph = build_world(quick)
    origin = pick_origin(graph)
    announcement = Announcement.single(origin)
    engine = PropagationEngine(graph)
    engine.compiled()  # compile outside the timed region

    repeat = 3
    single_ref = timed(lambda: propagate(graph, announcement), repeat)
    single_eng = timed(
        lambda: engine.propagate(announcement, use_cache=False), repeat
    )

    engine.cache.clear()
    engine.propagate(announcement)  # warm the cache

    def cached_run():
        for _ in range(100):
            engine.propagate(announcement)

    cached_100 = timed(cached_run, repeat)

    points = 20 if quick else 100
    sweep = steering_sweep(graph, origin, points)

    def ref_sweep():
        for item in sweep:
            propagate(graph, item)

    def eng_sweep():
        engine.propagate_many(sweep, use_cache=False)

    def eng_sweep_parallel():
        engine.propagate_many(sweep, parallel=parallel, use_cache=False)

    sweep_repeat = 1 if quick else 2
    sweep_ref = timed(ref_sweep, sweep_repeat)
    sweep_eng = timed(eng_sweep, sweep_repeat)
    sweep_par = timed(eng_sweep_parallel, sweep_repeat)

    return {
        "config": {
            "quick": quick,
            "n_ases": len(graph),
            "sweep_points": points,
            "origin": origin,
            "parallel_workers": parallel,
        },
        "single_shot": {
            "reference_s": round(single_ref, 6),
            "engine_s": round(single_eng, 6),
            "speedup": round(single_ref / single_eng, 3),
        },
        "cached": {
            "per_hit_us": round(cached_100 / 100 * 1e6, 3),
            "speedup_vs_reference": round(single_ref / (cached_100 / 100), 1),
        },
        "sweep": {
            "reference_s": round(sweep_ref, 6),
            "engine_serial_s": round(sweep_eng, 6),
            "engine_parallel_s": round(sweep_par, 6),
            "serial_speedup": round(sweep_ref / sweep_eng, 3),
            "parallel_speedup": round(sweep_ref / sweep_par, 3),
        },
        "engine_stats": engine.stats(),
    }


def check_regression(results) -> int:
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; skipping regression check")
        return 0
    baseline = json.loads(BASELINE.read_text())
    base_speedup = baseline["single_shot"]["speedup"]
    now_speedup = results["single_shot"]["speedup"]
    floor = base_speedup / 2
    print(
        f"regression gate: single-shot speedup {now_speedup:.2f}x "
        f"(baseline {base_speedup:.2f}x, floor {floor:.2f}x)"
    )
    if now_speedup < floor:
        print("FAIL: compiled engine regressed >2x vs committed baseline")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small config for CI smoke runs"
    )
    parser.add_argument(
        "--output", default="BENCH_propagation.json", help="result JSON path"
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        help="workers for the parallel sweep (default: cpu_count - 1)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on >2x single-shot regression vs committed baseline",
    )
    args = parser.parse_args(argv)

    parallel = args.parallel or default_parallelism()
    results = run_benchmarks(args.quick, parallel)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    if args.check:
        return check_regression(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
