"""Ablation (§2 example research): route-steering primitives.

The research PEERING enables rests on three control-plane levers, all
exercised here at paper scale with quantified effect sizes:

* **selective announcement** (PoiRoot-style controlled path changes):
  announcing via one site vs another moves where the Internet's paths
  enter;
* **AS-path poisoning** (LIFEGUARD-style failure avoidance): the poisoned
  AS loses the route, and traffic that used to cross it shifts to
  alternates;
* **prepending**: inflating the path at one site sheds catchment to the
  others (anycast engineering).
"""

import pytest
from conftest import emit

from repro.core import AnnouncementSpec, Testbed
from repro.inet.gen import InternetConfig


@pytest.fixture()
def world():
    testbed = Testbed.build_default(
        InternetConfig(n_ases=1500, total_prefixes=150_000, seed=99)
    )
    client = testbed.register_client("steering", researcher="bench")
    client.attach("amsterdam01")
    client.attach("gatech01")
    return testbed, client


def entry_sites(testbed, prefix, sites):
    """How many ASes enter PEERING through each site's neighbors."""
    outcome = testbed.outcome_for(prefix)
    site_peers = {name: testbed.server(name).neighbor_asns for name in sites}
    counts = {name: 0 for name in sites}
    for asn, _route in outcome.items():
        if asn == testbed.asn:
            continue
        chain = outcome.forwarding_chain(asn)
        if len(chain) >= 2 and chain[-1] == testbed.asn:
            entry = chain[-2]
            for name, peers in site_peers.items():
                if entry in peers:
                    counts[name] += 1
                    break
    return counts


def test_selective_announcement_moves_ingress(world, benchmark):
    testbed, client = world
    prefix = client.prefixes[0]

    def run():
        client.announce(prefix, servers=["amsterdam01"])
        only_ams = entry_sites(testbed, prefix, ["amsterdam01", "gatech01"])
        client.withdraw(prefix)
        client.announce(prefix, servers=["gatech01"])
        only_gt = entry_sites(testbed, prefix, ["amsterdam01", "gatech01"])
        client.withdraw(prefix)
        return only_ams, only_gt

    only_ams, only_gt = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "selective announcement",
        [
            ["announce only at amsterdam01", only_ams],
            ["announce only at gatech01", only_gt],
        ],
    )
    assert only_ams["amsterdam01"] > 0 and only_ams["gatech01"] == 0
    assert only_gt["gatech01"] > 0 and only_gt["amsterdam01"] == 0


def test_poisoning_removes_target(world, benchmark):
    testbed, client = world
    prefix = client.prefixes[0]
    client.announce(prefix)
    baseline = testbed.outcome_for(prefix)

    # Pick a transit AS that many inbound paths cross.
    from collections import Counter

    def transit_hops(route):
        """Hops strictly before the announcement's own tail (everything
        from PEERING's first appearance onward is origin/poison
        sentinel, not transit)."""
        path = route.path
        cut = path.index(testbed.asn) if testbed.asn in path else len(path)
        return path[:cut]

    usage = Counter()
    for asn, route in baseline.items():
        for hop in transit_hops(route):
            usage[hop] += 1
    target, uses = usage.most_common(1)[0]

    def run():
        client.withdraw(prefix)
        client.announce(prefix, poison=[target])
        return testbed.outcome_for(prefix)

    poisoned = benchmark.pedantic(run, rounds=1, iterations=1)
    on_paths_after = sum(
        1 for _asn, route in poisoned.items() if target in transit_hops(route)
    )
    lost = len(baseline.reachable_asns()) - len(poisoned.reachable_asns())
    emit(
        "poisoning",
        [
            [f"AS{target} on inbound paths before", uses],
            ["on paths after poisoning", on_paths_after],
            ["ASes that lost the route", lost],
        ],
    )
    # The poisoned AS itself must drop the route...
    assert poisoned.route(target) is None
    # ...and its transit role collapses entirely.
    assert on_paths_after == 0
    client.withdraw(prefix)


def test_prepend_sheds_catchment(world, benchmark):
    testbed, client = world
    prefix = client.prefixes[0]
    client.announce(prefix)
    sites = ["amsterdam01", "gatech01"]
    before = entry_sites(testbed, prefix, sites)
    dominant = max(before, key=before.get)
    server = testbed.server(dominant)

    def run():
        server.announce("steering", prefix, AnnouncementSpec(prepend=4))
        return entry_sites(testbed, prefix, sites)

    after = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "prepending",
        [
            ["before", before],
            [f"after 4x prepend at {dominant}", after],
        ],
    )
    assert after[dominant] < before[dominant]
    other = next(s for s in sites if s != dominant)
    assert after[other] >= before[other]
