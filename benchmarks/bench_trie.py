"""Micro-benchmark: PrefixTrie insert / longest-prefix-match throughput.

Exercises the trie at forwarding-table scale (tens of thousands of
prefixes) to keep the shift/mask descent honest — the trie backs both the
prefix pool allocator and data-plane forwarding, so per-operation cost
multiplies across every delivery probe.
"""

import random

import pytest
from conftest import emit

from repro.net.addr import IPAddress, Prefix
from repro.net.trie import PrefixTrie

N_PREFIXES = 50_000
N_LOOKUPS = 20_000


@pytest.fixture(scope="module")
def table():
    """A routing-table-shaped prefix set: /16../24, deterministic."""
    rng = random.Random(7)
    prefixes = []
    seen = set()
    while len(prefixes) < N_PREFIXES:
        length = rng.randint(16, 24)
        value = rng.getrandbits(32) & (((1 << length) - 1) << (32 - length))
        if (value, length) in seen:
            continue
        seen.add((value, length))
        prefixes.append(Prefix(IPAddress(value, 4), length))
    return prefixes


@pytest.fixture(scope="module")
def targets(table):
    rng = random.Random(11)
    # Half the targets land inside stored prefixes, half are random misses.
    inside = [
        IPAddress(p.address.value | rng.getrandbits(32 - p.length), 4)
        for p in rng.sample(table, N_LOOKUPS // 2)
    ]
    outside = [IPAddress(rng.getrandbits(32), 4) for _ in range(N_LOOKUPS // 2)]
    return inside + outside


def test_trie_insert_throughput(benchmark, table):
    def build():
        trie = PrefixTrie(4)
        for prefix in table:
            trie.insert(prefix, prefix.length)
        return trie

    trie = benchmark(build)
    assert len(trie) == N_PREFIXES
    emit(
        "trie insert",
        [[f"{N_PREFIXES} prefixes", f"{len(trie)} stored"]],
    )


def _linear_lpm(outcomes, dst):
    """The pre-trie DataPlane._match: scan every installed prefix and
    keep the most specific that contains ``dst`` — kept here as the
    reference the trie is benchmarked (and checked) against."""
    best = None
    for prefix, outcome in outcomes.items():
        if prefix.contains(dst):
            if best is None or prefix.length > best[0].length:
                best = (prefix, outcome)
    return best


@pytest.fixture(scope="module")
def dataplane(table):
    """A DataPlane with a forwarding-table's worth of installed prefixes
    (sentinel outcomes; only the LPM index is exercised here)."""
    from repro.inet.dataplane import DataPlane
    from repro.inet.topology import ASGraph

    plane = DataPlane(ASGraph())
    for i, prefix in enumerate(table[:10_000]):
        plane.install(prefix, i)
    return plane


def test_dataplane_lpm_trie(benchmark, dataplane, targets):
    """DataPlane._match is a radix descent: per-packet cost is bounded by
    address width, independent of table size."""
    sample = targets[:1_000]

    def sweep():
        hits = 0
        for addr in sample:
            if dataplane._match(addr) is not None:
                hits += 1
        return hits

    hits = benchmark(sweep)
    # The trie must agree with the linear reference everywhere.
    for addr in sample[::50]:
        assert dataplane._match(addr) == _linear_lpm(dataplane._outcomes, addr)
    emit(
        "dataplane LPM (trie)",
        [[f"{len(dataplane._outcomes)} installed", f"{len(sample)} packets", f"{hits} hits"]],
    )


def test_dataplane_lpm_linear_reference(benchmark, dataplane, targets):
    """The O(table) scan the trie replaced.  Smaller sample (each packet
    walks all 10k installed prefixes); compare the per-packet OPS with
    test_dataplane_lpm_trie in the benchmark table."""
    sample = targets[:50]
    outcomes = dataplane._outcomes

    def sweep():
        hits = 0
        for addr in sample:
            if _linear_lpm(outcomes, addr) is not None:
                hits += 1
        return hits

    hits = benchmark(sweep)
    emit(
        "dataplane LPM (linear scan reference)",
        [[f"{len(outcomes)} installed", f"{len(sample)} packets", f"{hits} hits"]],
    )


def test_trie_lookup_throughput(benchmark, table, targets):
    trie = PrefixTrie(4)
    for prefix in table:
        trie.insert(prefix, prefix.length)

    def sweep():
        hits = 0
        for addr in targets:
            if trie.lookup(addr) is not None:
                hits += 1
        return hits

    hits = benchmark(sweep)
    assert hits >= N_LOOKUPS // 2  # every inside-target must match
    emit(
        "trie longest-prefix match",
        [[f"{N_LOOKUPS} lookups", f"{hits} hits"]],
    )
