"""§4.2 aside (route-table scale context for Figure 2):

"at AMS-IX, only our 5 largest peers give us more than 10K routes, and
307 give us fewer than 100 routes."

Reproduces the per-peer export-size distribution at the AMS-IX mux and
checks its heavy tail: a handful of large exporters, a long tail of tiny
ones.
"""

import pytest
from conftest import emit

from repro.inet.analysis import peer_export_sizes


def test_peer_export_distribution(paper_testbed, benchmark):
    exports = benchmark(
        peer_export_sizes, paper_testbed.graph, paper_testbed.asn
    )
    sizes = [count for _asn, count in exports]
    over_10k = sum(1 for s in sizes if s > 10_000)
    under_100 = sum(1 for s in sizes if s < 100)
    median = sorted(sizes)[len(sizes) // 2]

    emit(
        "§4.2: routes exported per AMS-IX peer",
        [
            ["peers", len(sizes)],
            ["peers exporting >10K routes", over_10k, "(paper: 5)"],
            ["peers exporting <100 routes", under_100, "(paper: 307)"],
            ["median export size", median],
            ["largest five", sizes[:5]],
        ],
    )

    # Shape: a handful of big feeds, most peers tiny.
    assert 1 <= over_10k <= 25
    assert under_100 > len(sizes) * 0.5
    assert median < 100
    # Heavy tail: the top feed dwarfs the median.
    assert sizes[0] > 100 * max(1, median)


def test_export_sizes_sum_close_to_reach(paper_testbed, benchmark):
    """Per-peer sizes overlap (shared cones) so their union (reachable
    prefixes) is far below their sum — the reason adding the Nth peer
    adds little new reach."""
    from repro.inet.analysis import peer_reachability

    reach = benchmark(peer_reachability, paper_testbed.graph, paper_testbed.asn)
    total = sum(reach.per_peer_prefixes.values())
    emit(
        "§4.2 (extension): cone overlap",
        [
            ["sum of per-peer exports", total],
            ["union (reachable)", reach.reachable_prefixes],
            ["overlap factor", f"{total / max(1, reach.reachable_prefixes):.2f}"],
        ],
    )
    assert total > reach.reachable_prefixes
