"""Benchmark: cost of full telemetry (metrics + tracing + route monitoring).

Standalone script in the same mold as ``bench_propagation.py``:

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py \\
        --output BENCH_telemetry.json --check

Runs one identical announce/withdraw workload twice on same-seed
testbeds — once plain (registry only, no collector) and once under
``testbed.observe()`` with every span, BMP message, and counter live —
and reports the relative overhead.  ``--check`` fails when observed
overhead exceeds the gate (default 5%, the ISSUE's ceiling for the
instrumentation being "cheap enough"), taking the committed baseline
(``BENCH_telemetry_baseline.json``) as context in the report.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

from repro.bgp.dampening import DampeningConfig
from repro.core.safety import SafetyConfig
from repro.core.testbed import Testbed
from repro.inet.gen import InternetConfig

BASELINE = Path(__file__).with_name("BENCH_telemetry_baseline.json")
OVERHEAD_GATE_PCT = 5.0


def build_testbed(quick: bool) -> Testbed:
    if quick:
        config = InternetConfig(n_ases=800, total_prefixes=40_000, seed=17)
    else:
        config = InternetConfig(n_ases=800, total_prefixes=60_000, seed=17)
    return Testbed.build_default(config)


class SteeringWorkload:
    """Route-steering churn through the client control path — the route
    every telemetry hook (spans, safety counters, route monitor,
    propagation metrics) sits on.  Each iteration re-announces with a
    changed spec (peers / prepend / poison), the paper's steering use
    case, so every control op drives a full fresh convergence (the spec
    never repeats, so the outcome cache never short-circuits the work).
    """

    def __init__(self, testbed: Testbed) -> None:
        self.testbed = testbed
        self.client = testbed.register_client("bench", "bench-user")
        self.client.attach("gatech01")
        self.prefix = self.client.prefixes[0]
        server = testbed.server("gatech01")
        # Defang rate limiting and flap damping (same on both sides):
        # the workload must exercise the *accepted* path every
        # iteration, not measure how fast denials are.
        relaxed = SafetyConfig(
            max_announcements_per_window=10**9,
            dampening=DampeningConfig(
                suppress_threshold=float(10**9), reuse_threshold=1.0
            ),
        )
        server.safety.config = relaxed
        server.safety.damper.config = relaxed.dampening
        self.peers = sorted(server.neighbor_asns)
        self.poison_pool = [
            asn for asn in sorted(testbed.graph.asns())
            if asn != testbed.asn and asn not in server.neighbor_asns
        ]

    def run(self, start: int, count: int) -> None:
        peers, pool, flush = self.peers, self.poison_pool, self.testbed._flush_dirty
        n = len(pool)
        for i in range(start, start + count):
            # Two poison coordinates (i mod n, i//n mod n) keep the spec
            # sequence aperiodic for n^2 iterations; a single coordinate
            # wraps after ~n announcements, after which the outcome cache
            # short-circuits convergence and the plain/observed ratio
            # measures telemetry against near-zero work.
            self.client.announce(
                self.prefix,
                peers=peers[: 1 + i % len(peers)],
                prepend=i % 3,
                poison=(pool[i % n], pool[(i // n) % n]),
            )
            flush()


def run_benchmarks(quick: bool):
    chunk = 15
    chunks = 100 if quick else 140
    repeats = 2
    # Both testbeds live side by side and execute the identical workload
    # in small (~15-iteration) alternating chunks within one loop: host
    # speed drift — CPU frequency scaling, thermal state — moves far
    # slower than a chunk, so it lands on both sides' accounts equally
    # and cancels in the per-chunk ratio, while the median over all
    # chunks discards the ones an interference burst hit one-sided.
    # CPU time (scheduler interference off the books) with GC paused
    # (collection pauses likewise).
    plain_load = SteeringWorkload(build_testbed(quick))
    observed_testbed = build_testbed(quick)
    observed_testbed.observe()
    observed_load = SteeringWorkload(observed_testbed)
    # Warm up outside the timed region: the first announce compiles the
    # propagation topology, which would otherwise dominate chunk one.
    plain_load.run(0, 2)
    observed_load.run(0, 2)
    gc.collect()
    gc.disable()
    plain_s = 0.0
    observed_s = 0.0
    medians = []
    try:
        position = 2
        for _ in range(repeats):
            ratios = []
            for index in range(chunks):
                first, second = (
                    (plain_load, observed_load)
                    if index % 2 == 0
                    else (observed_load, plain_load)
                )
                begin = time.process_time()
                first.run(position, chunk)
                middle = time.process_time()
                second.run(position, chunk)
                done = time.process_time()
                if first is plain_load:
                    plain_chunk, observed_chunk = middle - begin, done - middle
                else:
                    observed_chunk, plain_chunk = middle - begin, done - middle
                plain_s += plain_chunk
                observed_s += observed_chunk
                ratios.append(observed_chunk / plain_chunk)
                position += chunk
            ratios.sort()
            medians.append(ratios[len(ratios) // 2])
    finally:
        gc.enable()
    iterations = repeats * chunks * chunk
    # Interference only ever *inflates* a pass (correlated drift moves a
    # whole pass's ratios together), so the smallest per-pass median is
    # the cleanest estimate of the true overhead.
    overhead_pct = (min(medians) - 1.0) * 100.0
    # What the observed side actually produced, for the report.
    produced = observed_load.testbed.telemetry.stats()

    return {
        "config": {"quick": quick, "iterations": iterations, "chunk": chunk},
        "plain_s": round(plain_s, 6),
        "observed_s": round(observed_s, 6),
        "overhead_pct": round(overhead_pct, 3),
        "gate_pct": OVERHEAD_GATE_PCT,
        "produced": produced,
    }


def check_overhead(results) -> int:
    overhead = results["overhead_pct"]
    baseline_note = ""
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        baseline_note = f" (committed baseline: {baseline['overhead_pct']:.2f}%)"
    print(
        f"overhead gate: telemetry adds {overhead:.2f}% "
        f"(ceiling {OVERHEAD_GATE_PCT:.1f}%){baseline_note}"
    )
    if overhead > OVERHEAD_GATE_PCT:
        print("FAIL: telemetry instrumentation exceeds the overhead ceiling")
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small config for CI smoke runs"
    )
    parser.add_argument(
        "--output", default="BENCH_telemetry.json", help="result JSON path"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail when overhead exceeds {OVERHEAD_GATE_PCT}%%",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks(args.quick)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    if args.check:
        return check_overhead(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
