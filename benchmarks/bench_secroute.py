"""Benchmark + determinism gate for the route-security subsystem.

Standalone script (no pytest dependency) so CI can run it as the
``security-scenarios`` job:

    PYTHONPATH=src python benchmarks/bench_secroute.py \\
        --output BENCH_secroute.json --check

Runs the three-scenario attack campaign (origin hijack, sub-prefix
hijack, route leak) on both propagation paths and reports:

* the coverage-vs-deployment table per scenario (compiled engine);
* wall-clock per campaign, compiled vs reference;
* the campaign-level leak-containment count.

``--check`` is a *determinism* gate, not a speed gate: the campaign is
fully seeded, so the coverage tables must match the committed baseline
(``BENCH_secroute_baseline.json``) **exactly**, every curve must be
monotone in deployment rate, and compiled and reference engines must
agree.  Any drift means route-security semantics changed and the
baseline needs a deliberate regeneration (rerun without ``--check`` and
commit the output).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.secroute import CampaignConfig, run_campaign

BASELINE = Path(__file__).with_name("BENCH_secroute_baseline.json")


def campaign_config(quick: bool) -> CampaignConfig:
    if quick:
        return CampaignConfig(
            seed=1914, rates=(0.0, 0.5, 1.0), trials=2, n_ases=100, n_tier1=5
        )
    return CampaignConfig(
        seed=1914,
        rates=(0.0, 0.25, 0.5, 0.75, 1.0),
        trials=3,
        n_ases=150,
        n_tier1=5,
    )


def run_benchmarks(quick: bool):
    config = campaign_config(quick)

    start = time.perf_counter()
    compiled = run_campaign(config)
    compiled_s = time.perf_counter() - start

    start = time.perf_counter()
    reference = run_campaign(config, use_reference=True)
    reference_s = time.perf_counter() - start

    print(compiled.table())
    results = {
        "config": {
            "quick": quick,
            "seed": config.seed,
            "rates": list(config.rates),
            "trials": config.trials,
            "n_ases": config.n_ases,
            "n_tier1": config.n_tier1,
        },
        "campaign": compiled.to_dict(),
        "engines_agree": compiled.to_dict()["coverage"]
        == reference.to_dict()["coverage"],
        "monotone": {
            name: scenario.is_monotone()
            for name, scenario in compiled.scenarios.items()
        },
        "timing": {
            "compiled_s": round(compiled_s, 3),
            "reference_s": round(reference_s, 3),
            "speedup": round(reference_s / compiled_s, 3),
        },
    }
    return results


def check_regression(results) -> int:
    failures = []
    if not results["engines_agree"]:
        failures.append("compiled and reference engines disagree")
    for name, monotone in results["monotone"].items():
        if not monotone:
            failures.append(f"{name} coverage curve is not monotone")
    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        if baseline["config"] != results["config"]:
            print("baseline config differs; skipping exact-coverage comparison")
        elif baseline["campaign"]["coverage"] != results["campaign"]["coverage"]:
            failures.append(
                "coverage tables drifted from the committed baseline "
                "(seeded campaign: this means semantics changed)"
            )
    else:
        print(f"no baseline at {BASELINE}; skipping exact-coverage comparison")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("determinism gate: coverage tables match baseline, curves monotone")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small config for CI smoke runs"
    )
    parser.add_argument(
        "--output", default="BENCH_secroute.json", help="result JSON path"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on coverage drift vs committed baseline or broken monotonicity",
    )
    args = parser.parse_args(argv)

    results = run_benchmarks(args.quick)
    Path(args.output).write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    if args.check:
        return check_regression(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
