"""Ablation: BGP convergence and the MRAI timer (wire-level stack).

§1 motivates PEERING with classic interdomain pathologies — "BGP ...
can experience slow convergence [30]" (Labovitz et al.).  This bench
reproduces the underlying phenomenon on our wire-level BGP stack:

* **path hunting**: after a withdrawal, routers explore progressively
  longer alternate paths before giving up, generating a burst of updates;
* **MRAI's trade-off**: batching updates (larger MRAI) suppresses the
  exploration storm (fewer messages) at the cost of longer wall-clock
  convergence — the canonical U-shape the literature reports.

Topology: a ring of transit routers plus an origin, so alternates of many
lengths exist.
"""

import pytest
from conftest import emit

from repro.bgp.router import BGPRouter, PeerConfig, connect_routers
from repro.net.addr import IPAddress, Prefix
from repro.sim import Engine

PREFIX = Prefix("184.164.224.0/24")
RING = 8


def build_ring(mrai: float):
    """``RING`` routers in a cycle; router 0 also speaks to the origin."""
    engine = Engine()
    routers = [
        BGPRouter(engine, asn=65000 + i, router_id=IPAddress(f"10.0.{i}.1"))
        for i in range(RING)
    ]
    origin = BGPRouter(engine, asn=64999, router_id=IPAddress("10.9.9.9"))
    for i in range(RING):
        j = (i + 1) % RING
        connect_routers(
            engine,
            routers[i],
            PeerConfig(f"to-{j}", routers[j].asn, routers[i].router_id, mrai=mrai),
            routers[j],
            PeerConfig(f"to-{i}", routers[i].asn, routers[j].router_id, mrai=mrai),
        )
    connect_routers(
        engine,
        origin,
        PeerConfig("to-r0", routers[0].asn, origin.router_id, mrai=mrai),
        routers[0],
        PeerConfig("to-origin", origin.asn, routers[0].router_id, mrai=mrai),
    )
    origin.originate(PREFIX)
    engine.run_for(3600)
    assert all(r.best_route(PREFIX) is not None for r in routers)
    return engine, origin, routers


def run_withdrawal(mrai: float):
    """Withdraw at the origin; count update messages and convergence time."""
    engine, origin, routers = build_ring(mrai)
    sent_before = sum(
        r.peer(pid).session.updates_sent for r in routers for pid in r.peers()
    )
    start = engine.now
    origin.withdraw_local(PREFIX)
    engine.run_for(3600)
    sent_after = sum(
        r.peer(pid).session.updates_sent for r in routers for pid in r.peers()
    )
    assert all(r.best_route(PREFIX) is None for r in routers)
    # Convergence time: the last processed event's timestamp is an upper
    # bound; measure via the engine clock after the queue drains of
    # routing work (keepalives keep running, so drain with a bounded run).
    return {
        "updates": sent_after - sent_before,
        "time": engine.now - start,
    }


@pytest.mark.parametrize("mrai", [0.0, 5.0, 30.0])
def test_withdrawal_convergence(benchmark, mrai):
    result = benchmark.pedantic(run_withdrawal, args=(mrai,), rounds=1, iterations=1)
    benchmark.extra_info["updates"] = result["updates"]
    emit(
        f"withdrawal convergence, MRAI={mrai:g}s (ring of {RING})",
        [["update messages during path hunting", result["updates"]]],
    )


def test_mrai_suppresses_update_storm(benchmark):
    """The headline shape: larger MRAI, fewer messages."""
    results = benchmark.pedantic(
        lambda: {mrai: run_withdrawal(mrai) for mrai in (0.0, 5.0, 30.0)},
        rounds=1,
        iterations=1,
    )
    rows = [
        [f"MRAI {mrai:4.0f}s", f"{res['updates']:4d} updates"]
        for mrai, res in results.items()
    ]
    emit("MRAI vs path-hunting storm", rows)
    assert results[0.0]["updates"] >= results[5.0]["updates"] >= results[30.0]["updates"]
    # Without MRAI, path hunting multiplies messages well beyond the
    # minimum (RING withdrawals would suffice in a perfect world).
    assert results[0.0]["updates"] > 2 * RING
