"""Integration tests for the Testbed, servers, and clients."""

import pytest

from repro.core import (
    AnnouncementSpec,
    ExperimentError,
    ExperimentStatus,
    MuxMode,
    SafetyVerdict,
    Testbed,
)
from repro.inet.gen import InternetConfig
from repro.net.addr import IPAddress, Prefix
from repro.net.packet import Packet


@pytest.fixture(scope="module")
def testbed():
    return Testbed.build_default(
        InternetConfig(n_ases=600, total_prefixes=50_000, seed=77)
    )


@pytest.fixture()
def fresh_testbed():
    return Testbed.build_default(
        InternetConfig(n_ases=400, total_prefixes=30_000, seed=78)
    )


class TestDeployment:
    def test_nine_servers_three_continents(self, testbed):
        assert len(testbed.servers) == 9
        countries = {server.site.country for server in testbed.servers.values()}
        assert {"US", "NL", "BR", "CN"} <= countries

    def test_amsterdam_is_ixp_site(self, testbed):
        server = testbed.server("amsterdam01")
        assert server.site.ixp == "AMS-IX"
        assert len(server.neighbor_asns) > 100  # route server bootstraps peers

    def test_university_sites_have_upstreams(self, testbed):
        server = testbed.server("gatech01")
        assert len(server.site.upstream_asns) == 2
        assert server.neighbor_asns == set(server.site.upstream_asns)
        for upstream in server.site.upstream_asns:
            assert upstream in testbed.graph.providers(testbed.asn)

    def test_phoenix_deployed(self, testbed):
        assert "Phoenix-IX" in testbed.internet.ixps
        assert testbed.server("phoenix01").neighbor_asns

    def test_duplicate_server_rejected(self, testbed):
        from repro.core import SiteConfig, SiteKind

        with pytest.raises(ValueError):
            testbed.add_server(
                SiteConfig(name="gatech01", kind=SiteKind.UNIVERSITY)
            )


class TestExperimentLifecycle:
    def test_register_allocates_prefix(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        assert len(client.prefixes) == 1
        assert client.prefixes[0].length == 24
        assert fresh_testbed.experiments["exp1"].status is ExperimentStatus.ACTIVE

    def test_duplicate_experiment_rejected(self, fresh_testbed):
        fresh_testbed.register_client("exp1", "alice")
        with pytest.raises(ExperimentError):
            fresh_testbed.register_client("exp1", "alice")

    def test_retire_releases_prefixes(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        prefix = client.prefixes[0]
        client.attach("amsterdam01")
        client.announce(prefix)
        fresh_testbed.retire_experiment("exp1")
        assert prefix not in fresh_testbed.announced_prefixes()
        assert fresh_testbed.pool.owner_of(prefix) is None

    def test_spoofing_waiver_propagates_to_servers(self, fresh_testbed):
        fresh_testbed.register_client(
            "spoofer", "carol", description="reverse traceroute", needs_spoofing=True
        )
        server = fresh_testbed.server("amsterdam01")
        assert "spoofer" in server.safety.config.allow_spoofing_for


class TestAnnouncements:
    def test_announce_reaches_most_of_internet(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        client.attach("amsterdam01")
        client.attach("gatech01")
        results = client.announce(client.prefixes[0])
        assert all(d.allowed for d in results.values())
        outcome = fresh_testbed.outcome_for(client.prefixes[0])
        assert len(outcome.reachable_asns()) > 0.9 * len(fresh_testbed.graph)

    def test_isolation_blocks_cross_experiment_announcement(self, fresh_testbed):
        client1 = fresh_testbed.register_client("exp1", "alice")
        client2 = fresh_testbed.register_client("exp2", "bob")
        client1.attach("amsterdam01")
        client2.attach("amsterdam01")
        client1.announce(client1.prefixes[0])
        # Announcing another experiment's space is audited as a squat
        # (an intra-testbed hijack), not a mere unallocated prefix.
        decision = client2.announce(client1.prefixes[0])["amsterdam01"]
        assert decision.verdict is SafetyVerdict.PREFIX_SQUAT

    def test_selective_peers(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        server = fresh_testbed.server("gatech01")
        client.attach("gatech01")
        upstreams = sorted(server.neighbor_asns)
        client.announce(client.prefixes[0], peers=[upstreams[0]])
        outcome = fresh_testbed.outcome_for(client.prefixes[0])
        # The chosen upstream has a direct (1-hop) route; the other one
        # must not have received the announcement directly.
        assert outcome.route(upstreams[0]).path == (fresh_testbed.asn,)
        other = outcome.route(upstreams[1])
        assert other is None or other.path != (fresh_testbed.asn,)

    def test_unknown_peer_rejected(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        with pytest.raises(ValueError):
            client.announce(client.prefixes[0], peers=[999999])

    def test_withdraw_uninstalls(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        client.announce(client.prefixes[0])
        client.withdraw(client.prefixes[0])
        assert client.prefixes[0] not in fresh_testbed.announced_prefixes()

    def test_poisoning_via_api(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        server = fresh_testbed.server("gatech01")
        client.attach("gatech01")
        victim = sorted(server.neighbor_asns)[0]
        client.announce(client.prefixes[0], poison=[victim])
        outcome = fresh_testbed.outcome_for(client.prefixes[0])
        assert outcome.route(victim) is None

    def test_multi_server_anycast_like(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        client.attach("amsterdam01")
        client.attach("tsinghua01")
        client.announce(client.prefixes[0])
        outcome = fresh_testbed.outcome_for(client.prefixes[0])
        assert len(outcome.reachable_asns()) > 0.9 * len(fresh_testbed.graph)


class TestRoutesToward:
    def test_per_peer_routes_at_ixp(self, testbed):
        client = testbed.register_client("routes-exp", "alice")
        client.attach("amsterdam01")
        # Peers export their customer cones, so pick a destination inside
        # some peer's cone (a destination nobody transits legitimately has
        # zero peer routes).
        server = testbed.server("amsterdam01")
        dest = next(
            member
            for peer in sorted(server.neighbor_asns)
            for member in sorted(testbed.graph.customer_cone(peer))
            if member != peer and member not in server.neighbor_asns
        )
        routes = client.routes_toward(dest)["amsterdam01"]
        # multiple peers export their own (different) paths
        assert len(routes) >= 1
        for peer_asn, route in routes.items():
            assert route.path[0] == peer_asn
            assert route.path[-1] == dest

    def test_mux_does_not_select_best(self, testbed):
        """The mux relays per-peer routes; clients see all of them, not a
        single selected route."""
        server = testbed.server("amsterdam01")
        dest = next(
            node.asn
            for node in testbed.graph.nodes()
            if node.kind.value == "access" and node.asn not in server.neighbor_asns
        )
        routes = server.routes_toward(dest)
        lengths = {len(r.path) for r in routes.values()}
        if len(routes) > 1:
            assert len(lengths) >= 1  # all paths present, not only shortest


class TestDataPlane:
    def test_external_traffic_tunneled_to_client(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        client.attach("amsterdam01")
        client.announce(client.prefixes[0])
        target = client.prefixes[0].first_address() + 7
        source_asn = next(
            node.asn for node in fresh_testbed.graph.nodes() if node.kind.value == "access"
        )
        delivery = fresh_testbed.send_from(
            source_asn, Packet(src=IPAddress("198.18.0.1"), dst=target)
        )
        assert delivery.final_asn == fresh_testbed.asn
        assert len(client.received_packets) == 1

    def test_client_ping(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        client.attach("amsterdam01")
        client.announce(client.prefixes[0])
        dest = next(
            node.asn for node in fresh_testbed.graph.nodes() if node.kind.value == "access"
        )
        # a destination AS needs an installed outcome: announce its space
        from repro.inet.routing import Announcement, propagate

        dst_prefix = Prefix("203.0.113.0/24")
        fresh_testbed.dataplane.install(
            dst_prefix, propagate(fresh_testbed.graph, Announcement.single(dest)), owner=dest
        )
        delivery = client.ping(dst_prefix.first_address() + 1)
        assert delivery.status.value == "delivered"
        assert delivery.path[0] == fresh_testbed.asn

    def test_spoofed_client_traffic_dropped(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        client.attach("amsterdam01")
        client.announce(client.prefixes[0])
        spoofed = Packet(src=IPAddress("8.8.4.4"), dst=IPAddress("203.0.113.1"))
        client.send(spoofed)
        server = fresh_testbed.server("amsterdam01")
        assert server.safety.blocked_count() >= 1


class TestMuxModes:
    def test_quagga_mode_session_per_peer(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        attachment = client.attach("gatech01", mode=MuxMode.QUAGGA)
        server = fresh_testbed.server("gatech01")
        assert server.client_session_count("exp1") == len(server.neighbor_asns)

    def test_bird_mode_single_session(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        client.attach("amsterdam01", mode=MuxMode.BIRD)
        server = fresh_testbed.server("amsterdam01")
        assert server.client_session_count("exp1") == 1

    def test_bgp_client_quagga_mode(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        router = client.attach_bgp("gatech01", local_asn=65000)
        router.originate(client.prefixes[0])
        assert client.prefixes[0] in fresh_testbed.announced_prefixes()
        spec = fresh_testbed.server("gatech01").announcements_for("exp1")[
            client.prefixes[0]
        ]
        assert spec.peers is not None  # per-peer sessions announce per peer

    def test_bgp_client_bird_mode(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        router = client.attach_bgp("amsterdam01", mode=MuxMode.BIRD, local_asn=65000)
        router.originate(client.prefixes[0])
        assert client.prefixes[0] in fresh_testbed.announced_prefixes()

    def test_bgp_hijack_blocked_at_mux(self, fresh_testbed):
        """A client announcing someone else's space over BGP is filtered."""
        fresh_testbed.register_client("victim", "alice")
        attacker = fresh_testbed.register_client("attacker", "mallory")
        router = attacker.attach_bgp("gatech01", local_asn=65001)
        victim_prefix = fresh_testbed.experiments["victim"].prefixes[0]
        router.originate(victim_prefix)
        assert victim_prefix not in fresh_testbed.announced_prefixes()
        server = fresh_testbed.server("gatech01")
        assert server.safety.blocked_count() >= 1

    def test_relay_destination_routes(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        router = client.attach_bgp("gatech01", local_asn=65000)
        dest = next(
            node.asn for node in fresh_testbed.graph.nodes() if node.kind.value == "access"
        )
        server = fresh_testbed.server("gatech01")
        dst_prefix = Prefix("203.0.113.0/24")
        sent = server.relay_destination("exp1", dest, dst_prefix)
        assert sent >= 1
        # Client's router received per-peer routes on separate sessions.
        received = [
            r for r in router.loc_rib.routes() if r.prefix == dst_prefix
        ]
        assert received


class TestDisconnect:
    def test_disconnect_withdraws(self, fresh_testbed):
        client = fresh_testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        client.announce(client.prefixes[0])
        client.detach("gatech01")
        assert client.prefixes[0] not in fresh_testbed.announced_prefixes()


class TestCommunityControl:
    def test_communities_select_peers(self, fresh_testbed):
        """A client can steer announcements with PEERING:peer communities
        over its BGP session, instead of per-peer sessions."""
        from repro.bgp.attributes import Community

        client = fresh_testbed.register_client("exp1", "alice")
        server = fresh_testbed.server("gatech01")
        upstreams = sorted(server.neighbor_asns)
        router = client.attach_bgp("gatech01", local_asn=64512)
        chosen = upstreams[0]
        router.originate(
            client.prefixes[0],
            communities=[Community(fresh_testbed.asn, chosen)],
        )
        spec = server.announcements_for("exp1")[client.prefixes[0]]
        assert spec.peers == (chosen,)
        outcome = fresh_testbed.outcome_for(client.prefixes[0])
        assert outcome.route(chosen).path == (fresh_testbed.asn,)

    def test_communities_ignore_unknown_peers(self, fresh_testbed):
        """Steering communities naming non-neighbors select nothing at
        this server (silently, like unmatched communities in production)."""
        from repro.bgp.attributes import Community

        client = fresh_testbed.register_client("exp1", "alice")
        router = client.attach_bgp("gatech01", local_asn=64512)
        router.originate(
            client.prefixes[0],
            communities=[Community(fresh_testbed.asn, 65535)],
        )
        assert client.prefixes[0] not in fresh_testbed.announced_prefixes()
