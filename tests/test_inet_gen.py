"""The Internet-scale CAIDA-calibrated generator.

Checks structure (clique core, power-law tails, Zipf IXP sizes, valid
relationships), determinism under a fixed seed, and that the output
composes with the propagation engine.  Scaled down to a few thousand
ASes so the suite stays fast; the 50k shape is exercised (and timed) by
``benchmarks/bench_propagation.py --scale``.
"""

import pytest

from repro.inet.engine import PropagationEngine
from repro.inet.gen import (
    CaidaConfig,
    build_caida_like,
    degree_stats,
)
from repro.inet.routing import Announcement
from repro.inet.topology import ASKind


@pytest.fixture(scope="module")
def world():
    return build_caida_like(3000)


class TestCaidaStructure:
    def test_size_and_validity(self, world):
        # build_caida_like runs graph.validate() itself; re-check here so
        # a regression in validate() can't mask one in the generator.
        assert len(world.graph) == 3000
        world.graph.validate()

    def test_tier1_full_mesh_without_providers(self, world):
        cfg = world.caida_config
        tier1 = [
            n.asn for n in world.graph.nodes() if n.kind is ASKind.TIER1
        ]
        assert len(tier1) == cfg.n_tier1
        for a in tier1:
            assert not world.graph.providers(a)
            assert set(tier1) - {a} <= world.graph.peers(a)

    def test_everyone_else_has_a_provider(self, world):
        for node in world.graph.nodes():
            if node.kind is not ASKind.TIER1:
                assert world.graph.providers(node.asn), node.asn

    def test_heavy_tailed_cones_and_degrees(self, world):
        stats = degree_stats(world.graph)
        assert 3.0 <= stats["mean_degree"] <= 9.0
        # Power-law tail: the top 1% of ASes hold a large share of all
        # adjacencies, and some tier-1 cone covers most of the Internet.
        assert stats["top1pct_degree_share"] >= 0.10
        assert stats["max_cone_fraction"] >= 0.30
        assert stats["max_degree"] >= 30

    def test_ixp_sizes_follow_zipf(self, world):
        sizes = sorted(
            (ixp.member_count() for ixp in world.ixps.values()), reverse=True
        )
        assert len(sizes) == world.caida_config.n_ixps
        # A few huge fabrics, a long tail of small ones.
        assert sizes[0] >= 8 * sizes[len(sizes) // 2]
        assert sizes[-1] >= 2

    def test_ixp_membership_recorded_on_nodes(self, world):
        name, ixp = next(iter(world.ixps.items()))
        member = next(iter(ixp.members()))
        assert name in world.graph.get(member).ixps

    def test_tier1s_do_not_join_ixps(self, world):
        tier1 = {
            n.asn for n in world.graph.nodes() if n.kind is ASKind.TIER1
        }
        for ixp in world.ixps.values():
            assert not (ixp.members() & tier1)

    def test_prefix_counts_normalized(self, world):
        total = world.total_prefixes()
        target = world.caida_config.total_prefixes
        assert 0.5 * target <= total <= 2.0 * target

    def test_build_is_one_graph_version(self, world):
        # The whole bulk build happens under ASGraph.batch().
        assert world.graph.version == 1


class TestCaidaDeterminismAndConfig:
    def test_same_seed_same_world(self):
        a = build_caida_like(800)
        b = build_caida_like(800)
        assert a.graph.edge_count() == b.graph.edge_count()
        assert a.graph.rank_by_cone()[:10] == b.graph.rank_by_cone()[:10]
        assert sorted(a.graph.asns()) == sorted(b.graph.asns())

    def test_different_seed_different_world(self):
        a = build_caida_like(800)
        b = build_caida_like(800, CaidaConfig(n_ases=800, seed=7))
        assert a.graph.edge_count() != b.graph.edge_count()

    def test_explicit_config_takes_precedence(self):
        world = build_caida_like(10, CaidaConfig(n_ases=600))
        assert len(world.graph) == 600
        assert world.caida_config.n_ases == 600

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CaidaConfig(n_ases=20)
        with pytest.raises(ValueError):
            CaidaConfig(mean_providers=3.0)

    def test_composes_with_the_engine(self):
        world = build_caida_like(400)
        graph = world.graph
        engine = PropagationEngine(graph)
        origin = max(graph.asns())
        outcome = engine.propagate(Announcement.single(origin))
        # A stub's announcement must reach essentially the whole graph.
        assert len(outcome) >= 0.95 * len(graph)
