"""Delta propagation: incremental convergence must be indistinguishable
from full re-convergence.

The load-bearing guarantee is *route-for-route identity* between
``PropagationEngine.propagate_delta`` chains and the reference
:func:`repro.inet.routing.propagate` across random announcement-change
sequences — withdrawals, prepend/poison/announce-to changes, origin
additions — with and without active :mod:`repro.secroute` policies.
Regimes (noop / shift / cone / fallback) are exercised explicitly, and
the version-bucketed :class:`OutcomeCache` bookkeeping is checked at the
structure level.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro.inet.engine as engine_mod
from repro.inet.engine import OutcomeCache, PropagationEngine
from repro.inet.gen import InternetConfig, build_internet
from repro.inet.routing import (
    Announcement,
    OriginSpec,
    propagate,
    propagate_sequence,
)
from repro.inet.topology import ASGraph, ASNode
from repro.net.addr import Prefix
from repro.secroute import Roa, RoaRegistry, RovMode, SecurityPolicy

V20 = Prefix("198.18.0.0/20")


def graph_from_edges(c2p=(), p2p=()):
    g = ASGraph()
    asns = {a for e in list(c2p) + list(p2p) for a in e}
    for asn in sorted(asns):
        g.add_as(ASNode(asn=asn))
    for customer, provider in c2p:
        g.add_provider(customer, provider)
    for a, b in p2p:
        g.add_peering(a, b)
    return g


def mutate_announcement(announcement, graph, rng):
    """One steering-sweep step: a related announcement differing from the
    previous one the way real experiments differ — tweak one spec's
    prepend/poison/announce-to, add an origin, withdraw one, or repeat
    the announcement verbatim (a no-op re-announce)."""
    asns = sorted(graph.asns())
    origins = list(announcement.origins)
    op = rng.choice(
        ["noop", "prepend", "poison", "announce_to", "add", "drop", "prepend"]
    )
    if op == "prepend" and origins:
        i = rng.randrange(len(origins))
        s = origins[i]
        origins[i] = OriginSpec(
            asn=s.asn,
            prepend=rng.randint(0, 4),
            poison=s.poison,
            announce_to=s.announce_to,
        )
    elif op == "poison" and origins:
        i = rng.randrange(len(origins))
        s = origins[i]
        origins[i] = OriginSpec(
            asn=s.asn,
            prepend=s.prepend,
            poison=tuple(rng.sample(asns, rng.randint(0, 2))),
            announce_to=s.announce_to,
        )
    elif op == "announce_to" and origins:
        i = rng.randrange(len(origins))
        s = origins[i]
        neighbors = sorted(graph.neighbors(s.asn))
        announce_to = None
        if neighbors and rng.random() < 0.7:
            announce_to = tuple(
                rng.sample(neighbors, rng.randint(0, min(4, len(neighbors))))
            )
        origins[i] = OriginSpec(
            asn=s.asn, prepend=s.prepend, poison=s.poison, announce_to=announce_to
        )
    elif op == "add" and len(origins) < 4:
        origins.append(OriginSpec(asn=rng.choice(asns)))
    elif op == "drop" and len(origins) > 1:
        origins.pop(rng.randrange(len(origins)))
    return Announcement(origins=tuple(origins), prefix=announcement.prefix)


def assert_same_routes(reference, outcome):
    assert dict(reference.items()) == dict(outcome.items())


class _wide_cone:
    """Temporarily lift the cone-size bail so delta chains exercise the
    cone machinery even when a change's catchment is large relative to
    these (small) test graphs."""

    def __enter__(self):
        self._saved = engine_mod._CONE_BAIL_DEN
        engine_mod._CONE_BAIL_DEN = 1_000_000
        return self

    def __exit__(self, *exc):
        engine_mod._CONE_BAIL_DEN = self._saved
        return False


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_delta_chain_matches_reference(seed):
    """Seeded random internet x random change sequence: every chained
    delta outcome is route-for-route identical to a fresh full run."""
    rng = random.Random(seed)
    graph = build_internet(InternetConfig(n_ases=80, seed=seed)).graph
    engine = PropagationEngine(graph)
    announcement = Announcement.single(rng.choice(sorted(graph.asns())))
    announcements = [announcement]
    with _wide_cone():
        prev = engine.propagate(announcement, use_cache=False)
        assert_same_routes(propagate(graph, announcement), prev)
        for _ in range(6):
            announcement = mutate_announcement(announcement, graph, rng)
            announcements.append(announcement)
            prev = engine.propagate_delta(prev, announcement, use_cache=False)
            assert_same_routes(propagate(graph, announcement), prev)
    # The end state equals the reference sequence helper's end state.
    references = propagate_sequence(graph, announcements)
    assert_same_routes(references[-1], prev)
    # The chain actually took incremental paths, not just fallbacks.
    modes = engine.stats()["delta"]
    assert sum(modes.values()) == len(announcements) - 1


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_delta_chain_matches_reference_secured(seed):
    """Same identity under active RPKI ROV and Peerlock policies: the
    security fingerprint keys table reuse, and mask reconstruction for
    surviving entries must reproduce the reference filters exactly."""
    rng = random.Random(seed)
    graph = build_internet(InternetConfig(n_ases=70, seed=seed)).graph
    asns = sorted(graph.asns())
    victim = rng.choice(sorted(graph.stub_asns()) or asns)
    policy = SecurityPolicy(roas=RoaRegistry((Roa(V20, victim),)))
    policy.deploy_rov(
        rng.sample(asns, rng.randint(1, len(asns) // 2)),
        rng.choice([RovMode.DROP_INVALID, RovMode.DEPREFER_INVALID]),
    )
    clique = sorted(graph.tier1_clique())
    if clique and rng.random() < 0.7:
        policy.lock_clique(rng.sample(clique, rng.randint(1, len(clique))))
    attacker = rng.choice([a for a in asns if a != victim])
    announcement = Announcement(
        origins=(OriginSpec(asn=victim), OriginSpec(asn=attacker)), prefix=V20
    )
    engine = PropagationEngine(graph)
    with _wide_cone():
        prev = engine.propagate(
            announcement, use_cache=False, security=policy.compile_for(announcement)
        )
        for _ in range(5):
            announcement = mutate_announcement(announcement, graph, rng)
            prev = engine.propagate_delta(
                prev, announcement, use_cache=False, security=policy
            )
            reference = propagate(
                graph, announcement, security=policy.compile_for(announcement)
            )
            assert_same_routes(reference, prev)


class TestDeltaRegimes:
    @pytest.fixture
    def hierarchy(self):
        return graph_from_edges(
            c2p=[(3, 1), (4, 2), (5, 3), (6, 4), (7, 5), (8, 5)],
            p2p=[(1, 2), (3, 4)],
        )

    def test_noop_returns_previous_outcome(self, hierarchy):
        engine = PropagationEngine(hierarchy)
        base = engine.propagate(Announcement.single(7), use_cache=False)
        again = engine.propagate_delta(
            base, Announcement.single(7), use_cache=False
        )
        assert again is base
        assert engine.stats()["delta"]["noop"] == 1

    def test_shift_shares_table_arrays(self, hierarchy):
        """A pure prepend change must not copy any table array: kind,
        via, root, and plen are shared; the plen shift stays pending."""
        engine = PropagationEngine(hierarchy)
        base = engine.propagate(Announcement.single(7), use_cache=False)
        shifted = engine.propagate_delta(
            base, Announcement.single(7, prepend=2), use_cache=False
        )
        assert shifted._kind is base._kind
        assert shifted._via is base._via
        assert shifted._plen is base._plen
        assert shifted._plen_shift == 2
        assert engine.stats()["delta"]["shift"] == 1
        assert_same_routes(
            propagate(hierarchy, Announcement.single(7, prepend=2)), shifted
        )

    def test_shift_materializes_plen_for_later_delta(self, hierarchy):
        """Chaining past a shift outcome must see real plen values: the
        pending shift materializes (without mutating the shared array)
        and the chained outcome still matches a fresh full run."""
        engine = PropagationEngine(hierarchy)
        base = engine.propagate(Announcement.single(7), use_cache=False)
        shifted = engine.propagate_delta(
            base, Announcement.single(7, prepend=3), use_cache=False
        )
        follow = Announcement(
            origins=(OriginSpec(asn=7, prepend=3), OriginSpec(asn=8))
        )
        with _wide_cone():
            chained = engine.propagate_delta(shifted, follow, use_cache=False)
        assert shifted._plen_shift == 0  # materialized exactly once
        assert shifted._plen is not base._plen
        assert base._plen_shift == 0  # the original was never touched
        full = propagate(hierarchy, follow)
        assert_same_routes(full, chained)
        eager = engine.propagate(follow, use_cache=False)
        selected = [
            (k, v, r, p)
            for k, v, r, p in zip(
                chained._kind, chained._via, chained._root,
                chained._table()[3],
            )
            if k
        ]
        eager_sel = [
            (k, v, r, p)
            for k, v, r, p in zip(
                eager._kind, eager._via, eager._root, eager._table()[3]
            )
            if k
        ]
        assert selected == eager_sel

    def test_cone_engages_on_small_catchment(self, hierarchy):
        """Changing one spec of a multi-origin announcement while the
        other survives goes through the cone path (withdraw + boundary
        re-seed), not a full run."""
        engine = PropagationEngine(hierarchy)
        base_ann = Announcement(
            origins=(OriginSpec(asn=7), OriginSpec(asn=8, prepend=1))
        )
        base = engine.propagate(base_ann, use_cache=False)
        new_ann = Announcement(
            origins=(OriginSpec(asn=7), OriginSpec(asn=8, prepend=1, poison=(4,)))
        )
        with _wide_cone():
            out = engine.propagate_delta(base, new_ann, use_cache=False)
        assert engine.stats()["delta"]["cone"] == 1
        assert_same_routes(propagate(hierarchy, new_ann), out)

    def test_withdrawal_via_delta(self, hierarchy):
        """Dropping an origin (withdrawal) through the delta path clears
        exactly its cone."""
        engine = PropagationEngine(hierarchy)
        both = Announcement(origins=(OriginSpec(asn=7), OriginSpec(asn=8)))
        base = engine.propagate(both, use_cache=False)
        only7 = Announcement(origins=(OriginSpec(asn=7),))
        with _wide_cone():
            out = engine.propagate_delta(base, only7, use_cache=False)
        assert_same_routes(propagate(hierarchy, only7), out)

    def test_single_spec_content_change_falls_back(self, hierarchy):
        """A poison change on a single-origin announcement leaves no
        stable spec — the engine must fall back to a full run and still
        be correct."""
        engine = PropagationEngine(hierarchy)
        base = engine.propagate(Announcement.single(7), use_cache=False)
        new_ann = Announcement.single(7, poison=(4,))
        out = engine.propagate_delta(base, new_ann, use_cache=False)
        assert engine.stats()["delta"]["fallback"] == 1
        assert_same_routes(propagate(hierarchy, new_ann), out)

    def test_cone_bails_to_full_when_region_is_large(self, hierarchy):
        """At the default threshold a dirty cone spanning most of this
        8-AS graph is not attempted incrementally."""
        engine = PropagationEngine(hierarchy)
        both = Announcement(origins=(OriginSpec(asn=1), OriginSpec(asn=3)))
        base = engine.propagate(both, use_cache=False)
        moved = Announcement(origins=(OriginSpec(asn=1), OriginSpec(asn=2)))
        out = engine.propagate_delta(base, moved, use_cache=False)
        assert engine.stats()["delta"]["fallback"] == 1
        assert_same_routes(propagate(hierarchy, moved), out)

    def test_stale_prev_outcome_degrades_to_full(self, hierarchy):
        engine = PropagationEngine(hierarchy)
        base = engine.propagate(Announcement.single(7), use_cache=False)
        hierarchy.add_peering(2, 3)  # bump the graph version
        out = engine.propagate_delta(
            base, Announcement.single(7, prepend=1), use_cache=False
        )
        assert engine.stats()["delta"]["full"] == 1
        assert_same_routes(
            propagate(hierarchy, Announcement.single(7, prepend=1)), out
        )

    def test_none_prev_outcome_is_full_run(self, hierarchy):
        engine = PropagationEngine(hierarchy)
        out = engine.propagate_delta(
            None, Announcement.single(7), use_cache=False
        )
        assert engine.stats()["delta"]["full"] == 1
        assert_same_routes(propagate(hierarchy, Announcement.single(7)), out)

    def test_security_fingerprint_gates_reuse(self, hierarchy):
        """An unsecured previous outcome must not seed a secured delta
        (and vice versa): the fingerprints differ, so it runs full."""
        engine = PropagationEngine(hierarchy)
        ann = Announcement.single(7, prefix=V20)
        policy = SecurityPolicy(roas=RoaRegistry((Roa(V20, 5),))).deploy_rov(
            [3], RovMode.DROP_INVALID
        )
        plain = engine.propagate(ann, use_cache=False)
        secured = engine.propagate_delta(
            plain,
            Announcement.single(7, prefix=V20, prepend=1),
            use_cache=False,
            security=policy,
        )
        assert engine.stats()["delta"]["full"] == 1
        reference = propagate(
            hierarchy,
            Announcement.single(7, prefix=V20, prepend=1),
            security=policy.compile_for(ann),
        )
        assert_same_routes(reference, secured)

    def test_delta_results_enter_the_shared_cache(self, hierarchy):
        """propagate_delta uses propagate's exact cache key, so a delta
        result satisfies a later full-propagate lookup."""
        engine = PropagationEngine(hierarchy)
        base = engine.propagate(Announcement.single(7))
        shifted_ann = Announcement.single(7, prepend=2)
        shifted = engine.propagate_delta(base, shifted_ann)
        assert engine.propagate(shifted_ann) is shifted
        assert engine.cache.hits >= 1

    def test_sweep_chains_deltas_serially(self, hierarchy):
        """propagate_many routes consecutive specs through the delta path
        automatically: a prepend sweep is all shifts after the first."""
        engine = PropagationEngine(hierarchy)
        sweep = [Announcement.single(7, prepend=p) for p in range(6)]
        outcomes = engine.propagate_many(sweep, parallel=False)
        modes = engine.stats()["delta"]
        assert modes["shift"] == 5
        for announcement, outcome in zip(sweep, outcomes):
            assert_same_routes(propagate(hierarchy, announcement), outcome)

    def test_delta_saved_slots_reported(self, hierarchy):
        engine = PropagationEngine(hierarchy)
        base = engine.propagate(Announcement.single(7), use_cache=False)
        engine.propagate_delta(
            base, Announcement.single(7, prepend=1), use_cache=False
        )
        stats = engine.stats()
        assert stats["delta_saved_slots"] >= len(hierarchy) - 1


class TestOutcomeCacheVersionBuckets:
    def test_prune_version_drops_only_stale_versions(self):
        cache = OutcomeCache(maxsize=10)
        marker = object()
        cache.put((1, "a"), marker)
        cache.put((1, "b"), marker)
        cache.put((2, "c"), marker)
        cache.prune_version(2)
        assert set(cache._data) == {(2, "c")}
        assert set(cache._by_version) == {2}

    def test_buckets_key_on_first_component_generically(self):
        cache = OutcomeCache(maxsize=10)
        marker = object()
        cache.put((("v", 1), "a"), marker)
        cache.put((("v", 2), "b"), marker)
        cache.prune_version(("v", 2))
        assert set(cache._data) == {(("v", 2), "b")}

    def test_eviction_keeps_buckets_consistent(self):
        cache = OutcomeCache(maxsize=2)
        marker = object()
        cache.put((1, "a"), marker)
        cache.put((2, "b"), marker)
        cache.put((2, "c"), marker)  # evicts (1, "a"), emptying bucket 1
        assert set(cache._data) == {(2, "b"), (2, "c")}
        assert set(cache._by_version) == {2}
        assert cache._by_version[2] == {(2, "b"), (2, "c")}
        assert cache.evictions == 1

    def test_reput_same_key_does_not_duplicate(self):
        cache = OutcomeCache(maxsize=10)
        marker = object()
        cache.put((1, "a"), marker)
        cache.put((1, "a"), marker)
        assert len(cache) == 1
        assert cache._by_version[1] == {(1, "a")}

    def test_clear_resets_buckets(self):
        cache = OutcomeCache(maxsize=10)
        cache.put((1, "a"), object())
        cache.clear()
        assert len(cache) == 0
        assert cache._by_version == {}

    def test_prune_after_eviction_of_last_version_entry(self):
        cache = OutcomeCache(maxsize=1)
        cache.put((1, "a"), object())
        cache.put((2, "b"), object())  # evicts version 1 entirely
        cache.prune_version(2)  # must not KeyError on the gone bucket
        assert set(cache._data) == {(2, "b")}
