"""Cross-cutting property-based tests on core invariants."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bgp.attributes import ASPath, Origin, PathAttributes
from repro.bgp.decision import best_path
from repro.bgp.errors import BGPError
from repro.bgp.messages import MARKER, decode
from repro.bgp.rib import Route
from repro.net.addr import IPAddress, Prefix

PREFIX = Prefix("184.164.224.0/24")


# --- decision process is a deterministic total order -------------------------

route_strategy = st.builds(
    lambda path, lp, med, origin, ebgp, weight, metric, t, peer: Route(
        prefix=PREFIX,
        attributes=PathAttributes(
            origin=Origin(origin),
            as_path=ASPath.from_asns(path),
            next_hop=IPAddress("10.0.0.1"),
            med=med,
            local_pref=lp,
        ),
        peer_asn=path[0] if path else None,
        peer_id=f"peer-{peer}",
        ebgp=ebgp,
        weight=weight,
        igp_metric=metric,
        learned_at=float(t),
    ),
    st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=4),
    st.one_of(st.none(), st.integers(min_value=0, max_value=300)),
    st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
    st.integers(min_value=0, max_value=2),
    st.booleans(),
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=7),
)


def _unique_peers(routes):
    """A RIB never holds two routes with the same (peer, path id); give
    each generated candidate a distinct peer identity."""
    from dataclasses import replace

    return [replace(r, peer_id=f"peer-{i}") for i, r in enumerate(routes)]


@settings(max_examples=200, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(route_strategy, min_size=1, max_size=8))
def test_best_path_is_order_insensitive(routes):
    """The ranking must not depend on input order (no oscillation)."""
    routes = _unique_peers(routes)
    forward = best_path(routes)
    backward = best_path(list(reversed(routes)))
    assert forward == backward


@settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(route_strategy, min_size=2, max_size=8))
def test_best_path_prefix_stability(routes):
    """Removing a losing route never changes the winner (independence of
    irrelevant alternatives for the deterministic ladder)."""
    routes = _unique_peers(routes)
    ranked = best_path(routes)
    winner = ranked[0]
    without_loser = [r for r in routes if r is not ranked[-1]] or [winner]
    assert best_path(without_loser)[0] == winner


# --- codec robustness -----------------------------------------------------------

@settings(max_examples=300)
@given(st.binary(min_size=0, max_size=64))
def test_decode_never_crashes_on_garbage(data):
    """Arbitrary bytes must produce a BGPError, never an unhandled crash."""
    try:
        decode(data)
    except BGPError:
        pass


@settings(max_examples=200)
@given(st.binary(min_size=0, max_size=64), st.integers(min_value=1, max_value=5))
def test_decode_never_crashes_on_corrupted_header(data, kind):
    """A valid marker with garbage body must also fail cleanly."""
    body = MARKER + (19 + len(data)).to_bytes(2, "big") + bytes([kind]) + data
    try:
        decode(body)
    except BGPError:
        pass


@settings(max_examples=100)
@given(st.binary(min_size=19, max_size=96))
def test_decode_with_flipped_bytes(data):
    """Take a real KEEPALIVE/NOTIFICATION frame and flip bytes."""
    from repro.bgp.messages import NotificationMessage

    raw = bytearray(NotificationMessage(6, 2, b"x" * 16).encode())
    for i, b in enumerate(data[: len(raw)]):
        raw[i % len(raw)] ^= b
    try:
        decode(bytes(raw))
    except BGPError:
        pass


# --- prefix trie vs naive dict ---------------------------------------------------

@settings(max_examples=100)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            st.integers(min_value=8, max_value=32),
        ),
        min_size=1,
        max_size=25,
    ),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_trie_covering_matches_bruteforce(entries, probe_value):
    from repro.net.trie import PrefixTrie

    trie = PrefixTrie()
    prefixes = []
    for value, length in entries:
        prefix = Prefix(IPAddress(value, 4), length, strict=False)
        trie[prefix] = str(prefix)
        prefixes.append(prefix)
    probe = Prefix(IPAddress(probe_value, 4), 32)
    covering = [p for p, _ in trie.covering(probe)]
    brute = sorted(
        {p for p in prefixes if p.contains(probe)}, key=lambda p: p.length
    )
    assert covering == brute
