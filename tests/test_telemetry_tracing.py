"""Tests for repro.telemetry.tracing and span trees under the
deterministic scheduler (ISSUE acceptance: one traced announcement yields
a causally-linked tree client -> mux -> safety -> propagation)."""

import pytest

from repro.core.testbed import Testbed
from repro.inet.gen import InternetConfig
from repro.sim.engine import Engine
from repro.telemetry.tracing import Tracer, maybe_span


class TestTracer:
    def test_parent_child_linkage(self):
        tracer = Tracer(clock=lambda: 1.0)
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.parent_id == parent.context.span_id
                assert child.trace_id == parent.trace_id
        assert len(tracer.finished) == 2

    def test_sibling_spans_share_trace(self):
        tracer = Tracer(clock=lambda: 1.0)
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = tracer.find("a")[0], tracer.find("b")[0]
        assert a.trace_id == b.trace_id
        assert a.parent_id == b.parent_id

    def test_new_root_starts_new_trace(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert len(tracer.trace_ids()) == 2

    def test_explicit_parent_context(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("origin") as origin:
            context = tracer.current_context()
        # Deferred work resumes the same trace via a captured context.
        with tracer.span("deferred", parent=context) as deferred:
            assert deferred.trace_id == origin.trace_id
            assert deferred.parent_id == origin.context.span_id

    def test_events_and_attributes(self):
        tracer = Tracer(clock=lambda: 2.5)
        with tracer.span("op", color="red") as span:
            tracer.event("milestone")
            span.set(extra=True)
        assert span.attributes["color"] == "red"
        assert span.attributes["extra"] is True
        assert span.events[0][1] == "milestone"

    def test_maybe_span_none_tracer_is_noop(self):
        with maybe_span(None, "anything") as span:
            assert span is None

    def test_deterministic_under_engine_clock(self):
        """Two identical runs on the sim clock produce identical spans."""

        def run():
            engine = Engine(seed=9)
            tracer = Tracer(clock=lambda: engine.now)

            def traced(d):
                with tracer.span(f"work-{d}"):
                    with tracer.span("inner"):
                        pass

            for delay in (1.0, 2.0, 3.0):
                engine.schedule(delay, lambda d=delay: traced(d))
            engine.run()
            return [
                (s.name, s.trace_id, s.span_id, s.parent_id, s.start)
                for s in tracer.finished
            ]

        assert run() == run()

    def test_span_ordering_is_stable(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        # Same start time: ordering falls back to span id (creation order).
        trace_id = tracer.trace_ids()[0]
        names = [s.name for s in tracer.spans_of(trace_id)]
        assert names == ["a", "b"]


@pytest.fixture()
def observed_testbed():
    testbed = Testbed.build_default(
        InternetConfig(n_ases=300, total_prefixes=20_000, seed=91)
    )
    collector = testbed.observe()
    return testbed, collector


class TestTestbedTracing:
    def test_announcement_span_tree(self, observed_testbed):
        """The acceptance criterion: client op -> mux -> safety check ->
        propagation, causally linked in one trace."""
        testbed, collector = observed_testbed
        client = testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        testbed._flush_dirty()

        tracer = collector.tracer
        roots = tracer.find("client.announce")
        assert len(roots) == 1
        root = roots[0]
        trace = tracer.spans_of(root.trace_id)
        by_name = {span.name: span for span in trace}
        for name in (
            "client.announce",
            "mux.announce",
            "safety.check",
            "testbed.announce",
            "propagation.converge",
        ):
            assert name in by_name, f"missing span {name}"
        # Install is a point event on the convergence span (cheaper than
        # a nested span, same causality).
        converge_events = [e for _, e in by_name["propagation.converge"].events]
        assert "outcome.install" in converge_events
        # Causal chain: each layer is a descendant of the previous.
        assert root.parent_id is None
        assert by_name["mux.announce"].parent_id == root.context.span_id
        mux = by_name["mux.announce"]
        assert by_name["safety.check"].parent_id == mux.context.span_id
        assert by_name["testbed.announce"].parent_id == mux.context.span_id
        assert by_name["mux.announce"].attributes["verdict"] == "allowed"

    def test_deferred_convergence_joins_trace(self, observed_testbed):
        """Propagation deferred past the announce call still links back to
        the announcing trace via the captured dirty-prefix context."""
        testbed, collector = observed_testbed
        client = testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        # Convergence has not run yet; trigger it through the lazy path.
        converge_before = collector.tracer.find("propagation.converge")
        testbed._flush_dirty()
        converge = collector.tracer.find("propagation.converge")
        assert len(converge) > len(converge_before)
        announce_trace = collector.tracer.find("client.announce")[0].trace_id
        assert converge[-1].trace_id == announce_trace

    def test_withdraw_trace(self, observed_testbed):
        testbed, collector = observed_testbed
        client = testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        client.withdraw(prefix)
        testbed._flush_dirty()
        root = collector.tracer.find("client.withdraw")[0]
        trace_names = {
            span.name for span in collector.tracer.spans_of(root.trace_id)
        }
        assert {"client.withdraw", "mux.withdraw", "testbed.retract"} <= trace_names

    def test_tree_rendering(self, observed_testbed):
        testbed, collector = observed_testbed
        client = testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        client.announce(client.prefixes[0])
        testbed._flush_dirty()
        trace_id = collector.tracer.find("client.announce")[0].trace_id
        rendered = collector.tracer.render(trace_id)
        assert "client.announce" in rendered
        assert "  mux.announce" in rendered  # indented child
