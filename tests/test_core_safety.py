"""Safety-enforcement tests: the hijack/leak/flap/spoof gauntlet."""

import pytest

from repro.net.addr import IPAddress, Prefix
from repro.net.packet import Packet
from repro.bgp.attributes import ASPath
from repro.bgp.dampening import DampeningConfig
from repro.core.safety import SafetyConfig, SafetyEnforcer, SafetyVerdict

ALLOCATED = Prefix("184.164.224.0/24")


def check(enforcer, prefix, path=ASPath(), testbed_space=True, now=0.0, client="exp1"):
    return enforcer.check_announcement(
        client,
        prefix,
        path,
        allocated={ALLOCATED},
        testbed_space=testbed_space,
        now=now,
    )


class TestPrefixFilters:
    def test_allocated_prefix_allowed(self):
        enforcer = SafetyEnforcer()
        assert check(enforcer, ALLOCATED).allowed

    def test_more_specific_of_allocation_allowed(self):
        enforcer = SafetyEnforcer()
        assert check(enforcer, Prefix("184.164.224.0/25")).allowed

    def test_hijack_of_external_space_blocked(self):
        enforcer = SafetyEnforcer()
        decision = check(enforcer, Prefix("8.8.8.0/24"), testbed_space=False)
        assert decision.verdict is SafetyVerdict.PREFIX_OUTSIDE_TESTBED

    def test_unallocated_testbed_prefix_blocked(self):
        """Isolation: another experiment's prefix is off-limits."""
        enforcer = SafetyEnforcer()
        decision = check(enforcer, Prefix("184.164.225.0/24"))
        assert decision.verdict is SafetyVerdict.PREFIX_NOT_ALLOCATED

    def test_covering_announcement_blocked(self):
        """Announcing the whole /19 would leak others' space."""
        enforcer = SafetyEnforcer()
        decision = check(enforcer, Prefix("184.164.224.0/20"))
        assert decision.verdict is SafetyVerdict.PREFIX_TOO_COARSE


class TestOriginFilters:
    def test_private_asn_path_allowed_and_stripped(self):
        enforcer = SafetyEnforcer()
        decision = check(enforcer, ALLOCATED, path=ASPath.from_asns([64512, 64513]))
        assert decision.allowed
        assert decision.stripped_path.asns() == ()

    def test_public_origin_is_leak(self):
        enforcer = SafetyEnforcer()
        decision = check(enforcer, ALLOCATED, path=ASPath.from_asns([64512, 3356]))
        assert decision.verdict is SafetyVerdict.ROUTE_LEAK

    def test_public_transit_asn_rejected(self):
        enforcer = SafetyEnforcer()
        decision = check(enforcer, ALLOCATED, path=ASPath.from_asns([3356, 64512]))
        assert decision.verdict is SafetyVerdict.BAD_ORIGIN


class TestRateLimitAndDamping:
    def test_rate_limit(self):
        enforcer = SafetyEnforcer(SafetyConfig(max_announcements_per_window=3))
        verdicts = [
            check(enforcer, ALLOCATED, now=float(i) * 0.1).verdict for i in range(5)
        ]
        assert SafetyVerdict.RATE_LIMITED in verdicts

    def test_rate_limit_window_resets(self):
        enforcer = SafetyEnforcer(
            SafetyConfig(max_announcements_per_window=2, window_seconds=10)
        )
        assert check(enforcer, ALLOCATED, now=0.0).allowed
        assert check(enforcer, ALLOCATED, now=1.0).allowed
        assert not check(enforcer, ALLOCATED, now=2.0).allowed
        assert check(enforcer, ALLOCATED, now=15.0).allowed

    def test_rate_limit_per_client(self):
        enforcer = SafetyEnforcer(SafetyConfig(max_announcements_per_window=1))
        assert check(enforcer, ALLOCATED, client="a").allowed
        assert check(enforcer, ALLOCATED, client="b").allowed

    def test_flap_storm_damped(self):
        enforcer = SafetyEnforcer(
            SafetyConfig(
                max_announcements_per_window=1000,
                dampening=DampeningConfig(half_life=60.0),
            )
        )
        now = 0.0
        verdicts = []
        for _ in range(6):
            verdicts.append(check(enforcer, ALLOCATED, now=now).verdict)
            enforcer.check_withdrawal("exp1", ALLOCATED, now + 0.5)
            now += 1.0
        assert SafetyVerdict.DAMPED in verdicts

    def test_damping_recovers(self):
        enforcer = SafetyEnforcer(
            SafetyConfig(
                max_announcements_per_window=1000,
                dampening=DampeningConfig(half_life=5.0, max_suppress_time=60.0),
            )
        )
        now = 0.0
        for _ in range(6):
            check(enforcer, ALLOCATED, now=now)
            enforcer.check_withdrawal("exp1", ALLOCATED, now + 0.4)
            now += 0.8
        assert check(enforcer, ALLOCATED, now=now + 300.0).allowed


class TestSpoofing:
    def test_legitimate_source_allowed(self):
        enforcer = SafetyEnforcer()
        packet = Packet(src=IPAddress("184.164.224.5"), dst=IPAddress("8.8.8.8"))
        assert enforcer.check_packet("exp1", packet, {ALLOCATED}).allowed

    def test_spoofed_source_blocked(self):
        enforcer = SafetyEnforcer()
        packet = Packet(src=IPAddress("8.8.4.4"), dst=IPAddress("8.8.8.8"))
        decision = enforcer.check_packet("exp1", packet, {ALLOCATED})
        assert decision.verdict is SafetyVerdict.SPOOFED_SOURCE

    def test_waiver_allows_controlled_spoofing(self):
        enforcer = SafetyEnforcer(SafetyConfig(allow_spoofing_for=frozenset({"exp1"})))
        packet = Packet(src=IPAddress("8.8.4.4"), dst=IPAddress("8.8.8.8"))
        assert enforcer.check_packet("exp1", packet, {ALLOCATED}).allowed
        assert not enforcer.check_packet("exp2", packet, {ALLOCATED}).allowed


class TestAudit:
    def test_audit_log_records_decisions(self):
        enforcer = SafetyEnforcer()
        check(enforcer, ALLOCATED)
        check(enforcer, Prefix("8.8.8.0/24"), testbed_space=False)
        assert len(enforcer.audit_log) == 2
        assert enforcer.blocked_count() == 1

    def test_decisions_for_client(self):
        enforcer = SafetyEnforcer()
        check(enforcer, ALLOCATED, client="a")
        check(enforcer, ALLOCATED, client="b")
        assert len(enforcer.decisions_for("a")) == 1
