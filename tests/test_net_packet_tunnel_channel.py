"""Tests for the packet model, tunnels, and channels."""

import pytest

from repro.net.addr import IPAddress
from repro.net.channel import ChannelClosed, ChannelPair, Endpoint
from repro.net.packet import (
    Packet,
    PacketError,
    icmp_echo_reply,
    icmp_ttl_exceeded,
)
from repro.net.tunnel import Tunnel, TunnelEndpoint, TunnelError


def packet(ttl=64):
    return Packet(src=IPAddress("10.0.0.1"), dst=IPAddress("10.0.0.2"), ttl=ttl)


class TestPacket:
    def test_hop_records_and_decrements(self):
        p = packet().hop(100).hop(200)
        assert p.trace == (100, 200)
        assert p.ttl == 62

    def test_negative_ttl_rejected(self):
        with pytest.raises(PacketError):
            Packet(src=IPAddress("10.0.0.1"), dst=IPAddress("10.0.0.2"), ttl=-1)

    def test_decrement_at_zero_rejected(self):
        with pytest.raises(PacketError):
            packet(ttl=0).decrement_ttl()

    def test_expired(self):
        assert packet(ttl=0).expired
        assert not packet(ttl=1).expired

    def test_reply_swaps_addresses(self):
        reply = packet().reply(payload="pong")
        assert reply.src == IPAddress("10.0.0.2")
        assert reply.dst == IPAddress("10.0.0.1")
        assert reply.payload == "pong"

    def test_encapsulation_roundtrip(self):
        inner = packet()
        outer = inner.encapsulate(IPAddress("100.64.0.1"), IPAddress("100.64.0.2"))
        assert outer.proto == "tunnel"
        assert outer.decapsulate() == inner

    def test_decapsulate_plain_packet_rejected(self):
        with pytest.raises(PacketError):
            packet().decapsulate()

    def test_unique_idents(self):
        assert packet().ident != packet().ident

    def test_icmp_helpers(self):
        original = packet().hop(1)
        exceeded = icmp_ttl_exceeded(original, IPAddress("192.0.2.1"))
        assert exceeded.dst == original.src
        assert exceeded.proto == "icmp-ttl-exceeded"
        reply = icmp_echo_reply(original, IPAddress("10.0.0.2"))
        assert reply.dst == original.src
        assert reply.payload["original_ident"] == original.ident

    def test_immutability(self):
        p = packet()
        hopped = p.hop(5)
        assert p.ttl == 64 and p.trace == ()
        assert hopped is not p


class TestTunnel:
    def make(self, **kwargs):
        left = TunnelEndpoint(IPAddress("100.64.0.1"), "server")
        right = TunnelEndpoint(IPAddress("100.64.0.2"), "client")
        tunnel = Tunnel(left, right, **kwargs)
        return tunnel, left, right

    def test_bidirectional_delivery(self):
        tunnel, left, right = self.make()
        got = []
        right.on_packet = got.append
        left.send(packet())
        assert len(got) == 1
        assert got[0] == packet().__class__(**{**got[0].__dict__})  # decapsulated
        got_left = []
        left.on_packet = got_left.append
        right.send(packet())
        assert len(got_left) == 1

    def test_counters(self):
        tunnel, left, right = self.make()
        right.on_packet = lambda p: None
        left.send(packet())
        assert left.tx_packets == 1
        assert right.rx_packets == 1

    def test_down_tunnel_rejects(self):
        tunnel, left, right = self.make()
        tunnel.take_down()
        with pytest.raises(TunnelError):
            left.send(packet())
        tunnel.bring_up()
        right.on_packet = lambda p: None
        left.send(packet())

    def test_rate_limit_and_tick(self):
        tunnel, left, right = self.make(rate_limit=2)
        right.on_packet = lambda p: None
        left.send(packet())
        left.send(packet())
        with pytest.raises(TunnelError):
            left.send(packet())
        assert tunnel.dropped == 1
        tunnel.tick()
        left.send(packet())

    def test_mtu(self):
        tunnel, left, right = self.make(mtu=50)
        right.on_packet = lambda p: None
        left.send(packet())  # small enough
        big = Packet(
            src=IPAddress("10.0.0.1"),
            dst=IPAddress("10.0.0.2"),
            payload=b"x" * 100,
        )
        with pytest.raises(TunnelError):
            left.send(big)

    def test_unattached_endpoint(self):
        lonely = TunnelEndpoint(IPAddress("100.64.0.9"))
        with pytest.raises(TunnelError):
            lonely.send(packet())

    def test_log_keeps_encapsulated_frames(self):
        tunnel, left, right = self.make()
        right.on_packet = lambda p: None
        left.send(packet())
        assert len(tunnel.log) == 1
        assert tunnel.log[0].inner is not None


class TestChannel:
    def test_pair_connected(self):
        pair = ChannelPair("t")
        assert pair.a.connected and pair.b.connected

    def test_send_receive_queue(self):
        pair = ChannelPair("t")
        pair.a.send(b"one")
        pair.a.send(b"two")
        assert pair.b.pending() == 2
        assert pair.b.receive() == b"one"
        assert pair.b.drain() == [b"two"]
        assert pair.b.receive() is None

    def test_push_mode(self):
        pair = ChannelPair("t")
        got = []
        pair.b.on_receive = got.append
        pair.a.send(b"x")
        assert got == [b"x"]

    def test_closed_send_rejected(self):
        pair = ChannelPair("t")
        pair.a.close()
        with pytest.raises(ChannelClosed):
            pair.a.send(b"x")
        with pytest.raises(ChannelClosed):
            pair.b.send(b"x")

    def test_close_notifies_peer(self):
        pair = ChannelPair("t")
        closed = []
        pair.b.on_close = lambda: closed.append(True)
        pair.a.close()
        assert closed == [True]
        pair.a.close()  # idempotent
        assert closed == [True]

    def test_unconnected_endpoint(self):
        lonely = Endpoint("x")
        with pytest.raises(ChannelClosed):
            lonely.send(b"data")

    def test_counters(self):
        pair = ChannelPair("t")
        pair.a.send(b"x")
        assert pair.a.sent_count == 1
        assert pair.b.received_count == 1

    def test_run_to_completion_ordering(self):
        """A message sent from inside a handler is delivered after the
        current handler finishes (no re-entrant delivery)."""
        pair = ChannelPair("t")
        events = []

        def handler_b(data):
            events.append(("b-start", data))
            if data == b"ping":
                pair.b.send(b"pong")
            events.append(("b-end", data))

        def handler_a(data):
            events.append(("a", data))

        pair.b.on_receive = handler_b
        pair.a.on_receive = handler_a
        pair.a.send(b"ping")
        assert events == [
            ("b-start", b"ping"),
            ("b-end", b"ping"),
            ("a", b"pong"),
        ]
