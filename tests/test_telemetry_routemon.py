"""Tests for BMP-style route monitoring, the looking glass, MRT export
round-trips, and EventBus severity filtering."""

import io

import pytest

from repro.bgp.mrt import read_table_dump
from repro.core.alerts import Severity
from repro.core.server import MuxMode
from repro.core.testbed import Testbed
from repro.inet.gen import InternetConfig
from repro.telemetry.routemon import BMPKind


@pytest.fixture()
def observed():
    testbed = Testbed.build_default(
        InternetConfig(n_ases=300, total_prefixes=20_000, seed=92)
    )
    collector = testbed.observe()
    return testbed, collector


class TestRouteMonitoring:
    def test_post_policy_messages_on_announce(self, observed):
        testbed, collector = observed
        client = testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        monitored = collector.monitor.for_prefix(prefix)
        assert monitored
        message = monitored[-1]
        assert message.kind is BMPKind.ROUTE_MONITORING
        assert not message.pre_policy
        assert message.server == "gatech01"
        rib = collector.monitor.rib("gatech01")
        assert prefix in rib

    def test_withdraw_removes_from_monitored_rib(self, observed):
        testbed, collector = observed
        client = testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        client.withdraw(prefix)
        assert prefix not in collector.monitor.rib("gatech01")
        withdraws = [
            m for m in collector.monitor.for_prefix(prefix) if m.withdraw
        ]
        assert withdraws

    def test_pre_policy_wire_view(self, observed):
        """A BGP-attached client's UPDATEs appear as pre-policy route
        monitoring messages, even for announcements safety rejects."""
        testbed, collector = observed
        victim = testbed.register_client("victim", "alice")
        attacker = testbed.register_client("attacker", "mallory")
        router = attacker.attach_bgp("gatech01", local_asn=65001)
        stolen = testbed.experiments["victim"].prefixes[0]
        router.originate(stolen)
        pre = [
            m
            for m in collector.monitor.for_prefix(stolen)
            if m.pre_policy and m.kind is BMPKind.ROUTE_MONITORING
        ]
        assert pre  # the wire saw it...
        assert stolen not in collector.monitor.rib("gatech01")  # ...policy didn't

    def test_peer_up_messages(self, observed):
        testbed, collector = observed
        client = testbed.register_client("exp1", "alice")
        client.attach_bgp("gatech01", local_asn=65000)
        ups = collector.monitor.of_kind(BMPKind.PEER_UP)
        assert ups
        assert all(m.server == "gatech01" for m in ups)

    def test_peer_down_on_detach(self, observed):
        testbed, collector = observed
        client = testbed.register_client("exp1", "alice")
        client.attach_bgp("gatech01", local_asn=65000)
        client.detach("gatech01")
        downs = collector.monitor.of_kind(BMPKind.PEER_DOWN)
        assert downs

    def test_mrt_round_trip(self, observed):
        """RIB snapshots dumped as TABLE_DUMP_V2 decode back route for
        route (the satellite's regression)."""
        testbed, collector = observed
        client = testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        server = testbed.server("gatech01")
        chosen = sorted(server.neighbor_asns)[:1]
        client.announce(client.prefixes[0], peers=chosen, prepend=2)
        client.announce(client.prefixes[1] if len(client.prefixes) > 1
                        else client.prefixes[0])
        out = io.BytesIO()
        records = collector.monitor.dump_mrt("gatech01", out)
        assert records >= 1
        original = collector.monitor.rib_routes("gatech01")
        decoded = read_table_dump(out.getvalue())
        assert len(decoded) == len(original)
        key = lambda r: (str(r.prefix), r.peer_id)
        for orig, back in zip(sorted(original, key=key), sorted(decoded, key=key)):
            assert orig.prefix == back.prefix
            assert orig.peer_asn == back.peer_asn
            assert orig.peer_id == back.peer_id
            assert orig.attributes == back.attributes
            assert orig.learned_at == back.learned_at


class TestLookingGlass:
    def test_routes_match_outcome(self, observed):
        """Acceptance: glass answers match the RoutingOutcome route for
        route."""
        testbed, collector = observed
        client = testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        outcome = testbed.outcome_for(prefix)
        assert outcome is not None
        glass_routes = collector.glass.routes(prefix)
        assert len(glass_routes) == len(outcome)
        for asn, route in outcome.items():
            assert glass_routes[asn] == route
            assert collector.glass.as_path(prefix, asn) == outcome.as_path(asn)

    def test_origins_and_visibility(self, observed):
        testbed, collector = observed
        client = testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        client.attach("amsterdam01", mode=MuxMode.BIRD)
        prefix = client.prefixes[0]
        client.announce(prefix)
        origins = collector.glass.origins(prefix)
        assert set(origins) == {"gatech01", "amsterdam01"}
        assert collector.glass.visibility(prefix) > 0

    def test_unknown_prefix_is_empty(self, observed):
        testbed, collector = observed
        from repro.net.addr import Prefix

        assert collector.glass.routes(Prefix("203.0.113.0/24")) == {}


class TestSeverityFiltering:
    def test_of_severity_orders_and_filters(self):
        from repro.sim.engine import Engine
        from repro.core.alerts import EventBus

        bus = EventBus(Engine(seed=1))
        bus.emit("a", severity="info")
        bus.emit("b", severity="warning")
        bus.emit("c", severity="critical")
        bus.emit("d")  # untagged: never escalated
        assert [e.kind for e in bus.of_severity(Severity.INFO)] == ["a", "b", "c"]
        assert [e.kind for e in bus.of_severity(Severity.WARNING)] == ["b", "c"]
        assert [e.kind for e in bus.of_severity(Severity.CRITICAL)] == ["c"]

    def test_emit_accepts_enum_and_normalizes(self):
        from repro.sim.engine import Engine
        from repro.core.alerts import EventBus

        bus = EventBus(Engine(seed=1))
        event = bus.emit("x", severity=Severity.WARNING)
        assert event.detail_dict()["severity"] == "warning"
        assert event.severity is Severity.WARNING

    def test_invalid_severity_string_is_untagged(self):
        from repro.sim.engine import Engine
        from repro.core.alerts import EventBus

        bus = EventBus(Engine(seed=1))
        event = bus.emit("x", severity="shouting")
        assert event.severity is None
        assert bus.of_severity(Severity.INFO) == []

    def test_collector_counts_events_by_severity(self, observed):
        testbed, collector = observed
        testbed.events.emit("custom-event", severity="critical")
        snapshot = testbed.metrics.snapshot()
        assert (
            snapshot['peering_events_total{kind="custom-event",severity="critical"}']
            == 1.0
        )

    def test_timeline_merges_streams(self, observed):
        testbed, collector = observed
        client = testbed.register_client("exp1", "alice")
        client.attach("gatech01")
        client.announce(client.prefixes[0])
        testbed._flush_dirty()
        timeline = collector.timeline()
        streams = {stream for _, stream, _ in timeline}
        assert {"span", "bmp"} <= streams
        times = [time for time, _, _ in timeline]
        assert times == sorted(times)
