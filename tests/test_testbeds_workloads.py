"""Tests for the Table 1 capability models and the workload generators."""

import pytest

from repro.inet.gen import InternetConfig, build_internet
from repro.inet.topology import ASKind
from repro.testbeds import (
    ALL_TESTBEDS,
    PAPER_TABLE_1,
    Goal,
    Support,
    capability_matrix,
    no_two_combine,
)
from repro.workloads import (
    WebConfig,
    build_web_ecosystem,
    client_population,
    gravity_matrix,
)
from repro.workloads.alexa import Resolver


class TestTable1:
    def test_matrix_matches_paper_exactly(self):
        matrix = capability_matrix()
        for goal, row in PAPER_TABLE_1.items():
            for short, symbol in row.items():
                assert matrix[short][goal].symbol == symbol, (goal, short)

    def test_eight_testbeds(self):
        assert len(ALL_TESTBEDS) == 8
        assert {m.short for m in ALL_TESTBEDS} == {
            "PL", "VN", "EM", "MN", "RC", "BC", "TP", "PR",
        }

    def test_peering_meets_all_goals(self):
        matrix = capability_matrix()
        assert all(s is Support.YES for s in matrix["PR"].values())

    def test_no_other_testbed_meets_all(self):
        matrix = capability_matrix()
        for model in ALL_TESTBEDS:
            if model.short == "PR":
                continue
            assert any(s is not Support.YES for s in matrix[model.short].values())

    def test_no_two_combine(self):
        """The caption's claim: no two other systems combined provide the
        goal set PEERING achieves."""
        assert no_two_combine()

    def test_symbols(self):
        assert Support.YES.symbol == "✓"
        assert Support.LIMITED.symbol == "≈"
        assert Support.NO.symbol == "✗"


@pytest.fixture(scope="module")
def internet():
    return build_internet(InternetConfig(n_ases=600, total_prefixes=40_000, seed=55))


class TestWebEcosystem:
    def test_shape_matches_paper_scale(self, internet):
        web = build_web_ecosystem(internet.graph, WebConfig(site_count=500))
        assert len(web.sites) == 500
        resources = sum(len(s.resources) for s in web.sites)
        assert 30_000 < resources < 80_000  # paper: 49,776
        assert 500 < len(web.distinct_fqdns()) <= 4200  # paper: 4,182
        assert len(web.distinct_ips()) < resources  # heavy sharing

    def test_content_concentration(self, internet):
        """Most resource fetches land on CDN/content ASes."""
        web = build_web_ecosystem(internet.graph, WebConfig(site_count=200))
        content = {
            n.asn for n in internet.graph.nodes() if n.kind is ASKind.CONTENT
        }
        on_cdn = sum(
            1 for s in web.sites for r in s.resources if r.asn in content
        )
        total = sum(len(s.resources) for s in web.sites)
        assert on_cdn / total > 0.45

    def test_coverage_prefers_content_peers(self, internet):
        """Peering with content ASes covers far more resource *fetches*
        than peering with the same number of ordinary edge ASes (the
        YouTube/Netflix concentration argument from §3)."""
        web = build_web_ecosystem(internet.graph, WebConfig(site_count=200))
        content = {n.asn for n in internet.graph.nodes() if n.kind is ASKind.CONTENT}
        edge = [
            n.asn
            for n in internet.graph.nodes()
            if n.kind is ASKind.ACCESS and not n.name.startswith("EYEBALL-")
        ]

        def fetches_covered(asns):
            return sum(
                1
                for site in web.sites
                for resource in site.resources
                if resource.asn in asns
            )

        assert fetches_covered(content) > 2 * fetches_covered(set(edge[: len(content)]))

    def test_coverage_counts_consistent(self, internet):
        web = build_web_ecosystem(internet.graph, WebConfig(site_count=100))
        all_asns = set(internet.graph.asns())
        coverage = web.coverage(all_asns)
        assert coverage["ips_covered"] == coverage["ips"]
        assert coverage["sites_covered"] == coverage["sites"]
        empty = web.coverage(set())
        assert empty["ips_covered"] == 0 and empty["sites_covered"] == 0

    def test_deterministic(self, internet):
        a = build_web_ecosystem(internet.graph, WebConfig(site_count=50, seed=1))
        b = build_web_ecosystem(internet.graph, WebConfig(site_count=50, seed=1))
        assert [s.ip for s in a.sites] == [s.ip for s in b.sites]

    def test_resolver_stable_and_invertible(self):
        resolver = Resolver()
        ip1 = resolver.resolve("a.example", 1234)
        assert resolver.resolve("a.example", 1234) == ip1
        assert resolver.asn_of(ip1) == 1234

    def test_resolver_packs_fqdns_per_ip(self):
        resolver = Resolver()
        ips = {
            resolver.resolve(f"x{i}.example", 99, names_per_ip=4) for i in range(8)
        }
        assert len(ips) == 2  # 4 FQDNs per frontend IP

    def test_resolver_default_one_name_per_ip(self):
        resolver = Resolver()
        ips = {resolver.resolve(f"y{i}.example", 98) for i in range(5)}
        assert len(ips) == 5


class TestTrafficWorkloads:
    def test_client_population_weighted_and_unique(self, internet):
        clients = client_population(internet.graph, 50, seed=3)
        assert len(clients) == len(set(clients)) == 50
        kinds = {internet.graph.get(a).kind for a in clients}
        assert kinds <= {ASKind.ACCESS, ASKind.ENTERPRISE}

    def test_gravity_matrix(self, internet):
        asns = [n.asn for n in internet.graph.nodes()][:6]
        matrix = gravity_matrix(internet.graph, asns[:3], asns[3:], total_flows=100)
        assert all(flows >= 1 for flows in matrix.values())
        assert all(s != d for s, d in matrix)

    def test_probe_train(self, internet):
        from repro.net.addr import IPAddress
        from repro.workloads import ProbeTrain

        train = ProbeTrain(
            src=IPAddress("10.0.0.1"),
            targets=[IPAddress("10.0.0.2"), IPAddress("10.0.0.3")],
        )
        packets = list(train.packets())
        assert len(packets) == 2
        assert packets[0].dst == IPAddress("10.0.0.2")
