"""Tests for connectivity analysis and the AS-level data plane."""

import pytest

from repro.net.addr import IPAddress, Prefix
from repro.net.packet import Packet
from repro.inet.analysis import (
    country_coverage,
    peer_export_sizes,
    peer_reachability,
    top_cone_overlap,
)
from repro.inet.dataplane import DataPlane, DeliveryStatus
from repro.inet.routing import Announcement, OriginSpec, propagate
from repro.inet.topology import ASGraph, ASNode


def build_world():
    g = ASGraph()
    for asn, country, prefixes in [
        (1, "US", 10),
        (3, "NL", 100),
        (4, "DE", 50),
        (5, "FR", 30),
        (6, "GB", 20),
        (7, "JP", 400),
        (47065, "NL", 1),
    ]:
        g.add_as(ASNode(asn=asn, country=country, prefix_count=prefixes))
    g.add_provider(3, 1)
    g.add_provider(4, 1)
    g.add_provider(5, 3)
    g.add_provider(6, 4)
    g.add_provider(7, 1)
    g.add_peering(47065, 3)
    g.add_peering(47065, 4)
    return g


class TestPeerReachability:
    def test_reachable_is_union_of_cones(self):
        g = build_world()
        reach = peer_reachability(g, 47065)
        assert reach.reachable_asns == {3, 4, 5, 6}
        assert reach.reachable_prefixes == 100 + 50 + 30 + 20
        assert reach.total_prefixes == 611

    def test_fraction(self):
        g = build_world()
        reach = peer_reachability(g, 47065)
        assert reach.prefix_fraction == pytest.approx(200 / 611)

    def test_per_peer_sizes(self):
        g = build_world()
        sizes = dict(peer_export_sizes(g, 47065))
        assert sizes == {3: 130, 4: 70}

    def test_export_sorted_descending(self):
        g = build_world()
        exports = peer_export_sizes(g, 47065)
        assert exports[0][0] == 3

    def test_no_peers(self):
        g = build_world()
        reach = peer_reachability(g, 7)
        assert reach.peer_count == 0 and reach.reachable_prefixes == 0


class TestCoverageHelpers:
    def test_country_coverage(self):
        g = build_world()
        assert country_coverage(g, {3, 4, 5}) == {"NL", "DE", "FR"}

    def test_top_cone_overlap(self):
        g = build_world()
        overlap = top_cone_overlap(g, {3, 4}, cutoffs=(2, 4))
        # ranking: 1 (cone 6... includes 3,4,5,6,7), then 3 (cone {3,5}),
        # then 4 (cone {4,6}) -- ties by asn
        assert overlap[2] == 1  # only 3 in top 2
        assert overlap[4] == 2


def two_origin_world():
    g = ASGraph()
    for asn in (1, 3, 4, 5, 66, 9):
        g.add_as(ASNode(asn=asn))
    g.add_provider(3, 1)
    g.add_provider(4, 1)
    g.add_provider(5, 3)  # victim
    g.add_provider(66, 4)  # hijacker
    g.add_provider(9, 4)  # bystander near hijacker
    return g


class TestDataPlane:
    def test_delivery_follows_control_plane(self):
        g = two_origin_world()
        outcome = propagate(g, Announcement.single(5))
        plane = DataPlane(g)
        prefix = Prefix("184.164.224.0/24")
        plane.install(prefix, outcome, owner=5)
        delivery = plane.send(
            9, Packet(src=IPAddress("9.9.9.9"), dst=IPAddress("184.164.224.1"))
        )
        assert delivery.status is DeliveryStatus.DELIVERED
        assert delivery.path == (9, 4, 1, 3, 5)
        assert delivery.final_asn == 5

    def test_blackhole_when_no_route(self):
        g = two_origin_world()
        outcome = propagate(g, Announcement.single(5, announce_to=()))
        plane = DataPlane(g)
        prefix = Prefix("184.164.224.0/24")
        plane.install(prefix, outcome, owner=5)
        delivery = plane.send(
            9, Packet(src=IPAddress("9.9.9.9"), dst=IPAddress("184.164.224.1"))
        )
        assert delivery.status is DeliveryStatus.BLACKHOLE

    def test_no_matching_prefix(self):
        g = two_origin_world()
        plane = DataPlane(g)
        delivery = plane.send(9, Packet(src=IPAddress("9.9.9.9"), dst=IPAddress("10.0.0.1")))
        assert delivery.status is DeliveryStatus.BLACKHOLE

    def test_hijack_interception_detected(self):
        g = two_origin_world()
        contested = propagate(
            g, Announcement(origins=(OriginSpec(asn=5), OriginSpec(asn=66)))
        )
        plane = DataPlane(g)
        prefix = Prefix("184.164.224.0/24")
        plane.install(prefix, contested, owner=5)
        delivery = plane.send(
            9, Packet(src=IPAddress("9.9.9.9"), dst=IPAddress("184.164.224.1"))
        )
        assert delivery.status is DeliveryStatus.INTERCEPTED
        assert delivery.final_asn == 66

    def test_more_specific_attracts_traffic(self):
        """A /25 hijack overrides the legitimate /24 (LPM on outcomes)."""
        g = two_origin_world()
        legit = propagate(g, Announcement.single(5))
        hijack = propagate(g, Announcement.single(66))
        plane = DataPlane(g)
        plane.install(Prefix("184.164.224.0/24"), legit, owner=5)
        plane.install(Prefix("184.164.224.0/25"), hijack, owner=5)
        delivery = plane.send(
            3, Packet(src=IPAddress("3.3.3.3"), dst=IPAddress("184.164.224.1"))
        )
        assert delivery.final_asn == 66
        assert delivery.status is DeliveryStatus.INTERCEPTED

    def test_source_validation_blocks_spoofing(self):
        g = two_origin_world()
        outcome = propagate(g, Announcement.single(5))
        plane = DataPlane(g)
        plane.install(Prefix("184.164.224.0/24"), outcome, owner=5)
        plane.enable_source_validation(9)
        spoofed = Packet(src=IPAddress("8.8.8.8"), dst=IPAddress("184.164.224.1"))
        delivery = plane.send(9, spoofed, legitimate_sources={Prefix("9.0.0.0/8")})
        assert delivery.status is DeliveryStatus.SOURCE_FILTERED

    def test_source_validation_explicit_empty_set_filters_everything(self):
        """An explicitly *empty* legitimate_sources set means the ingress
        may source nothing: BCP 38 admits only what is listed, so even a
        truthful source address is SOURCE_FILTERED (same as passing None).
        """
        g = two_origin_world()
        outcome = propagate(g, Announcement.single(5))
        plane = DataPlane(g)
        plane.install(Prefix("184.164.224.0/24"), outcome, owner=5)
        plane.enable_source_validation(9)
        packet = Packet(src=IPAddress("9.1.2.3"), dst=IPAddress("184.164.224.1"))
        for sources in (set(), None):
            delivery = plane.send(9, packet, legitimate_sources=sources)
            assert delivery.status is DeliveryStatus.SOURCE_FILTERED
            assert delivery.final_asn == 9

    def test_source_validation_allows_legitimate(self):
        g = two_origin_world()
        outcome = propagate(g, Announcement.single(5))
        plane = DataPlane(g)
        plane.install(Prefix("184.164.224.0/24"), outcome, owner=5)
        plane.enable_source_validation(9)
        packet = Packet(src=IPAddress("9.1.2.3"), dst=IPAddress("184.164.224.1"))
        delivery = plane.send(9, packet, legitimate_sources={Prefix("9.0.0.0/8")})
        assert delivery.status is DeliveryStatus.DELIVERED

    def test_ttl_expiry(self):
        g = two_origin_world()
        outcome = propagate(g, Announcement.single(5))
        plane = DataPlane(g)
        plane.install(Prefix("184.164.224.0/24"), outcome, owner=5)
        packet = Packet(src=IPAddress("9.9.9.9"), dst=IPAddress("184.164.224.1"), ttl=2)
        delivery = plane.send(9, packet)
        assert delivery.status is DeliveryStatus.TTL_EXPIRED

    def test_ttl_expiring_exactly_at_origin_still_delivers(self):
        """TTL is a *transit* budget: the path 9-4-1-3-5 is 4 hops, so
        ttl=4 reaches the origin with TTL 0 and must be DELIVERED — the
        origin check precedes the expiry check (pinned edge semantics)."""
        g = two_origin_world()
        outcome = propagate(g, Announcement.single(5))
        plane = DataPlane(g)
        plane.install(Prefix("184.164.224.0/24"), outcome, owner=5)
        packet = Packet(src=IPAddress("9.9.9.9"), dst=IPAddress("184.164.224.1"), ttl=4)
        delivery = plane.send(9, packet)
        assert delivery.status is DeliveryStatus.DELIVERED
        assert delivery.path == (9, 4, 1, 3, 5)
        assert delivery.packet.ttl == 0

    def test_ttl_one_short_of_origin_expires(self):
        """...whereas ttl=3 dies at the last transit AS, one hop short."""
        g = two_origin_world()
        outcome = propagate(g, Announcement.single(5))
        plane = DataPlane(g)
        plane.install(Prefix("184.164.224.0/24"), outcome, owner=5)
        packet = Packet(src=IPAddress("9.9.9.9"), dst=IPAddress("184.164.224.1"), ttl=3)
        delivery = plane.send(9, packet)
        assert delivery.status is DeliveryStatus.TTL_EXPIRED
        assert delivery.final_asn == 3
        assert delivery.path == (9, 4, 1, 3)

    def test_tap_sees_transit_traffic(self):
        g = two_origin_world()
        outcome = propagate(g, Announcement.single(5))
        plane = DataPlane(g)
        plane.install(Prefix("184.164.224.0/24"), outcome, owner=5)
        seen = []
        plane.register_tap(1, seen.append)
        plane.send(9, Packet(src=IPAddress("9.9.9.9"), dst=IPAddress("184.164.224.1")))
        assert len(seen) == 1

    def test_traceroute(self):
        g = two_origin_world()
        outcome = propagate(g, Announcement.single(5))
        plane = DataPlane(g)
        plane.install(Prefix("184.164.224.0/24"), outcome, owner=5)
        assert plane.traceroute(9, IPAddress("184.164.224.1"), IPAddress("9.9.9.9")) == [
            9, 4, 1, 3, 5,
        ]

    def test_catchment(self):
        g = two_origin_world()
        contested = propagate(
            g, Announcement(origins=(OriginSpec(asn=5), OriginSpec(asn=66)))
        )
        plane = DataPlane(g)
        prefix = Prefix("184.164.224.0/24")
        plane.install(prefix, contested, owner=5)
        catchment = plane.catchment(prefix)
        assert catchment[3] == 5
        assert catchment[9] == 66
        assert catchment[4] == 66

    def test_catchment_unknown_prefix(self):
        g = two_origin_world()
        plane = DataPlane(g)
        with pytest.raises(KeyError):
            plane.catchment(Prefix("10.0.0.0/8"))

    def test_uninstall(self):
        g = two_origin_world()
        outcome = propagate(g, Announcement.single(5))
        plane = DataPlane(g)
        prefix = Prefix("184.164.224.0/24")
        plane.install(prefix, outcome, owner=5)
        plane.uninstall(prefix)
        delivery = plane.send(9, Packet(src=IPAddress("9.9.9.9"), dst=IPAddress("184.164.224.1")))
        assert delivery.status is DeliveryStatus.BLACKHOLE
