"""Session-level tests: handshake, updates, timers, failures."""

import pytest

from repro.net.addr import IPAddress, Prefix
from repro.net.channel import ChannelPair
from repro.sim import Engine
from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.errors import BGPError
from repro.bgp.session import BGPSession, SessionConfig, connect


def make_pair(engine, add_path=(False, False), hold=(90, 90), passive_right=True):
    pair = ChannelPair("test")
    left = BGPSession(
        engine,
        SessionConfig(
            local_asn=47065,
            peer_asn=3356,
            local_id=IPAddress("10.0.0.1"),
            hold_time=hold[0],
            add_path=add_path[0],
            description="left",
        ),
        pair.a,
    )
    right = BGPSession(
        engine,
        SessionConfig(
            local_asn=3356,
            peer_asn=47065,
            local_id=IPAddress("10.0.0.2"),
            hold_time=hold[1],
            add_path=add_path[1],
            passive=passive_right,
            description="right",
        ),
        pair.b,
    )
    return left, right


class TestHandshake:
    def test_active_passive(self):
        engine = Engine()
        left, right = make_pair(engine)
        connect(engine, left, right)
        assert left.established and right.established

    def test_simultaneous_open(self):
        engine = Engine()
        left, right = make_pair(engine, passive_right=False)
        connect(engine, left, right)
        assert left.established and right.established

    def test_both_passive_rejected(self):
        engine = Engine()
        left, right = make_pair(engine)
        left.config.passive = True
        with pytest.raises(BGPError):
            connect(engine, left, right)

    def test_wrong_asn_tears_down(self):
        engine = Engine()
        left, right = make_pair(engine)
        right.config.peer_asn = 9999  # expects someone else
        connect(engine, left, right)
        assert not left.established and not right.established
        assert right.last_error is not None

    def test_hold_time_negotiated_to_min(self):
        engine = Engine()
        left, right = make_pair(engine, hold=(90, 30))
        connect(engine, left, right)
        assert left.negotiated_hold_time == 30
        assert right.negotiated_hold_time == 30

    def test_add_path_requires_both(self):
        engine = Engine()
        left, right = make_pair(engine, add_path=(True, False))
        connect(engine, left, right)
        assert not left.add_path_active and not right.add_path_active

    def test_add_path_negotiated(self):
        engine = Engine()
        left, right = make_pair(engine, add_path=(True, True))
        connect(engine, left, right)
        assert left.add_path_active and right.add_path_active


class TestUpdates:
    def attrs(self):
        return PathAttributes(
            as_path=ASPath.from_asns([47065]), next_hop=IPAddress("10.0.0.1")
        )

    def test_update_delivered(self):
        engine = Engine()
        left, right = make_pair(engine)
        received = []
        right.on_update = lambda _s, u: received.append(u)
        connect(engine, left, right)
        left.announce([Prefix("184.164.224.0/24")], self.attrs())
        assert len(received) == 1
        assert received[0].prefixes() == [Prefix("184.164.224.0/24")]
        assert received[0].attributes.as_path.asns() == (47065,)

    def test_withdraw_delivered(self):
        engine = Engine()
        left, right = make_pair(engine)
        received = []
        right.on_update = lambda _s, u: received.append(u)
        connect(engine, left, right)
        left.withdraw([Prefix("184.164.224.0/24")])
        assert received[0].withdrawn_prefixes() == [Prefix("184.164.224.0/24")]

    def test_update_before_established_raises(self):
        engine = Engine()
        left, _right = make_pair(engine)
        with pytest.raises(BGPError):
            left.announce([Prefix("10.0.0.0/8")], self.attrs())

    def test_path_ids_require_add_path(self):
        engine = Engine()
        left, right = make_pair(engine)
        connect(engine, left, right)
        with pytest.raises(BGPError):
            left.announce([Prefix("10.0.0.0/8")], self.attrs(), path_ids=[1])

    def test_add_path_update(self):
        engine = Engine()
        left, right = make_pair(engine, add_path=(True, True))
        received = []
        right.on_update = lambda _s, u: received.append(u)
        connect(engine, left, right)
        left.announce(
            [Prefix("10.0.0.0/8"), Prefix("10.0.0.0/8")], self.attrs(), path_ids=[1, 2]
        )
        assert received[0].nlri == ((1, Prefix("10.0.0.0/8")), (2, Prefix("10.0.0.0/8")))

    def test_counters(self):
        engine = Engine()
        left, right = make_pair(engine)
        connect(engine, left, right)
        left.announce([Prefix("10.0.0.0/8")], self.attrs())
        assert left.updates_sent == 1
        assert right.updates_received == 1


class TestTimers:
    def test_keepalives_maintain_session(self):
        engine = Engine()
        left, right = make_pair(engine, hold=(9, 9))
        connect(engine, left, right)
        engine.run(until=100)
        assert left.established and right.established

    def test_hold_expires_without_keepalives(self):
        engine = Engine()
        left, right = make_pair(engine, hold=(9, 9))
        connect(engine, left, right)
        downs = []
        left.on_down = lambda _s, reason: downs.append(reason)
        # Break the keepalive mechanism on the right: stop its timer.
        right._keepalive_timer.stop()
        engine.run(until=30)
        assert not left.established
        assert downs and "hold" in downs[0]

    def test_established_callback(self):
        engine = Engine()
        left, right = make_pair(engine)
        ups = []
        left.on_established = lambda s: ups.append(s)
        connect(engine, left, right)
        assert ups == [left]


class TestShutdown:
    def test_stop_notifies_peer(self):
        engine = Engine()
        left, right = make_pair(engine)
        downs = []
        right.on_down = lambda _s, reason: downs.append(reason)
        connect(engine, left, right)
        left.stop()
        assert not left.established and not right.established
        assert downs and "CEASE" in downs[0]

    def test_channel_close_detected(self):
        engine = Engine()
        left, right = make_pair(engine)
        connect(engine, left, right)
        left.endpoint.close()
        assert not left.established and not right.established

    def test_stop_idempotent(self):
        engine = Engine()
        left, right = make_pair(engine)
        connect(engine, left, right)
        left.stop()
        left.stop()
        assert not left.established


class TestGarbageInput:
    def test_garbage_bytes_tear_down(self):
        engine = Engine()
        left, right = make_pair(engine)
        connect(engine, left, right)
        # Inject garbage directly into left's receive path.
        left.endpoint._deliver(b"\x00" * 19)
        assert not left.established
