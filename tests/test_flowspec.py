"""FlowSpec subsystem: rule model, §6 validation, graceful degradation,
data-plane enforcement, fault-plan steps, and the DDoS campaign."""

import json
import random
import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan
from repro.inet.dataplane import DataPlane, DeliveryStatus
from repro.inet.routing import Announcement, propagate
from repro.inet.topology import ASGraph, ASNode
from repro.net.addr import IPAddress, Prefix
from repro.net.packet import Packet
from repro.secroute import SecurityPolicy
from repro.secroute.campaign import AttackSurface
from repro.secroute.flowspec import (
    EnforcementVerdict,
    FlowSpecAction,
    FlowSpecActionKind,
    FlowSpecDistributor,
    FlowSpecRule,
    resolver_from_outcomes,
)
from repro.sim.engine import Engine
from repro.telemetry.lookingglass import LookingGlass
from repro.telemetry.metrics import MetricsRegistry

PREFIX = Prefix("184.164.224.0/24")
SUB = Prefix("184.164.224.0/25")
TARGET = IPAddress("184.164.224.1")


def chain_world():
    """9 -> 4 -> 1 -> 3 -> 5(victim); 66 hijacker under 4."""
    g = ASGraph()
    for asn in (1, 3, 4, 5, 66, 9):
        g.add_as(ASNode(asn=asn))
    g.add_provider(3, 1)
    g.add_provider(4, 1)
    g.add_provider(5, 3)
    g.add_provider(66, 4)
    g.add_provider(9, 4)
    return g


def victim_outcome(g):
    return propagate(g, Announcement.single(5, prefix=PREFIX))


def make_distributor(g, deployers=(1, 3, 4, 9), **kwargs):
    outcome = victim_outcome(g)
    resolver = resolver_from_outcomes({PREFIX: outcome})
    return FlowSpecDistributor(deployers=deployers, resolver=resolver, **kwargs), outcome


def rule(action=None, originator=5, dst=PREFIX, **kw):
    return FlowSpecRule(
        dst_prefix=dst,
        originator=originator,
        action=action or FlowSpecAction.discard(),
        **kw,
    )


def pkt(proto="udp", dst_port=123, src="7.7.7.7", dst=TARGET, **kw):
    return Packet(src=IPAddress(src), dst=dst, proto=proto, dst_port=dst_port, **kw)


class TestActionAndRuleModel:
    def test_action_validation(self):
        with pytest.raises(ValueError):
            FlowSpecAction(kind=FlowSpecActionKind.RATE_LIMIT, rate=-1)
        with pytest.raises(ValueError):
            FlowSpecAction(kind=FlowSpecActionKind.REDIRECT)
        with pytest.raises(ValueError):
            FlowSpecAction(kind=FlowSpecActionKind.MARK)
        assert FlowSpecAction.discard().rate == 0
        assert "discard" in str(FlowSpecAction.discard())
        assert "AS7" in str(FlowSpecAction.redirect(7))

    def test_port_range_validation(self):
        with pytest.raises(ValueError):
            rule(dst_ports=((5, 2),))
        with pytest.raises(ValueError):
            rule(src_ports=((0, 70000),))

    def test_matching(self):
        r = rule(protos=("udp",), dst_ports=((100, 200),))
        assert r.matches(pkt(dst_port=123))
        assert not r.matches(pkt(proto="tcp"))
        assert not r.matches(pkt(dst_port=443))
        assert not r.matches(pkt(dst_port=None))  # port component needs a port
        assert not r.matches(pkt(dst=IPAddress("10.0.0.1")))

    def test_src_prefix_and_src_port_matching(self):
        r = rule(src_prefix=Prefix("7.0.0.0/8"), src_ports=((1000, 2000),))
        assert r.matches(pkt(src_port=1500))
        assert not r.matches(pkt(src_port=999))
        assert not r.matches(pkt(src="8.8.8.8", src_port=1500))

    def test_ordering_destination_specificity_dominates(self):
        less = rule()
        more = rule(dst=SUB)
        constrained = rule(protos=("udp",), dst_ports=((123, 123),))
        order = sorted([less, constrained, more], key=FlowSpecRule.sort_key)
        assert order == [more, constrained, less]

    def test_ordering_is_total_and_deterministic(self):
        rules = [
            rule(),
            rule(dst=SUB),
            rule(protos=("udp",)),
            rule(protos=("tcp",)),
            rule(dst_ports=((123, 123),)),
            rule(src_prefix=Prefix("7.0.0.0/8")),
            rule(action=FlowSpecAction.redirect(1)),
        ]
        keys = [r.sort_key() for r in rules]
        assert len(set(keys)) == len(keys)  # total order: no ties
        shuffled = list(rules)
        random.Random(3).shuffle(shuffled)
        assert sorted(shuffled, key=FlowSpecRule.sort_key) == sorted(
            rules, key=FlowSpecRule.sort_key
        )

    def test_str_render(self):
        r = rule(protos=("udp",), dst_ports=((100, 200), (300, 300)))
        text = str(r)
        assert "dst 184.164.224.0/24" in text
        assert "proto udp" in text and "dport 100-200,300" in text
        assert "AS5" in text


class TestDistributorLifecycle:
    def test_announce_installs_at_deployers(self):
        g = chain_world()
        dist, _ = make_distributor(g)
        assert dist.announce(rule()) == 4
        assert dist.installed_counts() == {1: 1, 3: 1, 4: 1, 9: 1}
        assert dist.counts["installed"] == 4

    def test_rogue_originator_rejected_by_validation(self):
        g = chain_world()
        dist, _ = make_distributor(g)
        assert dist.announce(rule(originator=66)) == 0
        assert dist.counts["rejected_validation"] == 4
        assert dist.installed_counts() == {}

    def test_unrouted_prefix_rejected(self):
        g = chain_world()
        dist, _ = make_distributor(g)
        assert dist.announce(rule(dst=Prefix("203.0.113.0/24"))) == 0
        assert dist.counts["rejected_validation"] == 4

    def test_install_limit_evicts_least_specific(self):
        g = chain_world()
        dist, _ = make_distributor(g, deployers=(9,), install_limit=2)
        broad = rule()
        port_a = rule(dst_ports=((1, 1),))
        assert dist.announce(broad) == 1
        assert dist.announce(port_a) == 1
        specific = rule(dst=SUB)
        assert dist.announce(specific) == 1  # evicts `broad`
        assert dist.counts["evicted"] == 1
        assert dist.rules_at(9) == (specific, port_a)

    def test_at_capacity_worse_candidate_rejected(self):
        g = chain_world()
        dist, _ = make_distributor(g, deployers=(9,), install_limit=2)
        dist.announce(rule(dst=SUB))
        dist.announce(rule(dst_ports=((1, 1),)))
        assert dist.announce(rule()) == 0  # least specific of the three
        assert dist.counts["rejected_limit"] == 1
        assert len(dist.rules_at(9)) == 2

    def test_limit_never_exceeded_under_flood(self):
        g = chain_world()
        dist, _ = make_distributor(g, deployers=(9,), install_limit=4, churn_budget=500)
        for port in range(40):
            dist.announce(rule(dst_ports=((port, port),)))
        assert len(dist.rules_at(9)) == 4
        assert max(dist.installed_counts().values()) <= 4

    def test_withdraw(self):
        g = chain_world()
        dist, _ = make_distributor(g)
        dist.announce(rule())
        dist.announce(rule(dst_ports=((80, 80),)))
        assert dist.withdraw(5, PREFIX) == 8
        assert dist.installed_counts() == {}

    def test_duplicate_announce_is_idempotent(self):
        g = chain_world()
        dist, _ = make_distributor(g)
        dist.announce(rule())
        assert dist.announce(rule()) == 0
        assert dist.installed_counts() == {1: 1, 3: 1, 4: 1, 9: 1}

    def test_revalidate_evicts_stale_rules(self):
        g = chain_world()
        outcome = victim_outcome(g)
        outcomes = {PREFIX: outcome}
        dist = FlowSpecDistributor(
            deployers=(1, 3, 4, 9), resolver=resolver_from_outcomes(outcomes)
        )
        dist.announce(rule())
        assert dist.installed_counts()
        # The victim's unicast route is replaced by a hijacker's.
        outcomes[PREFIX] = propagate(g, Announcement.single(66, prefix=PREFIX))
        assert dist.revalidate() == 4
        assert dist.installed_counts() == {}
        assert dist.counts["rejected_stale"] == 4

    def test_quarantine_on_churn_storm(self):
        g = chain_world()
        dist, _ = make_distributor(g, churn_budget=10)
        for i in range(12):
            if i % 2 == 0:
                dist.announce(rule(dst_ports=((i, i),)))
            else:
                dist.withdraw(5, PREFIX)
        assert 5 in dist.quarantined_originators()
        assert dist.counts["quarantines"] == 1
        assert dist.installed_counts() == {}  # purged on trip
        assert dist.announce(rule()) == 0  # refused while quarantined
        assert dist.counts["rejected_quarantine"] >= 1

    def test_release_readmits(self):
        g = chain_world()
        dist, _ = make_distributor(g, churn_budget=5)
        for i in range(8):
            dist.announce(rule(dst_ports=((i, i),)))
        assert 5 in dist.quarantined_originators()
        dist.release(5)
        assert 5 not in dist.quarantined_originators()
        assert dist.announce(rule()) == 4

    def test_metrics_bound(self):
        g = chain_world()
        metrics = MetricsRegistry()
        dist, _ = make_distributor(g, deployers=(9,), install_limit=1)
        dist.bind_metrics(metrics)
        dist.announce(rule(dst_ports=((1, 1),)))
        dist.announce(rule(dst=SUB))  # evicts
        dist.announce(rule(originator=66))  # validation reject
        assert metrics.get("peering_flowspec_rules_installed_total").value == 2
        assert metrics.get("peering_flowspec_rules_evicted_total").value == 1
        rejected = metrics.get("peering_flowspec_rules_rejected_total")
        assert rejected.labels("validation").value == 1

    def test_stats_and_render(self):
        g = chain_world()
        dist, _ = make_distributor(g)
        dist.announce(rule())
        stats = dist.stats()
        assert stats["installed_now"] == 4
        assert stats["max_installed_at_one_as"] == 1
        text = dist.render(vantages=[9])
        assert "4 rules installed" in text
        assert "AS9: 1 rules" in text


class TestEnforcement:
    def setup_plane(self, g, action, **rule_kw):
        outcome = victim_outcome(g)
        plane = DataPlane(g)
        plane.install(PREFIX, outcome, owner=5)
        dist = FlowSpecDistributor(
            deployers=(4,), resolver=resolver_from_outcomes({PREFIX: outcome})
        )
        dist.announce(rule(action=action, **rule_kw))
        plane.attach_flowspec(dist)
        return plane, dist

    def test_discard_drops_at_first_deployer(self):
        g = chain_world()
        plane, _ = self.setup_plane(g, FlowSpecAction.discard(), protos=("udp",))
        delivery = plane.send(9, pkt())
        assert delivery.status is DeliveryStatus.FLOWSPEC_DROPPED
        assert delivery.path == (9, 4)
        assert delivery.final_asn == 4

    def test_non_matching_traffic_unaffected(self):
        g = chain_world()
        plane, _ = self.setup_plane(g, FlowSpecAction.discard(), protos=("udp",))
        delivery = plane.send(9, pkt(proto="tcp"))
        assert delivery.status is DeliveryStatus.DELIVERED
        assert delivery.final_asn == 5

    def test_redirect_scrubs(self):
        g = chain_world()
        plane, _ = self.setup_plane(g, FlowSpecAction.redirect(1))
        delivery = plane.send(9, pkt())
        assert delivery.status is DeliveryStatus.SCRUBBED
        assert delivery.path == (9, 4, 1)
        assert delivery.final_asn == 1

    def test_mark_remarked_and_forwarded(self):
        g = chain_world()
        plane, _ = self.setup_plane(g, FlowSpecAction.mark(46))
        delivery = plane.send(9, pkt())
        assert delivery.status is DeliveryStatus.DELIVERED
        assert delivery.packet.dscp == 46

    def test_rate_limit_budget_then_epoch_refill(self):
        g = chain_world()
        plane, dist = self.setup_plane(g, FlowSpecAction.rate_limit(2))
        statuses = [plane.send(9, pkt()).status for _ in range(4)]
        assert statuses == [
            DeliveryStatus.DELIVERED,
            DeliveryStatus.DELIVERED,
            DeliveryStatus.RATE_LIMITED,
            DeliveryStatus.RATE_LIMITED,
        ]
        dist.new_epoch()
        assert plane.send(9, pkt()).status is DeliveryStatus.DELIVERED

    def test_first_match_in_551_order_wins(self):
        g = chain_world()
        outcome = victim_outcome(g)
        plane = DataPlane(g)
        plane.install(PREFIX, outcome, owner=5)
        dist = FlowSpecDistributor(
            deployers=(4,), resolver=resolver_from_outcomes({PREFIX: outcome})
        )
        dist.announce(rule(action=FlowSpecAction.mark(10)))  # broad: mark
        dist.announce(rule(action=FlowSpecAction.discard(), dst=SUB))
        plane.attach_flowspec(dist)
        # dst inside the /25: the more specific discard precedes the mark.
        assert plane.send(9, pkt()).status is DeliveryStatus.FLOWSPEC_DROPPED
        # dst outside the /25: only the broad mark matches.
        outside = pkt(dst=IPAddress("184.164.224.200"))
        assert plane.send(9, outside).status is DeliveryStatus.DELIVERED

    def test_decide_direct(self):
        g = chain_world()
        dist, _ = make_distributor(g, deployers=(4,))
        dist.announce(rule())
        decision = dist.decide(4, pkt())
        assert decision is not None and decision.verdict is EnforcementVerdict.DROP
        assert dist.decide(9, pkt()) is None  # not a deployer


class TestFaultPlanSteps:
    def test_flood_and_inject_on_timeline(self):
        g = chain_world()
        outcome = victim_outcome(g)
        plane = DataPlane(g)
        plane.install(PREFIX, outcome, owner=5)
        dist = FlowSpecDistributor(
            deployers=(4,), resolver=resolver_from_outcomes({PREFIX: outcome})
        )
        plane.attach_flowspec(dist)
        engine = Engine(seed=0)
        plan = FaultPlan(engine, name="ddos-test")
        before, after = [], []
        flows = [(9, pkt()) for _ in range(3)]
        plan.flood_traffic(plane, flows, at=0.5, collect=before)
        plan.inject_flowspec(dist, rule(), at=1.0)
        plan.flood_traffic(plane, flows, at=2.0, collect=after)
        plan.withdraw_flowspec(dist, 5, at=3.0)
        engine.run()
        assert [d.status for d in before] == [DeliveryStatus.DELIVERED] * 3
        assert [d.status for d in after] == [DeliveryStatus.FLOWSPEC_DROPPED] * 3
        assert dist.installed_counts() == {}
        actions = [(t, a) for t, a, _ in plan.log]
        assert actions == [
            (0.5, "flood"), (1.0, "flowspec"), (2.0, "flood"),
            (3.0, "flowspec-withdraw"),
        ]


class TestLookingGlassFlowspec:
    def make_glass(self, dist):
        testbed = types.SimpleNamespace(
            outcome_for=lambda prefix: None, _announced={}, servers={}, asn=47065
        )
        return LookingGlass(testbed, flowspec=dist)

    def test_stats_rules_and_render(self):
        g = chain_world()
        dist, _ = make_distributor(g)
        dist.announce(rule())
        glass = self.make_glass(dist)
        assert glass.flowspec_stats()["installed_now"] == 4
        assert len(glass.flowspec_rules(9)) == 1
        assert glass.flowspec_rules(66) == ()
        text = glass.render(PREFIX, vantages=[9])
        assert "flowspec:" in text and "AS9: 1 rules" in text

    def test_unwired_glass_is_empty(self):
        glass = self.make_glass(None)
        assert glass.flowspec_stats() == {}
        assert glass.flowspec_rules(9) == ()


# -- property: no stale rule survives unicast churn + revalidate ---------------

_OPS = st.lists(
    st.sampled_from(
        ["hijack", "subhijack", "withdraw-victim", "reannounce", "withdraw-attacker"]
    ),
    min_size=1,
    max_size=8,
)


class TestRevalidationProperty:
    @settings(max_examples=25, deadline=None)
    @given(ops=_OPS, data=st.data())
    def test_no_stale_rule_survives_revalidation(self, ops, data):
        """Under any sequence of unicast route changes (withdrawals,
        origin/sub-prefix hijacks via AttackSurface), revalidate() leaves
        no installed rule whose originator is not the origin of the
        best-match unicast route at that AS."""
        g = chain_world()
        surface = AttackSurface(g, policy=SecurityPolicy())
        surface.announce(5, PREFIX)
        dist = FlowSpecDistributor(
            deployers=(1, 3, 4, 9), resolver=surface.resolve, churn_budget=10_000
        )
        dist.announce(rule())
        dist.announce(rule(protos=("udp",), dst_ports=((123, 123),)))

        for op in ops:
            if op == "hijack":
                surface.announce(66, PREFIX)
            elif op == "subhijack":
                surface.announce(66, SUB)
            elif op == "withdraw-victim":
                surface.withdraw(5, PREFIX)
            elif op == "reannounce":
                surface.announce(5, PREFIX)
            elif op == "withdraw-attacker":
                surface.withdraw(66, PREFIX)
                surface.withdraw(66, SUB)
            # Originators may also push new rules mid-churn...
            if data.draw(st.booleans()):
                dist.announce(
                    rule(originator=data.draw(st.sampled_from([5, 66])))
                )
            dist.revalidate()
            # ...but after revalidation every installed rule is valid.
            for asn in (1, 3, 4, 9):
                for installed in dist.rules_at(asn):
                    hit = surface.resolve(asn, installed.dst_prefix)
                    assert hit is not None, "rule with no unicast route survived"
                    _prefix, route = hit
                    origin = route.path[-1] if route.path else asn
                    assert origin == installed.originator, (
                        f"stale rule at AS{asn}: originator "
                        f"{installed.originator}, unicast origin {origin}"
                    )


# -- campaign ------------------------------------------------------------------

QUICK = dict(n_ases=60, n_tier1=3, trials=2, rates=(0.0, 0.5, 1.0),
             n_sources=8, attack_packets=80, legit_clients=6)


class TestDdosCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.secroute.ddos import DdosCampaignConfig, run_ddos_campaign

        return run_ddos_campaign(DdosCampaignConfig(**QUICK))

    def test_deterministic(self, result):
        from repro.secroute.ddos import DdosCampaignConfig, run_ddos_campaign

        again = run_ddos_campaign(DdosCampaignConfig(**QUICK))
        assert json.dumps(result.to_dict(), sort_keys=True) == json.dumps(
            again.to_dict(), sort_keys=True
        )

    def test_absorbed_monotone_in_deployment(self, result):
        for scenario in result.scenarios.values():
            assert scenario.is_monotone_absorbed()

    def test_full_deployment_absorbs_everything(self, result):
        for scenario in result.scenarios.values():
            assert scenario.absorbed[-1] == pytest.approx(1.0)
            assert scenario.leaked[-1] == pytest.approx(0.0)

    def test_zero_deployment_leaks_everything(self, result):
        for scenario in result.scenarios.values():
            assert scenario.absorbed[0] == 0.0
            assert scenario.leaked[0] == pytest.approx(1.0)

    def test_surgical_rules_spare_legitimate_traffic(self, result):
        assert all(c == 0.0 for c in result.scenarios["surgical-discard"].collateral)

    def test_blunt_discard_costs_collateral(self, result):
        blunt = result.scenarios["blunt-discard"].collateral
        surgical = result.scenarios["surgical-discard"].collateral
        assert blunt[-1] > 0.0
        assert all(b >= s for b, s in zip(blunt, surgical))

    def test_rule_flood_limits_held(self, result):
        flood = result.rule_flood
        assert flood is not None
        assert flood.limits_respected
        assert flood.max_installed_at_one_as <= flood.install_limit
        assert flood.rejected_validation > 0
        assert flood.quarantined  # the rogue churner ends quarantined

    def test_metrics_surface(self):
        from repro.secroute.ddos import DdosCampaignConfig, run_ddos_campaign

        metrics = MetricsRegistry()
        run_ddos_campaign(DdosCampaignConfig(**QUICK), metrics=metrics)
        assert metrics.get("peering_flowspec_rules_installed_total").value > 0
        assert (
            metrics.get("peering_flowspec_originator_quarantines_total").value >= 1
        )

    def test_table_renders(self, result):
        text = result.table()
        assert "surgical-discard" in text and "collateral" in text


class TestRuleTrafficCounters:
    """Per-rule byte/packet counters over enforcement decisions."""

    def test_counts_every_match_including_in_budget_forwards(self):
        g = chain_world()
        dist, _ = make_distributor(g, deployers=(1,))
        limited = rule(action=FlowSpecAction.rate_limit(2), dst_ports=((123, 123),))
        dist.announce(limited)
        # Two in-budget forwards, one rate-exceeded: all three count.
        for _ in range(3):
            dist.decide(1, pkt(size=100))
        counters = dist.rule_counters()
        assert counters[limited] == (3, 300)
        stats = dist.stats()
        assert stats["matched_packets"] == 3
        assert stats["matched_bytes"] == 300

    def test_non_matching_traffic_not_counted(self):
        g = chain_world()
        dist, _ = make_distributor(g, deployers=(1,))
        discard = rule(dst_ports=((123, 123),))
        dist.announce(discard)
        assert dist.decide(1, pkt(dst_port=80)) is None
        assert dist.rule_counters() == {}

    def test_counters_survive_withdrawal(self):
        g = chain_world()
        dist, _ = make_distributor(g, deployers=(1,))
        discard = rule()
        dist.announce(discard)
        dist.decide(1, pkt(size=1500))
        dist.withdraw(discard.originator)
        assert dist.rules_at(1) == ()
        assert dist.rule_counters()[discard] == (1, 1500)

    def test_exported_per_mux_and_rendered(self):
        g = chain_world()
        metrics = MetricsRegistry()
        dist, _ = make_distributor(g, deployers=(1,))
        dist.bind_metrics(metrics, mux="amsterdam01")
        other, _ = make_distributor(g, deployers=(3,))
        other.bind_metrics(metrics, mux="gatech01")
        dist.announce(rule())
        other.announce(rule())
        dist.decide(1, pkt(size=64))
        dist.decide(1, pkt(size=36))
        other.decide(3, pkt(size=1000))
        packets = metrics.get("peering_flowspec_matched_packets_total")
        volume = metrics.get("peering_flowspec_matched_bytes_total")
        assert packets.labels("amsterdam01").value == 2
        assert packets.labels("gatech01").value == 1
        assert volume.labels("amsterdam01").value == 100
        assert volume.labels("gatech01").value == 1000
        text = dist.render()
        assert "matched traffic: 2 packets / 100 bytes" in text
