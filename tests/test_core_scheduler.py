"""Tests for the announcement-scheduling web service."""

import pytest

from repro.core import (
    AnnouncementScheduler,
    SchedulerError,
    ScheduleStatus,
    Testbed,
)
from repro.inet.gen import InternetConfig


@pytest.fixture()
def world():
    testbed = Testbed.build_default(
        InternetConfig(n_ases=300, total_prefixes=20_000, seed=33)
    )
    client = testbed.register_client("exp1", "alice")
    client.attach("gatech01")
    scheduler = AnnouncementScheduler(testbed.engine, testbed.servers)
    return testbed, client, scheduler


class TestScheduling:
    def test_announce_then_withdraw_window(self, world):
        testbed, client, scheduler = world
        prefix = client.prefixes[0]
        task = scheduler.schedule("exp1", prefix, "gatech01", start=10.0, duration=50.0)
        assert task.status is ScheduleStatus.PENDING
        testbed.engine.run(until=11.0)
        assert task.status is ScheduleStatus.RUNNING
        assert prefix in testbed.announced_prefixes()
        testbed.engine.run(until=100.0)
        assert task.status is ScheduleStatus.DONE
        assert prefix not in testbed.announced_prefixes()

    def test_open_ended_announcement(self, world):
        testbed, client, scheduler = world
        prefix = client.prefixes[0]
        task = scheduler.schedule("exp1", prefix, "gatech01", start=5.0)
        testbed.engine.run(until=100.0)
        assert task.status is ScheduleStatus.RUNNING
        assert prefix in testbed.announced_prefixes()

    def test_notifications_fire(self, world):
        testbed, client, scheduler = world
        seen = []
        scheduler.on_notify = lambda task, message: seen.append(message)
        scheduler.schedule("exp1", client.prefixes[0], "gatech01", start=1.0, duration=2.0)
        testbed.engine.run(until=10.0)
        assert any("scheduled" in m for m in seen)
        assert any("announced" in m for m in seen)
        assert any("withdrew" in m for m in seen)

    def test_conflicting_bookings_rejected(self, world):
        testbed, client, scheduler = world
        prefix = client.prefixes[0]
        scheduler.schedule("exp1", prefix, "gatech01", start=10.0, duration=100.0)
        with pytest.raises(SchedulerError):
            scheduler.schedule("exp1", prefix, "gatech01", start=50.0, duration=10.0)

    def test_sequential_bookings_allowed(self, world):
        testbed, client, scheduler = world
        prefix = client.prefixes[0]
        scheduler.schedule("exp1", prefix, "gatech01", start=10.0, duration=20.0)
        task2 = scheduler.schedule("exp1", prefix, "gatech01", start=40.0, duration=20.0)
        testbed.engine.run(until=100.0)
        assert task2.status is ScheduleStatus.DONE

    def test_past_start_rejected(self, world):
        testbed, client, scheduler = world
        testbed.engine.run(until=100.0)
        with pytest.raises(SchedulerError):
            scheduler.schedule("exp1", client.prefixes[0], "gatech01", start=50.0)

    def test_unknown_server(self, world):
        _testbed, client, scheduler = world
        with pytest.raises(SchedulerError):
            scheduler.schedule("exp1", client.prefixes[0], "nowhere01", start=10.0)

    def test_cancel_pending(self, world):
        testbed, client, scheduler = world
        task = scheduler.schedule("exp1", client.prefixes[0], "gatech01", start=10.0)
        scheduler.cancel(task.task_id)
        testbed.engine.run(until=20.0)
        assert task.status is ScheduleStatus.CANCELLED
        assert client.prefixes[0] not in testbed.announced_prefixes()

    def test_cancel_running_withdraws(self, world):
        testbed, client, scheduler = world
        task = scheduler.schedule("exp1", client.prefixes[0], "gatech01", start=1.0)
        testbed.engine.run(until=5.0)
        scheduler.cancel(task.task_id)
        assert client.prefixes[0] not in testbed.announced_prefixes()

    def test_failed_announcement_reported(self, world):
        """Scheduling a prefix the client does not own fails at execution
        (the safety layer, not the scheduler, is the authority)."""
        from repro.net.addr import Prefix

        testbed, client, scheduler = world
        foreign = Prefix("184.164.230.0/24")  # in pool but not allocated
        task = scheduler.schedule("exp1", foreign, "gatech01", start=1.0)
        testbed.engine.run(until=5.0)
        assert task.status is ScheduleStatus.FAILED
        assert "not allocated" in task.failure

    def test_tasks_for_client(self, world):
        _testbed, client, scheduler = world
        scheduler.schedule("exp1", client.prefixes[0], "gatech01", start=1.0, duration=1.0)
        assert len(scheduler.tasks_for("exp1")) == 1
        assert scheduler.tasks_for("nobody") == []
