"""Unit tests for MRT record export/import."""

import io

import pytest

from repro.bgp import mrt
from repro.bgp.attributes import ASPath, PathAttributes
from repro.bgp.messages import UpdateMessage
from repro.bgp.rib import Route
from repro.net.addr import IPAddress, Prefix


def sample_update():
    return UpdateMessage.announce(
        [Prefix("184.164.224.0/24")],
        PathAttributes(
            as_path=ASPath.from_asns([3356, 47065]),
            next_hop=IPAddress("10.0.0.1"),
        ),
    )


class TestUpdateRecords:
    def test_roundtrip(self):
        out = io.BytesIO()
        mrt.write_update(
            out,
            timestamp=1414368000,
            local_asn=47065,
            peer_asn=3356,
            peer_address=IPAddress("192.0.2.1"),
            local_address=IPAddress("192.0.2.2"),
            update=sample_update(),
        )
        records = list(mrt.read_records(out.getvalue()))
        assert len(records) == 1
        record = records[0]
        assert record.timestamp == 1414368000
        assert record.type == mrt.MRT_BGP4MP
        peer_asn, local_asn, update = mrt.decode_update_record(record)
        assert (peer_asn, local_asn) == (3356, 47065)
        assert update.prefixes() == [Prefix("184.164.224.0/24")]
        assert update.attributes.as_path.asns() == (3356, 47065)

    def test_multiple_records_stream(self):
        out = io.BytesIO()
        for i in range(5):
            mrt.write_update(
                out,
                timestamp=i,
                local_asn=47065,
                peer_asn=100 + i,
                peer_address=IPAddress("192.0.2.1"),
                local_address=IPAddress("192.0.2.2"),
                update=sample_update(),
            )
        records = list(mrt.read_records(out.getvalue()))
        assert [r.timestamp for r in records] == list(range(5))

    def test_truncated_header_rejected(self):
        with pytest.raises(ValueError):
            list(mrt.read_records(b"\x00\x01\x02"))

    def test_truncated_body_rejected(self):
        out = io.BytesIO()
        mrt.write_update(
            out,
            timestamp=0,
            local_asn=1,
            peer_asn=2,
            peer_address=IPAddress("192.0.2.1"),
            local_address=IPAddress("192.0.2.2"),
            update=sample_update(),
        )
        with pytest.raises(ValueError):
            list(mrt.read_records(out.getvalue()[:-3]))

    def test_decode_wrong_type_rejected(self):
        record = mrt.MrtRecord(0, 99, 0, b"")
        with pytest.raises(ValueError):
            mrt.decode_update_record(record)


class TestTableDump:
    def routes(self):
        return [
            Route(
                prefix=Prefix("184.164.224.0/24"),
                attributes=PathAttributes(
                    as_path=ASPath.from_asns([100 + i]),
                    next_hop=IPAddress("10.0.0.1"),
                ),
                peer_asn=100 + i,
                peer_id=f"10.0.0.{i + 1}",
            )
            for i in range(3)
        ] + [
            Route(
                prefix=Prefix("184.164.225.0/24"),
                attributes=PathAttributes(
                    as_path=ASPath.from_asns([100]),
                    next_hop=IPAddress("10.0.0.1"),
                ),
                peer_asn=100,
                peer_id="10.0.0.1",
            )
        ]

    def test_table_dump_structure(self):
        out = io.BytesIO()
        count = mrt.write_table_dump(
            out, timestamp=5, collector_id=IPAddress("10.0.0.99"), routes=self.routes()
        )
        assert count == 2  # one RIB record per prefix
        records = list(mrt.read_records(out.getvalue()))
        assert records[0].subtype == mrt.TD2_PEER_INDEX
        assert len(records) == 3  # index + 2 RIB records
        assert all(r.type == mrt.MRT_TABLE_DUMP_V2 for r in records)

    def test_empty_table(self):
        out = io.BytesIO()
        count = mrt.write_table_dump(
            out, timestamp=0, collector_id=IPAddress("10.0.0.99"), routes=[]
        )
        assert count == 0
        records = list(mrt.read_records(out.getvalue()))
        assert len(records) == 1  # just the (empty) peer index
