"""Session self-healing: reconnect backoff, hold_time=0, stop semantics,
graceful-restart negotiation and RIB retention."""

import pytest

from repro.net.addr import IPAddress, Prefix
from repro.net.channel import ChannelPair
from repro.sim import Engine
from repro.bgp.errors import BGPError
from repro.bgp.fsm import State
from repro.bgp.router import BGPRouter, PeerConfig
from repro.bgp.session import BGPSession, SessionConfig, connect
from repro.faults import Link


def make_session(engine, description, passive=False, **kwargs):
    local, peer = (47065, 3356) if not passive else (3356, 47065)
    return BGPSession(
        engine,
        SessionConfig(
            local_asn=local,
            peer_asn=peer,
            local_id=IPAddress("10.0.0.1" if not passive else "10.0.0.2"),
            passive=passive,
            description=description,
            **kwargs,
        ),
    )


def make_link(engine, name="link", **kwargs):
    left = make_session(engine, f"{name}-L", auto_reconnect=True, **kwargs)
    right = make_session(
        engine, f"{name}-R", passive=True, auto_reconnect=True, **kwargs
    )
    link = Link(engine, left, right, name=name)
    link.start()
    return link, left, right


class TestAutoReconnect:
    def test_reestablishes_after_transport_loss(self):
        engine = Engine(seed=1)
        link, left, right = make_link(engine, idle_hold_time=2.0)
        assert left.established and right.established
        link.sever()
        assert not left.established and not right.established
        engine.run_for(10)
        assert left.established and right.established
        assert left.established_count == 2

    def test_no_reconnect_without_flag(self):
        engine = Engine(seed=1)
        pair = ChannelPair("static")
        left = make_session(engine, "L")
        right = make_session(engine, "R", passive=True)
        left.rebind(pair.a)
        right.rebind(pair.b)
        connect(engine, left, right)
        assert left.established
        pair.sever()
        engine.run_for(600)
        assert not left.established
        assert left.reconnect_attempts == 0

    def test_backoff_is_exponential_with_jitter(self):
        engine = Engine(seed=5)
        left = make_session(engine, "lonely", auto_reconnect=True, idle_hold_time=4.0)
        left.transport_factory = lambda: None  # transport never comes back
        left.start()
        engine.run_for(400)
        delays = [d for _, d in left.reconnect_log]
        assert len(delays) >= 5
        for level, delay in enumerate(delays[:5]):
            base = 4.0 * (2**level)
            assert 0.75 * base <= delay <= base
        # Jitter actually engaged: delays are not exactly the base values.
        assert any(d != 4.0 * (2**i) for i, d in enumerate(delays[:5]))
        assert left.connect_retry_count >= 5
        assert left.reconnect_attempts >= 5

    def test_backoff_capped_at_idle_hold_max(self):
        engine = Engine(seed=5)
        left = make_session(
            engine, "capped", auto_reconnect=True, idle_hold_time=4.0, idle_hold_max=10.0
        )
        left.transport_factory = lambda: None
        left.start()
        engine.run_for(300)
        assert all(d <= 10.0 for _, d in left.reconnect_log)

    def test_backoff_resets_after_recovery(self):
        engine = Engine(seed=9)
        link, left, right = make_link(engine, idle_hold_time=2.0)
        link.cut()
        engine.run_for(30)  # several failed attempts climb the ladder
        assert left.backoff_level >= 2
        link.restore()
        engine.run_for(60)
        assert left.established
        assert left.backoff_level == 0
        # Next outage starts from the bottom of the ladder again.
        link.sever()
        engine.run_for(10)
        assert left.established
        first_delay_after_recovery = left.reconnect_log[-1][1]
        assert first_delay_after_recovery <= 2.0

    def test_same_seed_same_schedule(self):
        def run(seed):
            engine = Engine(seed=seed)
            link, left, _right = make_link(engine, idle_hold_time=2.0)
            link.cut()
            engine.run_for(120)
            return [(round(t, 9), round(d, 9)) for t, d in left.reconnect_log]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_peer_initiated_recovery_cancels_own_attempt(self):
        engine = Engine(seed=2)
        link, left, right = make_link(engine, idle_hold_time=2.0)
        link.sever()
        # Both sides race to reconnect; whoever fires first re-provisions
        # the pair and the other side's OPEN implicit-starts it.
        engine.run_for(30)
        assert left.established and right.established
        # No lingering duplicate establishment afterwards.
        count = left.established_count
        engine.run_for(120)
        assert left.established_count == count


class TestHoldTimeZero:
    def test_no_keepalives_or_hold_timer(self):
        engine = Engine(seed=0)
        pair = ChannelPair("hz")
        left = make_session(engine, "L", hold_time=0)
        right = make_session(engine, "R", passive=True, hold_time=0)
        left.rebind(pair.a)
        right.rebind(pair.b)
        connect(engine, left, right)
        assert left.established and right.established
        assert left.negotiated_hold_time == 0
        # RFC 4271: hold time 0 means no keepalives and no hold timer —
        # the session stays up forever without any periodic traffic.
        sent_before = pair.a.sent_count
        engine.run_for(3600)
        assert left.established and right.established
        assert pair.a.sent_count == sent_before

    def test_update_does_not_arm_keepalive(self):
        engine = Engine(seed=0)
        pair = ChannelPair("hz2")
        left = make_session(engine, "L", hold_time=0)
        right = make_session(engine, "R", passive=True, hold_time=0)
        left.rebind(pair.a)
        right.rebind(pair.b)
        connect(engine, left, right)
        from repro.bgp.attributes import ASPath, Origin, PathAttributes

        left.announce(
            [Prefix("184.164.224.0/24")],
            PathAttributes(
                origin=Origin.IGP,
                as_path=ASPath.from_asns([47065]),
                next_hop=IPAddress("10.0.0.1"),
            ),
        )
        assert not left._keepalive_timer.running
        engine.run_for(3600)
        assert left.established

    def test_zero_on_one_side_negotiates_to_zero(self):
        engine = Engine(seed=0)
        pair = ChannelPair("hz3")
        left = make_session(engine, "L", hold_time=0)
        right = make_session(engine, "R", passive=True, hold_time=90)
        left.rebind(pair.a)
        right.rebind(pair.b)
        connect(engine, left, right)
        assert left.negotiated_hold_time == 0
        assert right.negotiated_hold_time == 0


class TestStopSemantics:
    def test_stop_closes_endpoint(self):
        engine = Engine(seed=0)
        pair = ChannelPair("stop")
        left = make_session(engine, "L")
        right = make_session(engine, "R", passive=True)
        left.rebind(pair.a)
        right.rebind(pair.b)
        connect(engine, left, right)
        left.stop()
        assert pair.a.closed and pair.b.closed
        assert not left.established and not right.established
        # Peer saw the CEASE, not a bare transport loss.
        assert "CEASE" in (right.last_error or "")

    def test_stop_cancels_pending_reconnect(self):
        engine = Engine(seed=3)
        link, left, right = make_link(engine, idle_hold_time=2.0)
        link.cut()
        assert left._idle_hold_timer.running
        left.stop()
        link.restore()
        engine.run_for(600)
        assert not left.established
        assert left.reconnect_attempts == 0

    def test_stop_while_idle_closes_transport(self):
        engine = Engine(seed=0)
        pair = ChannelPair("idlestop")
        left = make_session(engine, "L")
        left.rebind(pair.a)
        left.stop()
        assert pair.a.closed


class TestGracefulRestartNegotiation:
    def _routers(self, engine, gr=(True, True), restart_time=30):
        r1 = BGPRouter(engine, asn=100, router_id=IPAddress("1.1.1.1"))
        r2 = BGPRouter(engine, asn=200, router_id=IPAddress("2.2.2.2"))
        s1 = r1.add_peer(
            PeerConfig(
                peer_id="r2",
                remote_asn=200,
                local_address=IPAddress("9.0.0.1"),
                auto_reconnect=True,
                idle_hold_time=2.0,
                graceful_restart=gr[0],
                restart_time=restart_time,
            ),
            None,
        )
        s2 = r2.add_peer(
            PeerConfig(
                peer_id="r1",
                remote_asn=100,
                local_address=IPAddress("9.0.0.2"),
                passive=True,
                auto_reconnect=True,
                idle_hold_time=2.0,
                graceful_restart=gr[1],
                restart_time=restart_time,
            ),
            None,
        )
        link = Link(engine, s1, s2, name="gr")
        link.start()
        return r1, r2, s1, s2, link

    def test_capability_negotiation(self):
        engine = Engine(seed=0)
        _r1, _r2, s1, s2, _link = self._routers(engine)
        assert s1.gr_active and s2.gr_active
        assert s1.peer_restart_time == 30

    def test_one_sided_is_inactive(self):
        engine = Engine(seed=0)
        _r1, _r2, s1, s2, _link = self._routers(engine, gr=(True, False))
        assert not s1.gr_active and not s2.gr_active

    def test_stale_retention_and_refresh(self):
        engine = Engine(seed=4)
        r1, r2, s1, _s2, link = self._routers(engine)
        r1.originate(Prefix("10.0.0.0/24"))
        r1.originate(Prefix("10.0.1.0/24"))
        engine.run_for(1)
        assert r2.table_size() == 2
        link.sever()
        peer = r2.peer("r1")
        # Routes survive the transport loss, stale-marked, still selected.
        assert peer.adj_in.stale_count() == 2
        assert r2.table_size() == 2
        assert s1.last_down_graceful
        engine.run_for(20)
        # Session recovered; re-advertisement + End-of-RIB cleared staleness.
        assert link.established
        assert peer.adj_in.stale_count() == 0
        assert r2.table_size() == 2

    def test_deadline_flushes_stale_paths(self):
        engine = Engine(seed=4)
        r1, r2, _s1, _s2, link = self._routers(engine, restart_time=30)
        r1.originate(Prefix("10.0.0.0/24"))
        engine.run_for(1)
        link.cut()  # peer never comes back
        peer = r2.peer("r1")
        assert peer.adj_in.stale_count() == 1
        engine.run_for(40)  # past the advertised restart time
        assert peer.adj_in.stale_count() == 0
        assert r2.table_size() == 0
        assert peer.stale_flushes == 1

    def test_non_graceful_down_flushes_immediately(self):
        engine = Engine(seed=4)
        r1, r2, s1, _s2, link = self._routers(engine)
        r1.originate(Prefix("10.0.0.0/24"))
        engine.run_for(1)
        assert r2.table_size() == 1
        s1.stop()  # administrative CEASE: not graceful
        assert r2.peer("r1").adj_in.stale_count() == 0
        assert r2.table_size() == 0

    def test_readvertisement_after_plain_bounce(self):
        # Regression: Adj-RIB-Out must be cleared on session down, or the
        # restarted peer receives nothing (the duplicate check suppresses
        # every route it actually lost).
        engine = Engine(seed=4)
        r1, r2, _s1, _s2, link = self._routers(engine, gr=(False, False))
        r1.originate(Prefix("10.0.0.0/24"))
        engine.run_for(1)
        assert r2.table_size() == 1
        link.sever()
        assert r2.table_size() == 0  # non-GR: flushed at once
        engine.run_for(20)
        assert link.established
        assert r2.table_size() == 1


class TestRebind:
    def test_rebind_refused_in_session(self):
        engine = Engine(seed=0)
        pair = ChannelPair("rb")
        left = make_session(engine, "L")
        right = make_session(engine, "R", passive=True)
        left.rebind(pair.a)
        right.rebind(pair.b)
        connect(engine, left, right)
        assert left.established
        with pytest.raises(BGPError):
            left.rebind(ChannelPair("other").a)

    def test_rebind_replays_waiting_open(self):
        engine = Engine(seed=0)
        pair = ChannelPair("replay")
        left = make_session(engine, "L")
        left.rebind(pair.a)
        left.start()  # OPEN sent into the void; queued at pair.b
        assert left.fsm.state == State.OPEN_SENT
        right = make_session(engine, "R", passive=True)
        right.rebind(pair.b)  # replays the queued OPEN: implicit start
        assert left.established and right.established
