"""Prefix pool tests."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import Prefix
from repro.core.allocation import AllocationError, PrefixPool

SUPERNET = Prefix("184.164.224.0/19")


class TestAllocate:
    def test_first_fit_order(self):
        pool = PrefixPool([SUPERNET])
        a = pool.allocate("exp1")
        b = pool.allocate("exp2")
        assert a.prefix == Prefix("184.164.224.0/24")
        assert b.prefix == Prefix("184.164.225.0/24")

    def test_capacity_of_slash19(self):
        pool = PrefixPool([SUPERNET])
        assert pool.capacity(24) == 32
        allocations = [pool.allocate(f"exp{i}") for i in range(32)]
        assert len({a.prefix for a in allocations}) == 32
        with pytest.raises(AllocationError):
            pool.allocate("exp32")

    def test_release_and_reuse(self):
        pool = PrefixPool([SUPERNET])
        a = pool.allocate("exp1")
        pool.release(a.prefix)
        b = pool.allocate("exp2")
        assert b.prefix == a.prefix

    def test_release_unknown(self):
        pool = PrefixPool([SUPERNET])
        with pytest.raises(AllocationError):
            pool.release(Prefix("184.164.224.0/24"))

    def test_release_owner(self):
        pool = PrefixPool([SUPERNET])
        pool.allocate("exp1")
        pool.allocate("exp1")
        pool.allocate("exp2")
        released = pool.release_owner("exp1")
        assert len(released) == 2
        assert pool.allocations_for("exp1") == []
        assert len(pool.allocations_for("exp2")) == 1

    def test_owner_of_covers_more_specifics(self):
        pool = PrefixPool([SUPERNET])
        a = pool.allocate("exp1")
        assert pool.owner_of(a.prefix) == "exp1"
        sub = next(a.prefix.subnets(28))
        assert pool.owner_of(sub) == "exp1"
        assert pool.owner_of(Prefix("184.164.225.0/24")) is None

    def test_contains(self):
        pool = PrefixPool([SUPERNET])
        assert pool.contains(Prefix("184.164.230.0/24"))
        assert not pool.contains(Prefix("8.8.8.0/24"))

    def test_donated_supernet(self):
        pool = PrefixPool([SUPERNET])
        pool.add_supernet(Prefix("198.51.100.0/24"))
        for _ in range(32):
            pool.allocate("bulk")
        extra = pool.allocate("donated-user")
        assert extra.prefix == Prefix("198.51.100.0/24")

    def test_overlapping_supernet_rejected(self):
        pool = PrefixPool([SUPERNET])
        with pytest.raises(AllocationError):
            pool.add_supernet(Prefix("184.164.224.0/20"))

    def test_variable_lengths(self):
        pool = PrefixPool([SUPERNET])
        a = pool.allocate("big", length=21)
        assert a.prefix.length == 21
        b = pool.allocate("small", length=24)
        assert not a.prefix.overlaps(b.prefix)

    def test_free_count(self):
        pool = PrefixPool([SUPERNET])
        assert pool.free_count() == 32
        pool.allocate("exp1")
        assert pool.free_count() == 31
        pool.allocate("big", length=23)  # costs two /24s
        assert pool.free_count() == 29

    def test_ipv6_pool(self):
        pool = PrefixPool([Prefix("2604:4540::/32")])
        a = pool.allocate("exp1", version=6)
        assert a.prefix.length == 48
        assert a.prefix.version == 6


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=32))
def test_allocations_never_overlap(owners):
    pool = PrefixPool([SUPERNET])
    allocated = []
    for owner in owners:
        allocated.append(pool.allocate(owner).prefix)
    for i, p in enumerate(allocated):
        for q in allocated[i + 1 :]:
            assert not p.overlaps(q)


@given(st.integers(min_value=1, max_value=31), st.integers(min_value=0, max_value=30))
def test_release_restores_capacity(n_alloc, release_idx):
    pool = PrefixPool([SUPERNET])
    allocations = [pool.allocate("x") for _ in range(n_alloc)]
    before = pool.free_count()
    victim = allocations[release_idx % n_alloc]
    pool.release(victim.prefix)
    assert pool.free_count() == before + 1
