"""Tests for PoiRoot-style root-cause localization and hijack alerting."""

import pytest

from repro.core import Testbed
from repro.core.alerts import AlertKind, HijackDetector
from repro.inet.gen import InternetConfig
from repro.inet.rootcause import classify_changes, locate_root_cause
from repro.inet.routing import Announcement, OriginSpec, propagate
from repro.inet.topology import ASGraph, ASNode
from repro.net.addr import Prefix


def ladder_graph():
    """origin 5 under transits 3 and 4; both under tier-1 1; vantage 9
    under 1.  Flipping the origin's announcement between 3 and 4 changes
    9's path with the origin as root cause."""
    g = ASGraph()
    for asn in (1, 3, 4, 5, 9):
        g.add_as(ASNode(asn=asn))
    g.add_provider(3, 1)
    g.add_provider(4, 1)
    g.add_provider(5, 3)
    g.add_provider(5, 4)
    g.add_provider(9, 1)
    return g


class TestRootCause:
    def test_no_change_no_cause(self):
        g = ladder_graph()
        outcome = propagate(g, Announcement.single(5))
        change = locate_root_cause(outcome, outcome, vantage=9)
        assert not change.changed
        assert change.root_cause is None

    def test_origin_flip_localized_to_origin(self):
        """Controlled path change (the PEERING ground-truth workflow):
        the origin switches providers; the root cause is the origin."""
        g = ladder_graph()
        before = propagate(g, Announcement.single(5, announce_to=(3,)))
        after = propagate(g, Announcement.single(5, announce_to=(4,)))
        change = locate_root_cause(before, after, vantage=9)
        assert change.changed
        assert change.old_path != change.new_path
        assert change.root_cause == 5
        assert 9 not in change.induced or change.root_cause != 9

    def test_midpath_change_localized_to_midpath(self):
        """A transit changes its selection (simulated by poisoning it out
        of one side): the cause is below the vantage, not the vantage."""
        g = ladder_graph()
        before = propagate(g, Announcement.single(5))
        after = propagate(g, Announcement.single(5, poison=(3,)))
        change = locate_root_cause(before, after, vantage=9)
        if change.changed:
            assert change.root_cause in (5, 3, 4, 1)
            assert change.root_cause != 9 or change.induced == ()

    def test_classify_changes_single_dominant_cause(self):
        g = ladder_graph()
        before = propagate(g, Announcement.single(5, announce_to=(3,)))
        after = propagate(g, Announcement.single(5, announce_to=(4,)))
        report = classify_changes(before, after, vantages=[1, 9, 3, 4])
        assert report  # something changed
        # The dominant cause across vantages is the origin itself.
        dominant = max(report.items(), key=lambda kv: len(kv[1]))[0]
        assert dominant == 5

    def test_vantage_losing_route_entirely(self):
        g = ladder_graph()
        before = propagate(g, Announcement.single(5))
        after = propagate(g, Announcement.single(5, announce_to=()))
        change = locate_root_cause(before, after, vantage=9)
        assert change.changed
        assert change.new_path == ()


@pytest.fixture()
def world():
    testbed = Testbed.build_default(
        InternetConfig(n_ases=400, total_prefixes=30_000, seed=91)
    )
    client = testbed.register_client("victim", "alice")
    client.attach("amsterdam01")
    client.attach("gatech01")
    client.announce(client.prefixes[0])
    testbed.outcome_for(client.prefixes[0])  # flush pending propagation
    vantages = [
        node.asn for node in testbed.graph.nodes() if node.kind.value == "access"
    ][:20]
    detector = HijackDetector(testbed, vantages)
    detector.register(client.prefixes[0], origins={testbed.asn})
    return testbed, client, detector


class TestHijackDetector:
    def test_clean_state_no_alerts(self, world):
        _testbed, _client, detector = world
        assert detector.scan() == []

    def test_origin_hijack_detected(self, world):
        """An external AS announces the victim prefix: MOAS alert."""
        testbed, client, detector = world
        prefix = client.prefixes[0]
        # The hijacker is a provider of one of our vantages, so at least
        # that vantage prefers the bogus origin.
        attacker = next(
            provider
            for vantage in detector.vantage_asns
            for provider in sorted(testbed.graph.providers(vantage))
        )
        contested = propagate(
            testbed.graph,
            Announcement(
                origins=(
                    OriginSpec(asn=testbed.asn),
                    OriginSpec(asn=attacker),
                )
            ),
        )
        testbed.dataplane.install(prefix, contested, owner=testbed.asn)
        alerts = detector.scan()
        hijacks = [a for a in alerts if a.kind is AlertKind.ORIGIN_HIJACK]
        assert hijacks
        assert hijacks[0].observed_origin == attacker
        assert hijacks[0].vantages

    def test_more_specific_detected(self, world):
        testbed, client, detector = world
        prefix = client.prefixes[0]
        sub = next(prefix.subnets(25))
        attacker = next(
            node.asn for node in testbed.graph.nodes() if node.kind.value == "transit"
        )
        testbed.dataplane.install(
            sub, propagate(testbed.graph, Announcement.single(attacker)), owner=attacker
        )
        alerts = detector.scan()
        kinds = {a.kind for a in alerts}
        assert AlertKind.MORE_SPECIFIC in kinds

    def test_lost_visibility_detected(self, world):
        testbed, client, detector = world
        prefix = client.prefixes[0]
        detector.scan()  # establish baseline visibility
        client.withdraw(prefix)
        client.announce(prefix, peers=[])  # dark announcement
        alerts = detector.scan()
        assert any(a.kind is AlertKind.LOST_VISIBILITY for a in alerts)

    def test_scheduled_rounds(self, world):
        testbed, _client, detector = world
        detector.schedule_rounds(interval=60.0, rounds=3)
        testbed.engine.run(until=200.0)
        # Clean state: rounds ran without alerts.
        assert detector.alerts == []

    def test_alerts_for_filter(self, world):
        testbed, client, detector = world
        prefix = client.prefixes[0]
        assert detector.alerts_for(prefix) == []
