"""Policy engine tests: prefix lists, AS-path filters, route maps."""

import pytest

from repro.net.addr import IPAddress, Prefix
from repro.bgp.attributes import ASPath, Community, PathAttributes
from repro.bgp.policy import (
    AsPathFilter,
    MatchConditions,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapTerm,
    SetActions,
)
from repro.bgp.rib import Route


def make_route(prefix="184.164.224.0/24", path=(3356, 47065), communities=()):
    return Route(
        prefix=Prefix(prefix),
        attributes=PathAttributes(
            as_path=ASPath.from_asns(path),
            next_hop=IPAddress("10.0.0.1"),
            communities=frozenset(communities),
        ),
        peer_id="peer",
        peer_asn=path[0] if path else None,
    )


class TestPrefixList:
    def test_exact_match(self):
        pl = PrefixList([PrefixListEntry(Prefix("10.0.0.0/8"))])
        assert pl.permits(Prefix("10.0.0.0/8"))
        assert not pl.permits(Prefix("10.1.0.0/16"))  # more specific: no ge/le

    def test_le_range(self):
        pl = PrefixList([PrefixListEntry(Prefix("10.0.0.0/8"), ge=8, le=24)])
        assert pl.permits(Prefix("10.1.0.0/16"))
        assert pl.permits(Prefix("10.1.2.0/24"))
        assert not pl.permits(Prefix("10.1.2.0/25"))

    def test_ge_only(self):
        pl = PrefixList([PrefixListEntry(Prefix("10.0.0.0/8"), ge=24)])
        assert pl.permits(Prefix("10.1.2.0/24"))
        assert pl.permits(Prefix("10.1.2.128/25"))
        assert not pl.permits(Prefix("10.1.0.0/16"))

    def test_first_match_wins(self):
        pl = PrefixList(
            [
                PrefixListEntry(Prefix("10.1.0.0/16"), permit=False, ge=16, le=32),
                PrefixListEntry(Prefix("10.0.0.0/8"), permit=True, ge=8, le=32),
            ]
        )
        assert not pl.permits(Prefix("10.1.2.0/24"))
        assert pl.permits(Prefix("10.2.0.0/16"))

    def test_default_deny(self):
        assert not PrefixList().permits(Prefix("10.0.0.0/8"))
        assert PrefixList(default_permit=True).permits(Prefix("10.0.0.0/8"))

    def test_permitting_factory_with_le(self):
        pl = PrefixList.permitting([Prefix("184.164.224.0/19")], le=24)
        assert pl.permits(Prefix("184.164.224.0/19"))
        assert pl.permits(Prefix("184.164.230.0/24"))
        assert not pl.permits(Prefix("184.164.224.0/25"))
        assert not pl.permits(Prefix("184.0.0.0/8"))


class TestAsPathFilter:
    def test_origin_in(self):
        f = AsPathFilter(origin_in=frozenset({47065}))
        assert f.matches(make_route().attributes)
        assert not f.matches(make_route(path=(3356, 174)).attributes)

    def test_contains_none(self):
        f = AsPathFilter(contains_none=frozenset({666}))
        assert f.matches(make_route().attributes)
        assert not f.matches(make_route(path=(666, 47065)).attributes)

    def test_contains_any(self):
        f = AsPathFilter(contains_any=frozenset({3356, 174}))
        assert f.matches(make_route().attributes)
        assert not f.matches(make_route(path=(1, 2)).attributes)

    def test_length_bounds(self):
        f = AsPathFilter(max_length=3)
        assert f.matches(make_route().attributes)
        assert not f.matches(make_route(path=(1, 2, 3, 4)).attributes)
        g = AsPathFilter(min_length=3)
        assert not g.matches(make_route().attributes)

    def test_first_asn(self):
        f = AsPathFilter(first_asn_in=frozenset({3356}))
        assert f.matches(make_route().attributes)
        assert not f.matches(make_route(path=(174, 47065)).attributes)


class TestRouteMap:
    def test_default_deny(self):
        result = RouteMap().apply(make_route())
        assert not result.permitted
        assert result.term == "<default-deny>"

    def test_permit_all(self):
        result = RouteMap.PERMIT_ALL.apply(make_route())
        assert result.permitted

    def test_first_term_wins(self):
        rm = RouteMap(
            [
                RouteMapTerm(
                    "deny-doc",
                    permit=False,
                    match=MatchConditions(
                        prefix_list=PrefixList([PrefixListEntry(Prefix("192.0.2.0/24"))])
                    ),
                ),
                RouteMapTerm("allow", permit=True),
            ]
        )
        assert not rm.apply(make_route("192.0.2.0/24")).permitted
        assert rm.apply(make_route()).permitted

    def test_set_local_pref_and_prepend(self):
        rm = RouteMap(
            [
                RouteMapTerm(
                    "tune",
                    actions=SetActions(local_pref=250, prepend=(47065, 47065)),
                )
            ]
        )
        result = rm.apply(make_route())
        assert result.route.attributes.local_pref == 250
        assert result.route.attributes.as_path.asns() == (47065, 47065, 3356, 47065)

    def test_community_actions(self):
        c1, c2 = Community(1, 1), Community(2, 2)
        rm = RouteMap(
            [
                RouteMapTerm(
                    "comm",
                    actions=SetActions(add_communities=frozenset({c2}), remove_communities=frozenset({c1})),
                )
            ]
        )
        result = rm.apply(make_route(communities=[c1]))
        assert result.route.attributes.communities == {c2}

    def test_clear_communities(self):
        rm = RouteMap([RouteMapTerm("clear", actions=SetActions(clear_communities=True))])
        result = rm.apply(make_route(communities=[Community(1, 1)]))
        assert result.route.attributes.communities == frozenset()

    def test_match_communities(self):
        c = Community(47065, 666)
        rm = RouteMap(
            [
                RouteMapTerm(
                    "tagged",
                    permit=False,
                    match=MatchConditions(communities_any=frozenset({c})),
                ),
                RouteMapTerm("rest", permit=True),
            ]
        )
        assert not rm.apply(make_route(communities=[c])).permitted
        assert rm.apply(make_route()).permitted

    def test_custom_match_and_action(self):
        rm = RouteMap(
            [
                RouteMapTerm(
                    "custom",
                    match=MatchConditions(custom=lambda r: r.prefix.length == 24),
                    actions=SetActions(custom=lambda r: r.with_attributes(r.attributes.with_med(7))),
                )
            ]
        )
        result = rm.apply(make_route())
        assert result.route.attributes.med == 7
        assert not rm.apply(make_route("10.0.0.0/8")).permitted

    def test_set_weight(self):
        rm = RouteMap([RouteMapTerm("w", actions=SetActions(weight=500))])
        assert rm.apply(make_route()).route.weight == 500

    def test_original_route_not_mutated(self):
        rm = RouteMap([RouteMapTerm("lp", actions=SetActions(local_pref=999))])
        original = make_route()
        rm.apply(original)
        assert original.attributes.local_pref is None
