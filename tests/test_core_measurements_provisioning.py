"""Tests for measurement collectors, provisioning, and MRT export."""

import pytest

from repro.bgp import mrt
from repro.core import (
    ControlPlaneCollector,
    DataPlaneCollector,
    MuxMode,
    Provisioner,
    ProvisioningDatabase,
    RecordKind,
    SiteConfig,
    SiteKind,
    Testbed,
)
from repro.inet.gen import InternetConfig
from repro.inet.topology import ASKind


@pytest.fixture()
def world():
    testbed = Testbed.build_default(
        InternetConfig(n_ases=300, total_prefixes=20_000, seed=44)
    )
    client = testbed.register_client("exp1", "alice")
    client.attach("amsterdam01")
    # Transit too: peer-only announcements are invisible to the parts of
    # the Internet that must descend from tier-1s (valley-free), which is
    # exactly why the real testbed keeps university upstreams.
    client.attach("gatech01")
    client.announce(client.prefixes[0])
    vantages = [
        node.asn for node in testbed.graph.nodes() if node.kind is ASKind.ACCESS
    ][:10]
    return testbed, client, vantages


class TestControlPlaneCollector:
    def test_collect_observes_all_vantages(self, world):
        testbed, client, vantages = world
        collector = ControlPlaneCollector(testbed, vantages)
        observations = collector.collect()
        assert len(observations) == len(vantages)
        assert all(o.prefix == client.prefixes[0] for o in observations)

    def test_reachability_matrix(self, world):
        testbed, client, vantages = world
        collector = ControlPlaneCollector(testbed, vantages)
        collector.collect()
        matrix = collector.reachability_matrix()
        reachable = matrix[client.prefixes[0]]
        assert sum(reachable.values()) >= len(vantages) - 1  # nearly all see it

    def test_scheduled_rounds(self, world):
        testbed, _client, vantages = world
        collector = ControlPlaneCollector(testbed, vantages)
        collector.schedule_rounds(interval=60.0, rounds=3)
        testbed.engine.run(until=200.0)
        assert len(collector.observations) == 3 * len(vantages)

    def test_withdrawal_visible(self, world):
        testbed, client, vantages = world
        collector = ControlPlaneCollector(testbed, vantages)
        client.withdraw(client.prefixes[0])
        assert collector.collect() == []

    def test_mrt_export_roundtrip(self, world):
        testbed, client, vantages = world
        collector = ControlPlaneCollector(testbed, vantages)
        collector.collect()
        blob = collector.export_mrt()
        records = list(mrt.read_records(blob))
        assert len(records) == len(collector.observations)
        peer_asn, local_asn, update = mrt.decode_update_record(records[0])
        assert local_asn == testbed.asn
        assert update.prefixes() or update.withdrawn_prefixes()


class TestDataPlaneCollector:
    def test_probes_delivered(self, world):
        testbed, client, vantages = world
        collector = DataPlaneCollector(testbed, vantages)
        observations = collector.collect()
        assert observations
        assert collector.delivery_rate() > 0.8

    def test_probe_records_path(self, world):
        testbed, _client, vantages = world
        collector = DataPlaneCollector(testbed, vantages)
        observations = collector.collect()
        delivered = [o for o in observations if o.delivered]
        assert delivered
        assert all(o.path[-1] == testbed.asn for o in delivered)

    def test_blackhole_after_withdraw(self, world):
        testbed, client, vantages = world
        collector = DataPlaneCollector(testbed, vantages)
        client.withdraw(client.prefixes[0])
        client.announce(client.prefixes[0], peers=[])  # announce to nobody
        observations = collector.collect()
        assert all(not o.delivered for o in observations)


class TestProvisioning:
    def test_database_upsert_and_history(self):
        db = ProvisioningDatabase()
        db.upsert(RecordKind.SITE, "x", country="US")
        db.upsert(RecordKind.SITE, "x", country="NL")
        assert db.lookup(RecordKind.SITE, "x").get("country") == "NL"
        assert len(db.history(RecordKind.SITE, "x")) == 2
        assert len(db) == 2

    def test_record_existing_sites(self, world):
        testbed, _client, _v = world
        provisioner = Provisioner(testbed)
        count = provisioner.record_existing_sites()
        assert count == 9
        assert len(provisioner.db.all_of(RecordKind.SITE)) == 9

    def test_deploy_site_records(self, world):
        testbed, _client, _v = world
        provisioner = Provisioner(testbed)
        transit = next(
            node.asn for node in testbed.graph.nodes() if node.kind is ASKind.TRANSIT
        )
        record = provisioner.deploy_site(
            SiteConfig(
                name="mit01",
                kind=SiteKind.UNIVERSITY,
                country="US",
                upstream_asns=(transit,),
            )
        )
        assert record.get("site_kind") == "university"
        assert "mit01" in testbed.servers

    def test_deploy_client_workflow(self, world):
        testbed, _client, _v = world
        provisioner = Provisioner(testbed)
        client = provisioner.deploy_client(
            "exp2", "bob", server_names=["gatech01"], mode=MuxMode.QUAGGA
        )
        assert client.prefixes
        record = provisioner.db.lookup(RecordKind.CLIENT, "exp2")
        assert record.get("servers") == "gatech01"
        allocation = provisioner.db.lookup(
            RecordKind.ALLOCATION, str(client.prefixes[0])
        )
        assert allocation.get("owner") == "exp2"

    def test_decommission(self, world):
        testbed, _client, _v = world
        provisioner = Provisioner(testbed)
        client = provisioner.deploy_client("exp2", "bob", server_names=["gatech01"])
        prefix = client.prefixes[0]
        client.announce(prefix)
        provisioner.decommission_client("exp2")
        assert prefix not in testbed.announced_prefixes()
        assert provisioner.db.lookup(RecordKind.CLIENT, "exp2").get("status") == "retired"

    def test_decommission_unknown(self, world):
        testbed, _client, _v = world
        provisioner = Provisioner(testbed)
        with pytest.raises(ValueError):
            provisioner.decommission_client("ghost")

    def test_configure_peering_existing(self, world):
        testbed, _client, _v = world
        provisioner = Provisioner(testbed)
        server = testbed.server("amsterdam01")
        peer = sorted(server.neighbor_asns)[0]
        record = provisioner.configure_peering("amsterdam01", peer)
        assert record.get("status") == "already-peered"
