"""Parallel delta-chained sweeps: worker-pool fan-out must be
route-for-route identical to the serial delta chain and the reference,
including under active RPKI/Peerlock policies; chains must partition by
delta affinity; pool degradations (fork→spawn, pool→serial) must be
counted, not silent.
"""

import multiprocessing
import pickle
import random
import types

import pytest
from hypothesis import given, settings, strategies as st

import repro.inet.engine as engine_mod
from repro.inet.engine import (
    CompiledTopology,
    PropagationEngine,
    _partition_chains,
)
from repro.inet.gen import InternetConfig, build_internet
from repro.inet.routing import Announcement, OriginSpec, propagate
from repro.net.addr import Prefix
from repro.secroute import Roa, RoaRegistry, RovMode, SecurityPolicy
from repro.telemetry.lookingglass import LookingGlass

V20 = Prefix("198.18.0.0/20")


def prepend_sweep(origin, points, prefix=None):
    return [
        Announcement.single(origin, prepend=p, prefix=prefix)
        for p in range(points)
    ]


class TestPartitionChains:
    def test_single_worker_groups_by_key(self):
        keys = ["a", "b", "a", "b", "a"]
        [chain] = _partition_chains(keys, 1)
        assert chain == [0, 2, 4, 1, 3]  # groups contiguous, order kept

    def test_balances_group_sizes_greedily(self):
        keys = ["a"] * 3 + ["b"] * 2 + ["c"]
        chains = _partition_chains(keys, 2)
        loads = sorted(len(c) for c in chains)
        assert loads == [3, 3]
        # No group is ever split across workers.
        for chain in chains:
            for key in set(keys):
                members = [i for i in chain if keys[i] == key]
                assert members == [i for i in range(len(keys)) if keys[i] == key] or not members

    def test_never_returns_empty_chains(self):
        chains = _partition_chains(["a", "a", "a"], 4)
        assert chains == [[0, 1, 2]]

    def test_deterministic(self):
        keys = [("k", i % 3) for i in range(20)]
        assert _partition_chains(keys, 3) == _partition_chains(keys, 3)


class TestChildrenIndex:
    def test_cached_and_merged(self):
        graph = build_internet(InternetConfig(n_ases=40, seed=3)).graph
        ct = CompiledTopology(graph)
        nbrs = ct.children_index()
        assert nbrs is ct.children_index()  # built once, reused
        for t in range(ct.n):
            assert sorted(nbrs[t]) == sorted(
                list(ct.providers[t]) + list(ct.peers[t]) + list(ct.customers[t])
            )

    def test_survives_pickle_by_rebuilding(self):
        graph = build_internet(InternetConfig(n_ases=30, seed=3)).graph
        ct = CompiledTopology(graph)
        ct.children_index()
        clone = pickle.loads(pickle.dumps(ct))
        assert clone.children_index() == ct.children_index()


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_parallel_secured_matches_serial_and_reference(seed):
    """Seeded equivalence under active ROV + Peerlock: the parallel
    worker chains, the serial delta chain, and the reference propagation
    must agree route-for-route on every sweep point."""
    rng = random.Random(seed)
    graph = build_internet(InternetConfig(n_ases=60, seed=seed)).graph
    asns = sorted(graph.asns())
    victim = rng.choice(asns)
    attacker = rng.choice([a for a in asns if a != victim])
    policy = SecurityPolicy(roas=RoaRegistry((Roa(V20, victim),)))
    policy.deploy_rov(
        rng.sample(asns, rng.randint(2, len(asns) // 2)),
        rng.choice([RovMode.DROP_INVALID, RovMode.DEPREFER_INVALID]),
    )
    clique = sorted(graph.tier1_clique())
    if clique:
        policy.lock_clique(clique)
    sweep = []
    for p in range(4):
        sweep.append(
            Announcement(
                origins=(
                    OriginSpec(asn=victim, prepend=p),
                    OriginSpec(asn=attacker),
                ),
                prefix=V20,
            )
        )
        sweep.append(Announcement.single(attacker, prepend=p, prefix=V20))
    engine = PropagationEngine(graph)
    parallel = engine.propagate_many(
        sweep, parallel=2, use_cache=False, security=policy
    )
    serial = engine.propagate_many(
        sweep, parallel=False, use_cache=False, security=policy
    )
    for announcement, par, ser in zip(sweep, parallel, serial):
        reference = propagate(
            graph, announcement, security=policy.compile_for(announcement)
        )
        assert dict(par.items()) == dict(ser.items()) == dict(reference.items())


class TestParallelStats:
    def test_workers_chain_deltas_and_report(self):
        graph = build_internet(InternetConfig(n_ases=80, seed=11)).graph
        asns = sorted(graph.asns())
        sweep = prepend_sweep(asns[-1], 6) + prepend_sweep(asns[-2], 6)
        engine = PropagationEngine(graph)
        outcomes = engine.propagate_many(sweep, parallel=2, use_cache=False)
        for announcement, outcome in zip(sweep, outcomes):
            assert dict(propagate(graph, announcement).items()) == dict(
                outcome.items()
            )
        par = engine.stats()["parallel"]
        assert par["chains"] == 2
        # Two affinity groups of 6: one full converge each, rest shifts.
        assert par["delta"]["full"] == 2
        assert par["delta"]["shift"] == 10
        assert par["pool_fallbacks"] == {"spawn": 0, "serial": 0}
        # Parallel regime counts fold into the engine-wide delta stats.
        assert engine.stats()["delta"]["shift"] >= 10

    def test_looking_glass_surfaces_parallel_savings(self):
        graph = build_internet(InternetConfig(n_ases=60, seed=5)).graph
        engine = PropagationEngine(graph)
        origin = sorted(graph.asns())[-1]
        engine.propagate_many(prepend_sweep(origin, 8), parallel=2, use_cache=False)
        glass = LookingGlass(types.SimpleNamespace(propagation=engine))
        savings = glass.propagation_savings()
        par = savings["parallel"]
        assert par["chains"] >= 1
        assert par["incremental_fraction"] > 0.5
        assert set(par["pool_fallbacks"]) == {"spawn", "serial"}
        assert savings["incremental_fraction"] > 0.5


class TestPoolDegradation:
    @pytest.fixture
    def world(self):
        graph = build_internet(InternetConfig(n_ases=50, seed=9)).graph
        return graph, prepend_sweep(sorted(graph.asns())[-1], 5)

    def test_broken_pool_degrades_to_serial_with_metric(self, world, monkeypatch):
        graph, sweep = world

        class _BrokenCtx:
            def Pool(self, *args, **kwargs):
                raise OSError("semaphores unavailable")

        monkeypatch.setattr(
            multiprocessing, "get_context", lambda method: _BrokenCtx()
        )
        engine = PropagationEngine(graph)
        outcomes = engine.propagate_many(sweep, parallel=2, use_cache=False)
        for announcement, outcome in zip(sweep, outcomes):
            assert dict(propagate(graph, announcement).items()) == dict(
                outcome.items()
            )
        stats = engine.stats()["parallel"]
        assert stats["pool_fallbacks"]["serial"] == 1
        assert stats["chains"] == 0  # no worker chains actually ran
        # The serial fallback still chained deltas (shifts, not fulls).
        assert engine.stats()["delta"]["shift"] == len(sweep) - 1

    def test_missing_fork_falls_back_to_spawn_with_metric(self, world, monkeypatch):
        graph, sweep = world
        real = multiprocessing.get_context

        def no_fork(method):
            if method == "fork":
                raise ValueError("fork unavailable")
            return real(method)

        monkeypatch.setattr(multiprocessing, "get_context", no_fork)
        engine = PropagationEngine(graph)
        outcomes = engine.propagate_many(sweep, parallel=2, use_cache=False)
        for announcement, outcome in zip(sweep, outcomes):
            assert dict(propagate(graph, announcement).items()) == dict(
                outcome.items()
            )
        stats = engine.stats()["parallel"]
        assert stats["pool_fallbacks"]["spawn"] == 1
        assert stats["chains"] >= 1  # the spawn pool did run chains
