"""Fuzzing the wire-format decoder.

The robustness contract of :func:`repro.bgp.messages.decode` is that
malformed input — truncated, bit-flipped, or outright random — always
surfaces as :class:`BGPError` (so a session can send the right
NOTIFICATION), never as ``struct.error`` / ``IndexError`` / any other
implementation leak that would crash the speaker."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bgp.attributes import ASPath, Origin, PathAttributes
from repro.bgp.errors import BGPError
from repro.bgp.messages import (
    Capability,
    KeepaliveMessage,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UpdateMessage,
    decode,
)
from repro.net.addr import IPAddress, Prefix

FUZZ_SETTINGS = settings(
    max_examples=300, suppress_health_check=[HealthCheck.too_slow]
)


def _attrs(asns=(47065, 3356)):
    return PathAttributes(
        origin=Origin.IGP,
        as_path=ASPath.from_asns(list(asns)),
        next_hop=IPAddress("10.0.0.1"),
        med=50,
        local_pref=120,
    )


def _corpus():
    """One valid encoding of every message type (plain and ADD-PATH)."""
    open_msg = OpenMessage(
        asn=47065,
        hold_time=90,
        bgp_id=IPAddress("10.0.0.1"),
        capabilities=(
            Capability.four_octet_as(47065),
            Capability.add_path(),
            Capability.graceful_restart(120),
        ),
    )
    prefixes = [Prefix("184.164.224.0/24"), Prefix("184.164.225.0/24")]
    return [
        open_msg.encode(),
        UpdateMessage.announce(prefixes, _attrs()).encode(),
        UpdateMessage.announce(prefixes, _attrs(), path_ids=[1, 2]).encode(),
        UpdateMessage.withdraw(prefixes).encode(),
        UpdateMessage.end_of_rib().encode(),
        NotificationMessage(6, 2, b"shutting down").encode(),
        KeepaliveMessage().encode(),
        RouteRefreshMessage().encode(),
    ]


CORPUS = _corpus()


def _decode_or_bgperror(data: bytes, add_path: bool) -> None:
    try:
        decode(data, add_path=add_path)
    except BGPError:
        pass  # the only acceptable failure mode


@FUZZ_SETTINGS
@given(
    msg=st.sampled_from(CORPUS),
    cut=st.integers(min_value=0, max_value=200),
    add_path=st.booleans(),
)
def test_truncation_always_raises_bgperror(msg, cut, add_path):
    truncated = msg[: max(0, len(msg) - 1 - cut % len(msg))]
    try:
        decode(truncated, add_path=add_path)
    except BGPError:
        return
    raise AssertionError("truncated message decoded without error")


@FUZZ_SETTINGS
@given(
    msg=st.sampled_from(CORPUS),
    bit=st.integers(min_value=0),
    add_path=st.booleans(),
)
def test_bit_flip_never_crashes(msg, bit, add_path):
    index = bit % (len(msg) * 8)
    flipped = bytearray(msg)
    flipped[index // 8] ^= 1 << (index % 8)
    _decode_or_bgperror(bytes(flipped), add_path)


@FUZZ_SETTINGS
@given(
    msg=st.sampled_from(CORPUS),
    bits=st.lists(st.integers(min_value=0), min_size=1, max_size=16),
    add_path=st.booleans(),
)
def test_multi_bit_flips_never_crash(msg, bits, add_path):
    flipped = bytearray(msg)
    for bit in bits:
        index = bit % (len(msg) * 8)
        flipped[index // 8] ^= 1 << (index % 8)
    _decode_or_bgperror(bytes(flipped), add_path)


@FUZZ_SETTINGS
@given(data=st.binary(max_size=128), add_path=st.booleans())
def test_random_bytes_never_crash(data, add_path):
    _decode_or_bgperror(data, add_path)


@FUZZ_SETTINGS
@given(
    msg=st.sampled_from(CORPUS),
    extra=st.binary(min_size=1, max_size=64),
    add_path=st.booleans(),
)
def test_trailing_garbage_raises_bgperror(msg, extra, add_path):
    # The header length must match the datagram exactly; anything else is
    # a framing error, not a silent success.
    try:
        decode(msg + extra, add_path=add_path)
    except BGPError:
        return
    raise AssertionError("oversized message decoded without error")


def test_corpus_is_actually_valid():
    # UPDATEs only decode under the ADD-PATH mode they were encoded for
    # (the capability is session-negotiated, not self-describing); every
    # message decodes in its own mode, and the mismatched mode may only
    # fail with BGPError.
    for i, msg in enumerate(CORPUS):
        add_path = i == 2  # the path_ids variant
        decode(msg, add_path=add_path)
        _decode_or_bgperror(msg, not add_path)
