"""Tests for server-side packet processing (pipeline + service VMs)."""

import pytest

from repro.core import Testbed
from repro.core.services import (
    Action,
    Match,
    PacketPipeline,
    Rule,
    ServiceHost,
    Verdict,
)
from repro.inet.gen import InternetConfig
from repro.net.addr import IPAddress, Prefix
from repro.net.packet import Packet


def packet(src="198.18.0.1", dst="184.164.224.1", proto="udp"):
    return Packet(src=IPAddress(src), dst=IPAddress(dst), proto=proto)


class TestMatch:
    def test_wildcard_matches_everything(self):
        assert Match().hits(packet())

    def test_src_prefix(self):
        m = Match(src=Prefix("198.18.0.0/15"))
        assert m.hits(packet())
        assert not m.hits(packet(src="10.0.0.1"))

    def test_dst_prefix(self):
        m = Match(dst=Prefix("184.164.224.0/24"))
        assert m.hits(packet())
        assert not m.hits(packet(dst="8.8.8.8"))

    def test_proto(self):
        m = Match(proto="icmp-echo")
        assert not m.hits(packet())
        assert m.hits(packet(proto="icmp-echo"))

    def test_conjunction(self):
        m = Match(src=Prefix("198.18.0.0/15"), proto="udp")
        assert m.hits(packet())
        assert not m.hits(packet(proto="tcp"))


class TestPipeline:
    def test_first_match_wins(self):
        pipeline = PacketPipeline()
        pipeline.add_rule(Rule("drop-all-udp", Match(proto="udp"), Action.DROP))
        pipeline.add_rule(Rule("accept", Match()))
        assert pipeline.evaluate(packet()).action is Action.DROP
        assert pipeline.evaluate(packet(proto="tcp")).action is Action.ACCEPT

    def test_default_accept(self):
        assert PacketPipeline().evaluate(packet()).action is Action.ACCEPT

    def test_rewrite(self):
        pipeline = PacketPipeline()
        pipeline.add_rule(
            Rule(
                "nat",
                Match(dst=Prefix("184.164.224.0/24")),
                Action.REWRITE,
                rewrite_dst=IPAddress("10.9.9.9"),
            )
        )
        verdict = pipeline.evaluate(packet())
        assert verdict.action is Action.REWRITE
        assert verdict.packet.dst == IPAddress("10.9.9.9")
        assert verdict.packet.src == packet().src

    def test_divert(self):
        pipeline = PacketPipeline()
        pipeline.add_rule(
            Rule("scrub", Match(proto="udp"), Action.DIVERT, divert_to="scrubber")
        )
        verdict = pipeline.evaluate(packet())
        assert verdict.action is Action.DIVERT
        assert verdict.client_id == "scrubber"

    def test_rate_limit(self):
        pipeline = PacketPipeline()
        rule = pipeline.add_rule(Rule("limit", Match(), rate_limit=3))
        verdicts = [pipeline.evaluate(packet()).action for _ in range(5)]
        assert verdicts == [Action.ACCEPT] * 3 + [Action.DROP] * 2
        assert rule.dropped_by_rate == 2
        pipeline.tick()
        assert pipeline.evaluate(packet()).action is Action.ACCEPT

    def test_counters(self):
        pipeline = PacketPipeline()
        rule = pipeline.add_rule(Rule("count", Match(proto="udp")))
        pipeline.evaluate(packet())
        pipeline.evaluate(packet(proto="tcp"))
        assert rule.hits == 1
        assert pipeline.processed == 2

    def test_remove_rule(self):
        pipeline = PacketPipeline()
        pipeline.add_rule(Rule("drop", Match(), Action.DROP))
        assert pipeline.remove_rule("drop")
        assert not pipeline.remove_rule("drop")
        assert pipeline.evaluate(packet()).action is Action.ACCEPT

    def test_rule_lookup(self):
        pipeline = PacketPipeline()
        pipeline.add_rule(Rule("a", Match()))
        assert pipeline.rule("a").name == "a"
        with pytest.raises(KeyError):
            pipeline.rule("zz")

    def test_insert_at_index(self):
        pipeline = PacketPipeline()
        pipeline.add_rule(Rule("accept", Match()))
        pipeline.add_rule(Rule("drop", Match(), Action.DROP), index=0)
        assert pipeline.evaluate(packet()).action is Action.DROP


@pytest.fixture()
def world():
    testbed = Testbed.build_default(
        InternetConfig(n_ases=300, total_prefixes=20_000, seed=50)
    )
    client = testbed.register_client("svc", "alice")
    client.attach("amsterdam01")
    client.attach("gatech01")
    client.announce(client.prefixes[0])
    host = ServiceHost(testbed.server("amsterdam01"))
    return testbed, client, host


class TestServiceHost:
    def test_vm_sees_transit_packets(self, world):
        testbed, client, host = world
        seen = []
        host.run_vm("dpi", lambda p: (seen.append(p), Verdict.accept())[1])
        target = client.prefixes[0].first_address() + 1
        vantage = next(
            n.asn for n in testbed.graph.nodes() if n.kind.value == "access"
        )
        testbed.send_from(vantage, packet(dst=str(target)))
        assert len(seen) == 1

    def test_pipeline_drop_recorded(self, world):
        testbed, client, host = world
        host.pipeline.add_rule(
            Rule("blackhole-udp", Match(proto="udp"), Action.DROP)
        )
        verdict, out = host.process(packet())
        assert verdict.action is Action.DROP and out is None
        assert len(host.dropped) == 1

    def test_vm_after_pipeline(self, world):
        """Pipeline ACCEPT falls through to VMs; pipeline DROP shadows."""
        testbed, client, host = world
        calls = []
        host.run_vm("vm", lambda p: (calls.append(p), Verdict.accept())[1])
        host.process(packet())
        assert len(calls) == 1
        host.pipeline.add_rule(Rule("drop", Match(), Action.DROP))
        host.process(packet())
        assert len(calls) == 1  # VM not consulted after pipeline drop

    def test_rewrite_path(self, world):
        """Decoy-routing style: rewrite the destination at the exchange."""
        testbed, client, host = world
        decoy = IPAddress("203.0.113.99")
        host.pipeline.add_rule(
            Rule(
                "decoy",
                Match(proto="covert"),
                Action.REWRITE,
                rewrite_dst=decoy,
            )
        )
        verdict, out = host.process(packet(proto="covert"))
        assert out.dst == decoy
        assert host.rewritten and host.rewritten[0][0].dst != decoy

    def test_divert_reaches_client_tunnel(self, world):
        """ARROW-style: divert matched traffic into a client's tunnel."""
        testbed, client, host = world
        host.pipeline.add_rule(
            Rule(
                "to-client",
                Match(dst=Prefix(str(client.prefixes[0]))),
                Action.DIVERT,
                divert_to="svc",
            )
        )
        verdict, out = host.process(packet())
        assert verdict.action is Action.DIVERT and out is None
        assert host.diverted[0][0] == "svc"

    def test_stop_vm(self, world):
        _testbed, _client, host = world
        host.run_vm("tmp", lambda p: Verdict.accept())
        assert host.stop_vm("tmp")
        assert not host.stop_vm("tmp")
