"""Unit and property tests for the radix trie."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import IPAddress, Prefix
from repro.net.trie import PrefixTrie


@pytest.fixture
def trie():
    t = PrefixTrie()
    t[Prefix("10.0.0.0/8")] = "big"
    t[Prefix("10.1.0.0/16")] = "mid"
    t[Prefix("10.1.2.0/24")] = "small"
    t[Prefix("192.0.2.0/24")] = "doc"
    return t


class TestBasicOps:
    def test_exact_get(self, trie):
        assert trie[Prefix("10.1.0.0/16")] == "mid"

    def test_get_missing(self, trie):
        assert trie.get(Prefix("10.2.0.0/16")) is None
        with pytest.raises(KeyError):
            trie[Prefix("10.2.0.0/16")]

    def test_contains(self, trie):
        assert Prefix("10.0.0.0/8") in trie
        assert Prefix("10.0.0.0/9") not in trie

    def test_len(self, trie):
        assert len(trie) == 4

    def test_replace_does_not_grow(self, trie):
        trie[Prefix("10.0.0.0/8")] = "new"
        assert len(trie) == 4
        assert trie[Prefix("10.0.0.0/8")] == "new"

    def test_remove(self, trie):
        assert trie.remove(Prefix("10.1.0.0/16")) == "mid"
        assert len(trie) == 3
        assert Prefix("10.1.0.0/16") not in trie
        # Other routes unaffected.
        assert trie[Prefix("10.1.2.0/24")] == "small"

    def test_remove_missing(self, trie):
        with pytest.raises(KeyError):
            trie.remove(Prefix("172.16.0.0/12"))

    def test_version_mismatch(self, trie):
        with pytest.raises(ValueError):
            trie.insert(Prefix("2001:db8::/32"), "v6")

    def test_default_route(self):
        t = PrefixTrie()
        t[Prefix("0.0.0.0/0")] = "default"
        assert t.lookup(IPAddress("8.8.8.8")) == (Prefix("0.0.0.0/0"), "default")


class TestLookup:
    def test_lpm_most_specific_wins(self, trie):
        prefix, value = trie.lookup(IPAddress("10.1.2.3"))
        assert value == "small"
        assert prefix == Prefix("10.1.2.0/24")

    def test_lpm_falls_back(self, trie):
        assert trie.lookup(IPAddress("10.1.3.1"))[1] == "mid"
        assert trie.lookup(IPAddress("10.9.9.9"))[1] == "big"

    def test_lpm_miss(self, trie):
        assert trie.lookup(IPAddress("11.0.0.1")) is None

    def test_lookup_prefix_target(self, trie):
        assert trie.lookup(Prefix("10.1.2.0/25"))[1] == "small"


class TestCoveringCovered:
    def test_covering(self, trie):
        found = list(trie.covering(Prefix("10.1.2.0/24")))
        assert [v for _, v in found] == ["big", "mid", "small"]

    def test_covered(self, trie):
        found = dict(trie.covered(Prefix("10.0.0.0/8")))
        assert set(found.values()) == {"big", "mid", "small"}

    def test_covered_excludes_outside(self, trie):
        found = dict(trie.covered(Prefix("192.0.0.0/8")))
        assert set(found.values()) == {"doc"}

    def test_items_sorted(self, trie):
        keys = list(trie.keys())
        assert keys == sorted(keys)


class TestFirstFree:
    def test_allocates_in_order(self):
        t = PrefixTrie()
        pool = Prefix("184.164.224.0/19")
        first = t.first_free(pool, 24)
        assert first == Prefix("184.164.224.0/24")
        t[first] = "alloc"
        second = t.first_free(pool, 24)
        assert second == Prefix("184.164.225.0/24")

    def test_skips_covering_allocation(self):
        t = PrefixTrie()
        pool = Prefix("10.0.0.0/8")
        t[Prefix("10.0.0.0/9")] = "half"
        free = t.first_free(pool, 10)
        assert free == Prefix("10.128.0.0/10")

    def test_exhaustion(self):
        t = PrefixTrie()
        pool = Prefix("192.0.2.0/30")
        for sub in pool.subnets(32):
            assert t.first_free(pool, 32) == sub
            t[sub] = True
        assert t.first_free(pool, 32) is None

    def test_invalid_length(self):
        t = PrefixTrie()
        with pytest.raises(ValueError):
            t.first_free(Prefix("10.0.0.0/24"), 8)


prefixes = st.builds(
    lambda v, l: Prefix(IPAddress(v, 4), l, strict=False),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)


@given(st.lists(prefixes, max_size=40), prefixes)
def test_lookup_matches_linear_scan(entries, target):
    """LPM result must equal the longest entry that contains the target."""
    trie = PrefixTrie()
    for i, p in enumerate(entries):
        trie[p] = i
    result = trie.lookup(target.address)
    expected = None
    store = {}
    for i, p in enumerate(entries):
        store[p] = i  # later duplicates replace earlier, like the trie
    for p, i in store.items():
        if p.contains(target.address):
            if expected is None or p.length > expected[0].length:
                expected = (p, i)
    assert result == expected


@given(st.lists(prefixes, unique=True, max_size=40))
def test_insert_remove_roundtrip(entries):
    trie = PrefixTrie()
    for i, p in enumerate(entries):
        trie[p] = i
    assert len(trie) == len(entries)
    assert sorted(trie.keys()) == sorted(entries)
    for p in entries:
        del trie[p]
    assert len(trie) == 0
    assert list(trie.items()) == []
