"""Exhaustive FSM transition tests."""

import pytest

from repro.bgp.fsm import BGPStateMachine, FsmError, FsmEvent, State


def test_happy_path_to_established():
    fsm = BGPStateMachine()
    assert fsm.state == State.IDLE
    fsm.fire(FsmEvent.MANUAL_START)
    assert fsm.state == State.CONNECT
    fsm.fire(FsmEvent.TRANSPORT_CONNECTED)
    assert fsm.state == State.OPEN_SENT
    fsm.fire(FsmEvent.OPEN_RECEIVED)
    assert fsm.state == State.OPEN_CONFIRM
    fsm.fire(FsmEvent.KEEPALIVE_RECEIVED)
    assert fsm.established


def test_transport_failure_goes_active():
    fsm = BGPStateMachine()
    fsm.fire(FsmEvent.MANUAL_START)
    fsm.fire(FsmEvent.TRANSPORT_FAILED)
    assert fsm.state == State.ACTIVE
    fsm.fire(FsmEvent.TRANSPORT_CONNECTED)
    assert fsm.state == State.OPEN_SENT


@pytest.mark.parametrize(
    "reset",
    [
        FsmEvent.MANUAL_STOP,
        FsmEvent.NOTIFICATION_RECEIVED,
        FsmEvent.HOLD_TIMER_EXPIRED,
        FsmEvent.OPEN_INVALID,
    ],
)
@pytest.mark.parametrize(
    "setup",
    [
        [],
        [FsmEvent.MANUAL_START],
        [FsmEvent.MANUAL_START, FsmEvent.TRANSPORT_CONNECTED],
        [FsmEvent.MANUAL_START, FsmEvent.TRANSPORT_CONNECTED, FsmEvent.OPEN_RECEIVED],
        [
            FsmEvent.MANUAL_START,
            FsmEvent.TRANSPORT_CONNECTED,
            FsmEvent.OPEN_RECEIVED,
            FsmEvent.KEEPALIVE_RECEIVED,
        ],
    ],
)
def test_reset_events_from_any_state(setup, reset):
    fsm = BGPStateMachine()
    for event in setup:
        fsm.fire(event)
    fsm.fire(reset)
    assert fsm.state == State.IDLE


def test_illegal_events_raise():
    fsm = BGPStateMachine()
    with pytest.raises(FsmError):
        fsm.fire(FsmEvent.UPDATE_RECEIVED)
    fsm.fire(FsmEvent.MANUAL_START)
    with pytest.raises(FsmError):
        fsm.fire(FsmEvent.OPEN_RECEIVED)


def test_update_requires_established():
    fsm = BGPStateMachine()
    fsm.fire(FsmEvent.MANUAL_START)
    fsm.fire(FsmEvent.TRANSPORT_CONNECTED)
    with pytest.raises(FsmError):
        fsm.fire(FsmEvent.UPDATE_RECEIVED)


def test_keepalive_keeps_established():
    fsm = BGPStateMachine()
    for event in [
        FsmEvent.MANUAL_START,
        FsmEvent.TRANSPORT_CONNECTED,
        FsmEvent.OPEN_RECEIVED,
        FsmEvent.KEEPALIVE_RECEIVED,
        FsmEvent.KEEPALIVE_RECEIVED,
        FsmEvent.UPDATE_RECEIVED,
    ]:
        fsm.fire(event)
    assert fsm.established


def test_history_and_observers():
    fsm = BGPStateMachine()
    seen = []
    fsm.observers.append(lambda old, event, new: seen.append((old, new)))
    fsm.fire(FsmEvent.MANUAL_START)
    assert seen == [(State.IDLE, State.CONNECT)]
    assert fsm.history[0] == (State.IDLE, FsmEvent.MANUAL_START, State.CONNECT)


def test_can_fire():
    fsm = BGPStateMachine()
    assert fsm.can_fire(FsmEvent.MANUAL_START)
    assert fsm.can_fire(FsmEvent.MANUAL_STOP)  # reset events always legal
    assert not fsm.can_fire(FsmEvent.OPEN_RECEIVED)


def test_automatic_start_mirrors_manual_start():
    fsm = BGPStateMachine()
    fsm.fire(FsmEvent.AUTOMATIC_START)
    assert fsm.state == State.CONNECT
    fsm.fire(FsmEvent.TRANSPORT_CONNECTED)
    fsm.fire(FsmEvent.OPEN_RECEIVED)
    fsm.fire(FsmEvent.KEEPALIVE_RECEIVED)
    assert fsm.established


def test_automatic_start_illegal_once_started():
    fsm = BGPStateMachine()
    fsm.fire(FsmEvent.MANUAL_START)
    with pytest.raises(FsmError):
        fsm.fire(FsmEvent.AUTOMATIC_START)


@pytest.mark.parametrize(
    "setup, expected",
    [
        ([FsmEvent.MANUAL_START], State.ACTIVE),
        ([FsmEvent.MANUAL_START, FsmEvent.TRANSPORT_CONNECTED], State.ACTIVE),
        (
            [
                FsmEvent.MANUAL_START,
                FsmEvent.TRANSPORT_CONNECTED,
                FsmEvent.OPEN_RECEIVED,
            ],
            State.IDLE,
        ),
        (
            [
                FsmEvent.MANUAL_START,
                FsmEvent.TRANSPORT_CONNECTED,
                FsmEvent.OPEN_RECEIVED,
                FsmEvent.KEEPALIVE_RECEIVED,
            ],
            State.IDLE,
        ),
    ],
)
def test_transport_failed_from_every_connected_state(setup, expected):
    # Before the OPEN exchange completes we fall back to ACTIVE and keep
    # listening; once in session, losing the transport is a full reset.
    fsm = BGPStateMachine()
    for event in setup:
        fsm.fire(event)
    fsm.fire(FsmEvent.TRANSPORT_FAILED)
    assert fsm.state == expected


def test_transport_failed_illegal_in_idle():
    fsm = BGPStateMachine()
    with pytest.raises(FsmError):
        fsm.fire(FsmEvent.TRANSPORT_FAILED)


def test_illegal_event_leaves_state_unchanged():
    fsm = BGPStateMachine()
    fsm.fire(FsmEvent.MANUAL_START)
    fsm.fire(FsmEvent.TRANSPORT_CONNECTED)
    history_len = len(fsm.history)
    with pytest.raises(FsmError):
        fsm.fire(FsmEvent.KEEPALIVE_RECEIVED)  # KEEPALIVE before OPEN
    assert fsm.state == State.OPEN_SENT
    assert len(fsm.history) == history_len
