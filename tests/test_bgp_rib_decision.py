"""Tests for RIB stages and the decision process."""

import pytest

from repro.net.addr import IPAddress, Prefix
from repro.bgp.attributes import ASPath, Origin, PathAttributes
from repro.bgp.decision import best_path, select_best
from repro.bgp.rib import AdjRIBIn, AdjRIBOut, LocRIB, Route

P = Prefix("184.164.224.0/24")


def route(
    path=(1,),
    peer="peer-a",
    local_pref=None,
    med=None,
    origin=Origin.IGP,
    ebgp=True,
    weight=0,
    igp_metric=0,
    learned_at=0.0,
    path_id=None,
    local=False,
    prefix=P,
):
    return Route(
        prefix=prefix,
        attributes=PathAttributes(
            origin=origin,
            as_path=ASPath.from_asns(path),
            next_hop=IPAddress("10.0.0.1"),
            med=med,
            local_pref=local_pref,
        ),
        peer_asn=path[0] if path else None,
        peer_id=peer,
        path_id=path_id,
        ebgp=ebgp,
        local=local,
        weight=weight,
        igp_metric=igp_metric,
        learned_at=learned_at,
    )


class TestAdjRIBIn:
    def test_add_and_replace(self):
        rib = AdjRIBIn("p")
        assert rib.add(route()) is None
        replaced = rib.add(route(path=(2, 1)))
        assert replaced is not None
        assert len(rib) == 1

    def test_add_path_multiple(self):
        rib = AdjRIBIn("p")
        rib.add(route(path_id=1))
        rib.add(route(path_id=2, path=(2, 1)))
        assert len(rib) == 2
        assert len(rib.routes_for(P)) == 2

    def test_remove(self):
        rib = AdjRIBIn("p")
        rib.add(route())
        assert rib.remove(P) is not None
        assert len(rib) == 0
        assert rib.remove(P) is None

    def test_clear(self):
        rib = AdjRIBIn("p")
        rib.add(route())
        rib.add(route(prefix=Prefix("10.0.0.0/8")))
        dropped = rib.clear()
        assert len(dropped) == 2 and len(rib) == 0


class TestLocRIB:
    def test_set_and_change_detection(self):
        rib = LocRIB()
        r1, r2 = route(), route(path=(2, 1), peer="peer-b")
        assert rib.set(P, r1, [r1, r2]) is True
        assert rib.set(P, r1, [r1, r2]) is False  # same best
        assert rib.set(P, r2, [r2, r1]) is True
        assert rib.best(P) == r2
        assert rib.candidates(P) == [r2, r1]

    def test_remove_via_none(self):
        rib = LocRIB()
        r = route()
        rib.set(P, r, [r])
        assert rib.set(P, None, []) is True
        assert rib.best(P) is None
        assert P not in rib


class TestAdjRIBOut:
    def test_duplicate_suppression(self):
        rib = AdjRIBOut("p")
        r = route()
        assert rib.advertise(r) is True
        assert rib.advertise(r) is False  # identical: no update needed
        assert rib.advertise(route(path=(2, 1))) is True

    def test_withdraw(self):
        rib = AdjRIBOut("p")
        rib.advertise(route())
        assert rib.withdraw(P) is not None
        assert P not in rib


class TestDecisionLadder:
    def test_weight_wins(self):
        lo, hi = route(weight=0), route(weight=100, peer="peer-b", path=(1, 2, 3))
        assert best_path([lo, hi])[0] is hi

    def test_local_pref_wins(self):
        lo = route(local_pref=100)
        hi = route(local_pref=200, peer="peer-b", path=(1, 2, 3))
        assert best_path([lo, hi])[0] is hi

    def test_default_local_pref_is_100(self):
        unset = route()  # defaults to 100
        lower = route(local_pref=99, peer="peer-b")
        assert best_path([unset, lower])[0] is unset

    def test_local_route_beats_learned(self):
        learned = route()
        local = route(local=True, peer="", ebgp=False, path=())
        # both weight 0 and same local-pref: local origination wins
        assert best_path([learned, local])[0] is local

    def test_shorter_path_wins(self):
        short = route(path=(1,))
        long = route(path=(2, 1), peer="peer-b")
        assert best_path([short, long])[0] is short

    def test_origin_tiebreak(self):
        igp = route(origin=Origin.IGP)
        egp = route(origin=Origin.EGP, peer="peer-b")
        inc = route(origin=Origin.INCOMPLETE, peer="peer-c")
        assert best_path([inc, egp, igp])[0] is igp

    def test_med_same_neighbor_only(self):
        a = route(path=(7, 1), med=10)
        b = route(path=(7, 2), med=5, peer="peer-b")
        assert best_path([a, b])[0] is b  # same neighbor AS 7: lower MED
        c = route(path=(8, 2), med=50, peer="peer-c")
        # Different neighbor AS: MED not compared; falls to later tiebreaks
        ranked = best_path([a, c])
        assert ranked[0].peer_id == "peer-a"  # peer-id tiebreak, not MED

    def test_always_compare_med(self):
        a = route(path=(7, 1), med=10)
        c = route(path=(8, 2), med=5, peer="peer-z")
        assert best_path([a, c], always_compare_med=True)[0] is c

    def test_med_intransitivity_is_order_insensitive(self):
        # The classic deterministic-MED triple: a beats b on MED (same
        # neighbor), but c interleaves on a MED-blind tiebreak.  A naive
        # comparison sort ranks these differently depending on input
        # order; the grouped ranking must not.
        a = route(path=(7, 1), med=5, learned_at=1.0)
        b = route(path=(7, 2), med=50, peer="peer-b", learned_at=0.0)
        c = route(path=(8, 3), med=0, peer="peer-c", learned_at=0.5)
        triple = [a, b, c]
        expected = best_path(triple)
        assert best_path(list(reversed(triple))) == expected
        assert best_path([b, a, c]) == expected
        assert best_path([c, a, b]) == expected
        # Same-neighbor MED still decides within the group.
        assert expected.index(a) < expected.index(b)

    def test_ebgp_over_ibgp(self):
        e = route(ebgp=True)
        i = route(ebgp=False, peer="peer-b")
        assert best_path([i, e])[0] is e

    def test_igp_metric(self):
        near = route(ebgp=False, igp_metric=5)
        far = route(ebgp=False, igp_metric=50, peer="peer-b")
        assert best_path([far, near])[0] is near

    def test_oldest_wins(self):
        old = route(learned_at=1.0)
        new = route(learned_at=2.0, peer="peer-b")
        assert best_path([new, old])[0] is old

    def test_peer_id_tiebreak(self):
        a = route(peer="10.0.0.1")
        b = route(peer="10.0.0.2")
        assert best_path([b, a])[0] is a

    def test_empty(self):
        best, ranked = select_best([])
        assert best is None and ranked == []

    def test_deterministic_total_order(self):
        routes = [
            route(peer=f"peer-{i}", path=tuple(range(1, 2 + i % 3)), med=i % 4)
            for i in range(8)
        ]
        ranked1 = best_path(routes)
        ranked2 = best_path(list(reversed(routes)))
        assert ranked1 == ranked2
