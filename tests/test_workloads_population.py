"""ClientPopulation / zipf_clients edge cases: empty and single-AS
populations, determinism under seeds, and ASNs absent from a topology."""

import pytest

from repro.inet.gen import InternetConfig, build_internet
from repro.inet.topology import ASGraph, ASKind, ASNode
from repro.workloads import ClientPopulation, zipf_clients


@pytest.fixture(scope="module")
def graph():
    return build_internet(
        InternetConfig(n_ases=500, total_prefixes=40_000, seed=13)
    ).graph


class TestClientPopulation:
    def test_empty_population(self):
        population = ClientPopulation(())
        assert population.total_clients == 0
        assert population.n_ases == 0
        assert population.asns() == ()
        assert population.items() == ()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            ClientPopulation(((7, -1),))

    def test_single_as_population(self):
        population = ClientPopulation(((42, 1000),))
        assert population.total_clients == 1000
        assert population.n_ases == 1
        assert population.asns() == (42,)

    def test_restrict_drops_absent_asns(self, graph):
        present = next(iter(graph.nodes())).asn
        population = ClientPopulation(((present, 10), (999_999_999, 20)))
        restricted = population.restrict(graph)
        assert restricted.asns() == (present,)
        assert restricted.total_clients == 10

    def test_restrict_of_empty_is_empty(self, graph):
        assert ClientPopulation(()).restrict(graph).n_ases == 0


class TestZipfClients:
    def test_zero_ases_yields_empty(self, graph):
        population = zipf_clients(graph, ases=0, clients=1000)
        assert population.n_ases == 0
        assert population.total_clients == 0

    def test_negative_ases_rejected(self, graph):
        with pytest.raises(ValueError, match=">= 0"):
            zipf_clients(graph, ases=-1, clients=10)

    def test_single_as_gets_everything(self, graph):
        population = zipf_clients(graph, ases=1, clients=777, seed=3)
        assert population.n_ases == 1
        assert population.total_clients == 777

    def test_total_is_exact_and_every_as_covered(self, graph):
        population = zipf_clients(graph, ases=50, clients=12_345, seed=4)
        assert population.total_clients == 12_345
        assert population.n_ases == 50
        assert all(c >= 1 for _, c in population.items())
        # Zipf: heaviest first, monotone non-increasing tail.
        volumes = [c for _, c in population.items()]
        assert volumes[0] == max(volumes)

    def test_too_few_clients_rejected(self, graph):
        with pytest.raises(ValueError, match="clients >="):
            zipf_clients(graph, ases=50, clients=10, seed=4)

    def test_deterministic_under_seed(self, graph):
        a = zipf_clients(graph, ases=40, clients=9_999, seed=21)
        b = zipf_clients(graph, ases=40, clients=9_999, seed=21)
        assert a == b

    def test_different_seeds_differ(self, graph):
        a = zipf_clients(graph, ases=40, clients=9_999, seed=21)
        b = zipf_clients(graph, ases=40, clients=9_999, seed=22)
        assert a.asns() != b.asns()

    def test_ases_capped_at_candidates(self):
        g = ASGraph()
        for asn in (1, 2, 3):
            g.add_as(ASNode(asn=asn, kind=ASKind.ACCESS, prefix_count=5))
        g.add_as(ASNode(asn=10, kind=ASKind.TIER1, prefix_count=50))
        g.add_provider(1, 10)
        g.add_provider(2, 10)
        g.add_provider(3, 10)
        population = zipf_clients(g, ases=100, clients=300, seed=0)
        assert population.n_ases == 3
        assert set(population.asns()) == {1, 2, 3}
        assert population.total_clients == 300

    def test_no_candidates_raises(self):
        g = ASGraph()
        g.add_as(ASNode(asn=10, kind=ASKind.TIER1, prefix_count=50))
        with pytest.raises(ValueError, match="no candidate"):
            zipf_clients(g, ases=5, clients=100)
