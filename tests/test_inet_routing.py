"""Gao–Rexford propagation tests: preference, valley-freeness, steering."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.inet.routing import Announcement, OriginSpec, RouteKind, propagate
from repro.inet.topology import ASGraph, ASNode


def graph_from_edges(c2p=(), p2p=()):
    g = ASGraph()
    asns = {a for e in list(c2p) + list(p2p) for a in e}
    for asn in sorted(asns):
        g.add_as(ASNode(asn=asn))
    for customer, provider in c2p:
        g.add_provider(customer, provider)
    for a, b in p2p:
        g.add_peering(a, b)
    return g


@pytest.fixture
def hierarchy():
    """1 and 2 are tier-1 peers; 3,4 their customers (transits, peers of
    each other); 5,6 stubs under 3 and 4."""
    return graph_from_edges(
        c2p=[(3, 1), (4, 2), (5, 3), (6, 4)],
        p2p=[(1, 2), (3, 4)],
    )


class TestBasicPropagation:
    def test_everyone_gets_a_route(self, hierarchy):
        outcome = propagate(hierarchy, Announcement.single(5))
        assert outcome.reachable_asns() == {1, 2, 3, 4, 5, 6}

    def test_origin_has_empty_path(self, hierarchy):
        outcome = propagate(hierarchy, Announcement.single(5))
        route = outcome.route(5)
        assert route.kind is RouteKind.ORIGIN and route.path == () and route.via is None

    def test_customer_route_preferred_over_peer(self, hierarchy):
        # AS 3: customer route to 5.
        outcome = propagate(hierarchy, Announcement.single(5))
        assert outcome.route(3).kind is RouteKind.CUSTOMER
        assert outcome.route(3).path == (5,)

    def test_peer_route_used_when_no_customer_route(self, hierarchy):
        # AS 4 hears 5 via peer 3 (path 3,5) and via provider 2 (longer).
        outcome = propagate(hierarchy, Announcement.single(5))
        route = outcome.route(4)
        assert route.kind is RouteKind.PEER
        assert route.path == (3, 5)

    def test_provider_route_last_resort(self, hierarchy):
        # AS 6 only hears via its provider 4.
        outcome = propagate(hierarchy, Announcement.single(5))
        route = outcome.route(6)
        assert route.kind is RouteKind.PROVIDER
        assert route.path == (4, 3, 5)

    def test_valley_free_no_peer_to_peer_transit(self):
        # stub 5 under 3; 3 peers with 4; 4 peers with 9.  9 must NOT
        # hear the route through 4 (peer route not exported to a peer).
        g = graph_from_edges(c2p=[(5, 3)], p2p=[(3, 4), (4, 9)])
        outcome = propagate(g, Announcement.single(5))
        assert outcome.route(4) is not None
        assert outcome.route(9) is None

    def test_peer_route_not_exported_to_provider(self):
        # 4 has provider 2 and peer 3 (origin's provider).  2 must not get
        # the route via its customer 4.
        g = graph_from_edges(c2p=[(5, 3), (4, 2)], p2p=[(3, 4)])
        outcome = propagate(g, Announcement.single(5))
        assert outcome.route(4).kind is RouteKind.PEER
        assert outcome.route(2) is None

    def test_shortest_path_tiebreak(self):
        # Two provider chains to the origin; pick the shorter.
        g = graph_from_edges(c2p=[(5, 3), (3, 1), (5, 4), (4, 2), (2, 1)])
        outcome = propagate(g, Announcement.single(5))
        assert outcome.route(1).path == (3, 5)

    def test_lowest_asn_tiebreak(self):
        g = graph_from_edges(c2p=[(5, 3), (5, 4), (3, 1), (4, 1)])
        outcome = propagate(g, Announcement.single(5))
        assert outcome.route(1).via == 3

    def test_disconnected_as_unreachable(self):
        g = graph_from_edges(c2p=[(5, 3)])
        g.add_as(ASNode(asn=99))
        outcome = propagate(g, Announcement.single(5))
        assert not outcome.reaches(99)


class TestSteering:
    def test_prepending_shifts_choice(self):
        # 9 hears via 3 (direct peer) and via 4; prepending toward all
        # neighbors doesn't change relative choice, but per-path length
        # grows.
        g = graph_from_edges(c2p=[(5, 3), (5, 4), (3, 1), (4, 1)])
        plain = propagate(g, Announcement.single(5))
        assert plain.route(1).via == 3
        prepended = propagate(
            g,
            Announcement(
                origins=(OriginSpec(asn=5, prepend=2, announce_to=(3,)), OriginSpec(asn=5, announce_to=(4,)))
            ),
        )
        # Note: multi-spec same origin is modeled as two origin specs; the
        # simpler steering API is announce_to, tested below.
        assert prepended.route(1) is not None

    def test_selective_announcement(self):
        """The PEERING primitive: announce via one provider only."""
        g = graph_from_edges(c2p=[(5, 3), (5, 4), (3, 1), (4, 1)])
        outcome = propagate(g, Announcement.single(5, announce_to=(4,)))
        assert outcome.route(4).path == (5,)
        assert outcome.route(3).kind is RouteKind.PROVIDER  # hears via 1
        assert outcome.route(1).via == 4

    def test_poisoning_excludes_as(self):
        """LIFEGUARD-style: poison 3 so it drops the route."""
        g = graph_from_edges(c2p=[(5, 3), (5, 4), (3, 1), (4, 1)])
        outcome = propagate(g, Announcement.single(5, poison=(3,)))
        assert outcome.route(3) is None
        assert outcome.route(1).via == 4
        assert 3 in outcome.route(4).path  # poisoned ASN visible in path

    def test_poisoned_path_length(self):
        g = graph_from_edges(c2p=[(5, 3)])
        outcome = propagate(g, Announcement.single(5, poison=(9,)))
        assert outcome.route(3).path == (5, 9, 5)

    def test_announce_to_nobody(self):
        g = graph_from_edges(c2p=[(5, 3)])
        outcome = propagate(g, Announcement.single(5, announce_to=()))
        assert outcome.route(3) is None


class TestMultiOrigin:
    def test_anycast_catchment_split(self):
        # Origins 5 and 6 under different providers; each side drains to
        # the nearest origin.
        g = graph_from_edges(c2p=[(5, 3), (6, 4), (3, 1), (4, 1), (7, 3), (8, 4)])
        outcome = propagate(
            g, Announcement(origins=(OriginSpec(asn=5), OriginSpec(asn=6)))
        )
        assert outcome.route(7).path[-1] == 5
        assert outcome.route(8).path[-1] == 6

    def test_hijack_more_attractive_nearby(self):
        """A hijacker attracts ASes closer to it than the victim."""
        g = graph_from_edges(
            c2p=[(5, 3), (3, 1), (66, 4), (4, 2), (9, 4)], p2p=[(1, 2)]
        )
        victim_only = propagate(g, Announcement.single(5))
        assert victim_only.route(9).path[-1] == 5
        contested = propagate(
            g, Announcement(origins=(OriginSpec(asn=5), OriginSpec(asn=66)))
        )
        assert contested.route(9).path[-1] == 66  # closer bogus origin wins


class TestExportsTo:
    def test_peer_export_is_cone_only(self, hierarchy):
        outcome = propagate(hierarchy, Announcement.single(5))
        # 3 selected a customer route; it may export to peer 4.
        exported = outcome.exports_to(3, 4)
        assert exported is not None and exported.path == (3, 5)
        # 4 selected a peer route; it must NOT export to peer... no peer,
        # but not to provider 2 either.
        assert outcome.exports_to(4, 2) is None

    def test_provider_export_to_customer_allowed(self, hierarchy):
        outcome = propagate(hierarchy, Announcement.single(5))
        exported = outcome.exports_to(4, 6)
        assert exported is not None and exported.path == (4, 3, 5)

    def test_export_to_non_neighbor_rejected(self, hierarchy):
        outcome = propagate(hierarchy, Announcement.single(5))
        assert outcome.exports_to(3, 6) is None

    def test_forwarding_chain(self, hierarchy):
        outcome = propagate(hierarchy, Announcement.single(5))
        assert outcome.forwarding_chain(6) == [6, 4, 3, 5]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_valley_free_paths(seed):
    """Every selected path must be valley-free: once the path goes 'down'
    (provider->customer) or 'across' (peer), it never goes 'up' again and
    crosses at most one peer edge."""
    import random

    from repro.inet.gen import InternetConfig, build_internet

    rng = random.Random(seed)
    inet = build_internet(InternetConfig(n_ases=120, seed=seed, total_prefixes=2000))
    graph = inet.graph
    origin = rng.choice(list(graph.asns()))
    outcome = propagate(graph, Announcement.single(origin))
    for asn, route in outcome.items():
        if route.via is None:
            continue
        hops = [asn] + list(route.path)
        # Classify each adjacent pair.
        kinds = []
        valid = True
        for a, b in zip(hops, hops[1:]):
            if a == b:
                continue  # prepending repeats
            if b in graph.customers(a):
                kinds.append("down")
            elif b in graph.providers(a):
                kinds.append("up")
            elif b in graph.peers(a):
                kinds.append("peer")
            else:
                valid = False  # poisoned segments only; none here
        assert valid, f"non-adjacent hop in path {hops}"
        # Valley-free: matches up* peer? down*
        state = "up"
        peers_crossed = 0
        for kind in kinds:
            if kind == "up":
                assert state == "up", f"up after {state} in {hops}"
            elif kind == "peer":
                peers_crossed += 1
                assert state == "up", f"peer after {state} in {hops}"
                state = "down"
            else:
                state = "down"
        assert peers_crossed <= 1
