"""Compiled propagation engine: equivalence with the reference, caching,
compilation invalidation, and batched/parallel sweeps.

The load-bearing guarantee is *route-for-route identity* with
:func:`repro.inet.routing.propagate` across every steering primitive the
testbed exposes (multi-origin, prepending, poisoning, selective
announcement) — checked here on seeded random internets with seeded
random announcements.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.inet.engine import (
    CompiledOutcome,
    CompiledTopology,
    OutcomeCache,
    PropagationEngine,
    canonical_key,
)
from repro.inet.gen import InternetConfig, build_internet
from repro.inet.routing import Announcement, OriginSpec, RouteKind, propagate
from repro.inet.topology import ASGraph, ASNode, TopologyError


def graph_from_edges(c2p=(), p2p=()):
    g = ASGraph()
    asns = {a for e in list(c2p) + list(p2p) for a in e}
    for asn in sorted(asns):
        g.add_as(ASNode(asn=asn))
    for customer, provider in c2p:
        g.add_provider(customer, provider)
    for a, b in p2p:
        g.add_peering(a, b)
    return g


def random_announcement(graph, rng, max_origins=3):
    """A random mix of the steering primitives, biased toward the common
    single-origin case."""
    asns = sorted(graph.asns())
    origins = []
    for _ in range(rng.choice([1, 1, 1, 2, max_origins])):
        origin = rng.choice(asns)
        neighbors = sorted(graph.neighbors(origin))
        announce_to = None
        if neighbors and rng.random() < 0.4:
            announce_to = tuple(
                rng.sample(neighbors, rng.randint(0, min(4, len(neighbors))))
            )
        poison = ()
        if rng.random() < 0.4:
            poison = tuple(rng.sample(asns, rng.randint(1, 2)))
        prepend = rng.randint(0, 3) if rng.random() < 0.4 else 0
        origins.append(
            OriginSpec(
                asn=origin, prepend=prepend, poison=poison, announce_to=announce_to
            )
        )
    return Announcement(origins=tuple(origins))


def assert_identical(graph, announcement, engine=None):
    engine = engine or PropagationEngine(graph)
    reference = propagate(graph, announcement)
    compiled = engine.propagate(announcement, use_cache=False)
    ref_routes = dict(reference.items())
    eng_routes = dict(compiled.items())
    assert set(ref_routes) == set(eng_routes)
    for asn, route in ref_routes.items():
        assert eng_routes[asn] == route, f"AS{asn}: {eng_routes[asn]} != {route}"
    return reference, compiled


class TestEquivalenceSmall:
    @pytest.fixture
    def hierarchy(self):
        return graph_from_edges(
            c2p=[(3, 1), (4, 2), (5, 3), (6, 4)],
            p2p=[(1, 2), (3, 4)],
        )

    def test_single_origin(self, hierarchy):
        assert_identical(hierarchy, Announcement.single(5))

    def test_selective_announcement(self, hierarchy):
        assert_identical(hierarchy, Announcement.single(5, announce_to=(3,)))

    def test_announce_to_nobody(self, hierarchy):
        _, outcome = assert_identical(
            hierarchy, Announcement.single(5, announce_to=())
        )
        assert outcome.reachable_asns() == {5}

    def test_poisoning(self, hierarchy):
        _, outcome = assert_identical(hierarchy, Announcement.single(5, poison=(4,)))
        assert not outcome.reaches(4)

    def test_prepending(self, hierarchy):
        _, outcome = assert_identical(hierarchy, Announcement.single(5, prepend=3))
        assert outcome.route(3).path == (5, 5, 5, 5)

    def test_multi_origin_anycast(self, hierarchy):
        assert_identical(
            hierarchy,
            Announcement(origins=(OriginSpec(asn=5), OriginSpec(asn=6))),
        )

    def test_same_origin_two_specs(self, hierarchy):
        # The steering shape the testbed emits: one ASN, per-neighbor specs.
        assert_identical(
            hierarchy,
            Announcement(
                origins=(
                    OriginSpec(asn=5, prepend=2, announce_to=(3,)),
                    OriginSpec(asn=5, announce_to=(3,)),
                )
            ),
        )

    def test_unknown_origin_raises(self, hierarchy):
        engine = PropagationEngine(hierarchy)
        with pytest.raises(TopologyError):
            engine.propagate(Announcement.single(999))

    def test_disconnected_as(self, hierarchy):
        hierarchy.add_as(ASNode(asn=99))
        _, outcome = assert_identical(hierarchy, Announcement.single(5))
        assert not outcome.reaches(99)
        assert outcome.route(99) is None


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_engine_matches_reference(seed):
    """Seeded random internet x random announcements: identical routes,
    paths, forwarding chains, and export decisions."""
    rng = random.Random(seed)
    inet = build_internet(InternetConfig(n_ases=90, seed=seed, total_prefixes=1500))
    graph = inet.graph
    engine = PropagationEngine(graph)
    for _ in range(3):
        announcement = random_announcement(graph, rng)
        reference, compiled = assert_identical(graph, announcement, engine)
        sample = rng.sample(sorted(graph.asns()), 12)
        for asn in sample:
            assert reference.as_path(asn) == compiled.as_path(asn)
            assert reference.forwarding_chain(asn) == compiled.forwarding_chain(asn)
            assert reference.reaches(asn) == compiled.reaches(asn)
            for neighbor in sorted(graph.neighbors(asn)):
                assert reference.exports_to(asn, neighbor) == compiled.exports_to(
                    asn, neighbor
                ), (asn, neighbor)
        assert len(reference) == len(compiled)
        assert reference.reachable_asns() == compiled.reachable_asns()


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_subprefix_lpm_matches_reference(seed):
    """Sub-prefix hijack shape: a covering /20 and a more-specific /24
    from different origins.  Both engines must converge each prefix
    identically, and longest-prefix match over the pair must pick the
    same (prefix, route) at every AS — the data-plane outcome a
    sub-prefix hijack is judged by."""
    from repro.inet.routing import resolve_lpm
    from repro.net.addr import IPAddress, Prefix

    covering_pfx = Prefix("198.18.0.0/20")
    specific_pfx = Prefix("198.18.0.0/24")
    rng = random.Random(seed)
    inet = build_internet(InternetConfig(n_ases=80, seed=seed))
    graph = inet.graph
    engine = PropagationEngine(graph)
    asns = sorted(graph.asns())
    victim = rng.choice(asns)
    attacker = rng.choice([a for a in asns if a != victim])
    covering = Announcement.single(victim, prefix=covering_pfx)
    specific = Announcement.single(attacker, prefix=specific_pfx)

    ref = {
        covering_pfx: propagate(graph, covering),
        specific_pfx: propagate(graph, specific),
    }
    eng = {
        covering_pfx: engine.propagate(covering, use_cache=False),
        specific_pfx: engine.propagate(specific, use_cache=False),
    }
    for prefix in (covering_pfx, specific_pfx):
        assert dict(ref[prefix].items()) == dict(eng[prefix].items())

    inside = IPAddress("198.18.0.77")  # in the /24
    outside = IPAddress("198.18.8.1")  # in the /20 only
    for asn in rng.sample(asns, 20):
        for target in (inside, outside, specific_pfx, covering_pfx):
            assert resolve_lpm(ref, asn, target) == resolve_lpm(eng, asn, target)
        hit = resolve_lpm(eng, asn, inside)
        if eng[specific_pfx].reaches(asn):
            # The more-specific always wins where it is routable.
            assert hit is not None and hit[0] == specific_pfx
        out = resolve_lpm(eng, asn, outside)
        if out is not None:
            assert out[0] == covering_pfx


class TestCompilation:
    def test_compiles_once_per_version(self):
        g = graph_from_edges(c2p=[(5, 3), (3, 1)])
        engine = PropagationEngine(g)
        engine.propagate(Announcement.single(5))
        engine.propagate(Announcement.single(3))
        assert engine.compile_count == 1

    def test_recompiles_on_mutation(self):
        g = graph_from_edges(c2p=[(5, 3), (3, 1)])
        engine = PropagationEngine(g)
        before = engine.propagate(Announcement.single(5))
        assert not before.reaches(7)
        g.add_as(ASNode(asn=7))
        g.add_provider(7, 3)
        after = engine.propagate(Announcement.single(5))
        assert engine.compile_count == 2
        assert after.reaches(7)
        assert_identical(g, Announcement.single(5), engine)

    def test_version_counter_tracks_all_mutations(self):
        g = ASGraph()
        v = g.version
        g.add_as(ASNode(asn=1)), g.add_as(ASNode(asn=2)), g.add_as(ASNode(asn=3))
        assert g.version == v + 3
        g.add_provider(1, 2)
        g.add_peering(2, 3)
        g.remove_peering(2, 3)
        g.remove_as(3)
        assert g.version == v + 7

    def test_cached_adjacency_views_invalidate(self):
        g = graph_from_edges(c2p=[(5, 3)])
        assert g.providers(5) == frozenset({3})
        assert g.sorted_providers(5) == (3,)
        g.add_as(ASNode(asn=9))
        g.add_provider(5, 9)
        assert g.providers(5) == frozenset({3, 9})
        assert g.sorted_providers(5) == (3, 9)
        assert g.neighbors(9) == frozenset({5})

    def test_compiled_topology_roundtrips_through_pickle(self):
        import pickle

        g = graph_from_edges(c2p=[(5, 3), (3, 1)], p2p=[(3, 4)])
        ct = CompiledTopology(g)
        clone = pickle.loads(pickle.dumps(ct))
        assert clone.asns == ct.asns
        assert clone.providers == ct.providers
        assert clone.customers == ct.customers
        assert clone.peers == ct.peers
        assert clone.peer_nodes == ct.peer_nodes


class TestResultCache:
    def test_hit_and_miss_stats(self):
        g = graph_from_edges(c2p=[(5, 3), (3, 1)])
        engine = PropagationEngine(g)
        a = Announcement.single(5)
        first = engine.propagate(a)
        second = engine.propagate(a)
        assert first is second
        stats = engine.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_announce_to_order_is_canonicalized(self):
        g = graph_from_edges(c2p=[(5, 3), (5, 4), (3, 1), (4, 1)])
        engine = PropagationEngine(g)
        a = Announcement.single(5, announce_to=(4, 3))
        b = Announcement.single(5, announce_to=(3, 4))
        assert canonical_key(a) == canonical_key(b)
        assert engine.propagate(a) is engine.propagate(b)

    def test_mutation_invalidates_cache(self):
        g = graph_from_edges(c2p=[(5, 3), (3, 1)])
        engine = PropagationEngine(g)
        before = engine.propagate(Announcement.single(5))
        g.add_as(ASNode(asn=7))
        g.add_provider(7, 3)
        after = engine.propagate(Announcement.single(5))
        assert after is not before
        assert after.reaches(7) and not before.reaches(7)

    def test_stale_entries_pruned_on_recompile(self):
        g = graph_from_edges(c2p=[(5, 3), (3, 1)])
        engine = PropagationEngine(g)
        engine.propagate(Announcement.single(5))
        assert len(engine.cache) == 1
        g.add_peering(5, 1)
        engine.propagate(Announcement.single(3))
        assert all(key[0] == g.version for key in engine.cache._data)

    def test_lru_eviction(self):
        cache = OutcomeCache(maxsize=2)
        cache.put(("v", 1), "a")
        cache.put(("v", 2), "b")
        assert cache.get(("v", 1)) == "a"  # refresh 1
        cache.put(("v", 3), "c")  # evicts 2
        assert cache.get(("v", 2)) is None
        assert cache.get(("v", 1)) == "a"
        assert cache.evictions == 1


class TestSweeps:
    @pytest.fixture(scope="class")
    def world(self):
        inet = build_internet(InternetConfig(n_ases=120, seed=42, total_prefixes=2000))
        rng = random.Random(42)
        anns = [random_announcement(inet.graph, rng) for _ in range(12)]
        return inet.graph, anns

    def test_propagate_many_matches_singles(self, world):
        graph, anns = world
        engine = PropagationEngine(graph)
        outcomes = engine.propagate_many(anns)
        for announcement, outcome in zip(anns, outcomes):
            reference = propagate(graph, announcement)
            assert dict(reference.items()) == dict(outcome.items())

    def test_propagate_many_serves_repeats_from_cache(self, world):
        graph, anns = world
        engine = PropagationEngine(graph)
        engine.propagate_many(anns)
        again = engine.propagate_many(anns)
        assert engine.cache.hits >= len(anns)
        for announcement, outcome in zip(anns, again):
            assert outcome is engine.propagate(announcement)

    def test_propagate_many_parallel_matches_serial(self, world):
        graph, anns = world
        engine = PropagationEngine(graph)
        serial = engine.propagate_many(anns, use_cache=False)
        parallel = engine.propagate_many(anns, parallel=2, use_cache=False)
        for a, b in zip(serial, parallel):
            assert dict(a.items()) == dict(b.items())

    def test_parallel_outcomes_are_compiled(self, world):
        graph, anns = world
        engine = PropagationEngine(graph)
        for outcome in engine.propagate_many(anns[:3], parallel=2, use_cache=False):
            assert isinstance(outcome, CompiledOutcome)


class TestCompiledOutcomeSurface:
    """The compact table must be indistinguishable behind the public API."""

    @pytest.fixture(scope="class")
    def pair(self):
        graph = graph_from_edges(
            c2p=[(3, 1), (4, 2), (5, 3), (6, 4), (7, 3)],
            p2p=[(1, 2), (3, 4)],
        )
        announcement = Announcement.single(5)
        return propagate(graph, announcement), PropagationEngine(graph).propagate(
            announcement
        )

    def test_route_kinds(self, pair):
        reference, compiled = pair
        for asn in (1, 2, 3, 4, 5, 6, 7):
            ref = reference.route(asn)
            assert compiled.route(asn) == ref
            if ref is not None:
                assert isinstance(compiled.route(asn).kind, RouteKind)

    def test_route_memoized(self, pair):
        _, compiled = pair
        assert compiled.route(6) is compiled.route(6)

    def test_forwarding_chain_blackhole_and_origin(self, pair):
        reference, compiled = pair
        assert compiled.forwarding_chain(6) == reference.forwarding_chain(6) == [6, 4, 3, 5]
        assert compiled.forwarding_chain(5) == [5]
        assert compiled.forwarding_chain(999) == [999]  # unknown AS: chain stops

    def test_len_and_items(self, pair):
        reference, compiled = pair
        assert len(compiled) == len(reference)
        assert dict(compiled.items()) == dict(reference.items())
