"""Tests for the discrete-event engine."""

import pytest

from repro.sim import Engine, SimulationError


class TestScheduling:
    def test_runs_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(5, lambda: order.append("b"))
        engine.schedule(1, lambda: order.append("a"))
        engine.schedule(9, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 9

    def test_fifo_for_simultaneous(self):
        engine = Engine()
        order = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_in_past_rejected(self):
        engine = Engine()
        engine.schedule(5, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1, lambda: None)

    def test_run_until(self):
        engine = Engine()
        fired = []
        engine.schedule(1, lambda: fired.append(1))
        engine.schedule(10, lambda: fired.append(10))
        engine.run(until=5)
        assert fired == [1]
        assert engine.now == 5
        engine.run()
        assert fired == [1, 10]

    def test_run_for(self):
        engine = Engine()
        fired = []
        engine.schedule(3, lambda: fired.append(3))
        engine.run_for(2)
        assert engine.now == 2 and fired == []
        engine.run_for(2)
        assert fired == [3]

    def test_cancel(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1, lambda: fired.append(1))
        event.cancel()
        engine.run()
        assert fired == []

    def test_events_can_schedule_events(self):
        engine = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule(1, lambda: chain(n + 1))

        engine.schedule(0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3

    def test_livelock_guard(self):
        engine = Engine()

        def forever():
            engine.schedule(0, forever)

        engine.schedule(0, forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)


class TestTimer:
    def test_fires_once(self):
        engine = Engine()
        fired = []
        timer = engine.timer(5, lambda: fired.append(engine.now))
        timer.start()
        engine.run()
        assert fired == [5]
        assert not timer.running

    def test_restart_pushes_back(self):
        engine = Engine()
        fired = []
        timer = engine.timer(5, lambda: fired.append(engine.now))
        timer.start()
        engine.run(until=3)
        timer.start()  # re-arm at t=3
        engine.run()
        assert fired == [8]

    def test_stop(self):
        engine = Engine()
        fired = []
        timer = engine.timer(5, lambda: fired.append(1))
        timer.start()
        timer.stop()
        engine.run()
        assert fired == []

    def test_interval_override(self):
        engine = Engine()
        fired = []
        timer = engine.timer(5, lambda: fired.append(engine.now))
        timer.start(interval=2)
        engine.run()
        assert fired == [2]
