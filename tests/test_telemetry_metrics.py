"""Tests for repro.telemetry.metrics and the stats migration onto it."""

import pytest

from repro.inet.engine import OutcomeCache, PropagationEngine
from repro.inet.gen import InternetConfig, build_internet
from repro.inet.routing import Announcement, OriginSpec
from repro.telemetry.metrics import (
    MetricError,
    MetricsRegistry,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("peering_ops_total", "ops")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_labels_are_independent_children(self, registry):
        counter = registry.counter("peering_ops_total", "ops", ("server",))
        counter.labels("a").inc()
        counter.labels("b").inc(4)
        assert counter.labels("a").value == 1.0
        assert counter.labels("b").value == 4.0
        assert counter.value == 5.0  # family value sums children

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("peering_ops_total", "ops")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_wrong_label_count_rejected(self, registry):
        counter = registry.counter("peering_ops_total", "ops", ("server",))
        with pytest.raises(MetricError):
            counter.labels("a", "b")


class TestGauge:
    def test_set_and_adjust(self, registry):
        gauge = registry.gauge("peering_depth", "depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0


class TestHistogram:
    def test_observe_buckets_sum_count(self, registry):
        histogram = registry.histogram(
            "peering_seconds", "latency", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        child = histogram.labels()
        assert child.count == 3
        assert child.sum == pytest.approx(5.55)
        cumulative = dict(child.cumulative())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 2
        assert cumulative[float("inf")] == 3


class TestRegistry:
    def test_reregistration_is_idempotent(self, registry):
        first = registry.counter("peering_ops_total", "ops", ("server",))
        second = registry.counter("peering_ops_total", "ops", ("server",))
        assert first is second

    def test_type_mismatch_raises(self, registry):
        registry.counter("peering_ops_total", "ops")
        with pytest.raises(MetricError):
            registry.gauge("peering_ops_total", "ops")

    def test_label_mismatch_raises(self, registry):
        registry.counter("peering_ops_total", "ops", ("server",))
        with pytest.raises(MetricError):
            registry.counter("peering_ops_total", "ops", ("client",))

    def test_export_text_format(self, registry):
        counter = registry.counter("peering_ops_total", "ops total", ("server",))
        counter.labels("ams\n\"x\"").inc()
        text = registry.export_text()
        assert "# HELP peering_ops_total ops total" in text
        assert "# TYPE peering_ops_total counter" in text
        # label values are escaped per the exposition format
        assert 'peering_ops_total{server="ams\\n\\"x\\""} 1' in text

    def test_export_histogram_series(self, registry):
        registry.histogram("peering_seconds", "latency", buckets=(1.0,)).observe(0.5)
        text = registry.export_text()
        assert 'peering_seconds_bucket{le="1"} 1' in text
        assert 'peering_seconds_bucket{le="+Inf"} 1' in text
        assert "peering_seconds_sum 0.5" in text
        assert "peering_seconds_count 1" in text

    def test_snapshot_and_delta(self, registry):
        counter = registry.counter("peering_ops_total", "ops")
        counter.inc(2)
        before = registry.snapshot()
        counter.inc(3)
        delta = registry.delta(before)
        assert delta["peering_ops_total"] == 3.0


class TestOutcomeCacheMigration:
    """The cache's stat dict moved onto MetricsRegistry; the old int API
    must keep working (satellite: summary stays a thin view)."""

    def test_counts_via_properties(self):
        cache = OutcomeCache(maxsize=2)
        cache.put(("a",), "A")
        assert cache.get(("a",)) == "A"
        assert cache.get(("b",)) is None
        assert isinstance(cache.hits, int) and cache.hits == 1
        assert cache.misses == 1
        cache.put(("b",), "B")
        cache.put(("c",), "C")
        assert cache.evictions == 1

    def test_stats_shape_unchanged(self):
        cache = OutcomeCache(maxsize=4)
        stats = cache.stats()
        assert set(stats) == {"size", "maxsize", "hits", "misses", "evictions"}

    def test_shared_registry_exports_cache_series(self):
        registry = MetricsRegistry()
        cache = OutcomeCache(maxsize=4, metrics=registry, name="test")
        cache.get(("missing",))
        text = registry.export_text()
        assert 'peering_cache_misses_total{cache="test"} 1' in text


class TestEngineMigration:
    def test_compile_and_run_counters(self):
        internet = build_internet(InternetConfig(n_ases=80, seed=5, total_prefixes=1000))
        registry = MetricsRegistry()
        engine = PropagationEngine(internet.graph, metrics=registry)
        origin = OriginSpec(asn=next(internet.graph.asns()))
        engine.propagate(Announcement(origins=(origin,)))
        assert engine.compile_count == 1
        snap = registry.snapshot()
        assert snap["peering_propagation_compiles_total"] == 1.0
        assert snap["peering_propagation_runs_total"] == 1.0
        assert snap["peering_propagation_seconds_count"] == 1.0
