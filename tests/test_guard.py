"""The supervision layer (repro.guard): circuit breakers, quarantine,
watchdog, control journaling — unit tests, integration tests against the
live testbed, stale-outcome regression tests, and the chaos acceptance
run the PR's criteria specify."""

import pytest

from repro.bgp.attributes import ASPath, Origin, PathAttributes
from repro.core import Testbed
from repro.core.alerts import Severity
from repro.core.safety import SafetyVerdict
from repro.core.server import AnnouncementSpec, spec_from_tuple, spec_to_tuple
from repro.faults import FaultPlan
from repro.guard import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    ControlJournal,
    JournalRecord,
    QuarantineConfig,
    QuarantineManager,
    Supervisor,
    WatchdogConfig,
)
from repro.inet.gen import InternetConfig
from repro.net.addr import Prefix
from repro.sim import Engine


# -- shared builders ----------------------------------------------------------


def build_testbed(engine_seed=0):
    tb = Testbed.build_default(
        InternetConfig(n_ases=120, total_prefixes=5_000, seed=11)
    )
    tb.engine.seed = engine_seed
    return tb


FAST_BREAKER = BreakerConfig(
    window_seconds=10.0,
    max_updates_per_window=20,
    max_flaps_per_window=8,
    max_prefixes=4,
    cooldown=20.0,
    probe_window=10.0,
)
FAST_QUARANTINE = QuarantineConfig(strike_threshold=2, base_duration=80.0)
FAST_WATCHDOG = WatchdogConfig(probe_interval=2.0, restart_delay=5.0)


def supervise_fast(tb):
    return tb.supervise(
        breaker=FAST_BREAKER, quarantine=FAST_QUARANTINE, watchdog=FAST_WATCHDOG
    )


def routes_of(outcome, graph):
    """Route-for-route snapshot of an outcome: asn -> AS path."""
    return {
        node.asn: outcome.as_path(node.asn)
        for node in graph.nodes()
    }


# -- journal unit tests -------------------------------------------------------


class TestControlJournal:
    def test_sequence_is_monotonic_and_shared(self):
        journal = ControlJournal()
        a = journal.append(0.0, "connect", server="s", client="c")
        direct = journal.next_seq()  # e.g. the safety audit log drawing
        b = journal.append(1.0, "announce", server="s", client="c",
                           prefix="184.164.224.0/24", spec=(None, 0, ()))
        assert a.seq < direct < b.seq

    def test_replay_folds_announce_withdraw(self):
        journal = ControlJournal()
        journal.append(0.0, "connect", server="s1", client="c1")
        journal.append(1.0, "announce", server="s1", client="c1",
                       prefix="184.164.224.0/24", spec=(None, 0, ()))
        journal.append(2.0, "announce", server="s1", client="c1",
                       prefix="184.164.225.0/24", spec=((7,), 2, (13,)))
        journal.append(3.0, "withdraw", server="s1", client="c1",
                       prefix="184.164.224.0/24")
        state = journal.server_state("s1")
        assert state == {"c1": {"184.164.225.0/24": ((7,), 2, (13,))}}

    def test_replay_is_idempotent_for_redundant_records(self):
        journal = ControlJournal()
        spec = (None, 0, ())
        for _ in range(3):  # re-announcing the same state is a no-op
            journal.append(0.0, "announce", server="s", client="c",
                           prefix="184.164.224.0/24", spec=spec)
        journal.append(1.0, "withdraw", server="s", client="c",
                       prefix="184.164.230.0/24")  # absent: ignored
        assert journal.server_state("s") == {"c": {"184.164.224.0/24": spec}}

    def test_quarantine_clears_client_everywhere_release_unblocks(self):
        journal = ControlJournal()
        for server in ("s1", "s2"):
            journal.append(0.0, "announce", server=server, client="evil",
                           prefix="184.164.224.0/24", spec=(None, 0, ()))
        journal.append(1.0, "announce", server="s1", client="good",
                       prefix="184.164.225.0/24", spec=(None, 0, ()))
        journal.append(2.0, "quarantine", client="evil")
        snap = journal.replay()
        assert snap.quarantined == ("evil",)
        assert journal.server_state("s1") == {
            "evil": {}, "good": {"184.164.225.0/24": (None, 0, ())}
        }
        assert journal.server_state("s2") == {"evil": {}}
        journal.append(3.0, "release", client="evil")
        assert journal.quarantined_clients() == ()

    def test_snapshot_compaction_invariant(self):
        """replay(snapshot + tail) == replay(full log) at every split."""
        actions = [
            (0.0, "connect", "s1", "c1", "", None),
            (1.0, "announce", "s1", "c1", "184.164.224.0/24", (None, 0, ())),
            (2.0, "announce", "s2", "c2", "184.164.225.0/24", ((9,), 1, ())),
            (3.0, "withdraw", "s1", "c1", "184.164.224.0/24", None),
            (4.0, "announce", "s1", "c1", "184.164.226.0/24", (None, 3, (5,))),
            (5.0, "quarantine", "", "c2", "", None),
            (6.0, "release", "", "c2", "", None),
            (7.0, "announce", "s2", "c2", "184.164.225.0/24", (None, 0, ())),
            (8.0, "disconnect", "s1", "c1", "", None),
        ]

        def journal_with(entries):
            j = ControlJournal()
            for time, action, server, client, prefix, spec in entries:
                j.append(time, action, server=server, client=client,
                         prefix=prefix, spec=spec)
            return j

        full = journal_with(actions).replay()
        for split in range(len(actions) + 1):
            j = journal_with(actions[:split])
            j.snapshot()  # compacts, truncates the tail
            assert j.records == []
            for time, action, server, client, prefix, spec in actions[split:]:
                j.append(time, action, server=server, client=client,
                         prefix=prefix, spec=spec)
            snap = j.replay()
            assert snap.announcements == full.announcements, f"split={split}"
            assert snap.quarantined == full.quarantined, f"split={split}"
            assert snap.attached == full.attached, f"split={split}"

    def test_dump_load_round_trip(self):
        journal = ControlJournal()
        journal.append(0.5, "connect", server="s", client="c")
        journal.append(1.5, "announce", server="s", client="c",
                       prefix="184.164.224.0/24", spec=((3, 4), 1, (9,)))
        lines = journal.dump_lines()
        loaded = ControlJournal.load_lines(iter(lines))
        assert loaded.records == journal.records
        assert loaded.replay().announcements == journal.replay().announcements
        # the loaded journal continues the sequence, not restarts it
        assert loaded.append(2.0, "release", client="c").seq > lines_last_seq(lines)

    def test_record_line_round_trip(self):
        record = JournalRecord(seq=7, time=3.25, action="announce", server="s",
                               client="c", prefix="184.164.224.0/24",
                               spec=((1, 2), 3, (4,)))
        assert JournalRecord.from_line(record.to_line()) == record

    def test_spec_tuple_round_trip(self):
        spec = AnnouncementSpec(peers=(7, 9), prepend=2, poison=(13,))
        assert spec_from_tuple(spec_to_tuple(spec)) == spec
        bare = AnnouncementSpec()
        assert spec_from_tuple(spec_to_tuple(bare)) == bare


def lines_last_seq(lines):
    import json

    return json.loads(lines[-1])["seq"]


# -- breaker unit tests -------------------------------------------------------


class TestCircuitBreaker:
    def test_update_storm_trips(self):
        b = CircuitBreaker(BreakerConfig(window_seconds=10, max_updates_per_window=5))
        assert all(b.admit_update(float(i) / 10) for i in range(5))
        assert not b.admit_update(0.6)
        assert b.state is BreakerState.OPEN
        assert "storm" in b.trip_reason

    def test_window_slides(self):
        b = CircuitBreaker(BreakerConfig(window_seconds=1.0, max_updates_per_window=5))
        for i in range(20):  # 2 per second: never more than 2 in any window
            assert b.admit_update(i * 0.5)
        assert b.state is BreakerState.CLOSED

    def test_flap_rate_trips(self):
        b = CircuitBreaker(BreakerConfig(window_seconds=10, max_flaps_per_window=3))
        for i in range(3):
            assert b.record_flap(float(i))
        assert not b.record_flap(3.0)
        assert b.state is BreakerState.OPEN

    def test_max_prefix_trips(self):
        b = CircuitBreaker(BreakerConfig(max_prefixes=2))
        assert b.admit_prefix_count(2, 0.0)
        assert not b.admit_prefix_count(3, 1.0)
        assert b.state is BreakerState.OPEN
        assert "max-prefix" in b.trip_reason

    def test_open_refuses_everything(self):
        b = CircuitBreaker()
        b.trip(0.0, "test")
        assert not b.admit_update(1.0)
        assert not b.record_flap(1.0)
        assert not b.admit_prefix_count(1, 1.0)

    def test_cooldown_doubles_and_caps(self):
        config = BreakerConfig(cooldown=10.0, cooldown_max=35.0)
        b = CircuitBreaker(config)
        assert b.trip(0.0, "first") == 10.0
        b.half_open(10.0)
        assert b.trip(11.0, "second") == 20.0
        b.half_open(31.0)
        assert b.trip(32.0, "third") == 35.0  # capped

    def test_clean_probe_resets_trip_ladder(self):
        b = CircuitBreaker(BreakerConfig(cooldown=10.0))
        b.trip(0.0, "once")
        b.half_open(10.0)
        b.close(20.0)
        assert b.state is BreakerState.CLOSED
        assert b.trips == 0
        assert b.trip(21.0, "fresh") == 10.0  # back to base cooldown

    def test_violation_while_half_open_retrips(self):
        b = CircuitBreaker(BreakerConfig(window_seconds=10, max_updates_per_window=2))
        b.trip(0.0, "first")
        b.half_open(30.0)
        assert b.admit_update(30.1)
        assert b.admit_update(30.2)
        assert not b.admit_update(30.3)  # probe failed
        assert b.state is BreakerState.OPEN
        assert b.trips == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(window_seconds=0)
        with pytest.raises(ValueError):
            BreakerConfig(max_prefixes=0)


# -- quarantine unit tests ----------------------------------------------------


class _StubSupervisor:
    """Just enough Supervisor surface for QuarantineManager unit tests."""

    def __init__(self):
        from repro.core.alerts import EventBus

        self.engine = Engine()
        self.events = EventBus(self.engine)
        self.contained = []
        self.readmitted = []

    def contain_client(self, client_id, reason):
        self.contained.append((client_id, reason))
        return 0

    def readmit_client(self, client_id):
        self.readmitted.append(client_id)


class TestQuarantineManager:
    def test_strikes_accumulate_to_quarantine(self):
        sup = _StubSupervisor()
        q = QuarantineManager(sup, QuarantineConfig(strike_threshold=3))
        assert not q.strike("c", "one", 0.0)
        assert not q.strike("c", "two", 1.0)
        assert q.strike("c", "three", 2.0)
        assert q.is_quarantined("c")
        assert sup.contained == [("c", "3 strikes: three")]

    def test_strikes_decay_outside_window(self):
        sup = _StubSupervisor()
        q = QuarantineManager(
            sup, QuarantineConfig(strike_threshold=2, strike_window=10.0)
        )
        q.strike("c", "old", 0.0)
        assert not q.strike("c", "much later", 100.0)  # first one decayed
        assert not q.is_quarantined("c")

    def test_duration_doubles_per_offense_and_caps(self):
        sup = _StubSupervisor()
        q = QuarantineManager(
            sup,
            QuarantineConfig(
                strike_threshold=1, base_duration=100.0, max_duration=300.0
            ),
        )
        assert q.quarantine("c", "first", 0.0) == 100.0
        q.release("c", 100.0)
        assert q.quarantine("c", "second", 200.0) == 200.0
        q.release("c", 400.0)
        assert q.quarantine("c", "third", 500.0) == 300.0  # capped

    def test_timed_release_fires_on_engine(self):
        sup = _StubSupervisor()
        q = QuarantineManager(
            sup, QuarantineConfig(strike_threshold=1, base_duration=50.0)
        )
        q.strike("c", "bad", 0.0)
        assert q.is_quarantined("c")
        sup.engine.run_for(49.0)
        assert q.is_quarantined("c")
        sup.engine.run_for(2.0)
        assert not q.is_quarantined("c")
        assert sup.readmitted == ["c"]

    def test_strikes_while_quarantined_are_ignored(self):
        sup = _StubSupervisor()
        q = QuarantineManager(sup, QuarantineConfig(strike_threshold=1))
        q.strike("c", "bad", 0.0)
        assert not q.strike("c", "still bad", 1.0)
        assert q.offenses("c") == 1


# -- safety enforcer satellites ------------------------------------------------


class TestSafetyAudit:
    def test_audit_entries_carry_monotonic_seq(self):
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        client.announce(client.prefixes[0])
        client.announce(Prefix("10.0.0.0/24"))  # hijack: blocked
        log = tb.server("gatech01").safety.audit_log
        assert len(log) >= 2
        seqs = [entry.seq for entry in log]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_violation_counter_and_reset(self):
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        safety = tb.server("gatech01").safety
        client.announce(Prefix("10.0.0.0/24"))
        client.announce(Prefix("10.0.1.0/24"))
        assert safety.violation_count("exp") == 2
        safety.reset_client("exp")
        assert safety.violation_count("exp") == 0

    def test_on_violation_hook_fires(self):
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        seen = []
        tb.server("gatech01").safety.on_violation = (
            lambda cid, decision, now: seen.append((cid, decision.verdict))
        )
        client.announce(Prefix("10.0.0.0/24"))
        assert seen == [("exp", SafetyVerdict.PREFIX_OUTSIDE_TESTBED)]

    def test_supervised_audit_shares_journal_sequence(self):
        tb = build_testbed()
        supervise_fast(tb)
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        client.announce(client.prefixes[0])  # journaled
        client.announce(Prefix("10.0.0.0/24"))  # audited (blocked)
        journal_seqs = {r.seq for r in tb.journal.records}
        audit_seqs = {e.seq for e in tb.server("gatech01").safety.audit_log}
        assert journal_seqs and audit_seqs
        assert not journal_seqs & audit_seqs  # one shared counter, no collisions

    def test_damper_reset_peer_clears_entries(self):
        from repro.bgp.dampening import RouteFlapDamper

        damper = RouteFlapDamper()
        p = Prefix("184.164.224.0/24")
        for t in range(6):
            damper.record_withdrawal("c1", p, float(t))
        damper.record_withdrawal("c2", p, 0.0)
        assert damper.reset_peer("c1") == 1
        assert damper.flap_count("c1", p) == 0
        assert damper.flap_count("c2", p) == 1


class TestSeverity:
    def test_of_severity_filters_and_orders(self):
        tb = build_testbed()
        tb.events.emit("a", source="x", severity="info")
        tb.events.emit("b", source="x", severity="critical")
        tb.events.emit("c", source="x")  # untagged: never in severity views
        assert [e.kind for e in tb.events.of_severity(Severity.WARNING)] == ["b"]
        assert [e.kind for e in tb.events.of_severity(Severity.INFO)] == ["a", "b"]


# -- journal-driven crash recovery --------------------------------------------


class TestJournalRecovery:
    def test_unsupervised_hard_crash_loses_state(self):
        """The motivating failure: without the journal, a hard crash wipes
        announcement state and restart cannot restore it."""
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        gt = tb.server("gatech01")
        gt.crash(hard=True)
        gt.restart()
        assert gt.announcements_for("exp") == {}
        assert prefix not in tb.announced_prefixes()

    def test_supervised_hard_crash_restores_from_journal(self):
        """A hard-crashed mux rebuilds announcements_for() from the journal
        deterministically — no client reconnect, no manual re-announce."""
        tb = build_testbed()
        supervise_fast(tb)
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        spec = AnnouncementSpec(prepend=2)
        tb.server("gatech01").announce("exp", prefix, spec)
        before = routes_of(tb.outcome_for(prefix), tb.graph)

        gt = tb.server("gatech01")
        gt.crash(hard=True)
        assert prefix not in tb.announced_prefixes()
        tb.engine.run_for(30)  # watchdog detects + restarts; no client action

        assert gt.alive
        assert gt.announcements_for("exp") == {prefix: spec}
        assert prefix in tb.announced_prefixes()
        after = routes_of(tb.outcome_for(prefix), tb.graph)
        assert after == before  # route-for-route identical
        assert any(e.kind == "watchdog-restarted" for e in tb.events.events)

    def test_journal_records_intent_not_infrastructure(self):
        """Crash-driven retractions must not be journaled as withdrawals,
        else replay would restore nothing."""
        tb = build_testbed()
        supervise_fast(tb)
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        records_before = len(tb.journal.records)
        tb.server("gatech01").crash(hard=True)
        assert len(tb.journal.records) == records_before  # nothing journaled
        state = tb.journal.server_state("gatech01")
        assert str(prefix) in state["exp"]

    def test_snapshot_compaction_preserves_recovery(self):
        tb = build_testbed()
        supervise_fast(tb)
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        tb.journal.snapshot()  # compact mid-flight
        assert tb.journal.records == []
        tb.server("gatech01").crash(hard=True)
        tb.engine.run_for(30)
        assert prefix in tb.announced_prefixes()
        assert tb.server("gatech01").announcements_for("exp") == {
            prefix: AnnouncementSpec()
        }


# -- watchdog ------------------------------------------------------------------


class TestWatchdog:
    def test_wedged_mux_is_killed_and_restarted(self):
        tb = build_testbed()
        supervise_fast(tb)
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        gt = tb.server("gatech01")
        gt.wedge()
        assert gt.alive and gt.wedged
        assert not gt.probe()
        tb.engine.run_for(30)
        # wedged -> force hard-crash -> restart -> journal restore
        assert gt.alive and not gt.wedged
        assert gt.crash_count == 1
        assert prefix in tb.announced_prefixes()
        kinds = [e.kind for e in tb.events.events]
        assert "watchdog-wedged" in kinds
        assert kinds.index("watchdog-wedged") < kinds.index("watchdog-restarted")

    def test_wedged_mux_ignores_updates_and_relays_nothing(self):
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        router = client.attach_bgp("gatech01", resilient=True, idle_hold_time=2.0)
        tb.engine.run_for(1)
        gt = tb.server("gatech01")
        gt.wedge()
        router.originate(client.prefixes[0])
        tb.engine.run_for(1)
        assert client.prefixes[0] not in tb.announced_prefixes()

    def test_watchdog_stops_cleanly(self):
        tb = build_testbed()
        sup = supervise_fast(tb)
        tb.engine.run_for(10)
        probes = sup.watchdog.probes
        sup.watchdog.stop()
        tb.engine.run_for(10)
        assert sup.watchdog.probes == probes


# -- breaker + quarantine integration ------------------------------------------


def storm_attrs(attachment):
    return PathAttributes(
        origin=Origin.IGP,
        as_path=ASPath(),
        next_hop=attachment.tunnel.address,
    )


def attach_and_originate(tb, client, site):
    """attach_bgp + originate + settle — the storm prefix must be a
    routinely-announced route so the *flap-rate breaker* (not the RFC 2439
    damper, which suppresses never-before-seen churn much faster) is the
    mechanism under test."""
    client.attach_bgp(site, resilient=True, idle_hold_time=2.0)
    tb.engine.run_for(1)
    att = client.attachments[site]
    att.router.originate(client.prefixes[0])
    tb.engine.run_for(1)
    return att


class TestBreakerIntegration:
    def test_storm_trips_breaker_and_tears_session_down(self):
        tb = build_testbed()
        sup = supervise_fast(tb)
        client = tb.register_client("exp", "alice")
        att = attach_and_originate(tb, client, "usc01")
        sess = att.sessions[sorted(att.sessions)[0]]
        plan = FaultPlan(tb.engine, "storm")
        plan.storm_updates(
            sess, client.prefixes[0], storm_attrs(att), at=3.0,
            updates=40, interval=0.25,
        )
        tb.engine.run_for(15)
        breaker = sup.breaker_for(tb.server("usc01"), "exp")
        assert breaker.state is BreakerState.OPEN
        assert not any(s.established for s in att.sessions.values())
        assert any(e.kind == "breaker-open" for e in tb.events.events)
        # Reprovisioning is refused while OPEN: reconnect can't defeat it.
        usc = tb.server("usc01")
        assert usc.reconnect_endpoint("exp", sorted(att.sessions)[0]) is None

    def test_half_open_readmits_then_closes_after_clean_probe(self):
        tb = build_testbed()
        sup = supervise_fast(tb)
        client = tb.register_client("exp", "alice")
        att = attach_and_originate(tb, client, "usc01")
        sess = att.sessions[sorted(att.sessions)[0]]
        plan = FaultPlan(tb.engine, "storm")
        plan.storm_updates(
            sess, client.prefixes[0], storm_attrs(att), at=3.0,
            updates=40, interval=0.25,
        )
        # storm ends by ~13s; cooldown 20s; probe window 10s; reconnect <30s
        tb.engine.run_for(60)
        breaker = sup.breaker_for(tb.server("usc01"), "exp")
        assert breaker.state is BreakerState.CLOSED
        assert any(s.established for s in att.sessions.values())
        kinds = [e.kind for e in tb.events.events]
        assert kinds.index("breaker-open") < kinds.index("breaker-half-open")
        assert kinds.index("breaker-half-open") < kinds.index("breaker-closed")

    def test_max_prefix_breaker_blocks_programmatic_announce(self):
        tb = build_testbed()
        supervise_fast(tb)
        client = tb.register_client("exp", "alice", prefix_count=6)
        client.attach("gatech01")
        server = tb.server("gatech01")
        decisions = [server.announce("exp", p) for p in client.prefixes[:4]]
        assert all(d.allowed for d in decisions)
        # 5th concurrent prefix exceeds max_prefixes=4: trips + refuses
        tripped = server.announce("exp", client.prefixes[4])
        assert tripped.verdict is SafetyVerdict.BREAKER_OPEN
        assert client.prefixes[4] not in tb.announced_prefixes()


class TestQuarantineIntegration:
    def _storming_client(self, tb):
        client = tb.register_client("bad", "mallory")
        client.attach_bgp("usc01", resilient=True, idle_hold_time=2.0)
        tb.engine.run_for(1)
        att = client.attachments["usc01"]
        sess = att.sessions[sorted(att.sessions)[0]]
        router = att.router
        router.originate(client.prefixes[0])
        tb.engine.run_for(1)
        plan = FaultPlan(tb.engine, "storm")
        # Long storm: survives the first trip, resumes on half-open
        # reconnect, trips again -> second strike -> quarantine.
        plan.storm_updates(
            sess, client.prefixes[0], storm_attrs(att), at=3.0,
            updates=400, interval=0.25,
        )
        return client, att

    def test_repeat_offender_is_quarantined_then_released(self):
        tb = build_testbed()
        sup = supervise_fast(tb)
        client, att = self._storming_client(tb)
        prefix = client.prefixes[0]
        assert prefix in tb.announced_prefixes()

        tb.engine.run_for(60)
        # Quarantined: withdrawn everywhere, no outcome, sessions down.
        assert sup.quarantine.is_quarantined("bad")
        assert prefix not in tb.announced_prefixes()
        assert tb.outcome_for(prefix) is None
        assert not any(s.established for s in att.sessions.values())
        # New attachments and programmatic announcements are refused.
        with pytest.raises(ValueError, match="quarantined"):
            tb.server("gatech01").connect_client("bad")
        decision = tb.server("usc01").announce("bad", prefix)
        assert decision.verdict is SafetyVerdict.QUARANTINED

        # Timed release on the backoff schedule: re-admitted, clean slate,
        # sessions re-establish, the router re-announces, routes return.
        tb.engine.run_for(200)
        assert not sup.quarantine.is_quarantined("bad")
        assert any(s.established for s in att.sessions.values())
        assert prefix in tb.announced_prefixes()
        assert tb.server("usc01").safety.violation_count("bad") == 0
        kinds = [e.kind for e in tb.events.events]
        assert kinds.index("client-quarantined") < kinds.index("client-released")

    def test_damping_violations_escalate_to_quarantine(self):
        """The other road to quarantine: churning a never-established
        prefix racks up RFC 2439 damping denials, each a safety violation,
        and the violation hook strikes the client out."""
        tb = build_testbed()
        sup = supervise_fast(tb)
        client = tb.register_client("bad", "mallory")
        client.attach_bgp("usc01", resilient=True, idle_hold_time=2.0)
        tb.engine.run_for(1)
        att = client.attachments["usc01"]
        sess = att.sessions[sorted(att.sessions)[0]]
        plan = FaultPlan(tb.engine, "churn")
        plan.storm_updates(
            sess, client.prefixes[0], storm_attrs(att), at=2.0,
            updates=40, interval=0.25,
        )
        tb.engine.run_for(20)
        assert sup.quarantine.is_quarantined("bad")
        strikes = tb.events.of_kind("client-strike")
        assert strikes and all(
            "damped" in e.detail_dict()["reason"] for e in strikes
        )

    def test_escalation_trail_severities(self):
        tb = build_testbed()
        supervise_fast(tb)
        self._storming_client(tb)
        tb.engine.run_for(60)
        critical = [e.kind for e in tb.events.of_severity(Severity.CRITICAL)]
        assert "breaker-open" in critical
        assert "client-quarantined" in critical
        warnings = [e.kind for e in tb.events.of_severity(Severity.WARNING)]
        assert "client-strike" in warnings


# -- stale-outcome regression (satellite: engine cache invalidation) -----------


class TestOutcomeInvalidation:
    def test_crash_invalidates_cached_outcome(self):
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        client.attach("usc01")
        prefix = client.prefixes[0]
        client.announce(prefix, servers=["gatech01", "usc01"])
        before = tb.outcome_for(prefix)
        assert before is not None

        tb.server("gatech01").crash()
        after = tb.outcome_for(prefix)
        # usc01 still announces: the outcome must reconverge, not be the
        # stale two-site result.
        assert after is not None
        assert routes_of(after, tb.graph) != routes_of(before, tb.graph)

        tb.server("usc01").crash()
        assert tb.outcome_for(prefix) is None  # fully withdrawn: no routes

    def test_restart_reconverges_to_original_routes(self):
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        before = routes_of(tb.outcome_for(prefix), tb.graph)
        tb.server("gatech01").crash()
        assert tb.outcome_for(prefix) is None
        tb.server("gatech01").restart()
        assert routes_of(tb.outcome_for(prefix), tb.graph) == before

    def test_quarantine_withdrawal_reaches_dataplane(self):
        tb = build_testbed()
        sup = supervise_fast(tb)
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        assert tb.outcome_for(prefix) is not None
        sup.quarantine.quarantine("exp", "operator action", tb.engine.now)
        assert prefix not in tb.announced_prefixes()
        assert tb.outcome_for(prefix) is None
        assert tb.dataplane._outcomes.get(prefix) is None

    def test_engine_cache_not_stale_across_spec_change(self):
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        prefix = client.prefixes[0]
        client.announce(prefix)
        plain = routes_of(tb.outcome_for(prefix), tb.graph)
        tb.server("gatech01").withdraw("exp", prefix)
        assert tb.outcome_for(prefix) is None
        decision = tb.server("gatech01").announce(
            "exp", prefix, AnnouncementSpec(prepend=4)
        )
        assert decision.allowed  # one flap cycle: below damping threshold
        prepended = routes_of(tb.outcome_for(prefix), tb.graph)
        assert plain != prepended  # prepending must shift some paths


# -- chaos acceptance ----------------------------------------------------------


def chaos_run(engine_seed=0):
    """The acceptance scenario: a mux hard-crashes mid-sweep while another
    client storms.  Returns (testbed, supervisor, good routes before/after,
    event kinds)."""
    tb = build_testbed(engine_seed)
    sup = supervise_fast(tb)

    good = tb.register_client("good", "alice")
    router = good.attach_bgp(
        "gatech01", resilient=True, idle_hold_time=2.0, graceful_restart=True
    )
    good_prefix = good.prefixes[0]
    router.originate(good_prefix)

    bad = tb.register_client("bad", "mallory")
    bad.attach_bgp("usc01", resilient=True, idle_hold_time=2.0)
    bad_att = bad.attachments["usc01"]
    bad_att.router.originate(bad.prefixes[0])
    tb.engine.run_for(1)

    before = routes_of(tb.outcome_for(good_prefix), tb.graph)

    sess = bad_att.sessions[sorted(bad_att.sessions)[0]]
    plan = FaultPlan(tb.engine, "chaos")
    plan.crash_mux(tb.server("gatech01"), at=10.0, hard=True)
    plan.storm_updates(
        sess, bad.prefixes[0], storm_attrs(bad_att), at=5.0,
        updates=400, interval=0.25,
    )
    plan.wedge_mux(tb.server("wisconsin01"), at=30.0)

    tb.engine.run_for(60)
    mid_quarantined = sup.quarantine.quarantined()
    mid_announced = set(tb.announced_prefixes())

    tb.engine.run_for(240)  # through release + re-admission
    after = routes_of(tb.outcome_for(good_prefix), tb.graph)
    return {
        "tb": tb,
        "sup": sup,
        "good_prefix": good_prefix,
        "bad_prefix": bad.prefixes[0],
        "before": before,
        "after": after,
        "mid_quarantined": mid_quarantined,
        "mid_announced": mid_announced,
    }


class TestChaosAcceptance:
    def test_self_healing_end_to_end(self):
        run = chaos_run()
        tb, sup = run["tb"], run["sup"]

        # The storming client ended up quarantined mid-run; its routes
        # were withdrawn everywhere (no stale routes).
        assert run["mid_quarantined"] == ["bad"]
        assert run["bad_prefix"] not in run["mid_announced"]

        # The well-behaved client's announcement survived a HARD mux crash
        # with zero manual calls: watchdog + journal restored it,
        # route-for-route identical.
        assert run["good_prefix"] in run["mid_announced"]
        assert run["after"] == run["before"]

        # The wedged mux was detected, killed, and restarted.
        assert sup.watchdog.kills == 1
        assert sup.watchdog.restarts >= 2  # gatech01 + wisconsin01
        assert tb.server("wisconsin01").probe()
        assert tb.server("gatech01").probe()

        # The storming client was re-admitted on the backoff schedule and
        # its announcement returned.
        assert not sup.quarantine.is_quarantined("bad")
        assert run["bad_prefix"] in tb.announced_prefixes()

        # Escalation trail ordering on the bus.
        kinds = [e.kind for e in tb.events.events]
        for earlier, later in [
            ("breaker-open", "client-quarantined"),
            ("client-quarantined", "client-released"),
            ("watchdog-crash-detected", "watchdog-restarted"),
            ("watchdog-wedged", "client-released"),
        ]:
            assert kinds.index(earlier) < kinds.index(later)

    def test_chaos_is_deterministic(self):
        log_a = chaos_run(engine_seed=7)["tb"].events.log()
        log_b = chaos_run(engine_seed=7)["tb"].events.log()
        assert log_a == log_b


# -- supervisor plumbing -------------------------------------------------------


class TestSupervisorPlumbing:
    def test_supervise_is_idempotent(self):
        tb = build_testbed()
        sup = supervise_fast(tb)
        assert tb.supervise() is sup

    def test_servers_added_later_are_adopted(self):
        from repro.core.server import SiteConfig, SiteKind

        tb = build_testbed()
        supervise_fast(tb)
        transit = next(
            n.asn for n in tb.graph.nodes() if n.kind.name == "TRANSIT"
        )
        server = tb.add_server(
            SiteConfig(name="late01", kind=SiteKind.UNIVERSITY,
                       upstream_asns=(transit,))
        )
        assert server.guard is tb.guard
        assert server.journal is tb.journal
        assert server.safety.seq_source is not None

    def test_quarantined_client_cannot_reattach_until_release(self):
        tb = build_testbed()
        sup = supervise_fast(tb)
        client = tb.register_client("exp", "alice")
        client.attach("gatech01")
        sup.quarantine.quarantine("exp", "operator action", tb.engine.now)
        with pytest.raises(ValueError, match="quarantined"):
            client.attach("usc01")
        sup.quarantine.release("exp", tb.engine.now)
        client.attach("usc01")  # clean after release
