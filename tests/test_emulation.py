"""Tests for the IGP, Topology Zoo data, and the MinineXt manager."""

import pytest

from repro.net.addr import IPAddress, Prefix
from repro.emulation.igp import IGPError, LinkStateDatabase
from repro.emulation.mininext import EmulationError, MinineXt
from repro.emulation.quagga import QuaggaMemoryModel
from repro.emulation.topology_zoo import hurricane_electric, parse_gml


class TestIGP:
    @pytest.fixture
    def square(self):
        """a-b-c-d square with a diagonal shortcut a-c of metric 5."""
        db = LinkStateDatabase()
        for node in "abcd":
            db.add_node(node)
        db.add_link("a", "b", 1)
        db.add_link("b", "c", 1)
        db.add_link("c", "d", 1)
        db.add_link("d", "a", 1)
        db.add_link("a", "c", 5)
        return db

    def test_spf_distances(self, square):
        spf = square.spf("a")
        assert spf.distance == {"a": 0, "b": 1, "c": 2, "d": 1}

    def test_spf_prefers_cheap_path_over_direct(self, square):
        spf = square.spf("a")
        assert spf.path_to("c") in (["a", "b", "c"], ["a", "d", "c"])
        assert spf.metric_to("c") == 2

    def test_next_hop(self, square):
        spf = square.spf("a")
        assert spf.next_hop["b"] == "b"
        assert spf.next_hop["c"] in ("b", "d")

    def test_path_to_self(self, square):
        assert square.spf("a").path_to("a") == ["a"]

    def test_unreachable(self, square):
        square.add_node("lonely")
        spf = square.spf("a")
        assert spf.metric_to("lonely") is None
        assert spf.path_to("lonely") == []

    def test_unknown_node(self, square):
        with pytest.raises(IGPError):
            square.spf("zz")
        with pytest.raises(IGPError):
            square.add_link("a", "zz")

    def test_bad_metric(self, square):
        with pytest.raises(IGPError):
            square.add_link("a", "b", 0)

    def test_remove_link_forces_reroute(self, square):
        square.remove_link("a", "b")
        spf = square.spf("a")
        assert spf.distance["b"] == 3  # a-d-c-b once the direct link dies

    def test_converged_routes_all_sources(self, square):
        routes = square.converged_routes()
        assert set(routes) == {"a", "b", "c", "d"}

    def test_deterministic_tiebreak(self, square):
        first = square.spf("a").next_hop["c"]
        for _ in range(5):
            assert square.spf("a").next_hop["c"] == first


class TestTopologyZoo:
    def test_he_has_24_pops(self):
        he = hurricane_electric()
        assert len(he.pops) == 24

    def test_he_connected(self):
        hurricane_electric().validate()

    def test_he_has_amsterdam(self):
        he = hurricane_electric()
        ams = he.pop("AMS")
        assert ams.city == "Amsterdam"
        assert he.neighbors("AMS")

    def test_unknown_pop(self):
        with pytest.raises(KeyError):
            hurricane_electric().pop("XXX")

    def test_parse_gml_roundtrip(self):
        gml = """
        graph [
          label "TinyNet"
          node [ id 0 label "A" Latitude 1.0 Longitude 2.0 Country "NL" ]
          node [ id 1 label "B" Latitude 3.0 Longitude 4.0 Country "DE" ]
          edge [ source 0 target 1 ]
        ]
        """
        topo = parse_gml(gml)
        assert [p.name for p in topo.pops] == ["A", "B"]
        assert topo.links == [("A", "B")]
        assert topo.pop("A").country == "NL"
        topo.validate()


class TestMinineXt:
    def test_container_loopbacks_unique(self):
        emu = MinineXt()
        a = emu.add_container("a")
        b = emu.add_container("b")
        assert a.loopback != b.loopback

    def test_duplicate_container(self):
        emu = MinineXt()
        emu.add_container("a")
        with pytest.raises(EmulationError):
            emu.add_container("a")

    def test_unknown_container_link(self):
        emu = MinineXt()
        emu.add_container("a")
        with pytest.raises(EmulationError):
            emu.add_link("a", "zz")

    def test_double_router(self):
        emu = MinineXt()
        emu.add_container("a")
        emu.add_quagga("a", asn=1)
        with pytest.raises(EmulationError):
            emu.add_quagga("a", asn=1)

    def test_full_mesh_propagates(self):
        emu = MinineXt()
        for name in ("a", "b", "c"):
            emu.add_container(name)
            emu.add_quagga(name, asn=65000)
        emu.add_link("a", "b")
        emu.add_link("b", "c")
        assert emu.ibgp_full_mesh() == 3
        emu.container("a").service.originate(Prefix("192.0.2.0/24"))
        emu.converge()
        assert emu.total_routes() == {"a": 1, "b": 1, "c": 1}

    def test_route_reflector_hub(self):
        emu = MinineXt()
        for name in ("hub", "s1", "s2"):
            emu.add_container(name)
            emu.add_quagga(name, asn=65000)
            if name != "hub":
                emu.add_link("hub", name)
        emu.ibgp_route_reflector("hub")
        emu.container("s1").service.originate(Prefix("192.0.2.0/24"))
        emu.converge()
        assert emu.total_routes()["s2"] == 1

    def test_adjacent_sessions_relay_across_backbone(self):
        """The §4.2 configuration: iBGP only between adjacent PoPs."""
        he = hurricane_electric()
        emu = MinineXt.from_zoo(he)
        for pop in he.pops:
            emu.add_quagga(pop.name, asn=6939)
        emu.ibgp_adjacent_sessions()
        emu.container("AMS").service.originate(Prefix("216.218.0.0/24"))
        emu.converge(duration=600)
        tables = emu.total_routes()
        assert all(count == 1 for count in tables.values())

    def test_igp_metric_biases_selection(self):
        """Hot-potato: with two iBGP paths, the closer next hop wins."""
        emu = MinineXt()
        for name in ("west", "mid", "east"):
            emu.add_container(name)
            emu.add_quagga(name, asn=65000)
        emu.add_link("west", "mid", metric=1)
        emu.add_link("mid", "east", metric=1)
        emu.ibgp_full_mesh()
        # west and east both originate the prefix; mid should pick the
        # lower-IGP-metric copy... equal here, so pick deterministic peer.
        emu.container("west").service.originate(Prefix("192.0.2.0/24"))
        emu.converge()
        best = emu.container("mid").service.router.best_route(Prefix("192.0.2.0/24"))
        assert best is not None
        assert best.igp_metric == 1

    def test_external_peer_attachment(self):
        from repro.bgp.router import BGPRouter, PeerConfig
        from repro.sim import Engine

        emu = MinineXt()
        emu.add_container("gw")
        emu.add_quagga("gw", asn=65000)
        endpoint, _config = emu.external_peer("gw", remote_asn=47065)
        external = BGPRouter(emu.engine, asn=47065, router_id=IPAddress("10.0.0.47"))
        session = external.add_peer(
            PeerConfig("to-gw", 65000, IPAddress("10.0.0.47")), endpoint
        )
        session.start()
        external.originate(Prefix("184.164.224.0/24"))
        emu.converge()
        assert emu.total_routes()["gw"] == 1

    def test_memory_model_monotone(self):
        model = QuaggaMemoryModel()
        assert model.table_bytes(1000, 2) < model.table_bytes(1000, 4)
        assert model.table_bytes(1000, 2) < model.table_bytes(2000, 2)
        assert model.table_megabytes(500_000, 1) > 100  # full table is big

    def test_modeled_memory_counts_routers(self):
        emu = MinineXt()
        emu.add_container("a")
        emu.add_quagga("a", asn=1)
        base = emu.modeled_memory_bytes()
        assert base >= QuaggaMemoryModel().baseline
