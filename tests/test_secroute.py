"""Route-security subsystem: RFC 6811 validation, Peerlock containment,
decision/policy integration, and the attack-campaign harness.

The load-bearing guarantees:

* :class:`~repro.secroute.rpki.RoaRegistry` implements RFC 6811 exactly
  (maxLength, AS0 ROAs, multiple covering ROAs);
* Peerlock has tail semantics — a route learned *directly* from a
  protected AS passes; a path transiting it behind the first hop drops;
* the compiled engine and the reference propagator produce identical
  outcomes under any security policy (drop, deprefer, Peerlock, lite);
* a campaign is deterministic under a fixed seed and its coverage curves
  are monotone in deployment rate, on both engines.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import ASPath, Origin, PathAttributes
from repro.bgp.decision import best_path
from repro.bgp.policy import (
    MatchConditions,
    RouteMap,
    RouteMapTerm,
    SetActions,
)
from repro.bgp.rib import Route
from repro.core.safety import SafetyEnforcer, SafetyVerdict
from repro.faults import FaultPlan
from repro.inet.engine import PropagationEngine
from repro.inet.gen import InternetConfig, build_internet
from repro.inet.routing import Announcement, OriginSpec, propagate, resolve_lpm
from repro.inet.topology import ASGraph, ASNode
from repro.net.addr import IPAddress, Prefix
from repro.secroute import (
    AttackSurface,
    CampaignConfig,
    Roa,
    RoaRegistry,
    RovMode,
    SecurityPolicy,
    ValidationState,
    run_campaign,
    secure_propagate,
)
from repro.sim import Engine
from repro.telemetry.metrics import MetricsRegistry

V20 = Prefix("198.18.0.0/20")
V24 = Prefix("198.18.0.0/24")


# -- RFC 6811 origin validation ------------------------------------------------


class TestRoa:
    def test_default_max_length_is_prefix_length(self):
        assert Roa(V20, 65001).effective_max_length == 20

    def test_max_length_bounds_enforced(self):
        with pytest.raises(ValueError):
            Roa(V20, 65001, max_length=19)  # shorter than the ROA prefix
        with pytest.raises(ValueError):
            Roa(V20, 65001, max_length=33)  # beyond the family

    def test_negative_asn_rejected(self):
        with pytest.raises(ValueError):
            Roa(V20, -1)


class TestRfc6811:
    def test_not_found_without_covering_roa(self):
        registry = RoaRegistry((Roa(Prefix("203.0.113.0/24"), 65001),))
        assert registry.validate(V20, 65001) is ValidationState.NOT_FOUND

    def test_valid_exact_match(self):
        registry = RoaRegistry((Roa(V20, 65001),))
        assert registry.validate(V20, 65001) is ValidationState.VALID

    def test_invalid_wrong_origin(self):
        registry = RoaRegistry((Roa(V20, 65001),))
        assert registry.validate(V20, 65099) is ValidationState.INVALID

    def test_max_length_admits_more_specifics(self):
        registry = RoaRegistry((Roa(V20, 65001, max_length=24),))
        assert registry.validate(V24, 65001) is ValidationState.VALID
        too_long = Prefix("198.18.0.0/25")
        assert registry.validate(too_long, 65001) is ValidationState.INVALID

    def test_default_max_length_invalidates_subprefix(self):
        """The conservative ROA form: any more-specific is Invalid, even
        from the authorized origin — the sub-prefix hijack defense."""
        registry = RoaRegistry((Roa(V20, 65001),))
        assert registry.validate(V24, 65001) is ValidationState.INVALID

    def test_as0_roa_only_invalidates(self):
        """RFC 7607: an AS0 ROA says nothing originates this space."""
        registry = RoaRegistry((Roa(V20, 0, max_length=32),))
        assert registry.validate(V20, 0) is ValidationState.INVALID
        assert registry.validate(V24, 65001) is ValidationState.INVALID

    def test_any_permitting_roa_wins(self):
        """Multiple covering ROAs: one match makes the route Valid, no
        matter how many others would have said Invalid."""
        registry = RoaRegistry(
            (Roa(V20, 0, max_length=32), Roa(V20, 65001), Roa(V20, 65002))
        )
        assert registry.validate(V20, 65001) is ValidationState.VALID
        assert registry.validate(V20, 65002) is ValidationState.VALID
        assert registry.validate(V20, 65003) is ValidationState.INVALID

    def test_covering_roas_walk_ancestry(self):
        r8 = Roa(Prefix("198.0.0.0/8"), 65000)
        r20 = Roa(V20, 65001)
        registry = RoaRegistry((r8, r20, Roa(Prefix("203.0.113.0/24"), 65009)))
        assert registry.covering_roas(V24) == [r8, r20]

    def test_rank_ordering(self):
        assert ValidationState.VALID.rank < ValidationState.NOT_FOUND.rank
        assert ValidationState.NOT_FOUND.rank < ValidationState.INVALID.rank


class TestRegistryVersioning:
    def test_mutations_bump_version(self):
        registry = RoaRegistry()
        v0 = registry.fingerprint()
        roa = Roa(V20, 65001)
        registry.add(roa)
        v1 = registry.fingerprint()
        assert v1 != v0 and len(registry) == 1
        registry.add(roa)  # duplicate: no bump
        assert registry.fingerprint() == v1
        registry.remove(roa)
        assert registry.fingerprint() != v1 and len(registry) == 0

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            RoaRegistry().remove(Roa(V20, 65001))

    def test_distinct_registries_never_share_fingerprints(self):
        a, b = RoaRegistry(), RoaRegistry()
        a.add(Roa(V20, 65001))
        b.add(Roa(V20, 65001))
        assert a.fingerprint() != b.fingerprint()

    def test_iteration_yields_all_roas(self):
        roas = (Roa(V20, 65001), Roa(V20, 65002), Roa(Prefix("2001:db8::/32"), 65003))
        assert set(RoaRegistry(roas)) == set(roas)


# -- Peerlock semantics on small graphs ----------------------------------------


def graph_from_edges(c2p=(), p2p=()):
    g = ASGraph()
    asns = {a for e in list(c2p) + list(p2p) for a in e}
    for asn in sorted(asns):
        g.add_as(ASNode(asn=asn))
    for customer, provider in c2p:
        g.add_provider(customer, provider)
    for a, b in p2p:
        g.add_peering(a, b)
    return g


class TestPeerlock:
    @pytest.fixture
    def clique_world(self):
        # Tier-1 clique {1, 2}; 3 is 1's customer and 2's peer, so a
        # route 3 learned from 1 would transit a tier-1 toward 2.
        return graph_from_edges(c2p=[(3, 1), (4, 3), (5, 4)], p2p=[(1, 2), (3, 2)])

    def test_direct_route_from_protected_passes(self, clique_world):
        policy = SecurityPolicy().lock_clique([1, 2])
        outcome = secure_propagate(clique_world, Announcement.single(5), policy)
        # 2 hears (3, 4, 5) from its peer 3 and (1, 3, 4, 5) from clique
        # partner 1; the peer route wins on length and contains no
        # protected ASN behind hop one.
        assert outcome.as_path(2) == (3, 4, 5)

    def test_transited_protected_asn_drops(self):
        # 2's only path to the origin transits clique partner 1 via the
        # non-clique AS 3: (3, 1, 6).  Peerlock at 2 refuses it.
        g = graph_from_edges(c2p=[(6, 1), (2, 3)], p2p=[(1, 3)])
        unlocked = secure_propagate(g, Announcement.single(6), SecurityPolicy())
        assert unlocked.as_path(2) == (3, 1, 6)
        locked = SecurityPolicy().lock_clique([1, 2])
        outcome = secure_propagate(g, Announcement.single(6), locked)
        assert outcome.route(2) is None

    def test_lock_strips_self_protection(self):
        policy = SecurityPolicy().lock(1, [1, 2])
        assert policy.peerlock[1] == frozenset({2})

    def test_peerlock_lite_filters_customer_learned_tier1_paths(self):
        # 4 learns (3, 1, 6) from its *customer* 3 — a stub providing
        # transit to tier-1 1.  Peerlock-lite at 4 refuses exactly that.
        g = graph_from_edges(c2p=[(6, 1), (3, 4)], p2p=[(1, 3)])
        policy = SecurityPolicy(tier1=frozenset({1}))
        policy.peerlock_lite = frozenset({4})
        outcome = secure_propagate(g, Announcement.single(6), policy)
        assert outcome.route(4) is None

    def test_peerlock_lite_spares_provider_learned_paths(self):
        # Same path shape, but 4 learns it from its provider — legitimate.
        g = graph_from_edges(c2p=[(6, 1), (4, 3)], p2p=[(1, 3)])
        policy = SecurityPolicy(tier1=frozenset({1}))
        policy.peerlock_lite = frozenset({4})
        outcome = secure_propagate(g, Announcement.single(6), policy)
        assert outcome.as_path(4) == (3, 1, 6)

    def test_compiled_rejects_mirrors_tail_semantics(self):
        compiled = SecurityPolicy().lock(10, [20]).compile_for(
            Announcement.single(99)
        )
        assert not compiled.rejects(10, (20, 99), from_customer=False)  # direct
        assert compiled.rejects(10, (30, 20, 99), from_customer=False)  # transited
        assert not compiled.rejects(11, (30, 20, 99), from_customer=False)  # not a locker


class TestRovFiltering:
    @pytest.fixture
    def world(self):
        return graph_from_edges(c2p=[(5, 3), (6, 4), (3, 1), (4, 1)], p2p=[(3, 4)])

    def test_drop_invalid_removes_hijacker_routes(self, world):
        roas = RoaRegistry((Roa(V20, 5),))
        hijack = Announcement(
            origins=(OriginSpec(asn=5), OriginSpec(asn=6)), prefix=V20
        )
        policy = SecurityPolicy(roas=roas).deploy_rov([4], RovMode.DROP_INVALID)
        outcome = secure_propagate(world, hijack, policy)
        # 4 drops the Invalid route from its customer 6 and falls back to
        # the Valid one via its peer 3.
        assert outcome.as_path(4) == (3, 5)

    def test_deprefer_accepts_invalid_as_last_resort(self):
        # 2's only route to the hijacker's prefix is Invalid.  A
        # drop-invalid deployer blackholes; a deprefer deployer keeps it.
        g = graph_from_edges(c2p=[(6, 2)])
        roas = RoaRegistry((Roa(V20, 5),))
        hijack = Announcement.single(6, prefix=V20)
        drop = SecurityPolicy(roas=roas).deploy_rov([2], RovMode.DROP_INVALID)
        assert secure_propagate(g, hijack, drop).route(2) is None
        deprefer = SecurityPolicy(roas=roas).deploy_rov([2], RovMode.DEPREFER_INVALID)
        assert secure_propagate(g, hijack, deprefer).as_path(2) == (6,)

    def test_deprefer_prefers_valid_alternative(self, world):
        roas = RoaRegistry((Roa(V20, 5),))
        hijack = Announcement(
            origins=(OriginSpec(asn=5), OriginSpec(asn=6)), prefix=V20
        )
        policy = SecurityPolicy(roas=roas).deploy_rov([4], RovMode.DEPREFER_INVALID)
        outcome = secure_propagate(world, hijack, policy)
        # The Invalid customer route would win on Gao-Rexford preference;
        # deprefer demotes it below the Valid peer route.
        assert outcome.as_path(4) == (3, 5)

    def test_inactive_policy_matches_unfiltered(self, world):
        announcement = Announcement.single(5, prefix=V20)
        plain = propagate(world, announcement)
        secured = secure_propagate(world, announcement, SecurityPolicy())
        assert dict(plain.items()) == dict(secured.items())


# -- compiled engine vs reference under security -------------------------------


def random_policy(graph, rng):
    asns = sorted(graph.asns())
    origin_pool = sorted(graph.stub_asns()) or asns
    victim = rng.choice(origin_pool)
    roas = RoaRegistry((Roa(V20, victim),))
    policy = SecurityPolicy(roas=roas)
    mode = rng.choice([RovMode.DROP_INVALID, RovMode.DEPREFER_INVALID])
    policy.deploy_rov(rng.sample(asns, rng.randint(0, len(asns) // 2)), mode)
    clique = sorted(graph.tier1_clique())
    if clique and rng.random() < 0.7:
        policy.lock_clique(rng.sample(clique, rng.randint(1, len(clique))))
    if rng.random() < 0.5:
        policy.peerlock_lite = frozenset(
            rng.sample(asns, rng.randint(0, len(asns) // 3))
        )
    return policy, victim


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_engines_agree_under_security(seed):
    """Seeded random internet x random security policy x hijack mix:
    route-for-route identical outcomes on both propagation paths."""
    rng = random.Random(seed)
    graph = build_internet(InternetConfig(n_ases=70, seed=seed)).graph
    engine = PropagationEngine(graph)
    policy, victim = random_policy(graph, rng)
    attacker = rng.choice(sorted(set(graph.asns()) - {victim}))
    announcements = [
        Announcement.single(victim, prefix=V20),
        Announcement(
            origins=(OriginSpec(asn=victim), OriginSpec(asn=attacker)), prefix=V20
        ),
        Announcement.single(attacker, prefix=V24),
    ]
    for announcement in announcements:
        reference = secure_propagate(graph, announcement, policy)
        compiled = secure_propagate(graph, announcement, policy, engine)
        assert dict(reference.items()) == dict(compiled.items())


class TestEngineSecurityCache:
    def test_fingerprint_distinguishes_policies(self):
        g = graph_from_edges(c2p=[(6, 3), (3, 1)])
        engine = PropagationEngine(g)
        announcement = Announcement.single(6, prefix=V20)
        roas = RoaRegistry((Roa(V20, 5),))  # 6 is Invalid
        secured = engine.propagate(
            announcement,
            security=SecurityPolicy(roas=roas).deploy_rov([3]).compile_for(announcement),
        )
        plain = engine.propagate(announcement, security=None)
        assert engine.cache.stats()["misses"] == 2
        assert secured.route(1) is None and plain.as_path(1) == (3, 6)

    def test_inactive_security_shares_unsecured_entry(self):
        """A policy that can never reject anything (the origin is Valid,
        nothing is locked) is keyed like no policy at all."""
        g = graph_from_edges(c2p=[(5, 3), (3, 1)])
        engine = PropagationEngine(g)
        announcement = Announcement.single(5, prefix=V20)
        roas = RoaRegistry((Roa(V20, 5),))
        compiled = SecurityPolicy(roas=roas).deploy_rov([3]).compile_for(announcement)
        assert not compiled.active
        first = engine.propagate(announcement, security=compiled)
        second = engine.propagate(announcement, security=None)
        assert first is second
        assert engine.cache.stats()["misses"] == 1

    def test_roa_change_invalidates_cached_outcome(self):
        g = graph_from_edges(c2p=[(6, 3), (3, 1)])
        engine = PropagationEngine(g)
        announcement = Announcement.single(6, prefix=V20)
        roas = RoaRegistry((Roa(V20, 5),))  # 6 is Invalid
        policy = SecurityPolicy(roas=roas).deploy_rov([3])
        blocked = engine.propagate(
            announcement, security=policy.compile_for(announcement)
        )
        assert blocked.route(1) is None
        roas.add(Roa(V20, 6))  # now authorized; fingerprint changed
        allowed = engine.propagate(
            announcement, security=policy.compile_for(announcement)
        )
        assert allowed.as_path(1) == (3, 6)

    def test_same_policy_hits_cache(self):
        g = graph_from_edges(c2p=[(5, 3), (3, 1)])
        engine = PropagationEngine(g)
        announcement = Announcement.single(5, prefix=V20)
        compiled = SecurityPolicy().lock(1, [9]).compile_for(announcement)
        first = engine.propagate(announcement, security=compiled)
        second = engine.propagate(announcement, security=compiled)
        assert first is second
        assert engine.cache.stats()["hits"] == 1


# -- decision process and route-map integration --------------------------------


def mkroute(path, validation=None, peer="peer-a"):
    route = Route(
        prefix=V20,
        attributes=PathAttributes(
            origin=Origin.IGP,
            as_path=ASPath.from_asns(path),
            next_hop=IPAddress("10.0.0.1"),
        ),
        peer_asn=path[0],
        peer_id=peer,
        ebgp=True,
    )
    return route.with_validation(validation)


class TestDecisionLadder:
    def test_valid_beats_not_found_beats_invalid(self):
        invalid = mkroute([10, 30], ValidationState.INVALID)
        unknown = mkroute([11, 30], None)  # unvalidated == NotFound
        valid = mkroute([12, 12, 12, 30], ValidationState.VALID, peer="peer-b")
        ranked = best_path([invalid, unknown, valid])
        assert ranked[0] is valid  # despite the longer path
        assert ranked == [valid, unknown, invalid]

    def test_validation_tie_falls_through(self):
        a = mkroute([10, 30], ValidationState.VALID)
        b = mkroute([11, 40, 30], ValidationState.VALID, peer="peer-b")
        assert best_path([a, b])[0] is a  # shorter AS path decides


class TestRouteMapValidation:
    def test_match_validation_in(self):
        rm = RouteMap(
            [
                RouteMapTerm(
                    "drop-invalid",
                    permit=False,
                    match=MatchConditions(
                        validation_in=frozenset({ValidationState.INVALID})
                    ),
                ),
                RouteMapTerm("allow", permit=True),
            ]
        )
        assert rm.apply(mkroute([10, 30], ValidationState.INVALID)).route is None
        assert rm.apply(mkroute([10, 30], ValidationState.VALID)).route is not None
        # Unvalidated routes count as NotFound, not Invalid.
        assert rm.apply(mkroute([10, 30], None)).route is not None

    def test_set_validate_against_registry(self):
        registry = RoaRegistry((Roa(V20, 30),))
        rm = RouteMap(
            [RouteMapTerm("rov", actions=SetActions(validate_against=registry))]
        )
        stamped = rm.apply(mkroute([10, 30])).route
        assert stamped.validation is ValidationState.VALID
        stamped = rm.apply(mkroute([10, 99])).route
        assert stamped.validation is ValidationState.INVALID

    def test_set_fixed_validation_state(self):
        rm = RouteMap(
            [RouteMapTerm("stamp", actions=SetActions(validation=ValidationState.VALID))]
        )
        assert rm.apply(mkroute([10, 30])).route.validation is ValidationState.VALID


# -- testbed-side safety: squat and RPKI vetting -------------------------------


ALLOCATED = Prefix("184.164.224.0/24")
FOREIGN = Prefix("184.164.225.0/24")


def vet(enforcer, prefix, foreign=frozenset({FOREIGN})):
    return enforcer.check_announcement(
        "exp1",
        prefix,
        ASPath(),
        allocated={ALLOCATED},
        testbed_space=True,
        now=0.0,
        foreign_allocated=set(foreign),
    )


class TestSafetySquat:
    def test_exact_foreign_prefix_is_squat(self):
        decision = vet(SafetyEnforcer(), FOREIGN)
        assert decision.verdict is SafetyVerdict.PREFIX_SQUAT
        assert not decision.allowed

    def test_subprefix_of_foreign_allocation_is_squat(self):
        decision = vet(SafetyEnforcer(), Prefix("184.164.225.0/25"))
        assert decision.verdict is SafetyVerdict.PREFIX_SQUAT

    def test_unrelated_prefix_stays_not_allocated(self):
        decision = vet(SafetyEnforcer(), Prefix("184.164.230.0/24"))
        assert decision.verdict is SafetyVerdict.PREFIX_NOT_ALLOCATED

    def test_squat_draws_audit_entry_and_violation(self):
        enforcer = SafetyEnforcer()
        vet(enforcer, FOREIGN)
        assert enforcer.violation_count("exp1") == 1
        entry = enforcer.audit_log[-1]
        assert entry.client_id == "exp1"
        assert entry.decision.verdict is SafetyVerdict.PREFIX_SQUAT

    def test_own_prefix_unaffected_by_foreign_set(self):
        assert vet(SafetyEnforcer(), ALLOCATED).allowed


class TestSafetyRpki:
    def test_rpki_invalid_announcement_denied(self):
        enforcer = SafetyEnforcer()
        enforcer.bind_roas(RoaRegistry((Roa(ALLOCATED, 65001),)), origin_asn=47065)
        decision = vet(SafetyEnforcer(), ALLOCATED)
        assert decision.allowed  # unbound enforcer: no RPKI gate
        decision = vet(enforcer, ALLOCATED)
        assert decision.verdict is SafetyVerdict.RPKI_INVALID

    def test_valid_and_not_found_pass(self):
        enforcer = SafetyEnforcer()
        enforcer.bind_roas(RoaRegistry((Roa(ALLOCATED, 47065),)), origin_asn=47065)
        assert vet(enforcer, ALLOCATED).allowed


# -- attack surface + fault plan -----------------------------------------------


class TestAttackSurface:
    @pytest.fixture
    def world(self):
        return graph_from_edges(c2p=[(5, 3), (6, 4), (3, 1), (4, 1)], p2p=[(3, 4)])

    def test_scripted_hijack_timeline(self, world):
        surface = AttackSurface(world)
        surface.announce(5, V20)
        engine = Engine(seed=7)
        plan = FaultPlan(engine, name="hijack")
        plan.hijack_prefix(surface, attacker=6, prefix=V24, at=10.0)
        plan.withdraw_prefix(surface, asn=6, prefix=V24, at=20.0)
        engine.run(until=5.0)
        assert surface.announced_prefixes() == (V20,)
        engine.run(until=15.0)
        hit = surface.resolve(3, V24)
        assert hit is not None and hit[0] == V24 and hit[1].path[-1] == 6
        engine.run(until=25.0)
        assert surface.announced_prefixes() == (V20,)
        assert ("hijack", f"AS6>{V24}") in {(a, t) for _, a, t in plan.log}

    def test_leak_reoriginates_selected_path(self, world):
        surface = AttackSurface(world)
        surface.announce(5, V20)
        victim_path = surface.outcome(V20).as_path(6)
        surface.leak(6, V20)
        leaked = surface.announcement(V20)
        suffixes = {spec.path_suffix for spec in leaked.origins}
        assert victim_path in suffixes

    def test_leak_without_route_raises(self, world):
        surface = AttackSurface(world)
        surface.announce(5, V20, announce_to=())
        with pytest.raises(ValueError):
            surface.leak(6, V20)

    def test_resolve_prefers_more_specific(self, world):
        surface = AttackSurface(world)
        surface.announce(5, V20)
        surface.announce(6, V24)
        hit = surface.resolve(1, IPAddress("198.18.0.7"))
        assert hit is not None and hit[0] == V24
        outside = surface.resolve(1, IPAddress("198.18.15.1"))
        assert outside is not None and outside[0] == V20


# -- campaign harness ----------------------------------------------------------


# seed 11 at this size yields a leak that actually attracts traffic, so
# the containment scenario is non-degenerate (coverage < 1 at rate 0).
CAMPAIGN = CampaignConfig(
    seed=11, rates=(0.0, 0.5, 1.0), trials=2, n_ases=100, n_tier1=5
)


class TestCampaign:
    @pytest.fixture(scope="class")
    def result(self):
        return run_campaign(CAMPAIGN)

    def test_all_scenarios_present_and_monotone(self, result):
        assert set(result.scenarios) == {
            "origin-hijack",
            "subprefix-hijack",
            "route-leak",
        }
        for scenario in result.scenarios.values():
            assert scenario.is_monotone(), scenario
            assert len(scenario.trial_curves) == CAMPAIGN.trials
            for curve in scenario.trial_curves:
                assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:])), curve

    def test_full_deployment_restores_origin_hijack_coverage(self, result):
        assert result.scenarios["origin-hijack"].coverage[-1] == pytest.approx(1.0)

    def test_deterministic_under_fixed_seed(self, result):
        again = run_campaign(CAMPAIGN)
        assert again.to_dict() == result.to_dict()

    def test_reference_engine_matches_compiled(self, result):
        reference = run_campaign(CAMPAIGN, use_reference=True)
        assert reference.engine == "reference"
        for name, scenario in result.scenarios.items():
            assert reference.scenarios[name].trial_curves == scenario.trial_curves
        assert reference.leaks_contained == result.leaks_contained

    def test_seed_changes_results(self, result):
        other = run_campaign(
            CampaignConfig(seed=12, rates=(0.0, 0.5, 1.0), trials=2, n_ases=80,
                           n_tier1=4)
        )
        assert other.to_dict() != result.to_dict()

    def test_table_renders_every_scenario(self, result):
        table = result.table()
        for name in result.scenarios:
            assert name in table

    def test_metrics_observe_verdicts_and_containment(self):
        metrics = MetricsRegistry()
        result = run_campaign(CAMPAIGN, metrics=metrics)
        verdicts = metrics.get("peering_secroute_rov_verdicts_total")
        assert verdicts.labels("invalid").value > 0
        assert verdicts.labels("valid").value > 0
        contained = metrics.get("peering_secroute_leaks_contained_total")
        assert contained.value == result.leaks_contained > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(rates=(0.5, 0.2))
        with pytest.raises(ValueError):
            CampaignConfig(rates=(0.0, 1.5))
        with pytest.raises(ValueError):
            CampaignConfig(trials=0)
        with pytest.raises(ValueError):
            CampaignConfig(rates=())
