"""Anycast subsystem: service wiring, catchment mapping (fast path vs
forwarding-chain reference), stability reports, fault-plan failover, and
the closed-loop traffic engineer."""

import pytest

from repro.anycast import (
    UNSERVED,
    AnycastService,
    AnycastSite,
    CatchmentMap,
    EngineerConfig,
    SiteSteering,
    TrafficEngineer,
)
from repro.faults.plan import FaultPlan
from repro.inet.gen import InternetConfig, build_internet
from repro.inet.topology import ASKind
from repro.sim.engine import Engine
from repro.telemetry.metrics import MetricsRegistry
from repro.workloads import ClientPopulation, zipf_clients


def make_world(n_ases=800, seed=42, n_sites=3, uplinks_per_site=3):
    net = build_internet(
        InternetConfig(n_ases=n_ases, total_prefixes=60_000, seed=seed)
    )
    graph = net.graph
    transits = [n.asn for n in graph.nodes() if n.kind == ASKind.TRANSIT]
    need = n_sites * uplinks_per_site
    assert len(transits) >= need
    sites = [
        AnycastSite(
            name=f"site{i:02d}",
            transits=tuple(
                transits[i * uplinks_per_site : (i + 1) * uplinks_per_site]
            ),
        )
        for i in range(n_sites)
    ]
    service = AnycastService.deploy(graph, sites)
    population = zipf_clients(graph, ases=200, clients=50_000, seed=5)
    return graph, service, population


@pytest.fixture()
def world():
    return make_world()


class TestServiceWiring:
    def test_deploy_wires_uplinks(self, world):
        graph, service, _ = world
        assert service.asn in graph
        for site in service.sites:
            for transit in site.transits:
                assert transit in graph.providers(service.asn)

    def test_deploy_rejects_existing_asn(self, world):
        graph, service, _ = world
        with pytest.raises(ValueError, match="already exists"):
            AnycastService.deploy(graph, list(service.sites), asn=service.asn)

    def test_deploy_rejects_unknown_uplink(self):
        graph, _, _ = make_world()
        with pytest.raises(ValueError, match="not in topology"):
            AnycastService.deploy(
                graph, [AnycastSite(name="x", transits=(999_999_999,))],
                asn=64999,
            )

    def test_deploy_rejects_overlapping_uplinks(self):
        graph, service, _ = make_world()
        shared = service.sites[0].transits[0]
        with pytest.raises(ValueError, match="disjoint"):
            AnycastService.deploy(
                graph,
                [
                    AnycastSite(name="a", transits=(shared,)),
                    AnycastSite(name="b", transits=(shared,)),
                ],
                asn=64999,
            )

    def test_site_needs_uplinks(self):
        with pytest.raises(ValueError, match="no uplinks"):
            AnycastSite(name="empty")

    def test_steering_validation(self, world):
        _, service, _ = world
        name = service.sites[0].name
        with pytest.raises(ValueError, match="non-uplinks"):
            service.steer(name, SiteSteering(uplinks=(123456,)))
        with pytest.raises(KeyError):
            service.steer("nope", SiteSteering())

    def test_spec_order_is_site_order(self, world):
        _, service, _ = world
        ann = service.announcement()
        assert len(ann.origins) == len(service.sites)
        names = service.active_site_names()
        assert names == tuple(sorted(names))
        for spec in ann.origins:
            assert spec.asn == service.asn

    def test_fail_site_drops_spec_and_last_site_protected(self, world):
        _, service, _ = world
        names = service.active_site_names()
        for name in names[:-1]:
            service.fail_site(name)
        assert service.active_site_names() == (names[-1],)
        with pytest.raises(ValueError, match="last live site"):
            service.fail_site(names[-1])
        service.restore_site(names[0])
        assert names[0] in service.active_site_names()


class TestCatchmentMap:
    def test_fast_path_matches_chain_reference(self, world):
        _, service, population = world
        cmap = CatchmentMap.compute(service, population)
        ref = CatchmentMap.from_outcome(
            service, population, cmap._outcome, prefer_arrays=False
        )
        for asn in population.asns():
            assert cmap.site_of(asn) == ref.site_of(asn)
        assert cmap.volume_by_site == ref.volume_by_site

    def test_shares_partition_the_population(self, world):
        _, service, population = world
        cmap = CatchmentMap.compute(service, population)
        assert (
            sum(cmap.volume_by_site.values()) + cmap.unserved_volume
            == population.total_clients
        )
        shares = cmap.volume_shares()
        assert sum(shares.values()) + cmap.unserved_fraction == pytest.approx(1.0)

    def test_absent_asn_is_unserved(self, world):
        _, service, _ = world
        population = ClientPopulation(((999_999_999, 10), (1_234_567_890, 5)))
        cmap = CatchmentMap.compute(service, population)
        assert cmap.site_of(999_999_999) == UNSERVED
        assert cmap.unserved_volume == 15
        assert cmap.unserved_fraction == 1.0

    def test_prepend_sheds_volume_and_diff_accounts_it(self, world):
        _, service, population = world
        before = CatchmentMap.compute(service, population)
        heavy = max(
            before.volume_by_site, key=lambda s: before.volume_by_site[s]
        )
        service.adjust(heavy, prepend=4)
        after = CatchmentMap.compute(service, population)
        assert after.volume_by_site[heavy] <= before.volume_by_site[heavy]
        shift = before.diff(after)
        assert shift.total_volume == population.total_clients
        assert shift.flipped_volume == sum(v for _, v in shift.flows)
        lost, gained = shift.site_churn().get(heavy, (0, 0))
        assert lost >= gained
        assert 0.0 <= shift.stability <= 1.0

    def test_diff_of_identical_maps_is_stable(self, world):
        _, service, population = world
        a = CatchmentMap.compute(service, population)
        b = CatchmentMap.compute(service, population)
        shift = a.diff(b)
        assert shift.flipped_volume == 0
        assert shift.stability == 1.0

    def test_entry_volumes_sum_to_site_volume(self, world):
        _, service, population = world
        cmap = CatchmentMap.compute(service, population)
        for name in service.active_site_names():
            entries = cmap.entry_volumes(name)
            assert sum(entries.values()) == cmap.volume_by_site[name]
            site = service.site(name)
            assert set(entries) <= set(site.uplinks)

    def test_compute_many_matches_serial(self, world):
        _, service, population = world
        anns = [
            service.announcement(
                {service.sites[0].name: SiteSteering(prepend=d)}
            )
            for d in range(3)
        ]
        batched = CatchmentMap.compute_many(
            service, population, anns, parallel=2
        )
        for ann, cmap in zip(anns, batched):
            solo = CatchmentMap.from_outcome(
                service, population, service.engine.propagate(ann)
            )
            assert cmap.volume_by_site == solo.volume_by_site

    def test_observe_records_shares_and_metrics(self, world):
        _, service, population = world
        metrics = MetricsRegistry()
        service.bind_metrics(metrics)
        cmap = CatchmentMap.compute(service, population)
        assert service.last_shares == cmap.volume_shares()
        gauge = metrics.get("peering_anycast_site_volume_share")
        name = service.sites[0].name
        assert gauge.labels(name).value == pytest.approx(
            cmap.volume_shares()[name]
        )

    def test_render_mentions_every_site(self, world):
        _, service, population = world
        text = "\n".join(CatchmentMap.compute(service, population).render())
        for name in service.active_site_names():
            assert name in text


class TestFailover:
    def test_fault_plan_site_failure_reassigns_catchment(self, world):
        _, service, population = world
        engine = Engine()
        before = CatchmentMap.compute(service, population)
        victim = max(
            before.volume_by_site, key=lambda s: before.volume_by_site[s]
        )
        plan = FaultPlan(engine, name="anycast")
        plan.fail_anycast_site(service, victim, at=10.0)
        plan.restore_anycast_site(service, victim, at=50.0)
        engine.run(until=20.0)
        assert victim in service.down_sites()
        during = CatchmentMap.compute(service, population)
        assert victim not in during.volume_by_site
        shift = before.diff(during)
        # The dead site's whole catchment moved somewhere else.
        assert shift.flipped_volume >= before.volume_by_site[victim]
        assert (
            sum(during.volume_by_site.values()) + during.unserved_volume
            == population.total_clients
        )
        engine.run(until=60.0)
        assert victim not in service.down_sites()
        after = CatchmentMap.compute(service, population)
        assert after.volume_by_site[victim] > 0
        assert (during.diff(after).site_churn().get(victim, (0, 0)))[1] > 0
        assert [(a, t) for _, a, t in plan.log] == [
            ("anycast-fail", victim),
            ("anycast-restore", victim),
        ]


class TestTrafficEngineer:
    def targets_for(self, service):
        names = service.active_site_names()
        return {name: 1.0 / len(names) for name in names}

    def test_rejects_bad_targets(self, world):
        _, service, population = world
        with pytest.raises(ValueError, match="unknown"):
            TrafficEngineer(service, population, {"nope": 1.0})
        with pytest.raises(ValueError, match="missing"):
            TrafficEngineer(
                service, population, {service.sites[0].name: 1.0}
            )

    def test_rebalance_does_not_worsen_imbalance(self, world):
        _, service, population = world
        engineer = TrafficEngineer(
            service, population, self.targets_for(service),
            EngineerConfig(max_iterations=4, seed=3),
        )
        report = engineer.rebalance()
        assert report.imbalance_after <= report.imbalance_before + 1e-9
        assert service.last_rebalance is not None
        assert service.last_rebalance["iterations"] == len(report.iterations)

    def test_applied_moves_ride_shift_regime(self, world):
        _, service, population = world
        engineer = TrafficEngineer(
            service, population, self.targets_for(service),
            EngineerConfig(max_iterations=4, seed=3),
        )
        report = engineer.rebalance()
        if report.iterations:
            # Every evaluating iteration screens prepends through
            # single-spec solo ladders — shift-regime runs.
            assert report.shift_iterations == len(report.iterations)

    def test_deterministic_across_reruns(self):
        reports = []
        for _ in range(2):
            _, service, population = make_world()
            engineer = TrafficEngineer(
                service, population, self.targets_for(service),
                EngineerConfig(max_iterations=3, seed=11),
            )
            reports.append(engineer.rebalance().to_json())
        assert reports[0] == reports[1]

    def test_serial_and_parallel_agree(self):
        # Decisions (moves, scores, shares) are parallel-invariant, and
        # the canonical report excludes execution accounting — so the
        # serialized reports match byte-for-byte.
        reports = []
        for workers in (1, 2):
            _, service, population = make_world()
            engineer = TrafficEngineer(
                service, population, self.targets_for(service),
                EngineerConfig(max_iterations=3, seed=11, parallel=workers),
            )
            reports.append(engineer.rebalance().to_json())
        assert reports[0] == reports[1]

    def test_report_serializes(self, world):
        _, service, population = world
        engineer = TrafficEngineer(
            service, population, self.targets_for(service),
            EngineerConfig(max_iterations=2, seed=1),
        )
        report = engineer.rebalance()
        import json

        payload = json.loads(report.to_json())
        assert set(payload) == {
            "targets",
            "iterations",
            "converged",
            "imbalance_before",
            "imbalance_after",
            "final_shares",
        }


class TestFromTestbed:
    def test_catchment_over_testbed_muxes(self):
        from repro.core import Testbed

        testbed = Testbed.build_default(
            InternetConfig(n_ases=400, total_prefixes=30_000, seed=78)
        )
        service = AnycastService.from_testbed(
            testbed, site_names=["amsterdam01", "gatech01"]
        )
        population = zipf_clients(testbed.graph, ases=80, clients=5_000, seed=9)
        cmap = CatchmentMap.compute(service, population)
        assert set(cmap.volume_by_site) == {"amsterdam01", "gatech01"}
        assert sum(cmap.volume_by_site.values()) > 0


class TestLookingGlassSection:
    def test_anycast_section_rendered(self):
        from repro.core import Testbed
        from repro.telemetry.lookingglass import LookingGlass

        testbed = Testbed.build_default(
            InternetConfig(n_ases=400, total_prefixes=30_000, seed=78)
        )
        service = AnycastService.from_testbed(
            testbed, site_names=["amsterdam01", "gatech01"]
        )
        population = zipf_clients(testbed.graph, ases=80, clients=5_000, seed=9)
        CatchmentMap.compute(service, population)
        glass = LookingGlass(testbed, anycast=service)
        stats = glass.anycast_stats()
        assert stats["asn"] == testbed.asn
        assert stats["sites"] == ["amsterdam01", "gatech01"]
        assert stats["shares"] == service.last_shares
        from repro.net.addr import Prefix

        text = glass.render(Prefix("184.164.224.0/24"))
        assert "anycast AS" in text
        assert "amsterdam01" in text

    def test_unwired_glass_empty(self):
        from repro.core import Testbed
        from repro.telemetry.lookingglass import LookingGlass

        testbed = Testbed.build_default(
            InternetConfig(n_ases=400, total_prefixes=30_000, seed=78)
        )
        assert LookingGlass(testbed).anycast_stats() == {}
