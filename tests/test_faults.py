"""Fault injection and recovery: injector semantics, links, scripted
plans, mux crash/restart, client failover — and the full deterministic
chaos run the PR's acceptance criteria specify."""

import pytest

from repro.bgp.fsm import State
from repro.core import Testbed
from repro.faults import FaultConfig, FaultInjector, FaultPlan, Link
from repro.inet.gen import InternetConfig
from repro.inet.topology import ASKind
from repro.net.addr import IPAddress, Prefix
from repro.net.channel import ChannelPair
from repro.sim import Engine
from repro.bgp.session import BGPSession, SessionConfig


# -- injector -----------------------------------------------------------------


def make_wire(engine, config):
    pair = ChannelPair("wire")
    received = []
    pair.b.on_receive = received.append
    injector = FaultInjector(engine, config, label="test")
    injector.attach(pair)
    return pair, received, injector


class TestFaultConfig:
    @pytest.mark.parametrize("field", ["drop_rate", "duplicate_rate", "corrupt_rate"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(ValueError):
            FaultConfig(**{field: value})

    def test_delays_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            FaultConfig(delay=-1.0)
        with pytest.raises(ValueError):
            FaultConfig(jitter=-0.5)


class TestFaultInjector:
    def test_default_config_is_transparent(self):
        engine = Engine(seed=0)
        pair, received, injector = make_wire(engine, None)
        pair.a.send(b"hello")
        assert received == [b"hello"]
        assert injector.stats.seen == 1
        assert injector.stats.dropped == 0

    def test_drop_everything(self):
        engine = Engine(seed=0)
        pair, received, injector = make_wire(engine, FaultConfig(drop_rate=1.0))
        for i in range(10):
            pair.a.send(bytes([i]))
        assert received == []
        assert injector.stats.seen == 10
        assert injector.stats.dropped == 10

    def test_duplicate_everything(self):
        engine = Engine(seed=0)
        pair, received, injector = make_wire(engine, FaultConfig(duplicate_rate=1.0))
        pair.a.send(b"once")
        assert received == [b"once", b"once"]
        assert injector.stats.duplicated == 1

    def test_corrupt_flips_exactly_one_bit(self):
        engine = Engine(seed=0)
        pair, received, injector = make_wire(engine, FaultConfig(corrupt_rate=1.0))
        payload = b"\x00" * 8
        pair.a.send(payload)
        assert injector.stats.corrupted == 1
        (mutated,) = received
        assert len(mutated) == len(payload)
        assert sum(bin(b).count("1") for b in mutated) == 1

    def test_delay_defers_through_engine(self):
        engine = Engine(seed=0)
        pair, received, injector = make_wire(engine, FaultConfig(delay=2.0))
        pair.a.send(b"later")
        assert received == []
        engine.run_for(3.0)
        assert received == [b"later"]
        assert injector.stats.delayed == 1

    def test_same_seed_same_faults(self):
        def pattern(seed):
            engine = Engine(seed=seed)
            pair, received, _ = make_wire(engine, FaultConfig(drop_rate=0.5))
            for i in range(100):
                pair.a.send(bytes([i]))
            return list(received)

        assert pattern(42) == pattern(42)
        assert pattern(42) != pattern(43)

    def test_detach_restores_transparency(self):
        engine = Engine(seed=0)
        pair, received, injector = make_wire(engine, FaultConfig(drop_rate=1.0))
        pair.a.send(b"eaten")
        injector.detach(pair)
        pair.a.send(b"through")
        assert received == [b"through"]
        assert injector.stats.seen == 1

    def test_inactive_passes_through_unseen(self):
        engine = Engine(seed=0)
        pair, received, injector = make_wire(engine, FaultConfig(drop_rate=1.0))
        injector.active = False
        pair.a.send(b"through")
        assert received == [b"through"]
        assert injector.stats.seen == 0


# -- links and plans ----------------------------------------------------------


def make_link(engine, name="link", fault_config=None):
    left = BGPSession(
        engine,
        SessionConfig(
            local_asn=47065,
            peer_asn=3356,
            local_id=IPAddress("10.0.0.1"),
            auto_reconnect=True,
            idle_hold_time=2.0,
            description=f"{name}-L",
        ),
    )
    right = BGPSession(
        engine,
        SessionConfig(
            local_asn=3356,
            peer_asn=47065,
            local_id=IPAddress("10.0.0.2"),
            passive=True,
            auto_reconnect=True,
            idle_hold_time=2.0,
            description=f"{name}-R",
        ),
    )
    link = Link(engine, left, right, name=name, fault_config=fault_config)
    link.start()
    return link


class TestLink:
    def test_sever_provisions_next_generation(self):
        engine = Engine(seed=1)
        link = make_link(engine)
        assert link.established
        assert link.generation == 1
        link.sever()
        engine.run_for(10)
        assert link.established
        assert link.generation == 2
        assert link.cuts == 1

    def test_cut_refuses_transport_until_restore(self):
        engine = Engine(seed=1)
        link = make_link(engine)
        link.cut()
        engine.run_for(60)
        assert not link.established
        assert link.left.connect_retry_count > 0
        link.restore()
        # The pending retry timer keeps its backed-off schedule; give the
        # tail of the ladder (tens of seconds by now) room to fire.
        engine.run_for(200)
        assert link.established

    def test_sessions_survive_lossy_wire(self):
        engine = Engine(seed=6)
        link = make_link(
            engine, fault_config=FaultConfig(delay=0.05, jitter=0.05)
        )
        engine.run_for(1)
        assert link.established
        assert link.injector.stats.seen > 0
        assert link.injector.stats.delayed > 0


class TestFaultPlan:
    def test_flap_logs_each_transition_at_fire_time(self):
        engine = Engine(seed=1)
        link = make_link(engine)
        plan = FaultPlan(engine, "flaps")
        plan.flap_link(link, at=5.0, down_for=2.0, times=2, spacing=10.0)
        assert plan.log == []  # nothing fired yet
        engine.run_for(30)
        assert plan.log == [
            (5.0, "cut", "link"),
            (7.0, "restore", "link"),
            (15.0, "cut", "link"),
            (17.0, "restore", "link"),
        ]
        assert link.established

    def test_overlapping_flaps_rejected(self):
        engine = Engine(seed=1)
        link = make_link(engine)
        plan = FaultPlan(engine, "bad")
        with pytest.raises(ValueError):
            plan.flap_link(link, at=0.0, down_for=10.0, times=2, spacing=5.0)

    def test_partition_heals_together(self):
        engine = Engine(seed=2)
        links = [make_link(engine, name=f"l{i}") for i in range(3)]
        plan = FaultPlan(engine, "part")
        plan.partition(links, at=10.0, heal_after=15.0)
        engine.run_for(12)
        assert not any(link.established for link in links)
        engine.run_for(388)
        assert all(link.established for link in links)

    def test_plans_chain(self):
        engine = Engine(seed=1)
        link = make_link(engine)
        plan = FaultPlan(engine, "chain")
        assert plan.sever_link(link, at=1.0).flap_link(link, at=5.0) is plan


# -- testbed recovery ---------------------------------------------------------


def build_testbed(engine_seed=0):
    tb = Testbed.build_default(
        InternetConfig(n_ases=120, total_prefixes=5_000, seed=11)
    )
    tb.engine.seed = engine_seed
    return tb


def access_asn(tb):
    return next(
        node.asn for node in tb.graph.nodes() if node.kind is ASKind.ACCESS
    )


class TestMuxRecovery:
    def test_crash_and_restart_heal_resilient_client(self):
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        router = client.attach_bgp(
            "gatech01",
            resilient=True,
            idle_hold_time=2.0,
            graceful_restart=True,
        )
        prefix = client.prefixes[0]
        router.originate(prefix)
        tb.engine.run_for(1)
        assert prefix in tb.announced_prefixes()

        gt = tb.server("gatech01")
        gt.crash()
        assert not gt.alive
        assert gt.crash_count == 1
        assert prefix not in tb.announced_prefixes()
        sessions = client.attachments["gatech01"].sessions
        assert not any(s.established for s in sessions.values())
        # Reconnect attempts while the mux is down fail cleanly.
        tb.engine.run_for(5)
        assert not any(s.established for s in sessions.values())

        gt.restart()
        tb.engine.run_for(60)
        assert all(s.established for s in sessions.values())
        # The mux re-announced what the client had on the books.
        assert prefix in tb.announced_prefixes()

        kinds = [e.kind for e in tb.events.events]
        assert "mux-crash" in kinds
        assert "mux-restart" in kinds
        assert "session-reprovisioned" in kinds
        crash_at = kinds.index("mux-crash")
        assert "session-established" in kinds[crash_at:]

    def test_reconnect_refused_while_down(self):
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        client.attach_bgp("gatech01", resilient=True, idle_hold_time=2.0)
        gt = tb.server("gatech01")
        gt.crash()
        assert gt.reconnect_endpoint("exp", next(iter(gt.site.upstream_asns))) is None

    def test_failover_moves_client_to_backup(self):
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        router = client.attach_bgp("gatech01", resilient=True, idle_hold_time=2.0)
        prefix = client.prefixes[0]
        router.originate(prefix)
        tb.engine.run_for(1)
        client.enable_failover("gatech01", "usc01")

        tb.server("gatech01").crash()
        tb.engine.run_for(30)
        assert "gatech01" not in client.attachments
        assert "usc01" in client.attachments
        backup = client.attachments["usc01"]
        assert all(s.established for s in backup.sessions.values())
        # The prefix followed the client to the backup site.
        assert prefix in tb.announced_prefixes()
        assert any(e.kind == "client-failover" for e in tb.events.events)

    def test_failover_to_dead_backup_aborts(self):
        tb = build_testbed()
        client = tb.register_client("exp", "alice")
        router = client.attach_bgp("gatech01", resilient=True, idle_hold_time=2.0)
        router.originate(client.prefixes[0])
        tb.engine.run_for(1)
        client.enable_failover("gatech01", "usc01")
        tb.server("usc01").crash()
        tb.server("gatech01").crash()
        tb.engine.run_for(30)
        # Both muxes dead: keep the primary attachment (it may restart)
        # rather than detaching into the void.
        assert sorted(client.attachments) == ["gatech01"]
        assert any(e.kind == "failover-aborted" for e in tb.events.events)
        # A dead mux refuses new clients outright.
        with pytest.raises(ValueError):
            tb.server("usc01").connect_client("someone-else")
        # The primary coming back heals everything without operator action.
        tb.server("gatech01").restart()
        tb.engine.run_for(120)
        sessions = client.attachments["gatech01"].sessions
        assert all(s.established for s in sessions.values())
        assert client.prefixes[0] in tb.announced_prefixes()


# -- the acceptance chaos run -------------------------------------------------

CRASH_AT = 150.0
CRASH_FOR = 20.0


def chaos_scenario(engine_seed):
    """Seeded chaos: every session bounced three times, then the mux
    crashes for 20 s and restarts.  Returns everything the assertions
    (and the determinism comparison) need."""
    tb = build_testbed(engine_seed)
    client = tb.register_client("chaos", "alice")
    router = client.attach_bgp(
        "gatech01",
        resilient=True,
        idle_hold_time=2.0,
        graceful_restart=True,
        restart_time=60,
    )
    prefix = client.prefixes[0]
    router.originate(prefix)
    gt = tb.server("gatech01")
    dest = access_asn(tb)
    dest_prefix = Prefix("203.0.113.0/24")
    gt.relay_destination("chaos", dest, dest_prefix)

    sessions = dict(sorted(client.attachments["gatech01"].sessions.items()))
    plan = FaultPlan(tb.engine, "chaos")
    for i, session in enumerate(sessions.values()):
        plan.bounce_session(session, at=10.0 + 7.0 * i, times=3, spacing=40.0)
    # Each bounce's End-of-RIB legitimately flushes the one-shot relayed
    # routes; push them again just before the crash so graceful-restart
    # retention has paths to retain.
    tb.engine.schedule_at(
        CRASH_AT - 5.0,
        lambda: gt.relay_destination("chaos", dest, dest_prefix),
        label="chaos:re-relay",
    )
    plan.crash_mux(gt, at=CRASH_AT, down_for=CRASH_FOR)
    return tb, client, router, gt, plan, sessions, prefix


class TestChaosRun:
    def test_chaos_run_recovers_everything(self):
        tb, client, router, gt, plan, sessions, prefix = chaos_scenario(3)

        # Mid-crash: mux dead, sessions down, stale paths retained.
        tb.engine.run_for(CRASH_AT + 2.0)
        assert not gt.alive
        assert not any(s.established for s in sessions.values())
        stale = sum(
            router.peer(f"mux-gatech01-{key}").adj_in.stale_count()
            for key in sessions
        )
        assert stale > 0
        assert all(s.last_down_graceful for s in sessions.values())

        # After recovery: everything re-established, nothing stale.
        tb.engine.run_for(400.0 - (CRASH_AT + 2.0))
        assert gt.alive
        assert all(s.established for s in sessions.values())
        for key in sessions:
            assert router.peer(f"mux-gatech01-{key}").adj_in.stale_count() == 0
        assert prefix in tb.announced_prefixes()

        # Every session was bounced three times and crashed once: at
        # least five establishments (initial + 3 bounces + crash).
        for session in sessions.values():
            assert session.established_count >= 5

        # Reconnect attempts during the crash window back off
        # exponentially (doubling base, jitter in [0.75, 1.0]).
        session = next(iter(sessions.values()))
        window = [
            delay
            for scheduled_at, delay in session.reconnect_log
            if CRASH_AT <= scheduled_at <= CRASH_AT + CRASH_FOR
        ]
        assert len(window) >= 2
        for earlier, later in zip(window, window[1:]):
            assert later > earlier
            assert 1.4 <= later / earlier <= 2.7

        # The plan itself fired every fault it scheduled.
        actions = [action for _, action, _ in plan.log]
        assert actions.count("bounce") == 3 * len(sessions)
        assert actions.count("crash") == 1
        assert actions.count("restart") == 1

    def test_chaos_run_is_seed_deterministic(self):
        def run(seed):
            tb, *_rest, plan, _sessions, _prefix = chaos_scenario(seed)
            tb.engine.run_for(400.0)
            return tb.events.log(), plan.log

        events_a, plan_a = run(9)
        events_b, plan_b = run(9)
        assert events_a == events_b
        assert plan_a == plan_b
        assert len(events_a) > 0

        events_c, _ = run(10)
        assert events_a != events_c
