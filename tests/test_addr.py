"""Unit and property tests for repro.net.addr."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import AddressError, IPAddress, Prefix, parse_address, parse_prefix


class TestIPAddressParsing:
    def test_parse_v4(self):
        addr = IPAddress("192.0.2.1")
        assert addr.version == 4
        assert addr.value == 0xC0000201
        assert str(addr) == "192.0.2.1"

    def test_parse_v4_zero(self):
        assert IPAddress("0.0.0.0").value == 0

    def test_parse_v4_max(self):
        assert IPAddress("255.255.255.255").value == 0xFFFFFFFF

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "01.2.3.4", "a.b.c.d", "1..2.3"]
    )
    def test_parse_v4_invalid(self, bad):
        with pytest.raises(AddressError):
            IPAddress(bad)

    def test_parse_v6_full(self):
        addr = IPAddress("2001:db8:0:0:0:0:0:1")
        assert addr.version == 6
        assert str(addr) == "2001:db8::1"

    def test_parse_v6_compressed(self):
        assert IPAddress("2001:db8::1").value == 0x20010DB8000000000000000000000001

    def test_parse_v6_all_zero(self):
        assert str(IPAddress("::")) == "::"

    @pytest.mark.parametrize("bad", ["::1::2", "1:2:3", "2001:db8::g", "1:2:3:4:5:6:7:8:9"])
    def test_parse_v6_invalid(self, bad):
        with pytest.raises(AddressError):
            IPAddress(bad)

    def test_out_of_range_int(self):
        with pytest.raises(AddressError):
            IPAddress(1 << 32, 4)
        with pytest.raises(AddressError):
            IPAddress(-1, 4)

    def test_copy_constructor(self):
        a = IPAddress("10.0.0.1")
        assert IPAddress(a) == a


class TestIPAddressOps:
    def test_arithmetic(self):
        assert IPAddress("10.0.0.1") + 1 == IPAddress("10.0.0.2")
        assert IPAddress("10.0.0.2") - 1 == IPAddress("10.0.0.1")
        assert IPAddress("10.0.0.2") - IPAddress("10.0.0.1") == 1

    def test_ordering(self):
        assert IPAddress("10.0.0.1") < IPAddress("10.0.0.2")
        assert IPAddress("9.255.255.255") < IPAddress("10.0.0.0")

    def test_packed_roundtrip_v4(self):
        addr = IPAddress("203.0.113.77")
        assert IPAddress.from_packed(addr.packed()) == addr
        assert len(addr.packed()) == 4

    def test_packed_roundtrip_v6(self):
        addr = IPAddress("2001:db8::42")
        assert IPAddress.from_packed(addr.packed()) == addr
        assert len(addr.packed()) == 16

    def test_bad_packed_length(self):
        with pytest.raises(AddressError):
            IPAddress.from_packed(b"\x01\x02\x03")

    def test_hashable(self):
        assert len({IPAddress("10.0.0.1"), IPAddress("10.0.0.1")}) == 1


class TestPrefix:
    def test_parse(self):
        p = Prefix("192.0.2.0/24")
        assert p.length == 24
        assert str(p) == "192.0.2.0/24"

    def test_strict_host_bits(self):
        with pytest.raises(AddressError):
            Prefix("192.0.2.1/24")

    def test_nonstrict_masks(self):
        p = Prefix("192.0.2.99/24", strict=False)
        assert p.address == IPAddress("192.0.2.0")

    def test_contains_address(self):
        p = Prefix("10.0.0.0/8")
        assert IPAddress("10.255.1.1") in p
        assert IPAddress("11.0.0.0") not in p

    def test_contains_prefix(self):
        assert Prefix("10.0.0.0/8").contains(Prefix("10.1.0.0/16"))
        assert not Prefix("10.1.0.0/16").contains(Prefix("10.0.0.0/8"))
        assert Prefix("10.0.0.0/8").contains(Prefix("10.0.0.0/8"))

    def test_overlaps(self):
        assert Prefix("10.0.0.0/8").overlaps(Prefix("10.2.0.0/16"))
        assert not Prefix("10.0.0.0/8").overlaps(Prefix("11.0.0.0/8"))

    def test_subnets(self):
        halves = list(Prefix("10.0.0.0/8").subnets())
        assert halves == [Prefix("10.0.0.0/9"), Prefix("10.128.0.0/9")]

    def test_subnets_deeper(self):
        subs = list(Prefix("184.164.224.0/19").subnets(24))
        assert len(subs) == 32
        assert subs[0] == Prefix("184.164.224.0/24")
        assert subs[-1] == Prefix("184.164.255.0/24")

    def test_subnet_invalid(self):
        with pytest.raises(AddressError):
            list(Prefix("10.0.0.0/24").subnets(8))

    def test_supernet(self):
        assert Prefix("10.1.0.0/16").supernet(8) == Prefix("10.0.0.0/8")

    def test_num_addresses(self):
        assert Prefix("192.0.2.0/24").num_addresses() == 256

    def test_first_last(self):
        p = Prefix("192.0.2.0/24")
        assert p.first_address() == IPAddress("192.0.2.0")
        assert p.last_address() == IPAddress("192.0.2.255")

    def test_default_route(self):
        p = Prefix("0.0.0.0/0")
        assert p.contains(Prefix("10.0.0.0/8"))
        assert p.num_addresses() == 1 << 32

    def test_ordering(self):
        assert Prefix("10.0.0.0/8") < Prefix("10.0.0.0/16")
        assert Prefix("10.0.0.0/8") < Prefix("11.0.0.0/8")

    def test_parse_prefix_bare_address(self):
        p = parse_prefix("192.0.2.1")
        assert p.length == 32

    def test_v6_prefix(self):
        p = Prefix("2001:db8::/32")
        assert p.contains(Prefix("2001:db8:1::/48"))

    def test_version_mismatch_contains(self):
        assert not Prefix("10.0.0.0/8").contains(Prefix("2001:db8::/32"))


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_v4_text_roundtrip(value):
    addr = IPAddress(value, 4)
    assert IPAddress(str(addr)) == addr


@given(st.integers(min_value=0, max_value=(1 << 128) - 1))
def test_v6_text_roundtrip(value):
    addr = IPAddress(value, 6)
    assert IPAddress(str(addr)) == addr


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)
def test_prefix_contains_own_addresses(value, length):
    p = Prefix(IPAddress(value, 4), length, strict=False)
    assert p.contains(p.first_address())
    assert p.contains(p.last_address())
    assert p.contains(p)


@given(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=1, max_value=32),
)
def test_supernet_contains_subnet(value, length):
    p = Prefix(IPAddress(value, 4), length, strict=False)
    assert p.supernet().contains(p)
