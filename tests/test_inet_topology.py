"""Tests for the AS graph."""

import pytest

from repro.inet.topology import (
    ASGraph,
    ASKind,
    ASNode,
    PeeringPolicy,
    Relationship,
    TopologyError,
)


@pytest.fixture
def diamond():
    """Tier1 (1) above two transits (2, 3) above a stub (4); 2--3 peer."""
    g = ASGraph()
    for asn in (1, 2, 3, 4):
        g.add_as(ASNode(asn=asn))
    g.add_provider(2, 1)
    g.add_provider(3, 1)
    g.add_provider(4, 2)
    g.add_provider(4, 3)
    g.add_peering(2, 3)
    return g


class TestConstruction:
    def test_add_and_get(self):
        g = ASGraph()
        node = g.add_as(ASNode(asn=47065, name="PEERING"))
        assert g.get(47065) is node
        assert 47065 in g and len(g) == 1

    def test_duplicate_as_rejected(self):
        g = ASGraph()
        g.add_as(ASNode(asn=1))
        with pytest.raises(TopologyError):
            g.add_as(ASNode(asn=1))

    def test_unknown_as(self):
        g = ASGraph()
        with pytest.raises(TopologyError):
            g.get(99)

    def test_self_loop_rejected(self):
        g = ASGraph()
        g.add_as(ASNode(asn=1))
        with pytest.raises(TopologyError):
            g.add_provider(1, 1)
        with pytest.raises(TopologyError):
            g.add_peering(1, 1)

    def test_conflicting_relationship_rejected(self, diamond):
        with pytest.raises(TopologyError):
            diamond.add_peering(4, 2)  # already customer
        with pytest.raises(TopologyError):
            diamond.add_provider(2, 3)  # already peer

    def test_edges(self, diamond):
        assert diamond.providers(4) == {2, 3}
        assert diamond.customers(1) == {2, 3}
        assert diamond.peers(2) == {3}
        assert diamond.neighbors(2) == {1, 3, 4}
        assert diamond.edge_count() == 5

    def test_relationship_lookup(self, diamond):
        assert diamond.relationship(4, 2) is Relationship.CUSTOMER_PROVIDER
        assert diamond.relationship(2, 3) is Relationship.PEER
        assert diamond.relationship(1, 4) is None

    def test_remove_peering(self, diamond):
        diamond.remove_peering(2, 3)
        assert diamond.peers(2) == frozenset()

    def test_remove_as(self, diamond):
        diamond.remove_as(2)
        assert 2 not in diamond
        assert diamond.providers(4) == {3}
        assert diamond.customers(1) == {3}
        assert diamond.peers(3) == frozenset()

    def test_validate_ok(self, diamond):
        diamond.validate()


class TestAnalysis:
    def test_customer_cone(self, diamond):
        assert diamond.customer_cone(1) == {1, 2, 3, 4}
        assert diamond.customer_cone(2) == {2, 4}
        assert diamond.customer_cone(4) == {4}

    def test_cone_ignores_peer_edges(self, diamond):
        # 2 peers with 3 but 3 is not in 2's cone.
        assert 3 not in diamond.customer_cone(2)

    def test_rank_by_cone(self, diamond):
        ranked = diamond.rank_by_cone()
        assert ranked[0] == (1, 4)
        assert {asn for asn, _ in ranked[1:3]} == {2, 3}

    def test_stub_and_tier1(self, diamond):
        assert diamond.stub_asns() == [4]
        assert diamond.tier1_clique() == [1]

    def test_cone_with_cycle_terminates(self):
        # Pathological p2c cycle (invalid economically, must not hang).
        g = ASGraph()
        for asn in (1, 2):
            g.add_as(ASNode(asn=asn))
        g.add_provider(1, 2)
        g._providers[2].add(1)  # force the cycle past validation
        g._customers[1].add(2)
        assert g.customer_cone(1) == {1, 2}


class TestBatchMutation:
    def test_batch_bumps_version_once(self, diamond):
        v0 = diamond.version
        with diamond.batch():
            diamond.add_as(ASNode(asn=10))
            diamond.add_as(ASNode(asn=11))
            diamond.add_provider(10, 1)
            diamond.add_peering(10, 11)
        assert diamond.version == v0 + 1

    def test_batch_without_mutation_does_not_bump(self, diamond):
        v0 = diamond.version
        with diamond.batch():
            pass
        assert diamond.version == v0

    def test_views_refresh_after_batch(self, diamond):
        assert 4 in diamond.customers(2)  # populate the cached views
        with diamond.batch():
            diamond.add_as(ASNode(asn=10))
            diamond.add_provider(10, 2)
        assert 10 in diamond.customers(2)
        assert diamond.sorted_customers(2) == (4, 10)

    def test_exception_inside_batch_still_invalidates(self, diamond):
        v0 = diamond.version
        with pytest.raises(TopologyError):
            with diamond.batch():
                diamond.add_as(ASNode(asn=10))
                diamond.add_as(ASNode(asn=10))  # duplicate: raises
        assert diamond.version == v0 + 1  # the first add must not be lost

    def test_nested_batches_defer_to_outermost(self, diamond):
        v0 = diamond.version
        with diamond.batch():
            diamond.add_as(ASNode(asn=10))
            with diamond.batch():
                diamond.add_as(ASNode(asn=11))
            assert diamond.version == v0  # inner exit must not bump
        assert diamond.version == v0 + 1
