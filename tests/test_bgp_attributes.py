"""Tests for AS paths, communities, and attribute bundles."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.attributes import (
    ASPath,
    ASPathSegment,
    Community,
    NO_EXPORT,
    Origin,
    PathAttributes,
    SegmentType,
    is_private_asn,
)


class TestASPath:
    def test_from_asns(self):
        path = ASPath.from_asns([3, 2, 1])
        assert path.asns() == (3, 2, 1)
        assert path.length() == 3
        assert path.origin_asn == 1
        assert path.first_asn == 3

    def test_empty(self):
        path = ASPath()
        assert path.length() == 0
        assert path.origin_asn is None
        assert path.first_asn is None

    def test_prepend(self):
        path = ASPath.from_asns([2, 1]).prepend(3)
        assert path.asns() == (3, 2, 1)

    def test_prepend_multiple(self):
        path = ASPath.from_asns([1]).prepend(9, count=3)
        assert path.asns() == (9, 9, 9, 1)
        assert path.length() == 4

    def test_prepend_onto_empty(self):
        assert ASPath().prepend(7).asns() == (7,)

    def test_prepend_invalid_count(self):
        with pytest.raises(ValueError):
            ASPath().prepend(1, count=0)

    def test_contains(self):
        path = ASPath.from_asns([3, 2, 1])
        assert path.contains(2)
        assert not path.contains(9)

    def test_as_set_counts_as_one(self):
        path = ASPath(
            (
                ASPathSegment(SegmentType.AS_SEQUENCE, (5, 4)),
                ASPathSegment(SegmentType.AS_SET, (1, 2, 3)),
            )
        )
        assert path.length() == 3  # 2 + 1

    def test_as_set_canonicalized(self):
        seg = ASPathSegment(SegmentType.AS_SET, (3, 1, 2, 1))
        assert seg.asns == (1, 2, 3)

    def test_origin_asn_skips_trailing_set(self):
        path = ASPath(
            (
                ASPathSegment(SegmentType.AS_SEQUENCE, (5, 4)),
                ASPathSegment(SegmentType.AS_SET, (1, 2)),
            )
        )
        assert path.origin_asn == 4

    def test_strip_private(self):
        path = ASPath.from_asns([47065, 64512, 65000, 174])
        stripped = path.strip_private()
        assert stripped.asns() == (47065, 174)

    def test_strip_private_removes_empty_segments(self):
        path = ASPath.from_asns([64512, 64513])
        assert path.strip_private().segments == ()

    def test_str(self):
        assert str(ASPath.from_asns([3, 2, 1])) == "3 2 1"

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            ASPathSegment(SegmentType.AS_SEQUENCE, ())


class TestPrivateASN:
    @pytest.mark.parametrize("asn", [64512, 65000, 65534, 4200000000, 4294967294])
    def test_private(self, asn):
        assert is_private_asn(asn)

    @pytest.mark.parametrize("asn", [1, 174, 47065, 64511, 65535, 4199999999])
    def test_public(self, asn):
        assert not is_private_asn(asn)


class TestCommunity:
    def test_parse(self):
        c = Community.parse("47065:100")
        assert c == Community(47065, 100)

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            Community.parse("no-colon")

    def test_packed_roundtrip(self):
        c = Community(47065, 2000)
        assert Community.from_packed(c.packed()) == c

    def test_well_known(self):
        assert NO_EXPORT == Community(0xFFFF, 0xFF01)

    def test_str(self):
        assert str(Community(1, 2)) == "1:2"


class TestPathAttributes:
    def test_defaults(self):
        attrs = PathAttributes()
        assert attrs.origin == Origin.IGP
        assert attrs.local_pref is None
        assert attrs.communities == frozenset()

    def test_immutable_updates(self):
        attrs = PathAttributes()
        updated = attrs.with_local_pref(200).with_med(5)
        assert updated.local_pref == 200 and updated.med == 5
        assert attrs.local_pref is None  # original untouched

    def test_prepended(self):
        attrs = PathAttributes(as_path=ASPath.from_asns([1]))
        assert attrs.prepended(2).as_path.asns() == (2, 1)

    def test_add_communities(self):
        attrs = PathAttributes().add_communities([Community(1, 1)])
        attrs = attrs.add_communities([Community(2, 2)])
        assert attrs.communities == {Community(1, 1), Community(2, 2)}

    def test_hashable(self):
        a = PathAttributes(as_path=ASPath.from_asns([1, 2]))
        b = PathAttributes(as_path=ASPath.from_asns([1, 2]))
        assert hash(a) == hash(b) and a == b

    def test_reflected_sets_originator_once(self):
        from repro.net.addr import IPAddress

        attrs = PathAttributes()
        r1 = attrs.reflected(IPAddress("10.0.0.1"), cluster_id=1)
        r2 = r1.reflected(IPAddress("10.0.0.2"), cluster_id=2)
        assert r2.originator_id == IPAddress("10.0.0.1")
        assert r2.cluster_list == (2, 1)


@given(st.lists(st.integers(min_value=1, max_value=2**32 - 1), min_size=1, max_size=12))
def test_prepend_then_strip_roundtrip(asns):
    """Prepending a private ASN then stripping it restores the path."""
    path = ASPath.from_asns(asns)
    if any(is_private_asn(a) for a in asns):
        return
    assert path.prepend(64512).strip_private() == path


@given(
    st.lists(st.integers(min_value=1, max_value=2**16 - 1), min_size=1, max_size=8),
    st.integers(min_value=1, max_value=5),
)
def test_prepend_increases_length_by_count(asns, count):
    path = ASPath.from_asns(asns)
    assert path.prepend(asns[0], count).length() == path.length() + count
