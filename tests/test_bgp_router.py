"""Integration tests for the full BGP router."""

import pytest

from repro.net.addr import IPAddress, Prefix
from repro.sim import Engine
from repro.bgp.attributes import Community, NO_EXPORT, ASPath
from repro.bgp.policy import (
    AsPathFilter,
    MatchConditions,
    PrefixList,
    PrefixListEntry,
    RouteMap,
    RouteMapTerm,
    SetActions,
)
from repro.bgp.router import BGPRouter, PeerConfig, connect_routers

P1 = Prefix("184.164.224.0/24")
P2 = Prefix("184.164.225.0/24")


def make_router(engine, asn, rid):
    return BGPRouter(engine, asn=asn, router_id=IPAddress(rid))


def ebgp_pair(engine, r1, r2, **kwargs):
    """Connect two routers with default configs (eBGP or iBGP by ASN)."""
    c1 = PeerConfig(
        peer_id=f"to-{r2.router_id}",
        remote_asn=r2.asn,
        local_address=r1.router_id,
        **kwargs,
    )
    c2 = PeerConfig(
        peer_id=f"to-{r1.router_id}",
        remote_asn=r1.asn,
        local_address=r2.router_id,
        **kwargs,
    )
    connect_routers(engine, r1, c1, r2, c2)
    return c1, c2


class TestOrigination:
    def test_originate_and_propagate(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        ebgp_pair(engine, a, b)
        a.originate(P1)
        best = b.best_route(P1)
        assert best is not None
        assert best.attributes.as_path.asns() == (65001,)
        assert best.attributes.next_hop == IPAddress("10.0.0.1")

    def test_withdraw_propagates(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        ebgp_pair(engine, a, b)
        a.originate(P1)
        assert b.best_route(P1) is not None
        a.withdraw_local(P1)
        assert b.best_route(P1) is None

    def test_transit_chain(self):
        """Routes propagate A -> B -> C with the path growing."""
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        c = make_router(engine, 65003, "10.0.0.3")
        ebgp_pair(engine, a, b)
        ebgp_pair(engine, b, c)
        a.originate(P1)
        best = c.best_route(P1)
        assert best is not None
        assert best.attributes.as_path.asns() == (65002, 65001)
        assert best.attributes.next_hop == IPAddress("10.0.0.2")

    def test_established_peer_gets_existing_table(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        a.originate(P1)
        a.originate(P2)
        b = make_router(engine, 65002, "10.0.0.2")
        ebgp_pair(engine, a, b)
        assert b.best_route(P1) is not None and b.best_route(P2) is not None


class TestLoopPrevention:
    def test_own_asn_rejected(self):
        """A route whose path contains our ASN is dropped (poisoning)."""
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        c = make_router(engine, 65003, "10.0.0.3")
        ebgp_pair(engine, a, b)
        ebgp_pair(engine, b, c)
        # Originate with a poisoned path by using export policy prepend of
        # the victim's ASN.
        poisoned = RouteMap(
            [RouteMapTerm("poison", actions=SetActions(prepend=(65003,)))],
        )
        # Rewire: a's export to b poisons AS 65003.
        a.peer("to-10.0.0.2").config.export_policy = poisoned
        a.originate(P1)
        assert b.best_route(P1) is not None
        # b's sender-side loop check suppresses the export entirely, so c
        # never sees the poisoned route.
        assert c.best_route(P1) is None

    def test_no_advertise_back_to_source_as(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        ebgp_pair(engine, a, b)
        a.originate(P1)
        # b must not advertise the route back to a: a's adj-in from b is empty.
        assert b.best_route(P1) is not None
        assert a.routes_received_from("to-10.0.0.2") == []


class TestCommunities:
    def test_no_export_stops_at_as_boundary(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        c = make_router(engine, 65003, "10.0.0.3")
        ebgp_pair(engine, a, b)
        ebgp_pair(engine, b, c)
        a.originate(P1, communities=[NO_EXPORT])
        assert b.best_route(P1) is not None
        assert c.best_route(P1) is None

    def test_community_propagates(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        ebgp_pair(engine, a, b)
        tag = Community(65001, 42)
        a.originate(P1, communities=[tag])
        assert tag in b.best_route(P1).attributes.communities


class TestPolicies:
    def test_import_filter(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        deny_p1 = RouteMap(
            [
                RouteMapTerm(
                    "deny",
                    permit=False,
                    match=MatchConditions(
                        prefix_list=PrefixList([PrefixListEntry(P1)])
                    ),
                ),
                RouteMapTerm("rest", permit=True),
            ]
        )
        c1 = PeerConfig("to-b", 65002, IPAddress("10.0.0.1"))
        c2 = PeerConfig("to-a", 65001, IPAddress("10.0.0.2"), import_policy=deny_p1)
        connect_routers(engine, a, c1, b, c2)
        a.originate(P1)
        a.originate(P2)
        assert b.best_route(P1) is None
        assert b.best_route(P2) is not None
        assert b.rejected_policy >= 1

    def test_export_local_pref_stripped_on_ebgp(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        set_lp = RouteMap([RouteMapTerm("lp", actions=SetActions(local_pref=500))])
        c1 = PeerConfig("to-b", 65002, IPAddress("10.0.0.1"))
        c2 = PeerConfig("to-a", 65001, IPAddress("10.0.0.2"), import_policy=set_lp)
        connect_routers(engine, a, c1, b, c2)
        a.originate(P1)
        # b imported with LP 500 but c (eBGP from b) must not see it.
        c = make_router(engine, 65003, "10.0.0.3")
        ebgp_pair(engine, b, c)
        assert c.best_route(P1).attributes.local_pref is None

    def test_med_not_propagated_beyond_neighbor(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        c = make_router(engine, 65003, "10.0.0.3")
        ebgp_pair(engine, a, b)
        ebgp_pair(engine, b, c)
        a.originate(P1, med=50)
        assert b.best_route(P1).attributes.med == 50
        assert c.best_route(P1).attributes.med is None


class TestBestPathSelection:
    def test_prefers_shorter_path_across_peers(self):
        engine = Engine()
        dest = make_router(engine, 65000, "10.0.0.0")
        middle = make_router(engine, 65009, "10.0.0.9")
        listener = make_router(engine, 65010, "10.0.0.10")
        ebgp_pair(engine, dest, middle)
        ebgp_pair(engine, dest, listener)
        ebgp_pair(engine, middle, listener)
        dest.originate(P1)
        best = listener.best_route(P1)
        assert best.attributes.as_path.asns() == (65000,)
        # And the alternate (via middle) exists among candidates.
        candidates = listener.loc_rib.candidates(P1)
        assert len(candidates) == 2

    def test_reconverges_on_withdrawal(self):
        engine = Engine()
        dest = make_router(engine, 65000, "10.0.0.0")
        middle = make_router(engine, 65009, "10.0.0.9")
        listener = make_router(engine, 65010, "10.0.0.10")
        ebgp_pair(engine, dest, middle)
        ebgp_pair(engine, dest, listener)
        ebgp_pair(engine, middle, listener)
        dest.originate(P1)
        # Kill the direct session: listener must fall back to the long path.
        listener.peer("to-10.0.0.0").session.stop()
        best = listener.best_route(P1)
        assert best is not None
        assert best.attributes.as_path.asns() == (65009, 65000)


class TestIBGP:
    def test_ibgp_no_transit_without_reflection(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65001, "10.0.0.2")
        c = make_router(engine, 65001, "10.0.0.3")
        # chain a - b - c, all iBGP
        ebgp_pair(engine, a, b)
        ebgp_pair(engine, b, c)
        a.originate(P1)
        assert b.best_route(P1) is not None
        assert c.best_route(P1) is None  # b won't reflect without RR

    def test_route_reflector(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        rr = make_router(engine, 65001, "10.0.0.2")
        c = make_router(engine, 65001, "10.0.0.3")
        connect_routers(
            engine,
            a,
            PeerConfig("to-rr", 65001, IPAddress("10.0.0.1")),
            rr,
            PeerConfig("10.0.0.1", 65001, IPAddress("10.0.0.2"), route_reflector_client=True),
        )
        connect_routers(
            engine,
            rr,
            PeerConfig("10.0.0.3", 65001, IPAddress("10.0.0.2"), route_reflector_client=True),
            c,
            PeerConfig("to-rr", 65001, IPAddress("10.0.0.3")),
        )
        a.originate(P1)
        best = c.best_route(P1)
        assert best is not None
        assert best.attributes.originator_id is not None
        assert len(best.attributes.cluster_list) == 1
        # iBGP: path stays empty, local pref set.
        assert best.attributes.as_path.asns() == ()
        assert best.attributes.local_pref == 100

    def test_reflection_loop_prevented(self):
        """Two RRs in a cycle must not loop a route forever."""
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        rr1 = make_router(engine, 65001, "10.0.0.2")
        rr2 = make_router(engine, 65001, "10.0.0.3")
        connect_routers(
            engine,
            a,
            PeerConfig("to-rr1", 65001, IPAddress("10.0.0.1")),
            rr1,
            PeerConfig("10.0.0.1", 65001, IPAddress("10.0.0.2"), route_reflector_client=True),
        )
        connect_routers(
            engine,
            rr1,
            PeerConfig("10.0.0.3", 65001, IPAddress("10.0.0.2"), route_reflector_client=True),
            rr2,
            PeerConfig("10.0.0.2", 65001, IPAddress("10.0.0.3"), route_reflector_client=True),
        )
        a.originate(P1)
        engine.run(until=10)
        assert rr2.best_route(P1) is not None


class TestAddPath:
    def test_multiple_paths_advertised(self):
        """An ADD-PATH peer receives alternates, not just the best."""
        engine = Engine()
        dest = make_router(engine, 65000, "10.0.0.0")
        m1 = make_router(engine, 65001, "10.0.0.1")
        m2 = make_router(engine, 65002, "10.0.0.2")
        mux = make_router(engine, 47065, "10.0.0.47")
        client = make_router(engine, 65100, "10.0.1.1")
        ebgp_pair(engine, dest, m1)
        ebgp_pair(engine, dest, m2)
        ebgp_pair(engine, m1, mux)
        ebgp_pair(engine, m2, mux)
        ebgp_pair(engine, mux, client, add_path=True)
        dest.originate(P1)
        routes = client.routes_received_from("to-10.0.0.47")
        paths = {r.attributes.as_path.asns() for r in routes if r.prefix == P1}
        assert (47065, 65001, 65000) in paths
        assert (47065, 65002, 65000) in paths

    def test_add_path_withdrawal(self):
        engine = Engine()
        dest = make_router(engine, 65000, "10.0.0.0")
        m1 = make_router(engine, 65001, "10.0.0.1")
        mux = make_router(engine, 47065, "10.0.0.47")
        client = make_router(engine, 65100, "10.0.1.1")
        ebgp_pair(engine, dest, m1)
        ebgp_pair(engine, m1, mux)
        ebgp_pair(engine, dest, mux)
        ebgp_pair(engine, mux, client, add_path=True)
        dest.originate(P1)
        assert len([r for r in client.routes_received_from("to-10.0.0.47") if r.prefix == P1]) == 2
        dest.withdraw_local(P1)
        assert client.routes_received_from("to-10.0.0.47") == []


class TestMRAI:
    def test_updates_batched(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        c1 = PeerConfig("to-b", 65002, IPAddress("10.0.0.1"), mrai=30.0)
        c2 = PeerConfig("to-a", 65001, IPAddress("10.0.0.2"))
        connect_routers(engine, a, c1, b, c2)
        a.originate(P1)
        a.originate(P2)
        assert b.best_route(P1) is None  # MRAI holds them back
        engine.run(until=31)
        assert b.best_route(P1) is not None and b.best_route(P2) is not None
        # Both prefixes share attributes -> a single batched UPDATE.
        session = a.peer("to-b").session
        assert session.updates_sent == 1


class TestMaxPrefixes:
    def test_limit_enforced(self):
        engine = Engine()
        a = make_router(engine, 65001, "10.0.0.1")
        b = make_router(engine, 65002, "10.0.0.2")
        c1 = PeerConfig("to-b", 65002, IPAddress("10.0.0.1"))
        c2 = PeerConfig("to-a", 65001, IPAddress("10.0.0.2"), max_prefixes=2)
        connect_routers(engine, a, c1, b, c2)
        for i in range(5):
            a.originate(Prefix(f"184.164.{224 + i}.0/24"))
        assert len(list(b.peer("to-a").adj_in.routes())) == 2
        assert b.peer("to-a").prefix_limit_hit
