"""Route-flap damping (RFC 2439) tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import Prefix
from repro.bgp.dampening import (
    DampeningConfig,
    PENALTY_WITHDRAWAL,
    RouteFlapDamper,
)

P = Prefix("184.164.224.0/24")


class TestConfig:
    def test_defaults_sane(self):
        config = DampeningConfig()
        assert config.reuse_threshold < config.suppress_threshold
        assert config.penalty_ceiling > config.suppress_threshold

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            DampeningConfig(half_life=0)

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            DampeningConfig(suppress_threshold=100, reuse_threshold=200)


class TestDamper:
    def test_first_announcement_free(self):
        damper = RouteFlapDamper()
        assert damper.record_announcement("p", P, now=0.0) is False
        assert damper.penalty("p", P, now=0.0) == 0.0

    def test_single_flap_not_suppressed(self):
        damper = RouteFlapDamper()
        damper.record_announcement("p", P, now=0.0)
        assert damper.record_withdrawal("p", P, now=1.0) is False
        assert damper.penalty("p", P, now=1.0) == pytest.approx(PENALTY_WITHDRAWAL)

    def test_repeated_flaps_suppress(self):
        damper = RouteFlapDamper()
        damper.record_announcement("p", P, now=0.0)
        suppressed = False
        t = 1.0
        for _ in range(3):
            suppressed = damper.record_withdrawal("p", P, now=t)
            t += 1
            damper.record_announcement("p", P, now=t)
            t += 1
        assert suppressed or damper.is_suppressed("p", P, now=t)

    def test_penalty_decays(self):
        damper = RouteFlapDamper(DampeningConfig(half_life=900))
        damper.record_announcement("p", P, now=0.0)
        damper.record_withdrawal("p", P, now=0.0)
        assert damper.penalty("p", P, now=900.0) == pytest.approx(
            PENALTY_WITHDRAWAL / 2, rel=1e-6
        )

    def test_reuse_after_decay(self):
        config = DampeningConfig(half_life=10.0, max_suppress_time=120.0)
        damper = RouteFlapDamper(config)
        damper.record_announcement("p", P, now=0.0)
        t = 0.0
        for _ in range(4):
            damper.record_withdrawal("p", P, now=t)
            damper.record_announcement("p", P, now=t + 0.5)
            t += 1.0
        assert damper.is_suppressed("p", P, now=t)
        # After many half-lives the penalty decays below reuse.
        assert not damper.is_suppressed("p", P, now=t + 200.0)

    def test_reuse_time_estimate(self):
        config = DampeningConfig(half_life=10.0)
        damper = RouteFlapDamper(config)
        damper.record_announcement("p", P, now=0.0)
        t = 0.0
        for _ in range(4):
            damper.record_withdrawal("p", P, now=t)
            damper.record_announcement("p", P, now=t)
            t += 0.1
        if damper.is_suppressed("p", P, now=t):
            eta = damper.reuse_time("p", P, now=t)
            assert eta > 0
            assert not damper.is_suppressed("p", P, now=t + eta + 0.01)

    def test_penalty_capped_by_max_suppress(self):
        config = DampeningConfig(half_life=60.0, max_suppress_time=600.0)
        damper = RouteFlapDamper(config)
        damper.record_announcement("p", P, now=0.0)
        for i in range(200):
            damper.record_withdrawal("p", P, now=float(i))
            damper.record_announcement("p", P, now=float(i) + 0.5)
        assert damper.penalty("p", P, now=200.0) <= config.penalty_ceiling
        assert damper.reuse_time("p", P, now=200.0) <= config.max_suppress_time + 1

    def test_keys_are_independent(self):
        damper = RouteFlapDamper()
        other = Prefix("184.164.225.0/24")
        damper.record_announcement("p", P, now=0.0)
        for t in range(6):
            damper.record_withdrawal("p", P, now=float(t))
            damper.record_announcement("p", P, now=t + 0.5)
        assert damper.is_suppressed("p", P, now=6.0)
        assert not damper.is_suppressed("p", other, now=6.0)
        assert not damper.is_suppressed("q", P, now=6.0)

    def test_fully_decayed_entries_forgotten(self):
        config = DampeningConfig(half_life=1.0)
        damper = RouteFlapDamper(config)
        damper.record_announcement("p", P, now=0.0)
        damper.record_withdrawal("p", P, now=0.0)
        assert damper.tracked() == 1
        damper.is_suppressed("p", P, now=100.0)  # triggers refresh + cleanup
        assert damper.tracked() == 0

    def test_flap_count(self):
        damper = RouteFlapDamper()
        damper.record_announcement("p", P, now=0.0)
        damper.record_withdrawal("p", P, now=1.0)
        damper.record_announcement("p", P, now=2.0)
        assert damper.flap_count("p", P) == 2  # withdrawal + re-announce


@given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=30))
def test_penalty_never_negative_and_bounded(gaps):
    config = DampeningConfig(half_life=10.0)
    damper = RouteFlapDamper(config)
    now = 0.0
    damper.record_announcement("p", P, now=now)
    for gap in gaps:
        now += gap
        damper.record_withdrawal("p", P, now=now)
        now += 0.01
        damper.record_announcement("p", P, now=now)
        penalty = damper.penalty("p", P, now=now)
        assert 0 <= penalty <= config.penalty_ceiling + 1e-6
