"""Wire-format codec tests: every message type round-trips through bytes."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addr import IPAddress, Prefix
from repro.bgp.attributes import (
    ASPath,
    ASPathSegment,
    Community,
    Origin,
    PathAttributes,
    SegmentType,
)
from repro.bgp.errors import BGPError, MessageDecodeError, OpenError, UpdateError
from repro.bgp.messages import (
    AS_TRANS,
    Capability,
    CapabilityCode,
    HEADER_LEN,
    KeepaliveMessage,
    MARKER,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UpdateMessage,
    decode,
)


def make_open(asn=47065, add_path=False):
    caps = [Capability.multiprotocol(), Capability.four_octet_as(asn)]
    if add_path:
        caps.append(Capability.add_path())
    return OpenMessage(
        asn=asn if asn <= 0xFFFF else AS_TRANS,
        hold_time=90,
        bgp_id=IPAddress("10.0.0.1"),
        capabilities=tuple(caps),
    )


class TestOpen:
    def test_roundtrip(self):
        msg = make_open()
        decoded = decode(msg.encode())
        assert isinstance(decoded, OpenMessage)
        assert decoded.real_asn == 47065
        assert decoded.hold_time == 90
        assert decoded.bgp_id == IPAddress("10.0.0.1")

    def test_four_octet_asn(self):
        msg = make_open(asn=4_200_000_100)
        raw = msg.encode()
        decoded = decode(raw)
        assert decoded.asn == AS_TRANS
        assert decoded.real_asn == 4_200_000_100

    def test_add_path_capability(self):
        decoded = decode(make_open(add_path=True).encode())
        assert decoded.supports_add_path
        cap = decoded.capability(CapabilityCode.ADD_PATH)
        assert cap.add_path_tuples() == [(1, 1, 3)]

    def test_no_add_path(self):
        assert not decode(make_open().encode()).supports_add_path

    def test_bad_version(self):
        raw = bytearray(make_open().encode())
        raw[HEADER_LEN] = 3  # version byte
        with pytest.raises(OpenError):
            decode(bytes(raw))

    def test_unacceptable_hold_time(self):
        msg = make_open()
        msg.hold_time = 2
        with pytest.raises(OpenError):
            decode(msg.encode())

    def test_hold_time_zero_allowed(self):
        msg = make_open()
        msg.hold_time = 0
        assert decode(msg.encode()).hold_time == 0


class TestHeader:
    def test_bad_marker(self):
        raw = bytearray(KeepaliveMessage().encode())
        raw[0] = 0
        with pytest.raises(MessageDecodeError):
            decode(bytes(raw))

    def test_truncated(self):
        with pytest.raises(MessageDecodeError):
            decode(MARKER[:10])

    def test_length_mismatch(self):
        raw = KeepaliveMessage().encode() + b"extra"
        with pytest.raises(MessageDecodeError):
            decode(raw)

    def test_bad_type(self):
        raw = bytearray(KeepaliveMessage().encode())
        raw[18] = 99
        with pytest.raises(MessageDecodeError):
            decode(bytes(raw))

    def test_keepalive_with_body(self):
        raw = bytearray(KeepaliveMessage().encode())
        # Manually append a body and fix the length.
        raw += b"\x00"
        raw[16:18] = (len(raw)).to_bytes(2, "big")
        with pytest.raises(MessageDecodeError):
            decode(bytes(raw))


def full_attributes():
    return PathAttributes(
        origin=Origin.EGP,
        as_path=ASPath(
            (
                ASPathSegment(SegmentType.AS_SEQUENCE, (47065, 3356)),
                ASPathSegment(SegmentType.AS_SET, (1, 2)),
            )
        ),
        next_hop=IPAddress("192.0.2.1"),
        med=50,
        local_pref=200,
        communities=frozenset({Community(47065, 100), Community(65535, 65281)}),
        atomic_aggregate=True,
        aggregator=(47065, IPAddress("10.0.0.1")),
        originator_id=IPAddress("10.0.0.9"),
        cluster_list=(1, 2),
    )


class TestUpdate:
    def test_announce_roundtrip(self):
        attrs = full_attributes()
        update = UpdateMessage.announce(
            [Prefix("184.164.224.0/24"), Prefix("184.164.225.0/24")], attrs
        )
        decoded = decode(update.encode())
        assert isinstance(decoded, UpdateMessage)
        assert decoded.prefixes() == [
            Prefix("184.164.224.0/24"),
            Prefix("184.164.225.0/24"),
        ]
        assert decoded.attributes == attrs

    def test_withdraw_roundtrip(self):
        update = UpdateMessage.withdraw([Prefix("10.0.0.0/8")])
        decoded = decode(update.encode())
        assert decoded.withdrawn_prefixes() == [Prefix("10.0.0.0/8")]
        assert decoded.attributes is None

    def test_odd_prefix_lengths(self):
        attrs = PathAttributes(as_path=ASPath.from_asns([1]), next_hop=IPAddress("10.0.0.1"))
        for length in (0, 1, 7, 8, 9, 15, 17, 22, 25, 31, 32):
            prefix = Prefix(IPAddress("128.0.0.0") if length else IPAddress(0, 4), length, strict=False)
            decoded = decode(UpdateMessage.announce([prefix], attrs).encode())
            assert decoded.prefixes() == [prefix]

    def test_add_path_roundtrip(self):
        attrs = PathAttributes(as_path=ASPath.from_asns([9]), next_hop=IPAddress("10.0.0.1"))
        update = UpdateMessage.announce(
            [Prefix("10.0.0.0/8"), Prefix("10.0.0.0/8")], attrs, path_ids=[1, 2]
        )
        decoded = decode(update.encode(), add_path=True)
        assert decoded.nlri == ((1, Prefix("10.0.0.0/8")), (2, Prefix("10.0.0.0/8")))

    def test_add_path_misaligned(self):
        attrs = PathAttributes(as_path=ASPath.from_asns([9]))
        with pytest.raises(ValueError):
            UpdateMessage.announce([Prefix("10.0.0.0/8")], attrs, path_ids=[1, 2])

    def test_nlri_without_attributes_rejected_on_encode(self):
        update = UpdateMessage(nlri=((None, Prefix("10.0.0.0/8")),))
        with pytest.raises(UpdateError):
            update.encode()

    def test_missing_as_path_rejected(self):
        # Hand-craft an UPDATE whose attributes lack AS_PATH.
        import struct

        attrs = bytes([0x40, 1, 1, 0])  # ORIGIN only
        body = struct.pack("!H", 0) + struct.pack("!H", len(attrs)) + attrs + bytes([8, 10])
        raw = MARKER + struct.pack("!HB", HEADER_LEN + len(body), 2) + body
        with pytest.raises(UpdateError):
            decode(raw)

    def test_duplicate_attribute_rejected(self):
        import struct

        one = bytes([0x40, 1, 1, 0])
        attrs = one + one
        body = struct.pack("!H", 0) + struct.pack("!H", len(attrs)) + attrs
        raw = MARKER + struct.pack("!HB", HEADER_LEN + len(body), 2) + body
        with pytest.raises(UpdateError):
            decode(raw)

    def test_invalid_origin_value(self):
        import struct

        attrs = bytes([0x40, 1, 1, 9])
        body = struct.pack("!H", 0) + struct.pack("!H", len(attrs)) + attrs
        raw = MARKER + struct.pack("!HB", HEADER_LEN + len(body), 2) + body
        with pytest.raises(UpdateError):
            decode(raw)

    def test_empty_update_is_eor(self):
        decoded = decode(UpdateMessage().encode())
        assert decoded.nlri == () and decoded.withdrawn == ()


class TestNotification:
    def test_roundtrip(self):
        msg = NotificationMessage(6, 2, b"bye")
        decoded = decode(msg.encode())
        assert (decoded.code, decoded.subcode, decoded.data) == (6, 2, b"bye")


class TestRouteRefresh:
    def test_roundtrip(self):
        decoded = decode(RouteRefreshMessage().encode())
        assert isinstance(decoded, RouteRefreshMessage)
        assert decoded.afi == 1


asns = st.integers(min_value=1, max_value=2**32 - 1)
v4_prefixes = st.builds(
    lambda v, l: Prefix(IPAddress(v, 4), l, strict=False),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)


@given(
    st.lists(v4_prefixes, min_size=1, max_size=20, unique=True),
    st.lists(asns, min_size=1, max_size=10),
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1)),
    st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1)),
    st.sets(
        st.builds(
            Community,
            st.integers(min_value=0, max_value=65535),
            st.integers(min_value=0, max_value=65535),
        ),
        max_size=6,
    ),
)
def test_update_roundtrip_property(prefixes, path, med, local_pref, communities):
    attrs = PathAttributes(
        as_path=ASPath.from_asns(path),
        next_hop=IPAddress("192.0.2.1"),
        med=med,
        local_pref=local_pref,
        communities=frozenset(communities),
    )
    update = UpdateMessage.announce(prefixes, attrs)
    decoded = decode(update.encode())
    assert decoded.prefixes() == prefixes
    assert decoded.attributes == attrs
