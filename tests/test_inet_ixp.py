"""IXP / route-server / peering-ecosystem tests."""

import pytest

from repro.inet.gen import AmsIxConfig, InternetConfig, build_amsix, build_internet
from repro.inet.ixp import IXP, RemotePeeringProvider, RequestOutcome
from repro.inet.topology import ASGraph, ASKind, ASNode, PeeringPolicy, TopologyError


def small_graph(n=10):
    g = ASGraph()
    for asn in range(1, n + 1):
        g.add_as(ASNode(asn=asn, peering_policy=PeeringPolicy.OPEN))
    return g


class TestRouteServer:
    def test_join_creates_full_mesh(self):
        g = small_graph(4)
        ixp = IXP("TEST-IX", g)
        for asn in (1, 2, 3):
            ixp.join_route_server(asn)
        assert g.peers(1) == {2, 3}
        assert g.peers(2) == {1, 3}
        assert len(ixp.route_server_members()) == 3

    def test_join_returns_gained_peers(self):
        g = small_graph(4)
        ixp = IXP("TEST-IX", g)
        ixp.join_route_server(1)
        ixp.join_route_server(2)
        gained = ixp.join_route_server(3)
        assert gained == {1, 2}

    def test_join_skips_existing_relationships(self):
        g = small_graph(3)
        g.add_provider(1, 2)  # already customer/provider
        ixp = IXP("TEST-IX", g)
        ixp.join_route_server(1)
        gained = ixp.join_route_server(2)
        assert gained == set()  # no new edge; relationship kept

    def test_no_route_server(self):
        g = small_graph(3)
        ixp = IXP("BARE-IX", g, has_route_server=False)
        with pytest.raises(TopologyError):
            ixp.join_route_server(1)

    def test_membership_tracked_on_node(self):
        g = small_graph(3)
        ixp = IXP("TEST-IX", g)
        ixp.add_member(1)
        assert "TEST-IX" in g.get(1).ixps


class TestBilateral:
    def test_open_policy_usually_accepts(self):
        g = small_graph(30)
        ixp = IXP("TEST-IX", g, seed=3)
        for asn in range(1, 31):
            ixp.add_member(asn)
        results = [ixp.request_bilateral(1, target) for target in range(2, 31)]
        accepted = sum(r.accepted for r in results)
        assert accepted >= 20  # "the vast majority accepted"
        for r in results:
            if r.accepted:
                assert g.relationship(1, r.target) is not None

    def test_closed_policy_never_accepts(self):
        g = small_graph(10)
        for node in g.nodes():
            node.peering_policy = PeeringPolicy.CLOSED
        ixp = IXP("TEST-IX", g, seed=1)
        for asn in range(1, 11):
            ixp.add_member(asn)
        results = [ixp.request_bilateral(1, t) for t in range(2, 11)]
        assert not any(r.accepted for r in results)

    def test_request_requires_membership(self):
        g = small_graph(3)
        ixp = IXP("TEST-IX", g)
        ixp.add_member(1)
        with pytest.raises(TopologyError):
            ixp.request_bilateral(1, 2)

    def test_request_self_rejected(self):
        g = small_graph(3)
        ixp = IXP("TEST-IX", g)
        ixp.add_member(1)
        with pytest.raises(TopologyError):
            ixp.request_bilateral(1, 1)

    def test_existing_relationship_counts_as_accepted(self):
        g = small_graph(3)
        g.add_peering(1, 2)
        ixp = IXP("TEST-IX", g)
        ixp.add_member(1), ixp.add_member(2)
        assert ixp.request_bilateral(1, 2).accepted

    def test_deterministic_with_seed(self):
        outcomes = []
        for _ in range(2):
            g = small_graph(20)
            ixp = IXP("TEST-IX", g, seed=42)
            for asn in range(1, 21):
                ixp.add_member(asn)
            outcomes.append([ixp.request_bilateral(1, t).outcome for t in range(2, 21)])
        assert outcomes[0] == outcomes[1]

    def test_request_log(self):
        g = small_graph(3)
        ixp = IXP("TEST-IX", g)
        for asn in (1, 2):
            ixp.add_member(asn)
        ixp.request_bilateral(1, 2)
        assert len(ixp.request_log) == 1


class TestRemotePeering:
    def test_extend_joins_all_ixps(self):
        g = small_graph(8)
        ix1, ix2 = IXP("IX-1", g), IXP("IX-2", g)
        for asn in (1, 2):
            ix1.join_route_server(asn)
        for asn in (3, 4):
            ix2.join_route_server(asn)
        provider = RemotePeeringProvider("hibernia", [ix1, ix2])
        gained = provider.extend(5)
        assert gained["IX-1"] == {1, 2}
        assert gained["IX-2"] == {3, 4}
        assert g.peers(5) == {1, 2, 3, 4}


class TestAmsIxModel:
    @pytest.fixture(scope="class")
    def world(self):
        inet = build_internet(InternetConfig(n_ases=1200, total_prefixes=100_000, seed=5))
        ixp = build_amsix(
            inet,
            AmsIxConfig(
                total_members=200,
                route_server_members=160,
                open_policy=18,
                closed_policy=4,
                case_by_case=13,
                unlisted=5,
            ),
        )
        return inet, ixp

    def test_membership_counts(self, world):
        _inet, ixp = world
        assert ixp.member_count() == 200
        assert len(ixp.route_server_members()) == 160

    def test_policy_split_exact(self, world):
        _inet, ixp = world
        census = ixp.policy_census()
        assert census[PeeringPolicy.OPEN] == 18
        assert census[PeeringPolicy.CLOSED] == 4
        assert census[PeeringPolicy.CASE_BY_CASE] == 13
        assert census[PeeringPolicy.UNLISTED] == 5

    def test_default_config_matches_paper(self):
        config = AmsIxConfig()
        assert config.total_members == 669
        assert config.route_server_members == 554
        assert config.open_policy == 48
        assert config.closed_policy == 12
        assert config.case_by_case == 40
        assert config.unlisted == 15

    def test_bad_split_rejected(self):
        with pytest.raises(ValueError):
            AmsIxConfig(total_members=100, route_server_members=90, open_policy=20,
                        closed_policy=0, case_by_case=0, unlisted=0)

    def test_no_tier1_members(self, world):
        inet, ixp = world
        kinds = {inet.graph.get(asn).kind for asn in ixp.members()}
        assert ASKind.TIER1 not in kinds


class TestGenerator:
    def test_deterministic(self):
        a = build_internet(InternetConfig(n_ases=300, seed=9))
        b = build_internet(InternetConfig(n_ases=300, seed=9))
        assert sorted(a.graph.asns()) == sorted(b.graph.asns())
        assert a.graph.edge_count() == b.graph.edge_count()
        for asn in a.graph.asns():
            assert a.graph.providers(asn) == b.graph.providers(asn)
            assert a.graph.get(asn).prefix_count == b.graph.get(asn).prefix_count

    def test_structure_valid(self):
        inet = build_internet(InternetConfig(n_ases=500, seed=2))
        inet.graph.validate()

    def test_tier1_clique(self):
        inet = build_internet(InternetConfig(n_ases=300, n_tier1=6, seed=3))
        tier1 = inet.graph.tier1_clique()
        assert len(tier1) == 6
        for a in tier1:
            assert inet.graph.peers(a) >= set(tier1) - {a}

    def test_everyone_has_providers_except_tier1(self):
        inet = build_internet(InternetConfig(n_ases=300, seed=4))
        for node in inet.graph.nodes():
            if node.kind is not ASKind.TIER1:
                assert inet.graph.providers(node.asn)

    def test_prefix_total_near_target(self):
        inet = build_internet(InternetConfig(n_ases=400, total_prefixes=50_000, seed=6))
        assert abs(inet.total_prefixes() - 50_000) / 50_000 < 0.05

    def test_too_small_config_rejected(self):
        with pytest.raises(ValueError):
            build_internet(InternetConfig(n_ases=10))
