"""CAIDA AS-relationship serial ingester: deterministic loading of the
public ``<a>|<b>|<rel>`` snapshot format, byte-stable round trips
through :func:`dump_caida_serial`, structural kind inference, strict
rejection of malformed input — and the delta-propagation identity
property on an ingested (rather than generated) topology.
"""

import gzip
import pathlib
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.inet.engine import PropagationEngine
from repro.inet.gen import (
    build_caida_like,
    degree_stats,
    dump_caida_serial,
    load_caida_serial,
)
from repro.inet.routing import Announcement, OriginSpec, propagate
from repro.inet.topology import ASKind, Relationship

FIXTURE = pathlib.Path(__file__).parent / "data" / "caida-as-rel-150.txt"


@pytest.fixture(scope="module")
def world():
    return load_caida_serial(FIXTURE)


class TestFixtureIngest:
    def test_loads_and_validates(self, world):
        assert len(world.graph) == 150
        world.graph.validate()

    def test_single_graph_version(self, world):
        # The whole ingest runs under batch(): one version bump.
        assert world.graph.version == 1

    def test_deterministic_across_runs(self, world):
        again = load_caida_serial(FIXTURE)
        assert again.graph.version == world.graph.version
        assert degree_stats(again.graph) == degree_stats(world.graph)
        assert sorted(again.graph.asns()) == sorted(world.graph.asns())
        assert list(again.graph.relationship_edges()) == list(
            world.graph.relationship_edges()
        )

    def test_round_trip_is_byte_stable(self, world, tmp_path):
        first = tmp_path / "first.txt"
        second = tmp_path / "second.txt"
        dump_caida_serial(world.graph, first)
        dump_caida_serial(load_caida_serial(first).graph, second)
        assert first.read_bytes() == second.read_bytes()
        # And the dump preserves the fixture's edge lines exactly.
        fixture_edges = [
            line for line in FIXTURE.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        dumped_edges = [
            line for line in first.read_text().splitlines()
            if line and not line.startswith("#")
        ]
        assert dumped_edges == fixture_edges

    def test_kinds_inferred_from_structure(self, world):
        graph = world.graph
        clique = graph.tier1_clique()
        assert clique  # the fixture has a provider-free core
        for asn in graph.asns():
            kind = graph.get(asn).kind
            if asn in clique:
                assert kind is ASKind.TIER1
            elif graph.customers(asn):
                assert kind is ASKind.TRANSIT
            else:
                assert kind is ASKind.ACCESS

    def test_stats_comparable_with_generator(self, world):
        # The fixture was produced from build_caida_like(150); ingesting
        # its serial dump must reproduce the generator's shape exactly.
        generated = build_caida_like(150).graph
        assert degree_stats(world.graph) == degree_stats(generated)
        assert set(world.graph.tier1_clique()) == set(generated.tier1_clique())


class TestSerialFormat:
    def test_iterable_input_and_source_field(self):
        world = load_caida_serial(
            ["# header", "", "1|2|-1|bgp", "2|3|0|mlp"]
        )
        assert world.graph.providers(2) == frozenset({1})
        assert world.graph.peers(2) == frozenset({3})

    def test_exact_duplicates_tolerated(self):
        world = load_caida_serial(["1|2|-1", "1|2|-1", "2|3|0", "3|2|0"])
        assert world.graph.edge_count() == 2

    def test_conflicting_relationship_rejected(self):
        with pytest.raises(ValueError, match="line 2.*conflicting"):
            load_caida_serial(["1|2|-1", "2|1|-1"])
        with pytest.raises(ValueError, match="line 2.*conflicting"):
            load_caida_serial(["1|2|-1", "1|2|0"])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="line 1.*self-loop"):
            load_caida_serial(["7|7|0"])

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="line 1.*unknown relationship"):
            load_caida_serial(["1|2|2"])

    def test_malformed_lines_rejected(self):
        with pytest.raises(ValueError, match="line 1.*expected"):
            load_caida_serial(["1|2"])
        with pytest.raises(ValueError, match="line 2.*non-integer"):
            load_caida_serial(["# ok", "one|2|-1"])

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "snap.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write("# tiny\n5|6|-1\n6|7|0\n")
        world = load_caida_serial(path)
        assert world.graph.providers(6) == frozenset({5})
        assert world.graph.peers(6) == frozenset({7})

    def test_dump_gzip_round_trip(self, tmp_path):
        graph = load_caida_serial(FIXTURE).graph
        path = tmp_path / "dump.txt.gz"
        dump_caida_serial(graph, path)
        assert degree_stats(load_caida_serial(path).graph) == degree_stats(graph)


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_delta_chain_on_ingested_topology(seed):
    """The seeded delta identity property holds on a topology that came
    through the serial ingester (kinds and relationships inferred from
    the file, not the generator): chained deltas == reference."""
    rng = random.Random(seed)
    graph = load_caida_serial(FIXTURE).graph
    asns = sorted(graph.asns())
    origin = rng.choice(asns)
    other = rng.choice([a for a in asns if a != origin])
    engine = PropagationEngine(graph)
    prev = engine.propagate(Announcement.single(origin), use_cache=False)
    for step in range(4):
        announcement = Announcement(
            origins=(
                OriginSpec(asn=origin, prepend=rng.randint(0, 3)),
                OriginSpec(asn=other, poison=tuple(rng.sample(asns, step % 2))),
            )
        )
        prev = engine.propagate_delta(prev, announcement, use_cache=False)
        assert dict(propagate(graph, announcement).items()) == dict(prev.items())
    modes = engine.stats()["delta"]
    assert sum(modes.values()) == 4
