"""repro — a full reproduction of *PEERING: An AS for Us* (HotNets 2014).

The library implements the PEERING testbed (servers/muxes, clients, prefix
allocation, safety enforcement, announcement scheduling) on top of
from-scratch substrates: a BGP-4 stack, a policy-annotated Internet
simulation with IXPs and route servers, a MinineXt-style intradomain
emulation, and a simulated data plane.

Quickstart::

    from repro.core import Testbed
    testbed = Testbed.build_default()        # synthetic Internet + muxes
    client = testbed.register_client("exp1")
    client.announce(client.prefixes[0])
"""

__version__ = "1.0.0"

PEERING_ASN = 47065
PEERING_SUPERNET = "184.164.224.0/19"

__all__ = ["PEERING_ASN", "PEERING_SUPERNET", "__version__"]
