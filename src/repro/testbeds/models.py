"""Capability models of the testbeds compared in Table 1.

Table 1 scores eight platforms against the six §2 goals.  Rather than
hard-coding the table, each platform is modeled as a
:class:`TestbedModel` whose capability answers derive from structural
facts about the platform (can it speak BGP? at how many sites? does it
run user code? can resources persist? ...), and a scenario harness
(:func:`evaluate`, :func:`capability_matrix`) derives the ✓/≈/✗ cells.
``benchmarks/bench_table1_capabilities.py`` regenerates the table from
this module and checks it against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Support",
    "Goal",
    "TestbedModel",
    "ALL_TESTBEDS",
    "evaluate",
    "capability_matrix",
    "PAPER_TABLE_1",
]


class Support(Enum):
    YES = "yes"
    LIMITED = "limited"
    NO = "no"

    @property
    def symbol(self) -> str:
        return {"yes": "✓", "limited": "≈", "no": "✗"}[self.value]


class Goal(Enum):
    INTERDOMAIN = "interdomain"  # control of interdomain routes
    RICH_CONNECTIVITY = "rich-connectivity"
    TRAFFIC = "traffic"  # control of data-plane traffic
    REAL_SERVICES = "real-services"
    INTRADOMAIN = "intradomain"  # control of intradomain topology/routing
    OPEN_SIMULTANEOUS = "open-simultaneous"


@dataclass(frozen=True)
class TestbedModel:
    """Structural facts about a platform, from which goal support derives.

    The fields deliberately describe *mechanisms*, not conclusions:

    * ``bgp_sessions`` — can users originate/withdraw real BGP routes?
      ``"full"`` (arbitrary announcements), ``"beacon"`` (fixed schedule),
      ``"none"``.
    * ``upstream_diversity`` — distinct networks routes/traffic enter
      through: ``"many"`` (hundreds, IXP-scale), ``"several"``, ``"few"``.
    * ``sends_traffic`` / ``receives_traffic`` — data-plane abilities.
    * ``user_code`` — can researchers run their own programs?
    * ``persistent_resources`` — can a deployment hold resources long
      enough to run a service?
    * ``emulates_topology`` — can users define internal topology/routing?
    * ``shared_concurrent`` — open platform with simultaneous experiments?
    """

    name: str
    short: str
    bgp_sessions: str = "none"  # "full" | "beacon" | "none"
    upstream_diversity: str = "few"  # "many" | "several" | "few"
    observes_routes: bool = False
    sends_traffic: bool = False
    receives_traffic: bool = False
    user_code: bool = False
    persistent_resources: bool = False
    emulates_topology: bool = False
    shared_concurrent: bool = False
    vantage_points: int = 1


def _interdomain(model: TestbedModel) -> Support:
    if model.bgp_sessions == "full":
        return Support.YES
    if model.bgp_sessions == "beacon":
        return Support.LIMITED
    return Support.NO


def _rich_connectivity(model: TestbedModel) -> Support:
    # Route/traffic entry points across many networks: either lots of
    # vantage points (PlanetLab, collectors) or IXP-scale peering.
    if model.upstream_diversity == "many" or model.vantage_points >= 100:
        return Support.YES
    return Support.NO


def _traffic(model: TestbedModel) -> Support:
    if model.sends_traffic and model.receives_traffic:
        return Support.YES
    if model.sends_traffic or model.receives_traffic:
        return Support.LIMITED
    return Support.NO


def _real_services(model: TestbedModel) -> Support:
    if model.user_code and model.persistent_resources and model.receives_traffic:
        return Support.YES
    return Support.NO


def _intradomain(model: TestbedModel) -> Support:
    return Support.YES if model.emulates_topology else Support.NO


def _open_simultaneous(model: TestbedModel) -> Support:
    return Support.YES if model.shared_concurrent else Support.NO


_EVALUATORS = {
    Goal.INTERDOMAIN: _interdomain,
    Goal.RICH_CONNECTIVITY: _rich_connectivity,
    Goal.TRAFFIC: _traffic,
    Goal.REAL_SERVICES: _real_services,
    Goal.INTRADOMAIN: _intradomain,
    Goal.OPEN_SIMULTANEOUS: _open_simultaneous,
}


def evaluate(model: TestbedModel, goal: Goal) -> Support:
    """Derive one table cell from the platform's structural facts."""
    return _EVALUATORS[goal](model)


def capability_matrix(
    models: Optional[List[TestbedModel]] = None,
) -> Dict[str, Dict[Goal, Support]]:
    """The full Table 1 as {testbed short name: {goal: support}}."""
    return {
        model.short: {goal: evaluate(model, goal) for goal in Goal}
        for model in (models or ALL_TESTBEDS)
    }


PLANETLAB = TestbedModel(
    name="PlanetLab",
    short="PL",
    bgp_sessions="none",
    vantage_points=700,  # hundreds of sites with distinct upstreams
    sends_traffic=True,
    receives_traffic=True,
    user_code=True,
    persistent_resources=True,
    emulates_topology=False,  # end hosts; no sensible intradomain emulation
    shared_concurrent=True,
)

VINI = TestbedModel(
    name="VINI",
    short="VN",
    bgp_sessions="none",  # emulated networks cannot exchange routes with the Internet
    vantage_points=10,
    sends_traffic=True,
    receives_traffic=True,
    user_code=True,
    persistent_resources=True,
    emulates_topology=True,
    shared_concurrent=True,
)

EMULAB = TestbedModel(
    name="Emulab",
    short="EM",
    bgp_sessions="none",
    vantage_points=1,
    sends_traffic=True,
    receives_traffic=True,
    user_code=True,
    persistent_resources=False,  # allocations are time-bounded; no services
    emulates_topology=True,
    shared_concurrent=True,
)

MININET = TestbedModel(
    name="Mininet",
    short="MN",
    bgp_sessions="none",
    vantage_points=1,
    sends_traffic=True,
    receives_traffic=True,
    user_code=True,
    persistent_resources=False,  # a laptop tool, not a hosting platform
    emulates_topology=True,
    shared_concurrent=True,
)

ROUTE_COLLECTORS = TestbedModel(
    name="Route Collectors (RouteViews/RIPE RIS)",
    short="RC",
    bgp_sessions="none",  # observe only
    observes_routes=True,
    upstream_diversity="many",
    vantage_points=500,
    sends_traffic=False,
    receives_traffic=False,
    user_code=False,
    persistent_resources=False,
    emulates_topology=False,
    shared_concurrent=True,  # data is open to everyone at once
)

BEACONS = TestbedModel(
    name="BGP Beacons",
    short="BC",
    bgp_sessions="beacon",  # scheduled, fixed announcements only
    vantage_points=3,
    sends_traffic=False,
    receives_traffic=False,
    user_code=False,
    persistent_resources=False,
    emulates_topology=False,
    shared_concurrent=False,  # one fixed schedule; not open experimentation
)

TRANSIT_PORTAL = TestbedModel(
    name="Transit Portal",
    short="TP",
    bgp_sessions="full",
    upstream_diversity="few",  # a handful of university upstreams
    vantage_points=5,
    sends_traffic=False,  # limited: forwards transit but no active-measurement support
    receives_traffic=True,
    user_code=True,
    persistent_resources=True,
    emulates_topology=False,  # forwards between upstreams and clients only
    shared_concurrent=False,  # effectively dedicated deployments
)

PEERING = TestbedModel(
    name="PEERING",
    short="PR",
    bgp_sessions="full",
    upstream_diversity="many",  # IXP route servers + bilateral + universities
    vantage_points=9,
    sends_traffic=True,
    receives_traffic=True,
    user_code=True,
    persistent_resources=True,
    emulates_topology=True,  # via MinineXt / VINI coupling
    shared_concurrent=True,  # client per /24, vetted experiments
)

ALL_TESTBEDS: List[TestbedModel] = [
    PLANETLAB,
    VINI,
    EMULAB,
    MININET,
    ROUTE_COLLECTORS,
    BEACONS,
    TRANSIT_PORTAL,
    PEERING,
]


# The paper's Table 1, for verification (row -> short -> symbol).
PAPER_TABLE_1: Dict[Goal, Dict[str, str]] = {
    Goal.INTERDOMAIN: {
        "PL": "✗", "VN": "✗", "EM": "✗", "MN": "✗",
        "RC": "✗", "BC": "≈", "TP": "✓", "PR": "✓",
    },
    Goal.RICH_CONNECTIVITY: {
        "PL": "✓", "VN": "✗", "EM": "✗", "MN": "✗",
        "RC": "✓", "BC": "✗", "TP": "✗", "PR": "✓",
    },
    Goal.TRAFFIC: {
        "PL": "✓", "VN": "✓", "EM": "✓", "MN": "✓",
        "RC": "✗", "BC": "✗", "TP": "≈", "PR": "✓",
    },
    Goal.REAL_SERVICES: {
        "PL": "✓", "VN": "✓", "EM": "✗", "MN": "✗",
        "RC": "✗", "BC": "✗", "TP": "✓", "PR": "✓",
    },
    Goal.INTRADOMAIN: {
        "PL": "✗", "VN": "✓", "EM": "✓", "MN": "✓",
        "RC": "✗", "BC": "✗", "TP": "✗", "PR": "✓",
    },
    Goal.OPEN_SIMULTANEOUS: {
        "PL": "✓", "VN": "✓", "EM": "✓", "MN": "✓",
        "RC": "✓", "BC": "✗", "TP": "✗", "PR": "✓",
    },
}


def no_two_combine() -> bool:
    """The paper's closing claim for Table 1: no two non-PEERING systems
    together cover every goal PEERING covers."""
    matrix = capability_matrix()
    others = [m.short for m in ALL_TESTBEDS if m.short != "PR"]
    peering_goals = {
        goal for goal, support in matrix["PR"].items() if support is Support.YES
    }
    for i, a in enumerate(others):
        for b in others[i + 1 :]:
            combined = {
                goal
                for goal in Goal
                if matrix[a][goal] is Support.YES or matrix[b][goal] is Support.YES
            }
            if peering_goals <= combined:
                return False
    return True
