"""Capability models of related testbeds (Table 1)."""

from .models import (
    ALL_TESTBEDS,
    PAPER_TABLE_1,
    Goal,
    Support,
    TestbedModel,
    capability_matrix,
    evaluate,
    no_two_combine,
)

__all__ = [
    "ALL_TESTBEDS",
    "PAPER_TABLE_1",
    "Goal",
    "Support",
    "TestbedModel",
    "capability_matrix",
    "evaluate",
    "no_two_combine",
]
