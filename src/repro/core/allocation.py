"""Prefix pool management.

PEERING owns a /19 and hands each experiment its own /24 ("PEERING
supports a client per /24 prefix", §5), which is what isolates
simultaneous experiments from each other (§3).  The pool also accepts
donated prefixes ("some researchers have offered to donate IPv4 prefixes")
and IPv6 blocks.

Allocation is first-fit over a radix trie, so releasing a block makes it
reusable and fragmentation is handled naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.addr import Prefix
from ..net.trie import PrefixTrie

__all__ = ["AllocationError", "Allocation", "PrefixPool"]

CLIENT_PREFIX_LENGTH = 24
CLIENT_PREFIX_LENGTH_V6 = 48


class AllocationError(Exception):
    """Raised when the pool cannot satisfy or locate an allocation."""


@dataclass(frozen=True)
class Allocation:
    prefix: Prefix
    owner: str
    pool_block: Prefix


class PrefixPool:
    """Allocates client prefixes out of one or more supernets."""

    def __init__(self, supernets: Optional[List[Prefix]] = None) -> None:
        self._supernets: Dict[int, List[Prefix]] = {4: [], 6: []}
        self._allocated: Dict[int, PrefixTrie] = {4: PrefixTrie(4), 6: PrefixTrie(6)}
        self._by_owner: Dict[str, List[Allocation]] = {}
        for supernet in supernets or []:
            self.add_supernet(supernet)

    def add_supernet(self, supernet: Prefix) -> None:
        """Add a block to allocate from (the /19, or a donated prefix)."""
        for existing in self._supernets[supernet.version]:
            if existing.overlaps(supernet):
                raise AllocationError(f"{supernet} overlaps pool block {existing}")
        self._supernets[supernet.version].append(supernet)

    def supernets(self, version: int = 4) -> List[Prefix]:
        return list(self._supernets[version])

    def allocate(
        self,
        owner: str,
        length: Optional[int] = None,
        version: int = 4,
    ) -> Allocation:
        """First-fit allocate a client prefix for ``owner``."""
        if length is None:
            length = CLIENT_PREFIX_LENGTH if version == 4 else CLIENT_PREFIX_LENGTH_V6
        trie = self._allocated[version]
        for block in self._supernets[version]:
            if length < block.length:
                continue
            candidate = trie.first_free(block, length)
            if candidate is not None:
                allocation = Allocation(prefix=candidate, owner=owner, pool_block=block)
                trie[candidate] = allocation
                self._by_owner.setdefault(owner, []).append(allocation)
                return allocation
        raise AllocationError(
            f"pool exhausted: no free /{length} (IPv{version}) for {owner!r}"
        )

    def release(self, prefix: Prefix) -> Allocation:
        """Return a block to the pool."""
        trie = self._allocated[prefix.version]
        try:
            allocation = trie.remove(prefix)
        except KeyError:
            raise AllocationError(f"{prefix} is not allocated") from None
        self._by_owner[allocation.owner].remove(allocation)
        if not self._by_owner[allocation.owner]:
            del self._by_owner[allocation.owner]
        return allocation

    def release_owner(self, owner: str) -> List[Allocation]:
        """Release everything held by ``owner`` (experiment teardown)."""
        released = []
        for allocation in list(self._by_owner.get(owner, [])):
            released.append(self.release(allocation.prefix))
        return released

    def owner_of(self, prefix: Prefix) -> Optional[str]:
        """Owner of the allocation covering ``prefix`` (exact or within)."""
        trie = self._allocated[prefix.version]
        hits = list(trie.covering(prefix))
        if hits:
            return hits[-1][1].owner
        exact = trie.get(prefix)
        return exact.owner if exact is not None else None

    def allocations_for(self, owner: str) -> List[Allocation]:
        return list(self._by_owner.get(owner, []))

    def allocations(self) -> List[Allocation]:
        out: List[Allocation] = []
        for trie in self._allocated.values():
            out.extend(trie.values())
        return out

    def contains(self, prefix: Prefix) -> bool:
        """True if ``prefix`` falls inside any pool supernet — the mux's
        most basic export filter ("prefixes outside PEERING control")."""
        return any(
            block.contains(prefix) for block in self._supernets[prefix.version]
        )

    def capacity(self, length: int = CLIENT_PREFIX_LENGTH, version: int = 4) -> int:
        """How many /``length`` blocks the pool can hold in total."""
        total = 0
        for block in self._supernets[version]:
            if length >= block.length:
                total += 1 << (length - block.length)
        return total

    def free_count(self, length: int = CLIENT_PREFIX_LENGTH, version: int = 4) -> int:
        """Remaining /``length`` allocations (exact-length count)."""
        used = sum(
            1 << (length - a.prefix.length) if a.prefix.length <= length else 0
            for a in self._allocated[version].values()
        )
        return self.capacity(length, version) - used
