"""Automatic control- and data-plane measurement collection.

§3: "We also automatically collect regular control and data plane
measurements towards PEERING prefixes."  Two collectors implement that:

* :class:`ControlPlaneCollector` — records, for every announced PEERING
  prefix, the route each vantage AS selected (a RouteViews-style view of
  the experiment), and can export the log as MRT records
  (:mod:`repro.bgp.mrt`).
* :class:`DataPlaneCollector` — sends periodic probes from vantage ASes
  toward PEERING prefixes through the simulated data plane, recording
  delivery status, AS path, and hop count (Hubble/LIFEGUARD-style
  reachability monitoring).

Both run on the event engine so experiments can interleave announcements
and measurement rounds in simulated time.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..bgp import mrt
from ..bgp.attributes import ASPath, PathAttributes
from ..bgp.messages import UpdateMessage
from ..inet.dataplane import DeliveryStatus
from ..net.addr import IPAddress, Prefix
from ..net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .testbed import Testbed

__all__ = [
    "RouteObservation",
    "ProbeObservation",
    "ControlPlaneCollector",
    "DataPlaneCollector",
]


@dataclass(frozen=True)
class RouteObservation:
    time: float
    vantage_asn: int
    prefix: Prefix
    as_path: Tuple[int, ...]
    reachable: bool


@dataclass(frozen=True)
class ProbeObservation:
    time: float
    vantage_asn: int
    prefix: Prefix
    status: DeliveryStatus
    path: Tuple[int, ...]

    @property
    def delivered(self) -> bool:
        return self.status is DeliveryStatus.DELIVERED


class ControlPlaneCollector:
    """Snapshots the control-plane view of announced PEERING prefixes."""

    def __init__(self, testbed: "Testbed", vantage_asns: Sequence[int]) -> None:
        self.testbed = testbed
        self.vantage_asns = list(vantage_asns)
        self.observations: List[RouteObservation] = []

    def collect(self) -> List[RouteObservation]:
        """One measurement round across all announced prefixes."""
        now = self.testbed.engine.now
        round_observations: List[RouteObservation] = []
        for prefix in self.testbed.announced_prefixes():
            outcome = self.testbed.outcome_for(prefix)
            if outcome is None:
                continue
            for vantage in self.vantage_asns:
                route = outcome.route(vantage)
                observation = RouteObservation(
                    time=now,
                    vantage_asn=vantage,
                    prefix=prefix,
                    as_path=route.path if route is not None else (),
                    reachable=route is not None,
                )
                round_observations.append(observation)
        self.observations.extend(round_observations)
        return round_observations

    def schedule_rounds(self, interval: float, rounds: int) -> None:
        for i in range(1, rounds + 1):
            self.testbed.engine.schedule(interval * i, self.collect, label="cp-collect")

    def reachability_matrix(self) -> Dict[Prefix, Dict[int, bool]]:
        """Latest observation per (prefix, vantage)."""
        matrix: Dict[Prefix, Dict[int, bool]] = {}
        for observation in self.observations:
            matrix.setdefault(observation.prefix, {})[observation.vantage_asn] = (
                observation.reachable
            )
        return matrix

    def export_mrt(self) -> bytes:
        """The observation log as BGP4MP records (one per observation)."""
        out = io.BytesIO()
        collector_addr = IPAddress("100.65.255.1")
        for observation in self.observations:
            if not observation.reachable:
                update = UpdateMessage.withdraw([observation.prefix])
            else:
                update = UpdateMessage.announce(
                    [observation.prefix],
                    PathAttributes(
                        as_path=ASPath.from_asns(observation.as_path),
                        next_hop=collector_addr,
                    ),
                )
            mrt.write_update(
                out,
                timestamp=observation.time,
                local_asn=self.testbed.asn,
                peer_asn=observation.vantage_asn,
                peer_address=collector_addr,
                local_address=collector_addr,
                update=update,
            )
        return out.getvalue()


class DataPlaneCollector:
    """Probes announced prefixes from vantage ASes (ping/traceroute)."""

    def __init__(self, testbed: "Testbed", vantage_asns: Sequence[int]) -> None:
        self.testbed = testbed
        self.vantage_asns = list(vantage_asns)
        self.observations: List[ProbeObservation] = []
        self._probe_src = IPAddress("192.0.2.1")  # TEST-NET: synthetic probes

    def collect(self) -> List[ProbeObservation]:
        now = self.testbed.engine.now
        round_observations: List[ProbeObservation] = []
        for prefix in self.testbed.announced_prefixes():
            target = prefix.first_address() + 1
            for vantage in self.vantage_asns:
                packet = Packet(src=self._probe_src, dst=target, proto="icmp-echo")
                delivery = self.testbed.dataplane.send(vantage, packet)
                round_observations.append(
                    ProbeObservation(
                        time=now,
                        vantage_asn=vantage,
                        prefix=prefix,
                        status=delivery.status,
                        path=delivery.path,
                    )
                )
        self.observations.extend(round_observations)
        return round_observations

    def schedule_rounds(self, interval: float, rounds: int) -> None:
        for i in range(1, rounds + 1):
            self.testbed.engine.schedule(interval * i, self.collect, label="dp-collect")

    def delivery_rate(self, prefix: Optional[Prefix] = None) -> float:
        relevant = [
            o for o in self.observations if prefix is None or o.prefix == prefix
        ]
        if not relevant:
            return 0.0
        return sum(1 for o in relevant if o.delivered) / len(relevant)
