"""The announcement-scheduling web service (§3 "Easing management").

"We implemented a prototype web service that lets users schedule
announcements without setting up a client software router ... The system
will then notify researchers when their announcements will be executed."

:class:`AnnouncementScheduler` models exactly that: researchers submit
timed announce/withdraw requests, the scheduler checks conflicts (two
experiments cannot schedule the same prefix; one experiment cannot
double-book a prefix in overlapping windows), executes them on the event
engine, and fires notifications so researchers can time their
measurements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..net.addr import Prefix
from ..sim.engine import Engine
from .server import AnnouncementSpec, PeeringServer

__all__ = ["ScheduleStatus", "ScheduledTask", "SchedulerError", "AnnouncementScheduler"]


class SchedulerError(Exception):
    """Raised for conflicting or malformed schedules."""


class ScheduleStatus(Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"
    FAILED = "failed"


@dataclass
class ScheduledTask:
    """One scheduled announcement window: announce at ``start``, withdraw
    at ``start + duration`` (duration None = leave announced)."""

    task_id: int
    client_id: str
    prefix: Prefix
    server_name: str
    start: float
    duration: Optional[float]
    spec: AnnouncementSpec
    status: ScheduleStatus = ScheduleStatus.PENDING
    failure: str = ""

    @property
    def end(self) -> Optional[float]:
        return None if self.duration is None else self.start + self.duration

    def overlaps(self, other: "ScheduledTask") -> bool:
        if self.prefix != other.prefix:
            return False
        a_end = self.end if self.end is not None else float("inf")
        b_end = other.end if other.end is not None else float("inf")
        return self.start < b_end and other.start < a_end


class AnnouncementScheduler:
    """Timed announcement execution with conflict checking and
    notifications."""

    def __init__(self, engine: Engine, servers: Dict[str, PeeringServer]) -> None:
        self.engine = engine
        self.servers = servers
        self._tasks: Dict[int, ScheduledTask] = {}
        self._ids = itertools.count(1)
        self.notifications: List[Tuple[float, int, str]] = []
        self.on_notify: Optional[Callable[[ScheduledTask, str], None]] = None

    def schedule(
        self,
        client_id: str,
        prefix: Prefix,
        server_name: str,
        start: float,
        duration: Optional[float] = None,
        spec: Optional[AnnouncementSpec] = None,
    ) -> ScheduledTask:
        """Book an announcement window; raises on conflicts."""
        if server_name not in self.servers:
            raise SchedulerError(f"unknown server {server_name!r}")
        if start < self.engine.now:
            raise SchedulerError(f"start {start} is in the past (now {self.engine.now})")
        task = ScheduledTask(
            task_id=next(self._ids),
            client_id=client_id,
            prefix=prefix,
            server_name=server_name,
            start=start,
            duration=duration,
            spec=spec or AnnouncementSpec(),
        )
        for other in self._tasks.values():
            if other.status in (ScheduleStatus.PENDING, ScheduleStatus.RUNNING):
                if task.overlaps(other) and other.client_id != client_id:
                    raise SchedulerError(
                        f"{prefix} already booked by {other.client_id!r} "
                        f"(task {other.task_id})"
                    )
                if task.overlaps(other) and other.client_id == client_id:
                    raise SchedulerError(
                        f"{prefix} double-booked by task {other.task_id}"
                    )
        self._tasks[task.task_id] = task
        self.engine.schedule_at(start, lambda: self._start_task(task), label=f"announce:{task.task_id}")
        self._notify(task, f"scheduled: announce {prefix} at t={start}")
        return task

    def cancel(self, task_id: int) -> None:
        task = self._tasks.get(task_id)
        if task is None:
            raise SchedulerError(f"unknown task {task_id}")
        if task.status is ScheduleStatus.RUNNING:
            self._finish_task(task)
        task.status = ScheduleStatus.CANCELLED
        self._notify(task, "cancelled")

    def task(self, task_id: int) -> ScheduledTask:
        return self._tasks[task_id]

    def tasks_for(self, client_id: str) -> List[ScheduledTask]:
        return [t for t in self._tasks.values() if t.client_id == client_id]

    def _start_task(self, task: ScheduledTask) -> None:
        if task.status is not ScheduleStatus.PENDING:
            return
        server = self.servers[task.server_name]
        decision = server.announce(task.client_id, task.prefix, task.spec)
        if not decision.allowed:
            task.status = ScheduleStatus.FAILED
            task.failure = decision.detail
            self._notify(task, f"failed: {decision.detail}")
            return
        task.status = ScheduleStatus.RUNNING
        self._notify(task, f"announced {task.prefix} via {task.server_name}")
        if task.duration is not None:
            self.engine.schedule(
                task.duration, lambda: self._end_task(task), label=f"withdraw:{task.task_id}"
            )

    def _end_task(self, task: ScheduledTask) -> None:
        if task.status is not ScheduleStatus.RUNNING:
            return
        self._finish_task(task)
        task.status = ScheduleStatus.DONE
        self._notify(task, f"withdrew {task.prefix}")

    def _finish_task(self, task: ScheduledTask) -> None:
        server = self.servers[task.server_name]
        server.withdraw(task.client_id, task.prefix)

    def _notify(self, task: ScheduledTask, message: str) -> None:
        self.notifications.append((self.engine.now, task.task_id, message))
        if self.on_notify is not None:
            self.on_notify(task, message)
