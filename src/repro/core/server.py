"""PEERING servers ("muxes").

A server sits at a site — a university with transit upstreams, or an IXP
where it peers via the route server and bilaterally — and interposes
between researcher clients and the (simulated) Internet:

* **Interdomain side**: the server's adjacencies live in the
  :class:`~repro.inet.topology.ASGraph` under the shared PEERING ASN.
  Client announcements become :class:`~repro.inet.routing.OriginSpec`
  entries and propagate over the substrate; routes toward other
  destinations are derived per-peer with
  :meth:`~repro.inet.routing.RoutingOutcome.exports_to`.

* **Client side**: real BGP sessions (full wire codec / FSM / timers) in
  one of two modes, the §3 design choice:

  - :attr:`MuxMode.QUAGGA` — one session per upstream peer per client.
    Faithful to the deployed Transit-Portal-derived design; "cannot
    support large IXPs with many peers".
  - :attr:`MuxMode.BIRD` — a single session per client multiplexing all
    peers with ADD-PATH path identifiers (the planned BIRD design).

The server does **not** run best-path selection across peers — each
peer's routes are relayed to clients separately, which is the testbed's
core trick for giving researchers peer-level control (§3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..bgp.attributes import ASPath, Origin, PathAttributes
from ..bgp.errors import BGPError
from ..bgp.messages import UpdateMessage
from ..bgp.session import BGPSession, SessionConfig
from ..net.addr import IPAddress, Prefix
from ..net.channel import ChannelPair, Endpoint
from ..net.packet import Packet
from ..net.tunnel import Tunnel, TunnelEndpoint
from ..sim.engine import Engine
from ..inet.routing import ASRoute
from ..telemetry.tracing import maybe_span
from .safety import SafetyDecision, SafetyEnforcer, SafetyVerdict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..guard.journal import ControlJournal, SpecTuple
    from ..guard.supervisor import Supervisor
    from .testbed import Testbed

__all__ = [
    "MuxMode",
    "SiteKind",
    "SiteConfig",
    "AnnouncementSpec",
    "PeeringServer",
    "spec_to_tuple",
    "spec_from_tuple",
]


class MuxMode(Enum):
    QUAGGA = "quagga"  # session per upstream peer per client
    BIRD = "bird"  # one ADD-PATH session per client


class SiteKind(Enum):
    UNIVERSITY = "university"
    IXP = "ixp"


@dataclass(frozen=True)
class SiteConfig:
    """Where a server is deployed and how it connects."""

    name: str
    kind: SiteKind
    country: str = "US"
    ixp: Optional[str] = None  # IXP name for IXP sites
    upstream_asns: Tuple[int, ...] = ()  # transit providers for university sites


@dataclass(frozen=True)
class AnnouncementSpec:
    """How a client wants one prefix announced from this server.

    ``peers``: restrict to these peer/upstream ASNs (None = all at this
    server) — the "pick and choose peers" control.  ``prepend`` and
    ``poison`` steer paths; both survive safety filtering because they
    only affect PEERING's own prefix.
    """

    peers: Optional[Tuple[int, ...]] = None
    prepend: int = 0
    poison: Tuple[int, ...] = ()


def spec_to_tuple(spec: AnnouncementSpec) -> "SpecTuple":
    """Serialize for the control journal (plain tuples, JSON-safe)."""
    return (spec.peers, spec.prepend, spec.poison)


def spec_from_tuple(raw: "SpecTuple") -> AnnouncementSpec:
    peers, prepend, poison = raw
    return AnnouncementSpec(
        peers=tuple(peers) if peers is not None else None,
        prepend=int(prepend),
        poison=tuple(poison),
    )


class _ClientAttachment:
    """Server-side state for one connected client."""

    def __init__(self, client_id: str, mode: MuxMode, tunnel: Tunnel, local: TunnelEndpoint) -> None:
        self.client_id = client_id
        self.mode = mode
        self.tunnel = tunnel
        self.tunnel_endpoint = local
        self.sessions: Dict[int, BGPSession] = {}  # peer asn -> session (QUAGGA)
        self.bird_session: Optional[BGPSession] = None
        self.path_id_by_peer: Dict[int, int] = {}
        self.peer_by_path_id: Dict[int, int] = {}
        self.announcements: Dict[Prefix, AnnouncementSpec] = {}

    def session_count(self) -> int:
        return len(self.sessions) + (1 if self.bird_session is not None else 0)

    def path_id_for(self, peer_asn: int) -> int:
        if peer_asn not in self.path_id_by_peer:
            path_id = len(self.path_id_by_peer) + 1
            self.path_id_by_peer[peer_asn] = path_id
            self.peer_by_path_id[path_id] = peer_asn
        return self.path_id_by_peer[peer_asn]


class PeeringServer:
    """One PEERING mux."""

    TUNNEL_NET = Prefix("100.64.0.0/10")  # CGN space for tunnel endpoints

    def __init__(
        self,
        testbed: "Testbed",
        site: SiteConfig,
        address: IPAddress,
        safety: Optional[SafetyEnforcer] = None,
    ) -> None:
        self.testbed = testbed
        self.site = site
        self.address = address
        self.engine: Engine = testbed.engine
        self.asn: int = testbed.asn
        self.safety = safety or SafetyEnforcer()
        self.neighbor_asns: Set[int] = set()
        self._clients: Dict[str, _ClientAttachment] = {}
        self._next_tunnel_host = 1
        self.updates_relayed = 0
        self._relayed_counter = testbed.metrics.counter(
            "peering_updates_relayed_total",
            "Per-peer routes relayed down client sessions",
            ("server",),
        ).labels(site.name)
        self.alive = True
        self.wedged = False  # alive-but-unresponsive (hung process)
        self.crash_count = 0
        self._reprovision_seq = 0
        # Supervision wiring (set by repro.guard.Supervisor.adopt_server).
        self.guard: Optional["Supervisor"] = None
        self.journal: Optional["ControlJournal"] = None

    # -- interdomain attachment --------------------------------------------------

    def attach_university_upstreams(self) -> None:
        """Buy transit from the site's configured upstream ASNs."""
        graph = self.testbed.graph
        for upstream in self.site.upstream_asns:
            if upstream not in graph.providers(self.asn):
                graph.add_provider(self.asn, upstream)
            self.neighbor_asns.add(upstream)

    def join_ixp(self, request_bilateral: bool = True) -> Dict[str, int]:
        """Join the site's IXP: route server first, then bilateral
        requests to open (and case-by-case) members — the §4.1 recipe.

        Returns summary counts.
        """
        if self.site.ixp is None:
            raise ValueError(f"site {self.site.name} has no IXP")
        ixp = self.testbed.internet.ixps[self.site.ixp]
        ixp.add_member(self.asn)
        gained = ixp.join_route_server(self.asn)
        self.neighbor_asns |= gained
        accepted = 0
        requested = 0
        if request_bilateral:
            from ..inet.topology import PeeringPolicy

            graph = self.testbed.graph
            for target in sorted(ixp.non_route_server_members()):
                if target == self.asn:
                    continue
                if graph.relationship(self.asn, target) is not None:
                    # Already related (e.g. one of our transit providers
                    # is present here): not a new peering at this site.
                    continue
                policy = graph.get(target).peering_policy
                if policy in (
                    PeeringPolicy.OPEN,
                    PeeringPolicy.CASE_BY_CASE,
                    PeeringPolicy.UNLISTED,
                ):
                    requested += 1
                    result = ixp.request_bilateral(self.asn, target)
                    if result.accepted:
                        accepted += 1
                        self.neighbor_asns.add(target)
        return {
            "route_server_peers": len(gained),
            "bilateral_requested": requested,
            "bilateral_accepted": accepted,
            "total_neighbors": len(self.neighbor_asns),
        }

    def peers(self) -> Set[int]:
        return set(self.neighbor_asns)

    # -- client attachment --------------------------------------------------------

    def connect_client(
        self,
        client_id: str,
        mode: MuxMode = MuxMode.QUAGGA,
        client_asn: int = 64512,
        peer_asns: Optional[Iterable[int]] = None,
        graceful_restart: bool = False,
        restart_time: int = 60,
    ) -> Tuple[TunnelEndpoint, Dict[int, Endpoint]]:
        """Attach a client: build the OpenVPN-style tunnel and the BGP
        session endpoints the client should drive.

        Returns ``(client_tunnel_endpoint, {peer_asn: channel_endpoint})``;
        in BIRD mode the dict has a single entry keyed by 0.
        """
        if not self.alive or self.wedged:
            raise ValueError(f"mux {self.site.name!r} is down")
        if client_id in self._clients:
            raise ValueError(f"client {client_id!r} already attached")
        if self.guard is not None and not self.guard.allows_connect(client_id):
            raise ValueError(f"client {client_id!r} is quarantined")
        selected = set(peer_asns) if peer_asns is not None else set(self.neighbor_asns)
        unknown = selected - self.neighbor_asns
        if unknown:
            raise ValueError(f"not neighbors at {self.site.name}: {sorted(unknown)}")
        # Validation done: journal the attachment write-ahead, before any
        # state it describes is built.
        if self.journal is not None:
            self.journal.append(
                self.engine.now, "connect", server=self.site.name, client=client_id
            )
        local_addr = self._tunnel_address()
        remote_addr = self._tunnel_address()
        local = TunnelEndpoint(local_addr, name=f"{self.site.name}:{client_id}:server")
        remote = TunnelEndpoint(remote_addr, name=f"{self.site.name}:{client_id}:client")
        tunnel = Tunnel(local, remote, rate_limit=self.testbed.tunnel_rate_limit)
        local.on_packet = lambda packet: self._client_packet(client_id, packet)

        attachment = _ClientAttachment(client_id, mode, tunnel, local)
        self._clients[client_id] = attachment

        endpoints: Dict[int, Endpoint] = {}
        if mode is MuxMode.QUAGGA:
            # One session per upstream peer: the client sees each peer as
            # if directly connected (§3).
            for peer_asn in sorted(selected):
                pair = ChannelPair(f"{self.site.name}:{client_id}:{peer_asn}")
                session = BGPSession(
                    self.engine,
                    SessionConfig(
                        local_asn=self.asn,
                        peer_asn=client_asn,
                        local_id=self.address,
                        passive=True,
                        graceful_restart=graceful_restart,
                        restart_time=restart_time,
                        description=f"{self.site.name}/{client_id}/AS{peer_asn}",
                    ),
                    pair.a,
                )
                session.on_update = self._update_handler(attachment, peer_asn)
                self._arm_end_of_rib(session)
                attachment.sessions[peer_asn] = session
                endpoints[peer_asn] = pair.b
        else:
            pair = ChannelPair(f"{self.site.name}:{client_id}:bird")
            session = BGPSession(
                self.engine,
                SessionConfig(
                    local_asn=self.asn,
                    peer_asn=client_asn,
                    local_id=self.address,
                    passive=True,
                    add_path=True,
                    graceful_restart=graceful_restart,
                    restart_time=restart_time,
                    description=f"{self.site.name}/{client_id}/bird",
                ),
                pair.a,
            )
            session.on_update = self._update_handler(attachment, None)
            self._arm_end_of_rib(session)
            attachment.bird_session = session
            for peer_asn in sorted(selected):
                attachment.path_id_for(peer_asn)
            endpoints[0] = pair.b
        telemetry = self.testbed.telemetry
        if telemetry is not None:
            for peer_asn, session in attachment.sessions.items():
                telemetry.attach_session(self.site.name, client_id, peer_asn, session)
            if attachment.bird_session is not None:
                telemetry.attach_session(
                    self.site.name, client_id, None, attachment.bird_session
                )
        return remote, endpoints

    @staticmethod
    def _arm_end_of_rib(session: BGPSession) -> None:
        """After (re-)establishing with graceful restart, tell the client
        we are done re-advertising (the mux relays on demand, so "done" is
        immediate) — letting it flush stale-retained routes promptly."""

        def established(s: BGPSession) -> None:
            if s.gr_active:
                s.send_end_of_rib()

        session.on_established = established

    def disconnect_client(self, client_id: str) -> None:
        attachment = self._clients.pop(client_id, None)
        if attachment is None:
            return
        if self.journal is not None:
            self.journal.append(
                self.engine.now, "disconnect", server=self.site.name, client=client_id
            )
        for session in attachment.sessions.values():
            session.stop("client disconnected")
        if attachment.bird_session is not None:
            attachment.bird_session.stop("client disconnected")
        attachment.tunnel.take_down()
        for prefix in list(attachment.announcements):
            # record=False: the disconnect record subsumes these in replay.
            self.testbed.retract(self, client_id, prefix, record=False)

    def drop_client_sessions(self, client_id: str) -> int:
        """Abruptly sever every BGP session of one client (supervision
        teardown: breaker trip or quarantine).  The attachment itself is
        kept — a re-admitted client re-provisions channels through
        :meth:`reconnect_endpoint`.  Returns the number of sessions
        dropped."""
        attachment = self._clients.get(client_id)
        if attachment is None:
            return 0
        dropped = 0
        for session in attachment.sessions.values():
            if session.endpoint is not None and not session.endpoint.closed:
                session.drop("supervision teardown")
                dropped += 1
        bird = attachment.bird_session
        if bird is not None and bird.endpoint is not None and not bird.endpoint.closed:
            bird.drop("supervision teardown")
            dropped += 1
        return dropped

    # -- crash / restart ---------------------------------------------------------

    def crash(self, hard: bool = False) -> None:
        """The mux process dies abruptly: sessions drop without CEASE,
        tunnels go down, and the site's announcements leave the Internet.

        ``hard=False`` models a polite reboot: attachment state (including
        announcement specs) survives in "process memory" for
        :meth:`restart`.  ``hard=True`` models a real crash (power loss,
        ``kill -9`` of a wedged process): in-memory announcement maps are
        LOST, and :meth:`restart` can rebuild them only from the control
        journal.
        """
        if not self.alive:
            return
        self.alive = False
        self.wedged = False  # a dead process is no longer hung
        self.crash_count += 1
        for attachment in self._clients.values():
            for session in attachment.sessions.values():
                session.drop("mux crashed")
            bird = attachment.bird_session
            if bird is not None:
                bird.drop("mux crashed")
            attachment.tunnel.take_down()
            for prefix in list(attachment.announcements):
                # Registry only, and record=False: a crash is not a client
                # withdrawal — the journal keeps recording the client's
                # intent so restart can restore it.
                self.testbed.retract(self, attachment.client_id, prefix, record=False)
            if hard:
                attachment.announcements.clear()
        self.testbed.events.emit(
            "mux-crash", source=self.site.name, clients=len(self._clients), hard=hard
        )

    def wedge(self) -> None:
        """The mux process hangs: still claims to be alive (sessions stay
        up, ports open) but processes nothing.  Only the watchdog's
        liveness probes can tell; it force-crashes the process hard."""
        if self.alive:
            self.wedged = True  # a hung process announces nothing, not even this

    def probe(self) -> bool:
        """Liveness probe (the watchdog's health check): False for a dead
        *or* wedged process."""
        return self.alive and not self.wedged

    def restart(self) -> None:
        """The mux comes back: tunnels up, announcements re-propagated.

        When a control journal is wired (supervised testbed), announcement
        state is rebuilt from the journal's replay — deterministic even
        after a *hard* crash wiped process memory, and without waiting for
        any client to reconnect.  Unsupervised servers fall back to the
        retained in-memory specs (PR 1 behaviour).

        BGP sessions are *not* resurrected here — each client re-establishes
        through its own backoff schedule via :meth:`reconnect_endpoint`,
        like real speakers reconnecting to a rebooted router."""
        if self.alive:
            return
        self.alive = True
        self.wedged = False
        journal_state = (
            self.journal.server_state(self.site.name) if self.journal is not None else None
        )
        for attachment in self._clients.values():
            attachment.tunnel.bring_up()
            if journal_state is not None:
                attachment.announcements = {
                    Prefix(prefix_str): spec_from_tuple(raw)
                    for prefix_str, raw in journal_state.get(
                        attachment.client_id, {}
                    ).items()
                }
            for prefix, spec in attachment.announcements.items():
                # record=False: restoring journaled intent, not a new action.
                self.testbed.announce(self, attachment.client_id, prefix, spec, record=False)
        self.testbed.events.emit(
            "mux-restart",
            source=self.site.name,
            clients=len(self._clients),
            journal_replay=journal_state is not None,
        )

    def reconnect_endpoint(self, client_id: str, key: int) -> Optional[Endpoint]:
        """Re-provision one client session over a fresh channel.

        ``key`` is the peer ASN (QUAGGA mode) or 0 (BIRD mode) — the same
        keys :meth:`connect_client` returned.  Returns the client's end of
        the new channel, or ``None`` while the mux is down (the client
        keeps backing off and retries later).

        Supervision gate: a quarantined client, or one whose breaker is
        OPEN, is refused here too — otherwise auto-reconnect would defeat
        session teardown by pulling a fresh channel and implicit-starting
        on its own OPEN."""
        if not self.alive or self.wedged:
            return None
        attachment = self._clients.get(client_id)
        if attachment is None:
            return None
        if self.guard is not None and not self.guard.allows_reprovision(self, client_id):
            return None
        session = attachment.bird_session if key == 0 else attachment.sessions.get(key)
        if session is None:
            return None
        if session.endpoint is not None and session.endpoint.connected:
            # Existing channel still healthy; nothing to re-provision.
            return None
        self._reprovision_seq += 1
        pair = ChannelPair(
            f"{self.site.name}:{client_id}:{key}#r{self._reprovision_seq}"
        )
        try:
            session.rebind(pair.a)
        except BGPError:
            return None
        self.testbed.events.emit(
            "session-reprovisioned", source=self.site.name, client=client_id, key=key
        )
        return pair.b

    def client_session_count(self, client_id: Optional[str] = None) -> int:
        if client_id is not None:
            return self._clients[client_id].session_count()
        return sum(a.session_count() for a in self._clients.values())

    def _tunnel_address(self) -> IPAddress:
        address = self.TUNNEL_NET.address + self._next_tunnel_host
        self._next_tunnel_host += 1
        return address

    # -- client control plane ----------------------------------------------------------

    def _update_handler(self, attachment: _ClientAttachment, peer_asn: Optional[int]):
        def handle(session: BGPSession, update: UpdateMessage) -> None:
            self._handle_client_update(attachment, peer_asn, session, update)

        return handle

    def _handle_client_update(
        self,
        attachment: _ClientAttachment,
        peer_asn: Optional[int],
        session: BGPSession,
        update: UpdateMessage,
    ) -> None:
        """A client spoke BGP at us: vet and translate into the substrate."""
        if self.wedged:
            return  # a hung process reads nothing off the wire
        with maybe_span(
            self.testbed.tracer,
            "mux.update",
            server=self.site.name,
            client=attachment.client_id,
            announced=len(update.nlri),
            withdrawn=len(update.withdrawn),
        ):
            self._vet_client_update(attachment, peer_asn, update)

    def _vet_client_update(
        self,
        attachment: _ClientAttachment,
        peer_asn: Optional[int],
        update: UpdateMessage,
    ) -> None:
        client_id = attachment.client_id
        now = self.engine.now
        if self.guard is not None and not self.guard.admit_update(self, client_id, now):
            # Quarantined or breaker-refused: the message is dropped and
            # audited; enforcement (session teardown) is the guard's job.
            self.safety.log_decision(
                client_id,
                SafetyDecision(
                    SafetyVerdict.BREAKER_OPEN
                    if not self.guard.is_quarantined(client_id)
                    else SafetyVerdict.QUARANTINED,
                    "update refused by supervision layer",
                ),
                now,
                count_violation=False,
            )
            return
        allocated = self.testbed.allocated_prefixes(client_id)

        for path_id, prefix in update.withdrawn:
            target_peer = self._resolve_peer(attachment, peer_asn, path_id)
            self.safety.check_withdrawal(client_id, prefix, now)
            if self.guard is not None:
                self.guard.record_flap(self, client_id, now)
            self._retract_via_peer(attachment, prefix, target_peer)

        if update.attributes is not None:
            as_path = update.attributes.as_path
            community_peers = self._community_targets(update.attributes)
            for path_id, prefix in update.nlri:
                if self.guard is not None and self.guard.is_blocked(self, client_id):
                    break  # breaker/containment fired mid-update; stop admitting
                target_peer = self._resolve_peer(attachment, peer_asn, path_id)
                # A prefix already announced by this client is being
                # extended to another peer session: validate but do not
                # recharge the rate limiter / flap damper.
                is_new = prefix not in attachment.announcements
                if (
                    is_new
                    and self.guard is not None
                    and not self.guard.admit_prefix_count(
                        self, client_id, len(attachment.announcements) + 1, now
                    )
                ):
                    continue
                with maybe_span(
                    self.testbed.tracer, "safety.check", prefix=str(prefix)
                ) as check:
                    decision = self.safety.check_announcement(
                        client_id,
                        prefix,
                        as_path,
                        allocated=set(allocated),
                        testbed_space=self.testbed.pool.contains(prefix),
                        now=now,
                        count_flap=is_new,
                        foreign_allocated=self.testbed.foreign_allocated_prefixes(
                            client_id
                        ),
                    )
                    if check is not None:
                        check.set(verdict=decision.verdict.value)
                if not decision.allowed:
                    continue
                if community_peers is not None:
                    # Community-steered: the client tagged PEERING:peer
                    # communities selecting exactly which peers hear it
                    # (how announcements are controlled over a single
                    # session in the production testbed).
                    for selected in sorted(community_peers & self.neighbor_asns):
                        self._extend_announcement(attachment, prefix, selected)
                else:
                    self._extend_announcement(attachment, prefix, target_peer)

    def _community_targets(self, attributes: PathAttributes) -> Optional[Set[int]]:
        """Peers selected by PEERING announcement-control communities.

        A community ``PEERING_ASN:X`` on a client announcement means
        "announce this prefix to peer AS X" (X must be a 16-bit ASN, a
        codec constraint the real testbed shares).  None = no steering
        communities present, so the session/path-id addressing applies.
        """
        selected = {
            community.value
            for community in attributes.communities
            if community.asn == self.asn
        }
        return selected or None

    def _resolve_peer(
        self, attachment: _ClientAttachment, peer_asn: Optional[int], path_id: Optional[int]
    ) -> Optional[int]:
        """Which upstream peer a client message addresses.

        QUAGGA mode: fixed by the session.  BIRD mode: by ADD-PATH id
        (None/0 = all peers).
        """
        if peer_asn is not None:
            return peer_asn
        if path_id in (None, 0):
            return None
        return attachment.peer_by_path_id.get(path_id)

    def _extend_announcement(
        self, attachment: _ClientAttachment, prefix: Prefix, peer_asn: Optional[int]
    ) -> None:
        spec = attachment.announcements.get(prefix)
        if peer_asn is None:
            new_spec = AnnouncementSpec(peers=None)
        else:
            current = set(spec.peers) if spec is not None and spec.peers is not None else (
                set() if spec is None else None
            )
            if current is None:
                new_spec = AnnouncementSpec(peers=None)
            else:
                current.add(peer_asn)
                new_spec = AnnouncementSpec(peers=tuple(sorted(current)))
        attachment.announcements[prefix] = new_spec
        self.testbed.announce(self, attachment.client_id, prefix, new_spec)

    def _retract_via_peer(
        self, attachment: _ClientAttachment, prefix: Prefix, peer_asn: Optional[int]
    ) -> None:
        spec = attachment.announcements.get(prefix)
        if spec is None:
            return
        if peer_asn is None or spec.peers is None:
            remaining: Set[int] = set() if peer_asn is not None and spec.peers is None else set()
            if peer_asn is None:
                attachment.announcements.pop(prefix, None)
                self.testbed.retract(self, attachment.client_id, prefix)
                return
            # withdraw one peer from an "all peers" spec
            remaining = set(self.neighbor_asns) - {peer_asn}
        else:
            remaining = set(spec.peers) - {peer_asn}
        if remaining:
            new_spec = AnnouncementSpec(peers=tuple(sorted(remaining)))
            attachment.announcements[prefix] = new_spec
            self.testbed.announce(self, attachment.client_id, prefix, new_spec)
        else:
            attachment.announcements.pop(prefix, None)
            self.testbed.retract(self, attachment.client_id, prefix)

    # -- programmatic announcement API (used by PeeringClient) ---------------------------

    def announce(
        self, client_id: str, prefix: Prefix, spec: Optional[AnnouncementSpec] = None
    ) -> SafetyDecision:
        """Vetted programmatic announcement (no client BGP session needed:
        the web-service path from §3 'Easing management')."""
        attachment = self._require_client(client_id)
        spec = spec or AnnouncementSpec()
        if spec.peers is not None:
            unknown = set(spec.peers) - self.neighbor_asns
            if unknown:
                raise ValueError(f"not neighbors at {self.site.name}: {sorted(unknown)}")
        with maybe_span(
            self.testbed.tracer,
            "mux.announce",
            server=self.site.name,
            client=client_id,
            prefix=str(prefix),
        ) as span:
            decision = self._vet_announce(attachment, client_id, prefix, spec)
            if span is not None:
                span.set(verdict=decision.verdict.value)
            return decision

    def _vet_announce(
        self,
        attachment: _ClientAttachment,
        client_id: str,
        prefix: Prefix,
        spec: AnnouncementSpec,
    ) -> SafetyDecision:
        now = self.engine.now
        if self.guard is not None:
            if self.guard.is_quarantined(client_id):
                return self.safety.log_decision(
                    client_id,
                    SafetyDecision(
                        SafetyVerdict.QUARANTINED,
                        f"client {client_id!r} is quarantined",
                    ),
                    now,
                    count_violation=False,
                )
            is_new = prefix not in attachment.announcements
            count = len(attachment.announcements) + (1 if is_new else 0)
            if not self.guard.admit_prefix_count(self, client_id, count, now):
                return self.safety.log_decision(
                    client_id,
                    SafetyDecision(
                        SafetyVerdict.BREAKER_OPEN,
                        "announcement refused: circuit breaker open",
                    ),
                    now,
                    count_violation=False,
                )
        with maybe_span(self.testbed.tracer, "safety.check", prefix=str(prefix)) as check:
            decision = self.safety.check_announcement(
                client_id,
                prefix,
                ASPath(),
                allocated=set(self.testbed.allocated_prefixes(client_id)),
                testbed_space=self.testbed.pool.contains(prefix),
                now=now,
                foreign_allocated=self.testbed.foreign_allocated_prefixes(client_id),
            )
            if check is not None:
                check.set(verdict=decision.verdict.value)
        if decision.allowed:
            attachment.announcements[prefix] = spec
            self.testbed.announce(self, client_id, prefix, spec)
        return decision

    def withdraw(self, client_id: str, prefix: Prefix) -> None:
        attachment = self._require_client(client_id)
        with maybe_span(
            self.testbed.tracer,
            "mux.withdraw",
            server=self.site.name,
            client=client_id,
            prefix=str(prefix),
        ):
            self.safety.check_withdrawal(client_id, prefix, self.engine.now)
            if self.guard is not None:
                self.guard.record_flap(self, client_id, self.engine.now)
            if prefix in attachment.announcements:
                attachment.announcements.pop(prefix)
                self.testbed.retract(self, client_id, prefix)

    def announcements_for(self, client_id: str) -> Dict[Prefix, AnnouncementSpec]:
        return dict(self._require_client(client_id).announcements)

    def _require_client(self, client_id: str) -> _ClientAttachment:
        try:
            return self._clients[client_id]
        except KeyError:
            raise ValueError(f"client {client_id!r} is not attached to {self.site.name}") from None

    # -- route relay to clients ------------------------------------------------------------

    def routes_toward(self, destination_asn: int) -> Dict[int, ASRoute]:
        """Per-peer routes this server hears for a destination AS — the
        mux's Adj-RIB-In slice, one entry per peer that exports a route.
        """
        outcome = self.testbed.outcome_for_origin(destination_asn)
        routes: Dict[int, ASRoute] = {}
        for peer_asn in sorted(self.neighbor_asns):
            exported = outcome.exports_to(peer_asn, self.asn)
            if exported is not None:
                routes[peer_asn] = exported
        return routes

    def relay_destination(self, client_id: str, destination_asn: int, prefix: Prefix) -> int:
        """Push each peer's route for ``prefix`` (originated by
        ``destination_asn``) down the client's sessions, preserving
        per-peer separation.  Returns the number of routes sent."""
        attachment = self._require_client(client_id)
        if not self.alive or self.wedged:
            return 0  # a dead/hung process relays nothing
        routes = self.routes_toward(destination_asn)
        sent = 0
        for peer_asn, route in routes.items():
            attributes = PathAttributes(
                origin=Origin.IGP,
                as_path=ASPath.from_asns(route.path),
                next_hop=attachment.tunnel_endpoint.address,
            )
            if attachment.mode is MuxMode.QUAGGA:
                session = attachment.sessions.get(peer_asn)
                if session is not None and session.established:
                    session.announce([prefix], attributes)
                    sent += 1
            else:
                session = attachment.bird_session
                if session is not None and session.established:
                    path_id = attachment.path_id_for(peer_asn)
                    session.announce([prefix], attributes, path_ids=[path_id])
                    sent += 1
        self.updates_relayed += sent
        if sent:
            self._relayed_counter.inc(sent)
        return sent

    # -- data plane ----------------------------------------------------------------------

    def _client_packet(self, client_id: str, packet: Packet) -> None:
        """Traffic from a client tunnel: vet the source, then hand to the
        substrate at our AS."""
        allocated = set(self.testbed.allocated_prefixes(client_id))
        decision = self.safety.check_packet(client_id, packet, allocated)
        if not decision.allowed:
            return
        self.testbed.inject_packet(self, client_id, packet)

    def deliver_to_client(self, client_id: str, packet: Packet) -> bool:
        """Traffic from the Internet toward a client prefix: through the
        tunnel."""
        attachment = self._clients.get(client_id)
        if attachment is None or not attachment.tunnel.up:
            return False
        attachment.tunnel_endpoint.send(packet)
        return True

