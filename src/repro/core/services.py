"""Server-side packet processing — the "real services" machinery (§3).

The paper: "Researchers can also run lightweight code in VMs on PEERING
servers to process packets.  They can rewrite, rate-limit, or DPI
traffic; coordinate with an SDN controller; or deploy services. ...
Going forward, we plan to expose a lightweight packet processing API
(e.g., running an OpenFlow software switch or extending Linux's
iptables) to provide common packet processing capabilities to clients at
lower overhead."

Two tiers mirror that design:

* :class:`ServiceVM` — arbitrary researcher code: a callback receiving
  every packet that transits the server's AS, returning what to do with
  it (flexible, "high overhead").
* :class:`PacketPipeline` — the planned lightweight API: an ordered
  match/action rule table (an OpenFlow-flavored subset) evaluated before
  any VM runs; common operations (drop, rewrite, rate-limit, count,
  divert-to-client) execute without researcher code.

Both attach to a :class:`~repro.core.server.PeeringServer` through
:class:`ServiceHost`, which hooks the testbed data plane's tap at the
PEERING AS.  The ARROW- and decoy-routing-style examples are built on
this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..net.addr import IPAddress, Prefix
from ..net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from .server import PeeringServer

__all__ = [
    "Action",
    "Verdict",
    "Match",
    "Rule",
    "PacketPipeline",
    "ServiceVM",
    "ServiceHost",
]


class Action(Enum):
    ACCEPT = "accept"  # continue normal forwarding
    DROP = "drop"
    REWRITE = "rewrite"  # substitute the returned packet
    DIVERT = "divert"  # tunnel to a client instead of forwarding


@dataclass(frozen=True)
class Verdict:
    """What a rule or VM decided about one packet."""

    action: Action
    packet: Optional[Packet] = None  # for REWRITE
    client_id: Optional[str] = None  # for DIVERT

    @classmethod
    def accept(cls) -> "Verdict":
        return cls(Action.ACCEPT)

    @classmethod
    def drop(cls) -> "Verdict":
        return cls(Action.DROP)

    @classmethod
    def rewrite(cls, packet: Packet) -> "Verdict":
        return cls(Action.REWRITE, packet=packet)

    @classmethod
    def divert(cls, client_id: str) -> "Verdict":
        return cls(Action.DIVERT, client_id=client_id)


@dataclass(frozen=True)
class Match:
    """Flow match: every specified field must hit (None = wildcard)."""

    src: Optional[Prefix] = None
    dst: Optional[Prefix] = None
    proto: Optional[str] = None

    def hits(self, packet: Packet) -> bool:
        if self.src is not None and packet.src not in self.src:
            return False
        if self.dst is not None and packet.dst not in self.dst:
            return False
        if self.proto is not None and packet.proto != self.proto:
            return False
        return True


@dataclass
class Rule:
    """One pipeline entry: match → action, with counters and an optional
    token-bucket rate limit (packets per window)."""

    name: str
    match: Match
    action: Action = Action.ACCEPT
    rewrite_dst: Optional[IPAddress] = None
    rewrite_src: Optional[IPAddress] = None
    divert_to: Optional[str] = None
    rate_limit: Optional[int] = None
    hits: int = 0
    dropped_by_rate: int = 0
    _window_used: int = field(default=0, repr=False)

    def apply(self, packet: Packet) -> Verdict:
        self.hits += 1
        if self.rate_limit is not None:
            if self._window_used >= self.rate_limit:
                self.dropped_by_rate += 1
                return Verdict.drop()
            self._window_used += 1
        if self.action is Action.DROP:
            return Verdict.drop()
        if self.action is Action.DIVERT:
            return Verdict.divert(self.divert_to or "")
        if self.action is Action.REWRITE:
            rewritten = packet
            if self.rewrite_dst is not None:
                rewritten = replace(rewritten, dst=self.rewrite_dst)
            if self.rewrite_src is not None:
                rewritten = replace(rewritten, src=self.rewrite_src)
            return Verdict.rewrite(rewritten)
        return Verdict.accept()

    def tick(self) -> None:
        self._window_used = 0


class PacketPipeline:
    """An ordered rule table; first matching rule decides."""

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self.rules: List[Rule] = []
        self.default = Verdict.accept()
        self.processed = 0

    def add_rule(self, rule: Rule, index: Optional[int] = None) -> Rule:
        if index is None:
            self.rules.append(rule)
        else:
            self.rules.insert(index, rule)
        return rule

    def remove_rule(self, name: str) -> bool:
        before = len(self.rules)
        self.rules = [r for r in self.rules if r.name != name]
        return len(self.rules) != before

    def rule(self, name: str) -> Rule:
        for rule in self.rules:
            if rule.name == name:
                return rule
        raise KeyError(name)

    def evaluate(self, packet: Packet) -> Verdict:
        self.processed += 1
        for rule in self.rules:
            if rule.match.hits(packet):
                return rule.apply(packet)
        return self.default

    def tick(self) -> None:
        """Advance rate-limit windows (call once per simulated second)."""
        for rule in self.rules:
            rule.tick()


@dataclass
class ServiceVM:
    """Researcher code running on the server: full flexibility, runs
    after the pipeline for packets the pipeline ACCEPTs."""

    name: str
    handler: Callable[[Packet], Verdict]
    packets_seen: int = 0

    def process(self, packet: Packet) -> Verdict:
        self.packets_seen += 1
        return self.handler(packet)


class ServiceHost:
    """Attaches packet processing to a PEERING server.

    Evaluation order per packet transiting the PEERING AS:

    1. the pipeline (lightweight API);
    2. each VM in registration order, until one returns non-ACCEPT.

    DROP verdicts are enforced by poisoning the packet's fate via the
    data-plane tap contract: the host records the drop and the testbed's
    tap-based enforcement point (installed here) raises the drop to the
    data plane.
    """

    def __init__(self, server: "PeeringServer") -> None:
        self.server = server
        self.pipeline = PacketPipeline(f"{server.site.name}:pipeline")
        self.vms: List[ServiceVM] = []
        self.dropped: List[Packet] = []
        self.diverted: List[Tuple[str, Packet]] = []
        self.rewritten: List[Tuple[Packet, Packet]] = []
        server.testbed.dataplane.register_tap(server.asn, self._tap)
        self._reentry = False

    def run_vm(self, name: str, handler: Callable[[Packet], Verdict]) -> ServiceVM:
        vm = ServiceVM(name=name, handler=handler)
        self.vms.append(vm)
        return vm

    def stop_vm(self, name: str) -> bool:
        before = len(self.vms)
        self.vms = [vm for vm in self.vms if vm.name != name]
        return len(self.vms) != before

    def _decide(self, packet: Packet) -> Verdict:
        verdict = self.pipeline.evaluate(packet)
        if verdict.action is not Action.ACCEPT:
            return verdict
        for vm in self.vms:
            verdict = vm.process(packet)
            if verdict.action is not Action.ACCEPT:
                return verdict
        return Verdict.accept()

    def _tap(self, packet: Packet) -> None:
        """Observe + act on a transiting packet.

        The simulated data plane's tap is observe-only, so enforcement is
        recorded here and applied by :meth:`process` (used by the service
        examples and by the server's client-traffic path); transit drops
        are visible in ``dropped``.
        """
        if self._reentry:
            return
        verdict = self._decide(packet)
        if verdict.action is Action.DROP:
            self.dropped.append(packet)
        elif verdict.action is Action.DIVERT:
            self.diverted.append((verdict.client_id or "", packet))
            self._reentry = True
            try:
                self.server.testbed.deliver_inbound(packet)
            finally:
                self._reentry = False
        elif verdict.action is Action.REWRITE and verdict.packet is not None:
            self.rewritten.append((packet, verdict.packet))

    def process(self, packet: Packet) -> Tuple[Verdict, Optional[Packet]]:
        """Synchronously process a packet the server holds (e.g. incoming
        client traffic or a service ingress): returns the verdict and the
        packet to forward onward (None when dropped/diverted)."""
        verdict = self._decide(packet)
        if verdict.action is Action.DROP:
            self.dropped.append(packet)
            return verdict, None
        if verdict.action is Action.DIVERT:
            self.diverted.append((verdict.client_id or "", packet))
            return verdict, None
        if verdict.action is Action.REWRITE and verdict.packet is not None:
            self.rewritten.append((packet, verdict.packet))
            return verdict, verdict.packet
        return verdict, packet
