"""PEERING clients — the researcher-side handle.

A client connects to one or more servers over tunnels and (optionally)
real BGP sessions, then drives experiments:

* :meth:`PeeringClient.announce` / :meth:`withdraw` — the programmatic
  control path (what the paper's prototype web service exposes), with
  per-server and per-peer selection, prepending, and poisoning.
* :meth:`attach_bgp` — a full client-side BGP speaker per mux session,
  for experiments that bring their own router (e.g. a MinineXt gateway).
* :meth:`send` / ``on_packet`` — data-plane access through the tunnels.
* :meth:`routes_toward` — the per-peer routes each mux hears for a
  destination (the "routes exported by each peer, not just the best"
  property from §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..bgp.router import BGPRouter, PeerConfig
from ..bgp.session import BGPSession
from ..inet.dataplane import Delivery
from ..inet.routing import ASRoute
from ..net.addr import IPAddress, Prefix
from ..net.channel import Endpoint
from ..net.packet import Packet
from ..net.tunnel import TunnelEndpoint
from ..telemetry.tracing import maybe_span
from .experiment import Experiment
from .safety import SafetyDecision
from .server import AnnouncementSpec, MuxMode, PeeringServer

if TYPE_CHECKING:  # pragma: no cover
    from .testbed import Testbed

__all__ = ["Attachment", "PeeringClient"]


@dataclass
class Attachment:
    """Client-side state for one server connection."""

    server: PeeringServer
    mode: MuxMode
    tunnel: TunnelEndpoint
    endpoints: Dict[int, Endpoint]
    router: Optional[BGPRouter] = None
    sessions: Dict[int, BGPSession] = field(default_factory=dict)


class PeeringClient:
    """A researcher's client, bound to one experiment."""

    def __init__(self, testbed: "Testbed", client_id: str, experiment: Experiment) -> None:
        self.testbed = testbed
        self.client_id = client_id
        self.experiment = experiment
        self.attachments: Dict[str, Attachment] = {}
        self.on_packet: Optional[Callable[[Packet], None]] = None
        self.received_packets: List[Packet] = []

    @property
    def prefixes(self) -> List[Prefix]:
        return list(self.experiment.prefixes)

    # -- attachment -------------------------------------------------------------

    def attach(
        self,
        server_name: str,
        mode: MuxMode = MuxMode.QUAGGA,
        peer_asns: Optional[Iterable[int]] = None,
        client_asn: int = 64512,
        graceful_restart: bool = False,
    ) -> Attachment:
        """Connect to a server (tunnel + session endpoints reserved)."""
        server = self.testbed.server(server_name)
        tunnel, endpoints = server.connect_client(
            self.client_id,
            mode=mode,
            peer_asns=peer_asns,
            client_asn=client_asn,
            graceful_restart=graceful_restart,
        )
        tunnel.on_packet = self._packet_in
        attachment = Attachment(
            server=server, mode=mode, tunnel=tunnel, endpoints=endpoints
        )
        self.attachments[server_name] = attachment
        self.testbed.attach_client_server(self.client_id, server_name)
        return attachment

    def attach_bgp(
        self,
        server_name: str,
        mode: MuxMode = MuxMode.QUAGGA,
        local_asn: int = 64512,
        peer_asns: Optional[Iterable[int]] = None,
        resilient: bool = False,
        idle_hold_time: float = 5.0,
        idle_hold_max: float = 300.0,
        graceful_restart: bool = False,
        restart_time: int = 60,
    ) -> BGPRouter:
        """Attach and bring up real client-side BGP sessions.

        Returns the client-side router; announcing a prefix from it is
        delivered to the mux over the wire-format sessions, runs the
        safety gauntlet, and (if clean) reaches the Internet substrate.

        With ``resilient=True`` the sessions auto-reconnect after transport
        loss (exponential backoff from ``idle_hold_time``), pulling fresh
        channels from the mux via
        :meth:`~repro.core.server.PeeringServer.reconnect_endpoint` — so a
        mux crash/restart heals without operator action.
        """
        attachment = self.attach(
            server_name,
            mode=mode,
            peer_asns=peer_asns,
            client_asn=local_asn,
            graceful_restart=graceful_restart,
        )
        router = BGPRouter(
            self.testbed.engine,
            asn=local_asn,
            router_id=attachment.tunnel.address,
        )
        attachment.router = router
        server = attachment.server
        for key, endpoint in sorted(attachment.endpoints.items()):
            config = PeerConfig(
                peer_id=f"mux-{server_name}-{key}",
                remote_asn=self.testbed.asn,
                local_address=attachment.tunnel.address,
                add_path=(mode is MuxMode.BIRD),
                auto_reconnect=resilient,
                idle_hold_time=idle_hold_time,
                idle_hold_max=idle_hold_max,
                graceful_restart=graceful_restart,
                restart_time=restart_time,
                description=f"{self.client_id}->{server_name}[{key}]",
            )
            session = router.add_peer(config, endpoint)
            session.transport_factory = (
                lambda s=server, k=key: s.reconnect_endpoint(self.client_id, k)
            )
            self._watch_session(session, server_name, key)
            attachment.sessions[key] = session
            session.start()
        return router

    def _watch_session(self, session: BGPSession, server_name: str, key: int) -> None:
        """Report the session's up/down transitions on the testbed bus."""
        from ..bgp.fsm import State

        bus = self.testbed.events
        source = f"{self.client_id}->{server_name}"

        def observe(old: State, _event, new: State) -> None:
            if new is State.ESTABLISHED and old is not State.ESTABLISHED:
                bus.emit("session-established", source=source, key=key)
            elif old is State.ESTABLISHED and new is not State.ESTABLISHED:
                bus.emit("session-down", source=source, key=key)

        session.fsm.observers.append(observe)

    def detach(self, server_name: str) -> None:
        attachment = self.attachments.pop(server_name, None)
        if attachment is None:
            return
        # Stop our side first: an administrative detach must not leave
        # auto-reconnect timers chasing a mux we just left.
        for session in attachment.sessions.values():
            session.stop("client detached")
        attachment.server.disconnect_client(self.client_id)

    # -- failover -----------------------------------------------------------

    def failover(self, from_server: str, to_server: str) -> Optional[Attachment]:
        """Move this client from one mux to another (the manual recovery
        path when a site dies for good, or the action behind
        :meth:`enable_failover`).

        Carries over the announcement state: programmatic announcements
        are re-issued at the backup (peer restrictions that do not exist
        there fall back to all peers), and a BGP-attached router is
        re-created with its locally-originated prefixes.

        If the backup itself is down, the failover is aborted (alerted as
        ``failover-aborted``) and the primary attachment is kept: stale
        state at a mux that may restart beats no attachment at all."""
        if not self.testbed.server(to_server).alive:
            self.testbed.events.emit(
                "failover-aborted",
                source=self.client_id,
                from_server=from_server,
                to_server=to_server,
                reason="backup mux is down",
            )
            return None
        old = self._require(from_server)
        announcements = dict(old.server.announcements_for(self.client_id))
        had_router = old.router is not None
        local_asn = old.router.asn if old.router is not None else 64512
        local_prefixes = (
            old.router.local_prefixes() if old.router is not None else []
        )
        mode = old.mode
        self.detach(from_server)

        if had_router:
            router = self.attach_bgp(
                to_server, mode=mode, local_asn=local_asn, resilient=True
            )
            for prefix in local_prefixes:
                router.originate(prefix)
        else:
            self.attach(to_server, mode=mode)
        backup = self._require(to_server)
        for prefix, spec in announcements.items():
            try:
                backup.server.announce(self.client_id, prefix, spec)
            except ValueError:
                # Peer selection from the old site doesn't exist here:
                # announce to all of the backup's peers instead.
                backup.server.announce(self.client_id, prefix, AnnouncementSpec())
        self.testbed.events.emit(
            "client-failover",
            source=self.client_id,
            from_server=from_server,
            to_server=to_server,
        )
        return backup

    def enable_failover(self, primary: str, backup: str) -> None:
        """Fail over to ``backup`` automatically if ``primary`` crashes."""

        def on_event(event) -> None:
            if (
                event.kind == "mux-crash"
                and event.source == primary
                and primary in self.attachments
            ):
                self.failover(primary, backup)

        self.testbed.events.subscribe(on_event)

    def _require(self, server_name: str) -> Attachment:
        try:
            return self.attachments[server_name]
        except KeyError:
            raise ValueError(
                f"client {self.client_id!r} is not attached to {server_name!r}"
            ) from None

    # -- control plane ------------------------------------------------------------

    def announce(
        self,
        prefix: Prefix,
        servers: Optional[Sequence[str]] = None,
        peers: Optional[Sequence[int]] = None,
        prepend: int = 0,
        poison: Sequence[int] = (),
    ) -> Dict[str, SafetyDecision]:
        """Announce ``prefix`` from the given servers (default: all
        attached), optionally restricted to specific peers at each."""
        results: Dict[str, SafetyDecision] = {}
        with maybe_span(
            self.testbed.tracer,
            "client.announce",
            client=self.client_id,
            prefix=str(prefix),
        ):
            for server_name in servers or list(self.attachments):
                attachment = self._require(server_name)
                spec = AnnouncementSpec(
                    peers=tuple(peers) if peers is not None else None,
                    prepend=prepend,
                    poison=tuple(poison),
                )
                results[server_name] = attachment.server.announce(
                    self.client_id, prefix, spec
                )
        return results

    def withdraw(self, prefix: Prefix, servers: Optional[Sequence[str]] = None) -> None:
        with maybe_span(
            self.testbed.tracer,
            "client.withdraw",
            client=self.client_id,
            prefix=str(prefix),
        ):
            for server_name in servers or list(self.attachments):
                attachment = self._require(server_name)
                attachment.server.withdraw(self.client_id, prefix)

    def announcements(self) -> Dict[str, Dict[Prefix, AnnouncementSpec]]:
        return {
            name: attachment.server.announcements_for(self.client_id)
            for name, attachment in self.attachments.items()
        }

    def routes_toward(self, destination_asn: int) -> Dict[str, Dict[int, ASRoute]]:
        """Per-server, per-peer routes for a destination AS."""
        return {
            name: attachment.server.routes_toward(destination_asn)
            for name, attachment in self.attachments.items()
        }

    # -- data plane ------------------------------------------------------------------

    def send(self, packet: Packet, via: Optional[str] = None) -> None:
        """Send traffic through a tunnel (default: first attachment)."""
        if not self.attachments:
            raise ValueError("client is not attached to any server")
        server_name = via or next(iter(self.attachments))
        self._require(server_name).tunnel.send(packet)

    def _packet_in(self, packet: Packet) -> None:
        self.received_packets.append(packet)
        if self.on_packet is not None:
            self.on_packet(packet)

    def ping(self, dst: IPAddress, via: Optional[str] = None) -> Delivery:
        """Probe a destination through the testbed; returns the delivery."""
        if not self.prefixes:
            raise ValueError("experiment holds no prefixes to source from")
        src = self.prefixes[0].first_address() + 1
        server_name = via or next(iter(self.attachments))
        attachment = self._require(server_name)
        packet = Packet(src=src, dst=dst, proto="icmp-echo")
        return self.testbed.inject_packet(attachment.server, self.client_id, packet)

    def traceroute(self, dst: IPAddress, via: Optional[str] = None) -> List[int]:
        """AS-level forward path from PEERING to ``dst``."""
        return list(self.ping(dst, via=via).path)
