"""PEERING clients — the researcher-side handle.

A client connects to one or more servers over tunnels and (optionally)
real BGP sessions, then drives experiments:

* :meth:`PeeringClient.announce` / :meth:`withdraw` — the programmatic
  control path (what the paper's prototype web service exposes), with
  per-server and per-peer selection, prepending, and poisoning.
* :meth:`attach_bgp` — a full client-side BGP speaker per mux session,
  for experiments that bring their own router (e.g. a MinineXt gateway).
* :meth:`send` / ``on_packet`` — data-plane access through the tunnels.
* :meth:`routes_toward` — the per-peer routes each mux hears for a
  destination (the "routes exported by each peer, not just the best"
  property from §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..bgp.router import BGPRouter, PeerConfig
from ..bgp.session import BGPSession
from ..inet.dataplane import Delivery
from ..inet.routing import ASRoute
from ..net.addr import IPAddress, Prefix
from ..net.channel import Endpoint
from ..net.packet import Packet
from ..net.tunnel import TunnelEndpoint
from .experiment import Experiment
from .safety import SafetyDecision
from .server import AnnouncementSpec, MuxMode, PeeringServer

if TYPE_CHECKING:  # pragma: no cover
    from .testbed import Testbed

__all__ = ["Attachment", "PeeringClient"]


@dataclass
class Attachment:
    """Client-side state for one server connection."""

    server: PeeringServer
    mode: MuxMode
    tunnel: TunnelEndpoint
    endpoints: Dict[int, Endpoint]
    router: Optional[BGPRouter] = None
    sessions: Dict[int, BGPSession] = field(default_factory=dict)


class PeeringClient:
    """A researcher's client, bound to one experiment."""

    def __init__(self, testbed: "Testbed", client_id: str, experiment: Experiment) -> None:
        self.testbed = testbed
        self.client_id = client_id
        self.experiment = experiment
        self.attachments: Dict[str, Attachment] = {}
        self.on_packet: Optional[Callable[[Packet], None]] = None
        self.received_packets: List[Packet] = []

    @property
    def prefixes(self) -> List[Prefix]:
        return list(self.experiment.prefixes)

    # -- attachment -------------------------------------------------------------

    def attach(
        self,
        server_name: str,
        mode: MuxMode = MuxMode.QUAGGA,
        peer_asns: Optional[Iterable[int]] = None,
        client_asn: int = 64512,
    ) -> Attachment:
        """Connect to a server (tunnel + session endpoints reserved)."""
        server = self.testbed.server(server_name)
        tunnel, endpoints = server.connect_client(
            self.client_id, mode=mode, peer_asns=peer_asns, client_asn=client_asn
        )
        tunnel.on_packet = self._packet_in
        attachment = Attachment(
            server=server, mode=mode, tunnel=tunnel, endpoints=endpoints
        )
        self.attachments[server_name] = attachment
        self.testbed.attach_client_server(self.client_id, server_name)
        return attachment

    def attach_bgp(
        self,
        server_name: str,
        mode: MuxMode = MuxMode.QUAGGA,
        local_asn: int = 64512,
        peer_asns: Optional[Iterable[int]] = None,
    ) -> BGPRouter:
        """Attach and bring up real client-side BGP sessions.

        Returns the client-side router; announcing a prefix from it is
        delivered to the mux over the wire-format sessions, runs the
        safety gauntlet, and (if clean) reaches the Internet substrate.
        """
        attachment = self.attach(
            server_name, mode=mode, peer_asns=peer_asns, client_asn=local_asn
        )
        router = BGPRouter(
            self.testbed.engine,
            asn=local_asn,
            router_id=attachment.tunnel.address,
        )
        attachment.router = router
        for key, endpoint in sorted(attachment.endpoints.items()):
            config = PeerConfig(
                peer_id=f"mux-{server_name}-{key}",
                remote_asn=self.testbed.asn,
                local_address=attachment.tunnel.address,
                add_path=(mode is MuxMode.BIRD),
                description=f"{self.client_id}->{server_name}[{key}]",
            )
            session = router.add_peer(config, endpoint)
            attachment.sessions[key] = session
            session.start()
        return router

    def detach(self, server_name: str) -> None:
        attachment = self.attachments.pop(server_name, None)
        if attachment is None:
            return
        attachment.server.disconnect_client(self.client_id)

    def _require(self, server_name: str) -> Attachment:
        try:
            return self.attachments[server_name]
        except KeyError:
            raise ValueError(
                f"client {self.client_id!r} is not attached to {server_name!r}"
            ) from None

    # -- control plane ------------------------------------------------------------

    def announce(
        self,
        prefix: Prefix,
        servers: Optional[Sequence[str]] = None,
        peers: Optional[Sequence[int]] = None,
        prepend: int = 0,
        poison: Sequence[int] = (),
    ) -> Dict[str, SafetyDecision]:
        """Announce ``prefix`` from the given servers (default: all
        attached), optionally restricted to specific peers at each."""
        results: Dict[str, SafetyDecision] = {}
        for server_name in servers or list(self.attachments):
            attachment = self._require(server_name)
            spec = AnnouncementSpec(
                peers=tuple(peers) if peers is not None else None,
                prepend=prepend,
                poison=tuple(poison),
            )
            results[server_name] = attachment.server.announce(
                self.client_id, prefix, spec
            )
        return results

    def withdraw(self, prefix: Prefix, servers: Optional[Sequence[str]] = None) -> None:
        for server_name in servers or list(self.attachments):
            attachment = self._require(server_name)
            attachment.server.withdraw(self.client_id, prefix)

    def announcements(self) -> Dict[str, Dict[Prefix, AnnouncementSpec]]:
        return {
            name: attachment.server.announcements_for(self.client_id)
            for name, attachment in self.attachments.items()
        }

    def routes_toward(self, destination_asn: int) -> Dict[str, Dict[int, ASRoute]]:
        """Per-server, per-peer routes for a destination AS."""
        return {
            name: attachment.server.routes_toward(destination_asn)
            for name, attachment in self.attachments.items()
        }

    # -- data plane ------------------------------------------------------------------

    def send(self, packet: Packet, via: Optional[str] = None) -> None:
        """Send traffic through a tunnel (default: first attachment)."""
        if not self.attachments:
            raise ValueError("client is not attached to any server")
        server_name = via or next(iter(self.attachments))
        self._require(server_name).tunnel.send(packet)

    def _packet_in(self, packet: Packet) -> None:
        self.received_packets.append(packet)
        if self.on_packet is not None:
            self.on_packet(packet)

    def ping(self, dst: IPAddress, via: Optional[str] = None) -> Delivery:
        """Probe a destination through the testbed; returns the delivery."""
        if not self.prefixes:
            raise ValueError("experiment holds no prefixes to source from")
        src = self.prefixes[0].first_address() + 1
        server_name = via or next(iter(self.attachments))
        attachment = self._require(server_name)
        packet = Packet(src=src, dst=dst, proto="icmp-echo")
        return self.testbed.inject_packet(attachment.server, self.client_id, packet)

    def traceroute(self, dst: IPAddress, via: Optional[str] = None) -> List[int]:
        """AS-level forward path from PEERING to ``dst``."""
        return list(self.ping(dst, via=via).path)
