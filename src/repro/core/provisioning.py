"""Operational automation: the provisioning database (§3 "Easing
management and experiment deployment").

"We are automating many aspects of processes such as deploying new
clients ..., configuring new peerings, and deploying new server sites,
with all the relevant data tracked in a database."

:class:`ProvisioningDatabase` is that database: a typed record store for
sites, peerings, clients, and allocations with a small audit trail, plus
:class:`Provisioner`, which runs the automated workflows against a
:class:`~repro.core.testbed.Testbed` and records what it did.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..net.addr import Prefix
from .server import MuxMode, SiteConfig

if TYPE_CHECKING:  # pragma: no cover
    from .client import PeeringClient
    from .testbed import Testbed

__all__ = [
    "RecordKind",
    "Record",
    "ProvisioningDatabase",
    "Provisioner",
]


class RecordKind(Enum):
    SITE = "site"
    PEERING = "peering"
    CLIENT = "client"
    ALLOCATION = "allocation"


@dataclass(frozen=True)
class Record:
    record_id: int
    kind: RecordKind
    key: str
    data: Tuple[Tuple[str, str], ...]  # frozen key/value pairs

    def get(self, field_name: str) -> Optional[str]:
        for key, value in self.data:
            if key == field_name:
                return value
        return None


class ProvisioningDatabase:
    """Append-only record store with a current-state index."""

    def __init__(self) -> None:
        self._records: List[Record] = []
        self._current: Dict[Tuple[RecordKind, str], Record] = {}
        self._ids = itertools.count(1)

    def upsert(self, kind: RecordKind, key: str, **data: object) -> Record:
        record = Record(
            record_id=next(self._ids),
            kind=kind,
            key=key,
            data=tuple(sorted((k, str(v)) for k, v in data.items())),
        )
        self._records.append(record)
        self._current[(kind, key)] = record
        return record

    def lookup(self, kind: RecordKind, key: str) -> Optional[Record]:
        return self._current.get((kind, key))

    def all_of(self, kind: RecordKind) -> List[Record]:
        return [r for (k, _), r in self._current.items() if k is kind]

    def history(self, kind: RecordKind, key: str) -> List[Record]:
        return [r for r in self._records if r.kind is kind and r.key == key]

    def __len__(self) -> int:
        return len(self._records)


class Provisioner:
    """Automated workflows that keep the database in sync with reality."""

    def __init__(self, testbed: "Testbed", database: Optional[ProvisioningDatabase] = None) -> None:
        self.testbed = testbed
        self.db = database or ProvisioningDatabase()

    def deploy_site(self, site: SiteConfig) -> Record:
        """Stand up a server and record the deployment."""
        server = self.testbed.add_server(site)
        return self.db.upsert(
            RecordKind.SITE,
            site.name,
            site_kind=site.kind.value,
            country=site.country,
            ixp=site.ixp or "",
            neighbors=len(server.neighbor_asns),
        )

    def record_existing_sites(self) -> int:
        for name, server in self.testbed.servers.items():
            self.db.upsert(
                RecordKind.SITE,
                name,
                site_kind=server.site.kind.value,
                country=server.site.country,
                ixp=server.site.ixp or "",
                neighbors=len(server.neighbor_asns),
            )
        return len(self.testbed.servers)

    def configure_peering(self, server_name: str, peer_asn: int) -> Record:
        """Record a new bilateral peering at a site (after the IXP
        workflow accepted it)."""
        server = self.testbed.server(server_name)
        if peer_asn not in server.neighbor_asns:
            if server.site.ixp is None:
                raise ValueError(f"{server_name} has no IXP for new peerings")
            ixp = self.testbed.internet.ixps[server.site.ixp]
            result = ixp.request_bilateral(self.testbed.asn, peer_asn)
            if result.accepted:
                server.neighbor_asns.add(peer_asn)
            status = result.outcome.value
        else:
            status = "already-peered"
        return self.db.upsert(
            RecordKind.PEERING,
            f"{server_name}/{peer_asn}",
            server=server_name,
            peer=peer_asn,
            status=status,
        )

    def deploy_client(
        self,
        name: str,
        researcher: str,
        server_names: List[str],
        mode: MuxMode = MuxMode.QUAGGA,
        prefix_count: int = 1,
    ) -> "PeeringClient":
        """The §3 client workflow: vet, allocate prefixes, establish data
        and control plane connectivity, record everything."""
        client = self.testbed.register_client(
            name, researcher=researcher, prefix_count=prefix_count
        )
        for server_name in server_names:
            client.attach(server_name, mode=mode)
        for prefix in client.prefixes:
            self.db.upsert(
                RecordKind.ALLOCATION,
                str(prefix),
                owner=name,
                prefix=str(prefix),
            )
        self.db.upsert(
            RecordKind.CLIENT,
            name,
            researcher=researcher,
            servers=",".join(server_names),
            mode=mode.value,
            prefixes=",".join(str(p) for p in client.prefixes),
        )
        return client

    def decommission_client(self, name: str) -> None:
        client_record = self.db.lookup(RecordKind.CLIENT, name)
        if client_record is None:
            raise ValueError(f"unknown client {name!r}")
        servers = (client_record.get("servers") or "").split(",")
        for server_name in [s for s in servers if s]:
            self.testbed.server(server_name).disconnect_client(name)
        self.testbed.retire_experiment(name)
        self.db.upsert(RecordKind.CLIENT, name, status="retired")
