"""The PEERING testbed controller.

``Testbed`` owns everything the operators run: the PEERING AS on the
simulated Internet, the servers at each site, the prefix pool, experiment
vetting, the shared data plane, and the announcement registry that turns
per-client/per-server/per-peer announcement state into substrate
propagation.

:meth:`Testbed.build_default` reproduces the deployment described in the
paper: nine servers on three continents — universities with transit
upstreams plus the AMS-IX server (route server + bilateral peers) and the
Phoenix-IX server added in September 2014.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from ..inet.dataplane import DataPlane, Delivery, DeliveryStatus
from ..inet.engine import PropagationEngine
from ..inet.gen import AmsIxConfig, Internet, InternetConfig, build_amsix, build_internet
from ..inet.ixp import IXP
from ..inet.routing import Announcement, OriginSpec, RoutingOutcome
from ..inet.topology import ASGraph, ASKind, ASNode
from ..net.addr import IPAddress, Prefix
from ..net.packet import Packet
from ..sim.engine import Engine
from ..telemetry.metrics import CounterChild, MetricsRegistry
from ..telemetry.tracing import SpanContext, Tracer, maybe_span
from .alerts import EventBus
from .allocation import PrefixPool
from .experiment import AdvisoryBoard, Experiment, ExperimentError, ExperimentStatus
from .server import AnnouncementSpec, MuxMode, PeeringServer, SiteConfig, SiteKind, spec_to_tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..guard.breaker import BreakerConfig
    from ..guard.journal import ControlJournal
    from ..guard.quarantine import QuarantineConfig
    from ..guard.supervisor import Supervisor
    from ..guard.watchdog import WatchdogConfig
    from ..secroute.rpki import RoaRegistry
    from ..telemetry.collector import Collector

__all__ = ["Testbed", "PEERING_ASN", "PEERING_SUPERNET"]

PEERING_ASN = 47065
PEERING_SUPERNET = Prefix("184.164.224.0/19")


class Testbed:
    """The operator-side controller for the whole testbed."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        internet: Internet,
        asn: int = PEERING_ASN,
        supernet: Prefix = PEERING_SUPERNET,
        engine: Optional[Engine] = None,
        tunnel_rate_limit: Optional[int] = None,
    ) -> None:
        self.internet = internet
        self.graph: ASGraph = internet.graph
        self.asn = asn
        self.engine = engine or Engine()
        self.pool = PrefixPool([supernet])
        self.dataplane = DataPlane(self.graph)
        self.dataplane.prepare = self._flush_dirty
        self.events = EventBus(self.engine)
        self.board = AdvisoryBoard()
        self.tunnel_rate_limit = tunnel_rate_limit
        self.servers: Dict[str, PeeringServer] = {}
        self.experiments: Dict[str, Experiment] = {}
        self._client_experiment: Dict[str, str] = {}
        self._client_server: Dict[str, List[str]] = {}
        # prefix -> server name -> (client id, spec)
        self._announced: Dict[Prefix, Dict[str, Tuple[str, AnnouncementSpec]]] = {}
        self._dirty: Set[Prefix] = set()
        # Telemetry: the registry always exists (subsystems register into
        # it unconditionally — metric increments are cheap); the tracer
        # and collector are wired by :meth:`observe`.
        self.metrics = MetricsRegistry()
        self.telemetry: Optional["Collector"] = None
        self.tracer: Optional[Tracer] = None
        # Deferred-propagation trace linkage: the span context active when
        # a prefix was marked dirty, consumed as the parent of the later
        # convergence span (a follows-from link).
        self._dirty_ctx: Dict[Prefix, SpanContext] = {}
        # Compiled propagation engine: recompiles on graph mutation (the
        # graph version counter) and LRU-caches converged outcomes, so
        # per-destination route computation and announcement sweeps share
        # work automatically.
        self.propagation = PropagationEngine(
            self.graph, cache_size=4096, metrics=self.metrics
        )
        self._ann_counter = self.metrics.counter(
            "peering_announcements_total",
            "Announcements accepted into the substrate per mux",
            ("server",),
        )
        self._wdr_counter = self.metrics.counter(
            "peering_withdrawals_total",
            "Announcements removed from the substrate per mux",
            ("server",),
        )
        self._announced_gauge = self.metrics.gauge(
            "peering_announced_prefixes",
            "Prefixes currently announced by the testbed",
        )
        self._announced_child = self._announced_gauge.labels()
        # Per-mux counter children resolved once when the server deploys —
        # announce/retract are hot paths and the label value is fixed.
        self._mux_children: Dict[str, Tuple["CounterChild", "CounterChild"]] = {}
        self._next_server_addr = 1
        # Supervision layer (repro.guard), wired by :meth:`supervise`.
        self.guard: Optional["Supervisor"] = None
        self.journal: Optional["ControlJournal"] = None
        # ROA registry (repro.secroute), wired by :meth:`adopt_roas`.
        self.roas: Optional["RoaRegistry"] = None

        if asn not in self.graph:
            self.graph.add_as(
                ASNode(asn=asn, name="PEERING", kind=ASKind.TESTBED, country="US",
                       prefix_count=0)
            )

    # -- construction -----------------------------------------------------------

    @classmethod
    def build_default(
        cls,
        config: Optional[InternetConfig] = None,
        seed: int = 20141027,
        with_phoenix: bool = True,
        amsix: Optional[AmsIxConfig] = None,
    ) -> "Testbed":
        """The paper's deployment on a freshly generated Internet.

        For small test internets the AMS-IX membership is scaled down
        (preserving the paper's proportions) unless ``amsix`` is given.
        """
        config = config or InternetConfig()
        internet = build_internet(config)
        if amsix is None:
            if config.n_ases >= 2500:
                amsix = AmsIxConfig()
            else:
                amsix = AmsIxConfig.scaled(max(20, config.n_ases // 5))
        build_amsix(internet, amsix)
        testbed = cls(internet)
        testbed.deploy_default_sites(seed=seed, with_phoenix=with_phoenix)
        return testbed

    def deploy_default_sites(self, seed: int = 20141027, with_phoenix: bool = True) -> None:
        """Nine servers on three continents (§3): seven universities with
        transit upstreams, AMS-IX, and Phoenix-IX."""
        rng = random.Random(seed)
        transit_asns = [
            node.asn for node in self.graph.nodes() if node.kind is ASKind.TRANSIT
        ]
        universities = [
            ("gatech01", "US"),
            ("usc01", "US"),
            ("washington01", "US"),
            ("wisconsin01", "US"),
            ("cornell01", "US"),
            ("ufmg01", "BR"),
            ("tsinghua01", "CN"),
        ]
        for name, country in universities:
            upstreams = tuple(sorted(rng.sample(transit_asns, 2)))
            self.add_server(
                SiteConfig(
                    name=name,
                    kind=SiteKind.UNIVERSITY,
                    country=country,
                    upstream_asns=upstreams,
                )
            )
        self.add_server(
            SiteConfig(name="amsterdam01", kind=SiteKind.IXP, country="NL", ixp="AMS-IX")
        )
        if with_phoenix:
            if "Phoenix-IX" not in self.internet.ixps:
                self._build_phoenix_ix(rng)
            self.add_server(
                SiteConfig(name="phoenix01", kind=SiteKind.IXP, country="US", ixp="Phoenix-IX")
            )

    def _build_phoenix_ix(self, rng: random.Random) -> None:
        """A small US IXP (the September 2014 expansion site)."""
        ixp = IXP("Phoenix-IX", self.graph, country="US", seed=rng.randrange(2**16))
        candidates = [
            node.asn
            for node in self.graph.nodes()
            if node.kind in (ASKind.CONTENT, ASKind.TRANSIT, ASKind.ACCESS)
            and node.country in ("US", "CA", "MX")
            and node.asn != self.asn
        ]
        members = rng.sample(candidates, min(60, len(candidates)))
        for asn in members:
            use_rs = rng.random() < 0.7
            ixp.add_member(asn, use_route_server=use_rs)
        self.internet.ixps["Phoenix-IX"] = ixp

    def add_server(self, site: SiteConfig) -> PeeringServer:
        if site.name in self.servers:
            raise ValueError(f"server {site.name!r} already deployed")
        address = IPAddress("100.65.0.0") + self._next_server_addr
        self._next_server_addr += 1
        server = PeeringServer(self, site, address)
        if site.kind is SiteKind.UNIVERSITY:
            server.attach_university_upstreams()
        else:
            server.join_ixp()
        self.servers[site.name] = server
        server.safety.bind_metrics(self.metrics, site.name)
        self._mux_children[site.name] = (
            self._ann_counter.labels(site.name),
            self._wdr_counter.labels(site.name),
        )
        if self.guard is not None:
            self.guard.adopt_server(server)
        if self.telemetry is not None:
            self.telemetry.adopt_server(server)
        if self.roas is not None:
            server.safety.bind_roas(self.roas, self.asn)
        return server

    def server(self, name: str) -> PeeringServer:
        return self.servers[name]

    def supervise(
        self,
        breaker: Optional["BreakerConfig"] = None,
        quarantine: Optional["QuarantineConfig"] = None,
        watchdog: Optional["WatchdogConfig"] = None,
        journal: Optional["ControlJournal"] = None,
    ) -> "Supervisor":
        """Wire up and start the supervision layer (repro.guard): circuit
        breakers on every client session, testbed-wide quarantine, the
        server watchdog, and crash-consistent control journaling.

        Idempotent: returns the existing supervisor if already wired."""
        if self.guard is not None:
            return self.guard
        from ..guard.supervisor import Supervisor

        return Supervisor(
            self,
            breaker=breaker,
            quarantine=quarantine,
            watchdog=watchdog,
            journal=journal,
        ).start()

    def observe(self) -> "Collector":
        """Wire up and start the telemetry layer (repro.telemetry):
        control-path tracing, BMP-style route monitoring on every mux,
        and EventBus severity counters — all exporting through
        ``self.metrics``.

        Idempotent: returns the existing collector if already wired."""
        if self.telemetry is not None:
            return self.telemetry
        from ..telemetry.collector import Collector

        return Collector(self).start()

    # -- experiments & clients ------------------------------------------------------

    def propose_experiment(
        self,
        name: str,
        researcher: str,
        description: str = "",
        needs_spoofing: bool = False,
    ) -> Experiment:
        if name in self.experiments:
            raise ExperimentError(f"experiment {name!r} already exists")
        experiment = Experiment(
            name=name,
            researcher=researcher,
            description=description,
            needs_spoofing=needs_spoofing,
        )
        self.experiments[name] = experiment
        return experiment

    def approve_and_provision(self, name: str, prefix_count: int = 1) -> Experiment:
        """Advisory-board review, then prefix allocation."""
        experiment = self.experiments[name]
        status = self.board.review(experiment)
        if status is not ExperimentStatus.APPROVED:
            raise ExperimentError(f"experiment {name!r} was rejected by the board")
        for _ in range(prefix_count):
            allocation = self.pool.allocate(owner=name)
            experiment.prefixes.append(allocation.prefix)
        experiment.status = ExperimentStatus.ACTIVE
        if experiment.needs_spoofing:
            for server in self.servers.values():
                waivers = set(server.safety.config.allow_spoofing_for)
                # config is frozen; rebuild with the waiver added
                from dataclasses import replace

                server.safety.config = replace(
                    server.safety.config,
                    allow_spoofing_for=frozenset(waivers | {name}),
                )
        return experiment

    def register_client(
        self,
        name: str,
        researcher: str = "researcher",
        prefix_count: int = 1,
        description: str = "experiment",
        needs_spoofing: bool = False,
    ) -> "PeeringClient":
        """One-call setup: propose, vet, provision, build a client handle.

        The returned :class:`~repro.core.client.PeeringClient` uses the
        experiment name as its client id.
        """
        from .client import PeeringClient

        self.propose_experiment(
            name, researcher, description=description, needs_spoofing=needs_spoofing
        )
        experiment = self.approve_and_provision(name, prefix_count=prefix_count)
        experiment.clients.add(name)
        self._client_experiment[name] = name
        return PeeringClient(self, client_id=name, experiment=experiment)

    def retire_experiment(self, name: str) -> None:
        experiment = self.experiments[name]
        for prefix in list(self._announced):
            for server_name, (client_id, _spec) in list(self._announced[prefix].items()):
                if self._client_experiment.get(client_id) == name:
                    self.retract(self.servers[server_name], client_id, prefix)
        self.pool.release_owner(name)
        experiment.prefixes.clear()
        experiment.status = ExperimentStatus.RETIRED

    def experiment_of(self, client_id: str) -> Experiment:
        try:
            return self.experiments[self._client_experiment[client_id]]
        except KeyError:
            raise ExperimentError(f"unknown client {client_id!r}") from None

    def allocated_prefixes(self, client_id: str) -> List[Prefix]:
        try:
            return list(self.experiment_of(client_id).prefixes)
        except ExperimentError:
            return []

    def foreign_allocated_prefixes(self, client_id: str) -> Set[Prefix]:
        """Prefixes allocated to every experiment *except* the one
        ``client_id`` belongs to — the safety layer uses these to call
        out intra-testbed sub-prefix squats by name."""
        try:
            own = self._client_experiment[client_id]
        except KeyError:
            own = None
        foreign: Set[Prefix] = set()
        for name, experiment in self.experiments.items():
            if name != own:
                foreign.update(experiment.prefixes)
        return foreign

    def adopt_roas(self, registry: "RoaRegistry") -> None:
        """Vet every mux's client announcements against ``registry`` (the
        same ROA database the substrate's ROV deployment reads), with the
        testbed's public ASN as the origin the Internet sees."""
        self.roas = registry
        for server in self.servers.values():
            server.safety.bind_roas(registry, self.asn)

    # -- announcement registry ---------------------------------------------------------

    def announce(
        self,
        server: PeeringServer,
        client_id: str,
        prefix: Prefix,
        spec: AnnouncementSpec,
        record: bool = True,
    ) -> None:
        """Record (and propagate) that ``client_id`` announces ``prefix``
        from ``server`` with ``spec``.  Isolation: a prefix may only be
        announced by the experiment that owns it.

        ``record=False`` skips the control journal: used when *restoring*
        journaled intent (mux restart / watchdog repair), which must not
        journal itself as a fresh client action.
        """
        experiment = self.experiment_of(client_id)
        experiment.require_active()
        if not experiment.owns(prefix):
            raise ExperimentError(
                f"{prefix} is not allocated to experiment {experiment.name!r}"
            )
        holders = self._announced.setdefault(prefix, {})
        for other_server, (other_client, _spec) in holders.items():
            if other_client != client_id:
                raise ExperimentError(
                    f"{prefix} is already announced by {other_client!r} via {other_server}"
                )
        # Write-ahead: validated, journaled, then applied.
        if record and self.journal is not None:
            self.journal.append(
                self.engine.now,
                "announce",
                server=server.site.name,
                client=client_id,
                prefix=str(prefix),
                spec=spec_to_tuple(spec),
            )
        with maybe_span(
            self.tracer,
            "testbed.announce",
            prefix=str(prefix),
            server=server.site.name,
            client=client_id,
        ):
            holders[server.site.name] = (client_id, spec)
            self._repropagate(prefix)
        self._mux_children[server.site.name][0].inc()
        self._announced_child.set(len(self._announced))
        if self.telemetry is not None:
            self.telemetry.monitor.post_policy_announce(
                server.site.name, server.address, client_id, prefix, spec
            )

    def retract(
        self,
        server: PeeringServer,
        client_id: str,
        prefix: Prefix,
        record: bool = True,
    ) -> None:
        """Remove one server's announcement of ``prefix``.

        ``record=False`` keeps the control journal untouched: crashes and
        quarantine containment retract *infrastructure* state, not client
        intent — the journal must still say "client X wants P announced"
        so recovery can restore it (or the quarantine record can void it).
        """
        holders = self._announced.get(prefix)
        if not holders:
            return
        if server.site.name not in holders:
            return
        if record and self.journal is not None:
            self.journal.append(
                self.engine.now,
                "withdraw",
                server=server.site.name,
                client=client_id,
                prefix=str(prefix),
            )
        with maybe_span(
            self.tracer,
            "testbed.retract",
            prefix=str(prefix),
            server=server.site.name,
            client=client_id,
        ):
            holders.pop(server.site.name, None)
            if holders:
                self._repropagate(prefix)
            else:
                del self._announced[prefix]
                self._dirty.discard(prefix)
                self._dirty_ctx.pop(prefix, None)
                self.dataplane.uninstall(prefix)
        self._mux_children[server.site.name][1].inc()
        self._announced_child.set(len(self._announced))
        if self.telemetry is not None:
            self.telemetry.monitor.post_policy_withdraw(
                server.site.name, server.address, client_id, prefix
            )

    def _repropagate(self, prefix: Prefix) -> None:
        """Mark ``prefix`` for reconvergence.  Propagation is deferred to
        the next read (outcome lookup or data-plane use): a client that
        extends the same announcement across hundreds of per-peer sessions
        triggers one convergence, not hundreds."""
        self._dirty.add(prefix)
        if self.tracer is not None:
            # Remember who dirtied the prefix so the deferred convergence
            # span joins the same trace (last writer wins, matching the
            # last-write-wins registry semantics).
            context = self.tracer.current_context()
            if context is not None:
                self._dirty_ctx[prefix] = context

    def _flush_dirty(self) -> None:
        for prefix in sorted(self._dirty):
            if prefix in self._announced:
                self._propagate_now(prefix)
        self._dirty.clear()

    def _propagate_now(self, prefix: Prefix) -> None:
        holders = self._announced[prefix]
        origins: List[OriginSpec] = []
        for server_name, (_client, spec) in sorted(holders.items()):
            server = self.servers[server_name]
            peers = (
                tuple(sorted(server.neighbor_asns))
                if spec.peers is None
                else tuple(sorted(set(spec.peers)))
            )
            origins.append(
                OriginSpec(
                    asn=self.asn,
                    prepend=spec.prepend,
                    poison=spec.poison,
                    announce_to=peers,
                )
            )
        parent = self._dirty_ctx.pop(prefix, None)
        with maybe_span(
            self.tracer,
            "propagation.converge",
            parent=parent,
            prefix=str(prefix),
            origins=len(origins),
        ) as converge:
            outcome = self.propagation.propagate(
                Announcement(origins=tuple(origins), prefix=prefix)
            )
            if self.tracer is not None:
                self.tracer.event("outcome.install")
            self.dataplane.install(prefix, outcome, owner=self.asn)
            if converge is not None:
                converge.set(reached=len(outcome))

    def announced_prefixes(self) -> List[Prefix]:
        return list(self._announced)

    def outcome_for(self, prefix: Prefix) -> Optional[RoutingOutcome]:
        self._flush_dirty()
        return self.dataplane._outcomes.get(prefix)

    # -- route computation toward external destinations -----------------------------------

    def outcome_for_origin(self, origin_asn: int) -> RoutingOutcome:
        """Converged routes for a (full) announcement by ``origin_asn`` —
        served from the propagation engine's LRU cache, since every
        server slices the same outcome (and the cache self-invalidates
        when the graph mutates)."""
        return self.propagation.propagate(Announcement.single(origin_asn))

    # -- data plane glue ---------------------------------------------------------------------

    def attach_client_server(self, client_id: str, server_name: str) -> None:
        self._client_server.setdefault(client_id, []).append(server_name)

    def inject_packet(
        self, server: PeeringServer, client_id: str, packet: Packet
    ) -> Delivery:
        """Client traffic enters the Internet at the PEERING AS."""
        allocated = set(self.allocated_prefixes(client_id))
        delivery = self.dataplane.send(self.asn, packet, legitimate_sources=allocated)
        if (
            delivery.status is DeliveryStatus.DELIVERED
            and delivery.final_asn == self.asn
        ):
            # Destined to another PEERING prefix: hand to the owning client.
            self.deliver_inbound(packet)
        return delivery

    def send_from(self, source_asn: int, packet: Packet) -> Delivery:
        """Traffic originated somewhere on the Internet (e.g. a user of a
        deployed service).  If it lands at PEERING, tunnel it onward."""
        delivery = self.dataplane.send(source_asn, packet)
        if (
            delivery.status is DeliveryStatus.DELIVERED
            and delivery.final_asn == self.asn
        ):
            self.deliver_inbound(packet)
        return delivery

    def deliver_inbound(self, packet: Packet) -> bool:
        """Find the client owning the destination prefix and tunnel the
        packet to it through one of its attached servers."""
        owner = self.pool.owner_of(Prefix(packet.dst, packet.dst.bits))
        if owner is None:
            return False
        for client_id in sorted(self.experiments[owner].clients):
            for server_name in self._client_server.get(client_id, []):
                if self.servers[server_name].deliver_to_client(client_id, packet):
                    return True
        return False

    # -- reporting -------------------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        summary: Dict[str, object] = {
            "asn": self.asn,
            "servers": len(self.servers),
            "sites": sorted(self.servers),
            "experiments": len(self.experiments),
            "announced_prefixes": len(self._announced),
            "pool_free_slash24": self.pool.free_count(),
            "propagation": self.propagation.stats(),
        }
        if self.guard is not None:
            summary["guard"] = self.guard.stats()
        if self.telemetry is not None:
            summary["telemetry"] = self.telemetry.stats()
        return summary
