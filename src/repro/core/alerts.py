"""Operational alerting: testbed event bus + PHAS-style hijack detection.

:class:`EventBus` is the operator-facing event log.  Every fault and
recovery — link cuts, mux crashes and restarts, session transitions,
graceful-restart retention and flushes, client failovers — is emitted as
a :class:`TestbedEvent` with the simulated timestamp.  The log is
append-ordered and carries only deterministic data, so two same-seed
chaos runs produce byte-identical logs (the reproducibility property the
fault tests assert).

The rest of the module is PHAS-style prefix-hijack alerting over the
measurement feed.

The paper motivates PEERING with BGP's lack of "mechanisms to prevent
... prefix hijacks [24, 32, 58]" (PHAS is [32]).  This module implements
the detection side on top of the control-plane collector: it watches the
origin AS and immediate upstream each vantage observes for every watched
prefix, and raises alerts when they deviate from the registered baseline.

Alert types (the PHAS taxonomy, adapted):

* **ORIGIN_HIJACK** — a vantage sees an origin AS outside the prefix's
  registered origin set (classic MOAS hijack);
* **MORE_SPECIFIC** — an announcement appears for a sub-prefix of a
  watched prefix that the owner did not register;
* **LOST_VISIBILITY** — a previously-visible prefix disappears from many
  vantages at once (blackholing / mass withdrawal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..net.addr import Prefix
from ..sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from .testbed import Testbed

__all__ = [
    "Severity",
    "TestbedEvent",
    "EventBus",
    "AlertKind",
    "HijackAlert",
    "HijackDetector",
]


class Severity(Enum):
    """Escalation levels for supervision events (repro.guard).

    Emitters pass ``severity="warning"`` etc. as event detail; the enum
    fixes the vocabulary and the ordering used by
    :meth:`EventBus.of_severity`.
    """

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "critical": 2}[self.value]


@dataclass(frozen=True)
class TestbedEvent:
    """One operational event: what happened, where, when."""

    kind: str
    time: float
    source: str = ""
    detail: Tuple[Tuple[str, object], ...] = ()

    def detail_dict(self) -> Dict[str, object]:
        return dict(self.detail)

    @property
    def severity(self) -> Optional[Severity]:
        """The event's severity tag, if the emitter set one."""
        raw = self.detail_dict().get("severity")
        try:
            return Severity(raw) if isinstance(raw, str) else None
        except ValueError:
            return None

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.detail)
        return f"[{self.time:10.3f}] {self.kind:<22} {self.source} {extra}".rstrip()


class EventBus:
    """Ordered, deterministic log of operational events + subscriptions.

    Subscribers run synchronously at emit time (in subscription order),
    which lets recovery logic — e.g. a client failing over when its mux
    crashes — ride the same deterministic schedule as the faults.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.events: List[TestbedEvent] = []
        self._subscribers: List[Callable[[TestbedEvent], None]] = []

    def emit(self, kind: str, source: str = "", **detail) -> TestbedEvent:
        # Emitters may pass severity as the enum or its string value; the
        # stored detail is normalized to the string so logs stay
        # comparison-friendly and ``TestbedEvent.severity`` parses either.
        event = TestbedEvent(
            kind=kind,
            time=self.engine.now,
            source=source,
            detail=tuple(
                sorted(
                    (key, value.value if isinstance(value, Severity) else value)
                    for key, value in detail.items()
                )
            ),
        )
        self.events.append(event)
        for subscriber in list(self._subscribers):
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TestbedEvent], None]) -> None:
        self._subscribers.append(callback)

    def of_kind(self, *kinds: str) -> List[TestbedEvent]:
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]

    def of_severity(self, minimum: Severity) -> List[TestbedEvent]:
        """Severity-tagged events at or above ``minimum`` — the operator's
        escalation view (quarantines and watchdog kills float to the top)."""
        return [
            event
            for event in self.events
            if event.severity is not None and event.severity.rank >= minimum.rank
        ]

    def log(self) -> List[Tuple[float, str, str, Tuple[Tuple[str, object], ...]]]:
        """The canonical, comparison-friendly form of the whole log."""
        return [(e.time, e.kind, e.source, e.detail) for e in self.events]

    def __len__(self) -> int:
        return len(self.events)


class AlertKind(Enum):
    ORIGIN_HIJACK = "origin-hijack"
    MORE_SPECIFIC = "more-specific"
    LOST_VISIBILITY = "lost-visibility"


@dataclass(frozen=True)
class HijackAlert:
    kind: AlertKind
    prefix: Prefix
    time: float
    observed_origin: Optional[int] = None
    vantages: Tuple[int, ...] = ()
    detail: str = ""


class HijackDetector:
    """Watches announced prefixes from a set of vantage ASes.

    Registration establishes ground truth (owner origins per prefix);
    :meth:`scan` compares the current converged state against it.
    """

    def __init__(
        self,
        testbed: "Testbed",
        vantage_asns: Sequence[int],
        visibility_loss_threshold: float = 0.8,
    ) -> None:
        self.testbed = testbed
        self.vantage_asns = list(vantage_asns)
        self.visibility_loss_threshold = visibility_loss_threshold
        self._registered: Dict[Prefix, Set[int]] = {}
        self._last_visibility: Dict[Prefix, int] = {}
        self.alerts: List[HijackAlert] = []

    def register(self, prefix: Prefix, origins: Set[int]) -> None:
        """Declare the legitimate origin set for ``prefix``."""
        self._registered[prefix] = set(origins)

    def watched(self) -> List[Prefix]:
        return list(self._registered)

    def scan(self) -> List[HijackAlert]:
        """One detection round; returns (and records) new alerts."""
        now = self.testbed.engine.now
        new_alerts: List[HijackAlert] = []
        # Watch both the testbed's own registry and anything installed in
        # the data plane (externally-originated announcements — how a real
        # hijacker shows up to a monitor).
        self.testbed._flush_dirty()
        announced = set(self.testbed.announced_prefixes()) | set(
            self.testbed.dataplane._outcomes
        )

        for prefix, origins in self._registered.items():
            outcome = self.testbed.outcome_for(prefix)

            # Unregistered more-specifics covering watched space.
            for other in announced:
                if other != prefix and prefix.contains(other) and other not in self._registered:
                    new_alerts.append(
                        HijackAlert(
                            AlertKind.MORE_SPECIFIC,
                            other,
                            now,
                            detail=f"unregistered more-specific of {prefix}",
                        )
                    )

            if outcome is None:
                visible = 0
            else:
                bad_vantages: Dict[int, List[int]] = {}
                visible = 0
                for vantage in self.vantage_asns:
                    path = outcome.as_path(vantage)
                    if path is None:
                        continue
                    visible += 1
                    observed_origin = path[-1] if path else vantage
                    if observed_origin not in origins:
                        bad_vantages.setdefault(observed_origin, []).append(vantage)
                for observed_origin, vantages in sorted(bad_vantages.items()):
                    new_alerts.append(
                        HijackAlert(
                            AlertKind.ORIGIN_HIJACK,
                            prefix,
                            now,
                            observed_origin=observed_origin,
                            vantages=tuple(vantages),
                            detail=(
                                f"{len(vantages)} vantages see origin "
                                f"AS{observed_origin}, expected {sorted(origins)}"
                            ),
                        )
                    )

            previous = self._last_visibility.get(prefix)
            if (
                previous is not None
                and previous > 0
                and visible < previous * (1 - self.visibility_loss_threshold)
            ):
                new_alerts.append(
                    HijackAlert(
                        AlertKind.LOST_VISIBILITY,
                        prefix,
                        now,
                        detail=f"visibility {previous} -> {visible} vantages",
                    )
                )
            self._last_visibility[prefix] = visible

        self.alerts.extend(new_alerts)
        return new_alerts

    def schedule_rounds(self, interval: float, rounds: int) -> None:
        for i in range(1, rounds + 1):
            self.testbed.engine.schedule(interval * i, self.scan, label="hijack-scan")

    def alerts_for(self, prefix: Prefix) -> List[HijackAlert]:
        return [a for a in self.alerts if a.prefix == prefix]
