"""Experiments and the vetting workflow.

PEERING isolates simultaneous experiments by giving each its own prefixes
(§3 "Supporting multiple simultaneous experiments") and vets proposals
through an advisory board before provisioning (§3 "Easing management").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Set

from ..net.addr import Prefix

__all__ = ["ExperimentStatus", "ExperimentError", "Experiment", "AdvisoryBoard"]


class ExperimentError(Exception):
    """Raised for lifecycle violations (announcing before approval, etc.)."""


class ExperimentStatus(Enum):
    PROPOSED = "proposed"
    APPROVED = "approved"
    ACTIVE = "active"
    RETIRED = "retired"
    REJECTED = "rejected"


@dataclass
class Experiment:
    """One research experiment: its identity, state, and resources."""

    name: str
    researcher: str
    description: str = ""
    needs_spoofing: bool = False
    status: ExperimentStatus = ExperimentStatus.PROPOSED
    prefixes: List[Prefix] = field(default_factory=list)
    clients: Set[str] = field(default_factory=set)

    def require_active(self) -> None:
        if self.status is not ExperimentStatus.ACTIVE:
            raise ExperimentError(
                f"experiment {self.name!r} is {self.status.value}, not active"
            )

    def owns(self, prefix: Prefix) -> bool:
        return any(owned.contains(prefix) for owned in self.prefixes)


class AdvisoryBoard:
    """The review gate: experiments must be approved before resources are
    provisioned.  Policy here is deliberately simple — spoofing requests
    require explicit justification — but the gate is where a deployment
    would hang its real review process."""

    def __init__(self) -> None:
        self.reviewed: List[str] = []

    def review(self, experiment: Experiment) -> ExperimentStatus:
        self.reviewed.append(experiment.name)
        if experiment.needs_spoofing and not experiment.description:
            experiment.status = ExperimentStatus.REJECTED
            return experiment.status
        experiment.status = ExperimentStatus.APPROVED
        return experiment.status
