"""The PEERING testbed: servers (muxes), clients, prefix allocation,
safety enforcement, scheduling, provisioning, and measurement collection."""

from .alerts import AlertKind, HijackAlert, HijackDetector
from .allocation import Allocation, AllocationError, PrefixPool
from .client import Attachment, PeeringClient
from .experiment import (
    AdvisoryBoard,
    Experiment,
    ExperimentError,
    ExperimentStatus,
)
from .measurements import (
    ControlPlaneCollector,
    DataPlaneCollector,
    ProbeObservation,
    RouteObservation,
)
from .provisioning import Provisioner, ProvisioningDatabase, Record, RecordKind
from .safety import SafetyConfig, SafetyDecision, SafetyEnforcer, SafetyVerdict
from .scheduler import (
    AnnouncementScheduler,
    ScheduledTask,
    SchedulerError,
    ScheduleStatus,
)
from .server import AnnouncementSpec, MuxMode, PeeringServer, SiteConfig, SiteKind
from .services import (
    Action,
    Match,
    PacketPipeline,
    Rule,
    ServiceHost,
    ServiceVM,
    Verdict,
)
from .testbed import PEERING_ASN, PEERING_SUPERNET, Testbed

__all__ = [
    "AlertKind",
    "HijackAlert",
    "HijackDetector",
    "Allocation",
    "AllocationError",
    "PrefixPool",
    "Attachment",
    "PeeringClient",
    "AdvisoryBoard",
    "Experiment",
    "ExperimentError",
    "ExperimentStatus",
    "ControlPlaneCollector",
    "DataPlaneCollector",
    "ProbeObservation",
    "RouteObservation",
    "Provisioner",
    "ProvisioningDatabase",
    "Record",
    "RecordKind",
    "SafetyConfig",
    "SafetyDecision",
    "SafetyEnforcer",
    "SafetyVerdict",
    "AnnouncementScheduler",
    "ScheduledTask",
    "SchedulerError",
    "ScheduleStatus",
    "AnnouncementSpec",
    "MuxMode",
    "PeeringServer",
    "SiteConfig",
    "SiteKind",
    "Testbed",
    "PEERING_ASN",
    "PEERING_SUPERNET",
    "Action",
    "Match",
    "PacketPipeline",
    "Rule",
    "ServiceHost",
    "ServiceVM",
    "Verdict",
]
