"""Safety enforcement at PEERING servers (§3 "Enforcing safety").

Because servers interpose between clients and the Internet on both
planes, they are where the testbed's guarantees live:

* **Prefix filters** — a client may only announce prefixes allocated to
  its experiment; anything else (a hijack, a leak of a learned route, a
  less-specific covering PEERING space) is rejected.
* **Origin filters** — the AS path of a client announcement must
  originate in the client's own (possibly private, emulated) AS or be
  empty; learned Internet routes re-announced by a client are leaks and
  are rejected.
* **Private-ASN stripping** — emulated domains behind a client use
  private ASNs; the mux strips them so the Internet sees only the
  PEERING ASN (§3 "Controlling interdomain topology").
* **Route-flap damping** — a misbehaving client cannot subject real
  peers to update storms.
* **Announcement rate limiting** — a per-client token bucket bounds
  control-plane load.
* **Spoofing control** — data-plane packets from a client must carry a
  source inside the client's prefixes unless the experiment has an
  explicit spoofing waiver (LIFEGUARD/Reverse-Traceroute-style studies
  get "carefully controlled" spoofing).

Every decision is recorded in an audit log entry with the rule that
fired, so operators (and tests) can see exactly why an action was
blocked.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from ..bgp.attributes import ASPath, is_private_asn
from ..bgp.dampening import DampeningConfig, RouteFlapDamper
from ..net.addr import IPAddress, Prefix
from ..net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..secroute.rpki import RoaRegistry
    from ..telemetry.metrics import Counter, CounterChild, MetricsRegistry

__all__ = [
    "SafetyVerdict",
    "SafetyDecision",
    "SafetyConfig",
    "AuditEntry",
    "SafetyEnforcer",
]


class SafetyVerdict(Enum):
    ALLOWED = "allowed"
    PREFIX_NOT_ALLOCATED = "prefix-not-allocated"
    PREFIX_OUTSIDE_TESTBED = "prefix-outside-testbed"
    PREFIX_TOO_COARSE = "prefix-too-coarse"
    # A client announcing a more-specific of *another* client's
    # allocation: an intra-testbed sub-prefix hijack, not a mere typo.
    PREFIX_SQUAT = "prefix-squat"
    ROUTE_LEAK = "route-leak"
    BAD_ORIGIN = "bad-origin"
    # The announcement is RPKI-Invalid under the testbed's own ROAs
    # (announcing it would hijack space someone authorized differently).
    RPKI_INVALID = "rpki-invalid"
    DAMPED = "damped"
    RATE_LIMITED = "rate-limited"
    SPOOFED_SOURCE = "spoofed-source"
    # Supervision-layer refusals (repro.guard), logged here so the audit
    # trail stays the single chronology of everything a client was denied.
    QUARANTINED = "quarantined"
    BREAKER_OPEN = "breaker-open"


@dataclass(frozen=True)
class SafetyDecision:
    verdict: SafetyVerdict
    detail: str = ""
    stripped_path: Optional[ASPath] = None

    @property
    def allowed(self) -> bool:
        return self.verdict is SafetyVerdict.ALLOWED


@dataclass(frozen=True)
class SafetyConfig:
    max_announcements_per_window: int = 100
    window_seconds: float = 60.0
    dampening: DampeningConfig = field(default_factory=DampeningConfig)
    min_prefix_length: int = 21  # nothing coarser than the pool's blocks
    allow_spoofing_for: frozenset = frozenset()  # client ids with waivers


@dataclass(frozen=True)
class AuditEntry:
    """One audit-log line.  ``seq`` is monotonic; when the enforcer is
    supervised it draws from the control journal's sequence, so audit
    entries and journal records correlate on one shared timeline."""

    seq: int
    time: float
    client_id: str
    decision: SafetyDecision


class SafetyEnforcer:
    """Stateful safety checks shared by all sessions of one server."""

    def __init__(self, config: Optional[SafetyConfig] = None) -> None:
        self.config = config or SafetyConfig()
        self.damper = RouteFlapDamper(self.config.dampening)
        self._windows: Dict[str, Tuple[float, int]] = {}
        self.audit_log: List[AuditEntry] = []
        self._own_seq = itertools.count()
        # Supervisor wiring (repro.guard): a shared sequence source and a
        # violation callback; both optional — the enforcer is standalone
        # by default.
        self.seq_source: Optional[Callable[[], int]] = None
        self.on_violation: Optional[
            Callable[[str, SafetyDecision, float], None]
        ] = None
        self.violations: Dict[str, int] = {}
        # RPKI wiring (repro.secroute): vet announcements against the
        # shared ROA registry as :meth:`bind_roas` describes.  Optional.
        self._roas: Optional["RoaRegistry"] = None
        self._roa_origin: int = 0
        # Telemetry wiring (repro.telemetry): per-verdict decision counter,
        # bound by the owning server via :meth:`bind_metrics`.  Optional —
        # a standalone enforcer records audit entries only.
        self._decision_counter: Optional["Counter"] = None
        self._metrics_server = ""
        # Label children resolved once at bind time — log_decision sits on
        # the per-update hot path and the verdict set is closed.
        self._verdict_children: Dict[SafetyVerdict, "CounterChild"] = {}

    def bind_metrics(self, metrics: "MetricsRegistry", server: str) -> None:
        """Count every decision as
        ``peering_safety_decisions_total{server=,verdict=}``."""
        self._decision_counter = metrics.counter(
            "peering_safety_decisions_total",
            "Safety audit decisions by mux and verdict",
            ("server", "verdict"),
        )
        self._metrics_server = server
        self._verdict_children = {
            verdict: self._decision_counter.labels(server, verdict.value)
            for verdict in SafetyVerdict
        }

    def bind_roas(self, registry: "RoaRegistry", origin_asn: int) -> None:
        """Vet client announcements against the ROA registry, as the
        Internet will see them: originated by ``origin_asn`` (the
        testbed's public ASN — private emulation ASNs are stripped before
        export).  An Invalid result is denied with
        :attr:`SafetyVerdict.RPKI_INVALID`."""
        self._roas = registry
        self._roa_origin = origin_asn

    # -- audit plumbing ----------------------------------------------------------

    def log_decision(
        self,
        client_id: str,
        decision: SafetyDecision,
        now: float,
        count_violation: bool = True,
    ) -> SafetyDecision:
        """Append one audit entry (and fire the violation hook for denials).

        ``count_violation=False`` records a denial without charging the
        client — used for supervision-layer refusals (quarantine/breaker),
        where the *cause* was already counted when the guard tripped.
        """
        seq = self.seq_source() if self.seq_source is not None else next(self._own_seq)
        self.audit_log.append(AuditEntry(seq, now, client_id, decision))
        child = self._verdict_children.get(decision.verdict)
        if child is not None:
            child.inc()
        if not decision.allowed and count_violation:
            self.violations[client_id] = self.violations.get(client_id, 0) + 1
            if self.on_violation is not None:
                self.on_violation(client_id, decision, now)
        return decision

    def violation_count(self, client_id: str) -> int:
        return self.violations.get(client_id, 0)

    def reset_client(self, client_id: str) -> None:
        """Wipe per-client safety state (quarantine release): rate-limit
        window, violation counter, and flap-damping penalties — a
        re-admitted client must not trip instantly on decayed history."""
        self._windows.pop(client_id, None)
        self.violations.pop(client_id, None)
        self.damper.reset_peer(client_id)

    # -- control plane -----------------------------------------------------------

    def check_announcement(
        self,
        client_id: str,
        prefix: Prefix,
        as_path: ASPath,
        allocated: Set[Prefix],
        testbed_space: bool,
        now: float,
        count_flap: bool = True,
        foreign_allocated: Optional[Set[Prefix]] = None,
    ) -> SafetyDecision:
        """Validate one client announcement.

        ``allocated``: the prefixes this client's experiment holds.
        ``testbed_space``: whether ``prefix`` is inside any PEERING pool
        supernet (computed by the caller against the pool).
        ``count_flap``: charge the rate limiter and flap damper.  The mux
        passes False when a client merely *extends* an existing
        announcement to more peers (Quagga-mode sends one UPDATE per peer
        session for the same prefix; that is one announcement, not many).
        ``foreign_allocated``: prefixes held by *other* clients, so a
        sub-prefix squat is distinguished from a plain bad prefix.
        """
        decision = self._check(
            client_id, prefix, as_path, allocated, testbed_space, now, count_flap,
            foreign_allocated,
        )
        return self.log_decision(client_id, decision, now)

    def _check(
        self,
        client_id: str,
        prefix: Prefix,
        as_path: ASPath,
        allocated: Set[Prefix],
        testbed_space: bool,
        now: float,
        count_flap: bool = True,
        foreign_allocated: Optional[Set[Prefix]] = None,
    ) -> SafetyDecision:
        if not testbed_space:
            return SafetyDecision(
                SafetyVerdict.PREFIX_OUTSIDE_TESTBED,
                f"{prefix} is not PEERING address space (hijack blocked)",
            )
        if prefix.length < self.config.min_prefix_length:
            return SafetyDecision(
                SafetyVerdict.PREFIX_TOO_COARSE,
                f"{prefix} is coarser than /{self.config.min_prefix_length}",
            )
        if not any(owned.contains(prefix) for owned in allocated):
            # Squatting another experiment's space (announcing it outright
            # or a more-specific of it) is an intra-testbed hijack and is
            # audited as such — it draws a violation like any other denial.
            if foreign_allocated and any(
                other.contains(prefix) for other in foreign_allocated
            ):
                return SafetyDecision(
                    SafetyVerdict.PREFIX_SQUAT,
                    f"{prefix} covers another client's allocation "
                    f"(sub-prefix squat by {client_id})",
                )
            return SafetyDecision(
                SafetyVerdict.PREFIX_NOT_ALLOCATED,
                f"{prefix} is not allocated to {client_id}",
            )
        if self._roas is not None:
            from ..secroute.rpki import ValidationState

            state = self._roas.validate(prefix, self._roa_origin)
            if state is ValidationState.INVALID:
                return SafetyDecision(
                    SafetyVerdict.RPKI_INVALID,
                    f"{prefix} from AS{self._roa_origin} is RPKI-Invalid "
                    "under the testbed's ROAs",
                )
        # Origin check: path must be empty (mux originates) or end in a
        # private ASN (an emulated domain behind the client).  A path
        # ending in a real public ASN means the client is re-announcing a
        # learned route: a leak.
        origin = as_path.origin_asn
        if origin is not None and not is_private_asn(origin):
            return SafetyDecision(
                SafetyVerdict.ROUTE_LEAK,
                f"origin AS{origin} is public: re-announcing learned routes is a leak",
            )
        if any(not is_private_asn(asn) for asn in as_path.asns()):
            return SafetyDecision(
                SafetyVerdict.BAD_ORIGIN,
                "client paths may contain only private (emulated) ASNs",
            )
        if count_flap and not self._consume_token(client_id, now):
            return SafetyDecision(
                SafetyVerdict.RATE_LIMITED,
                f"more than {self.config.max_announcements_per_window} announcements "
                f"in {self.config.window_seconds}s",
            )
        if count_flap and self.damper.record_announcement(client_id, prefix, now):
            return SafetyDecision(
                SafetyVerdict.DAMPED,
                f"{prefix} is suppressed by flap damping "
                f"(~{self.damper.reuse_time(client_id, prefix, now):.0f}s to reuse)",
            )
        return SafetyDecision(
            SafetyVerdict.ALLOWED, stripped_path=as_path.strip_private()
        )

    def check_withdrawal(self, client_id: str, prefix: Prefix, now: float) -> SafetyDecision:
        """Withdrawals are always propagated but feed the damper."""
        self.damper.record_withdrawal(client_id, prefix, now)
        return self.log_decision(client_id, SafetyDecision(SafetyVerdict.ALLOWED), now)

    def _consume_token(self, client_id: str, now: float) -> bool:
        window_start, used = self._windows.get(client_id, (now, 0))
        if now - window_start >= self.config.window_seconds:
            window_start, used = now, 0
        if used >= self.config.max_announcements_per_window:
            self._windows[client_id] = (window_start, used)
            return False
        self._windows[client_id] = (window_start, used + 1)
        return True

    # -- data plane -------------------------------------------------------------

    def check_packet(
        self, client_id: str, packet: Packet, allocated: Set[Prefix]
    ) -> SafetyDecision:
        """Source-address control for client traffic entering the mux."""
        if any(prefix.contains(packet.src) for prefix in allocated):
            return SafetyDecision(SafetyVerdict.ALLOWED)
        if client_id in self.config.allow_spoofing_for:
            return SafetyDecision(
                SafetyVerdict.ALLOWED, detail="spoofing waiver applied"
            )
        decision = SafetyDecision(
            SafetyVerdict.SPOOFED_SOURCE,
            f"source {packet.src} outside {client_id}'s prefixes and no waiver",
        )
        return self.log_decision(client_id, decision, 0.0)

    # -- reporting -----------------------------------------------------------------

    def blocked_count(self) -> int:
        return sum(1 for entry in self.audit_log if not entry.decision.allowed)

    def decisions_for(self, client_id: str) -> List[SafetyDecision]:
        return [e.decision for e in self.audit_log if e.client_id == client_id]
