"""Quagga-style routing engine services and their memory model.

Two things live here:

* :class:`QuaggaService` — the per-container routing daemon wrapper the
  MinineXt manager instantiates for each PoP: a full
  :class:`~repro.bgp.router.BGPRouter` plus bookkeeping (which container
  it runs in, which prefixes it originates).

* :class:`QuaggaMemoryModel` — an analytic model of Quagga's BGP table
  memory, calibrated to the shape of Figure 2: a per-process baseline,
  a per-distinct-prefix cost (struct bgp_node and prefix storage), and a
  per-path cost paid for every (prefix, peer) path retained in the
  Adj-RIB-In.  Figure 2's "memory grows with both prefixes and peers"
  is exactly ``base + P*node + P*N*path``.

The benchmark for Figure 2 reports this model *and* the actually-measured
memory of our own RIB implementation under the same workload (via
tracemalloc), so the figure can be regenerated from either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..net.addr import IPAddress, Prefix
from ..bgp.router import BGPRouter

__all__ = ["QuaggaMemoryModel", "QuaggaService"]


@dataclass(frozen=True)
class QuaggaMemoryModel:
    """Bytes of BGP table memory as a function of table shape.

    Defaults are calibrated to public Quagga measurements of the era (a
    full ~500K-prefix table with one full-feed peer sat near 400–500 MB
    of table memory).
    """

    baseline: int = 35 * 1024 * 1024  # process + daemon overhead
    per_prefix: int = 130  # struct bgp_node + prefix + rib glue
    per_path: int = 800  # struct bgp_info + attr share per (prefix, peer)

    def table_bytes(self, prefixes: int, peers: int) -> int:
        """Memory for ``peers`` each sending ``prefixes`` routes to one
        router (the Figure 2 workload)."""
        return (
            self.baseline
            + prefixes * self.per_prefix
            + prefixes * peers * self.per_path
        )

    def table_megabytes(self, prefixes: int, peers: int) -> float:
        return self.table_bytes(prefixes, peers) / (1024 * 1024)


@dataclass
class QuaggaService:
    """A routing daemon bound to one emulated container."""

    container: str
    router: BGPRouter
    originated: List[Prefix] = field(default_factory=list)

    @property
    def asn(self) -> int:
        return self.router.asn

    @property
    def router_id(self) -> IPAddress:
        return self.router.router_id

    def originate(self, prefix: Prefix, **kwargs) -> None:
        self.router.originate(prefix, **kwargs)
        self.originated.append(prefix)

    def table_size(self) -> int:
        return self.router.table_size()

    def adj_in_size(self) -> int:
        return self.router.adj_in_size()

    def modeled_memory_bytes(self, model: Optional[QuaggaMemoryModel] = None) -> int:
        """What this router's current table would cost a real Quagga."""
        model = model or QuaggaMemoryModel()
        prefixes = self.table_size()
        paths = self.adj_in_size()
        return model.baseline + prefixes * model.per_prefix + paths * model.per_path
