"""MinineXt: the container-based intradomain emulation manager.

The real MinineXt extends Mininet with better container isolation and
building blocks for Quagga and for connecting to PEERING servers (§3,
§4.2).  This module provides the same workflow on simulated containers:

1. build a topology of containers and links (e.g. from
   :func:`repro.emulation.topology_zoo.hurricane_electric`);
2. run a routing service (our BGP router + link-state IGP) in each;
3. mesh them with iBGP (full mesh or route reflection);
4. hook one or more containers to external BGP peers — in practice a
   PEERING mux (:class:`repro.core.server.PeeringServer`) — so real(istic)
   interdomain routes flow through the emulated backbone and back out.

Addresses: each container gets a loopback out of 10.10.0.0/16 in creation
order; link metrics default to 1 (hop count IGP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..bgp.policy import RouteMap
from ..bgp.router import BGPRouter, PeerConfig
from ..net.addr import IPAddress, Prefix
from ..net.channel import ChannelPair, Endpoint
from ..sim.engine import Engine
from .igp import LinkStateDatabase, SPFResult
from .quagga import QuaggaMemoryModel, QuaggaService
from .topology_zoo import ZooTopology

__all__ = ["Container", "MinineXt", "EmulationError"]


class EmulationError(Exception):
    """Raised for emulation misconfiguration (unknown containers etc.)."""


@dataclass
class Container:
    """A lightweight emulated network namespace."""

    name: str
    loopback: IPAddress
    service: Optional[QuaggaService] = None
    links: List[str] = field(default_factory=list)

    @property
    def has_router(self) -> bool:
        return self.service is not None


class MinineXt:
    """The emulation: containers + links + per-container routing services."""

    LOOPBACK_BASE = IPAddress("10.10.0.0")

    def __init__(self, engine: Optional[Engine] = None, name: str = "mininext") -> None:
        self.engine = engine or Engine()
        self.name = name
        self._containers: Dict[str, Container] = {}
        self.lsdb = LinkStateDatabase()
        self._spf_cache: Optional[Dict[str, SPFResult]] = None
        self._loopback_by_value: Dict[int, str] = {}
        self._next_host = 1

    # -- topology construction ------------------------------------------------

    def add_container(self, name: str) -> Container:
        if name in self._containers:
            raise EmulationError(f"duplicate container {name!r}")
        loopback = self.LOOPBACK_BASE + self._next_host
        self._next_host += 1
        container = Container(name=name, loopback=loopback)
        self._containers[name] = container
        self._loopback_by_value[loopback.value] = name
        self.lsdb.add_node(name)
        self._spf_cache = None
        return container

    def add_link(self, a: str, b: str, metric: float = 1.0) -> None:
        self._require(a), self._require(b)
        self.lsdb.add_link(a, b, metric)
        self._containers[a].links.append(b)
        self._containers[b].links.append(a)
        self._spf_cache = None

    def container(self, name: str) -> Container:
        return self._require(name)

    def containers(self) -> List[str]:
        return list(self._containers)

    def _require(self, name: str) -> Container:
        try:
            return self._containers[name]
        except KeyError:
            raise EmulationError(f"unknown container {name!r}") from None

    @classmethod
    def from_zoo(cls, topology: ZooTopology, engine: Optional[Engine] = None) -> "MinineXt":
        """Build containers + links from a Topology Zoo graph."""
        emulation = cls(engine=engine, name=topology.name)
        for pop in topology.pops:
            emulation.add_container(pop.name)
        for a, b in topology.links:
            emulation.add_link(a, b)
        return emulation

    # -- routing services ----------------------------------------------------------

    def add_quagga(self, name: str, asn: int) -> QuaggaService:
        """Run a routing daemon in ``name`` (router id = loopback)."""
        container = self._require(name)
        if container.service is not None:
            raise EmulationError(f"{name!r} already runs a router")
        router = BGPRouter(self.engine, asn=asn, router_id=container.loopback)
        router.resolve_igp_metric = self._metric_resolver(name)
        service = QuaggaService(container=name, router=router)
        container.service = service
        return service

    def _metric_resolver(self, name: str) -> Callable[[IPAddress], int]:
        def resolve(next_hop: IPAddress) -> int:
            owner = self._loopback_by_value.get(next_hop.value)
            if owner is None:
                return 0  # external next hop: not an IGP destination
            spf = self._spf(name)
            metric = spf.metric_to(owner)
            return int(metric) if metric is not None else 2**31

        return resolve

    def _spf(self, source: str) -> SPFResult:
        if self._spf_cache is None:
            self._spf_cache = {}
        if source not in self._spf_cache:
            self._spf_cache[source] = self.lsdb.spf(source)
        return self._spf_cache[source]

    def igp_path(self, a: str, b: str) -> List[str]:
        """Container-level path the IGP would forward along."""
        return self._spf(a).path_to(b)

    # -- iBGP meshing ------------------------------------------------------------

    def ibgp_session(self, a: str, b: str, rr_client_of_a: bool = False) -> None:
        """One iBGP session between two containers' routers."""
        ra, rb = self._router(a), self._router(b)
        if ra.asn != rb.asn:
            raise EmulationError(f"{a}/{b} are in different ASes; use external_peer")
        pair = ChannelPair(f"ibgp:{a}<->{b}")
        sa = ra.add_peer(
            PeerConfig(
                peer_id=str(rb.router_id),
                remote_asn=rb.asn,
                local_address=ra.router_id,
                route_reflector_client=rr_client_of_a,
                description=f"{a}->{b}",
            ),
            pair.a,
        )
        sb = rb.add_peer(
            PeerConfig(
                peer_id=str(ra.router_id),
                remote_asn=ra.asn,
                local_address=rb.router_id,
                description=f"{b}->{a}",
            ),
            pair.b,
        )
        sa.start()
        sb.start()

    def ibgp_full_mesh(self, names: Optional[Iterable[str]] = None) -> int:
        """Classic full mesh; returns the number of sessions created."""
        routed = [n for n in (names or self._containers) if self._containers[n].has_router]
        count = 0
        for i, a in enumerate(routed):
            for b in routed[i + 1 :]:
                self.ibgp_session(a, b)
                count += 1
        return count

    def ibgp_route_reflector(self, reflector: str, clients: Optional[Iterable[str]] = None) -> int:
        """Hub-and-spoke reflection: ``reflector`` reflects for everyone."""
        names = [
            n
            for n in (clients or self._containers)
            if n != reflector and self._containers[n].has_router
        ]
        for client in names:
            self.ibgp_session(reflector, client, rr_client_of_a=True)
        return len(names)

    def ibgp_adjacent_sessions(self, mrai: float = 5.0) -> int:
        """iBGP sessions along physical links only (the §4.2 HE setup:
        "configured sessions between adjacent PoPs"), with every router
        acting as a reflector so routes relay across the backbone.

        ``mrai`` batches re-advertisements: with dozens of alternate
        reflection paths per prefix, immediate per-change exports explode
        into BGP path hunting, exactly the phenomenon MRAI exists to tame
        (run :meth:`converge` afterwards to let the rounds drain)."""
        count = 0
        seen = set()
        for name, container in self._containers.items():
            if not container.has_router:
                continue
            for neighbor in container.links:
                key = (min(name, neighbor), max(name, neighbor))
                if key in seen or not self._containers[neighbor].has_router:
                    continue
                seen.add(key)
                pair = ChannelPair(f"ibgp:{key[0]}<->{key[1]}")
                ra, rb = self._router(name), self._router(neighbor)
                sa = ra.add_peer(
                    PeerConfig(
                        peer_id=str(rb.router_id),
                        remote_asn=rb.asn,
                        local_address=ra.router_id,
                        route_reflector_client=True,
                        mrai=mrai,
                        description=f"{name}->{neighbor}",
                    ),
                    pair.a,
                )
                sb = rb.add_peer(
                    PeerConfig(
                        peer_id=str(ra.router_id),
                        remote_asn=ra.asn,
                        local_address=rb.router_id,
                        route_reflector_client=True,
                        mrai=mrai,
                        description=f"{neighbor}->{name}",
                    ),
                    pair.b,
                )
                sa.start()
                sb.start()
                count += 1
        return count

    def _router(self, name: str) -> BGPRouter:
        container = self._require(name)
        if container.service is None:
            raise EmulationError(f"{name!r} runs no router")
        return container.service.router

    # -- external connectivity -------------------------------------------------------

    def external_peer(
        self,
        name: str,
        remote_asn: int,
        export_policy: Optional[RouteMap] = None,
        import_policy: Optional[RouteMap] = None,
        add_path: bool = False,
    ) -> Tuple[Endpoint, PeerConfig]:
        """Prepare an eBGP attachment point on container ``name``.

        Returns the *remote* endpoint plus this side's peer config; the
        caller (e.g. a PEERING client/server) wires the remote endpoint
        into its own session.  The local session is registered and started
        (it completes once the remote side answers).
        """
        router = self._router(name)
        pair = ChannelPair(f"ebgp:{name}<->AS{remote_asn}")
        config = PeerConfig(
            peer_id=f"ebgp-{remote_asn}-{name}",
            remote_asn=remote_asn,
            local_address=self._containers[name].loopback,
            export_policy=export_policy or RouteMap.PERMIT_ALL,
            import_policy=import_policy or RouteMap.PERMIT_ALL,
            add_path=add_path,
            description=f"{name}->AS{remote_asn}",
        )
        session = router.add_peer(config, pair.a)
        session.start()
        return pair.b, config

    # -- reporting ------------------------------------------------------------------

    def converge(self, duration: float = 60.0) -> int:
        """Run the event engine to let sessions and updates settle."""
        return self.engine.run_for(duration)

    def total_routes(self) -> Dict[str, int]:
        return {
            name: container.service.table_size()
            for name, container in self._containers.items()
            if container.service is not None
        }

    def modeled_memory_bytes(self, model: Optional[QuaggaMemoryModel] = None) -> int:
        """Memory a real MinineXt host would need for this emulation."""
        model = model or QuaggaMemoryModel()
        return sum(
            container.service.modeled_memory_bytes(model)
            for container in self._containers.values()
            if container.service is not None
        )
