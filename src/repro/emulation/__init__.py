"""MinineXt-style intradomain emulation: containers, link-state IGP,
per-PoP routing daemons, Topology Zoo data."""

from .igp import IGPError, LinkStateDatabase, SPFResult
from .mininext import Container, EmulationError, MinineXt
from .quagga import QuaggaMemoryModel, QuaggaService
from .topology_zoo import PoP, ZooTopology, hurricane_electric, parse_gml

__all__ = [
    "IGPError",
    "LinkStateDatabase",
    "SPFResult",
    "Container",
    "EmulationError",
    "MinineXt",
    "QuaggaMemoryModel",
    "QuaggaService",
    "PoP",
    "ZooTopology",
    "hurricane_electric",
    "parse_gml",
]
