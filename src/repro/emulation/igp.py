"""A link-state IGP (OSPF-style) for emulated intradomain networks.

Each emulated PoP runs the IGP to learn shortest paths to every other
PoP; BGP next-hop resolution and the ``igp_metric`` input to the BGP
decision process come from here.  The implementation is a straight
Dijkstra over the emulation's link database — the from-scratch analogue
of the OSPF daemon MinineXt runs in each container.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["IGPError", "LinkStateDatabase", "SPFResult"]


class IGPError(Exception):
    """Raised for unknown nodes or malformed link state."""


@dataclass(frozen=True)
class SPFResult:
    """Shortest-path tree from one node."""

    source: str
    distance: Dict[str, float]
    next_hop: Dict[str, str]
    predecessor: Dict[str, str]

    def path_to(self, target: str) -> List[str]:
        """Node sequence from source to target (inclusive); [] if none."""
        if target == self.source:
            return [self.source]
        if target not in self.predecessor:
            return []
        path = [target]
        while path[-1] != self.source:
            path.append(self.predecessor[path[-1]])
        return list(reversed(path))

    def metric_to(self, target: str) -> Optional[float]:
        return self.distance.get(target)


class LinkStateDatabase:
    """The flooded topology every IGP speaker computes SPF over."""

    def __init__(self) -> None:
        self._nodes: Set[str] = set()
        self._links: Dict[str, Dict[str, float]] = {}

    def add_node(self, name: str) -> None:
        self._nodes.add(name)
        self._links.setdefault(name, {})

    def add_link(self, a: str, b: str, metric: float = 1.0) -> None:
        """Add (or update) a bidirectional link."""
        if metric <= 0:
            raise IGPError(f"metric must be positive, got {metric}")
        for name in (a, b):
            if name not in self._nodes:
                raise IGPError(f"unknown node {name!r}")
        self._links[a][b] = metric
        self._links[b][a] = metric

    def remove_link(self, a: str, b: str) -> None:
        self._links.get(a, {}).pop(b, None)
        self._links.get(b, {}).pop(a, None)

    def nodes(self) -> Set[str]:
        return set(self._nodes)

    def neighbors(self, name: str) -> Dict[str, float]:
        if name not in self._nodes:
            raise IGPError(f"unknown node {name!r}")
        return dict(self._links[name])

    def link_count(self) -> int:
        return sum(len(peers) for peers in self._links.values()) // 2

    def spf(self, source: str) -> SPFResult:
        """Dijkstra from ``source``; ties broken by node name for
        deterministic next hops."""
        if source not in self._nodes:
            raise IGPError(f"unknown node {source!r}")
        distance: Dict[str, float] = {source: 0.0}
        predecessor: Dict[str, str] = {}
        next_hop: Dict[str, str] = {}
        visited: Set[str] = set()
        heap: List[Tuple[float, str, Optional[str]]] = [(0.0, source, None)]
        while heap:
            dist, node, pred = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if pred is not None:
                predecessor[node] = pred
                next_hop[node] = next_hop.get(pred, node)
                if pred == source:
                    next_hop[node] = node
            for neighbor, metric in sorted(self._links[node].items()):
                candidate = dist + metric
                if neighbor not in visited and candidate < distance.get(
                    neighbor, float("inf")
                ):
                    distance[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor, node))
        return SPFResult(
            source=source, distance=distance, next_hop=next_hop, predecessor=predecessor
        )

    def converged_routes(self) -> Dict[str, SPFResult]:
        """SPF from every node (what a converged IGP domain knows)."""
        return {node: self.spf(node) for node in sorted(self._nodes)}
