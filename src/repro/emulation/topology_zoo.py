"""Topology Zoo data: the Hurricane Electric PoP-level backbone.

§4.2 emulates "the PoP-level global backbone of Hurricane Electric (HE),
using data from Topology Zoo ... 24 PoPs".  The coordinates and adjacency
below are transcribed from the Topology Zoo HE graph (2011 snapshot, 24
nodes); a tiny GML-subset parser is included so users can load other Zoo
graphs they have on disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["PoP", "ZooTopology", "hurricane_electric", "parse_gml"]


@dataclass(frozen=True)
class PoP:
    name: str
    city: str
    country: str
    latitude: float
    longitude: float


@dataclass
class ZooTopology:
    name: str
    pops: List[PoP]
    links: List[Tuple[str, str]]

    def pop(self, name: str) -> PoP:
        for pop in self.pops:
            if pop.name == name:
                return pop
        raise KeyError(name)

    def neighbors(self, name: str) -> List[str]:
        out = []
        for a, b in self.links:
            if a == name:
                out.append(b)
            elif b == name:
                out.append(a)
        return sorted(out)

    def validate(self) -> None:
        names = {pop.name for pop in self.pops}
        if len(names) != len(self.pops):
            raise ValueError("duplicate PoP names")
        for a, b in self.links:
            if a not in names or b not in names:
                raise ValueError(f"link references unknown PoP: {a}-{b}")
        # connectivity check
        if self.pops:
            seen = {self.pops[0].name}
            frontier = [self.pops[0].name]
            while frontier:
                current = frontier.pop()
                for neighbor in self.neighbors(current):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        frontier.append(neighbor)
            if seen != names:
                raise ValueError(f"topology not connected; unreachable: {names - seen}")


# Hurricane Electric PoP-level backbone, 24 PoPs (Topology Zoo snapshot).
_HE_POPS: List[PoP] = [
    PoP("SEA", "Seattle", "US", 47.61, -122.33),
    PoP("PAO", "Palo Alto", "US", 37.44, -122.14),
    PoP("FMT", "Fremont", "US", 37.55, -121.99),
    PoP("SJC", "San Jose", "US", 37.34, -121.89),
    PoP("LAX", "Los Angeles", "US", 34.05, -118.24),
    PoP("PHX", "Phoenix", "US", 33.45, -112.07),
    PoP("LAS", "Las Vegas", "US", 36.17, -115.14),
    PoP("DEN", "Denver", "US", 39.74, -104.99),
    PoP("DAL", "Dallas", "US", 32.78, -96.80),
    PoP("HOU", "Houston", "US", 29.76, -95.37),
    PoP("KCY", "Kansas City", "US", 39.10, -94.58),
    PoP("CHI", "Chicago", "US", 41.88, -87.63),
    PoP("MSP", "Minneapolis", "US", 44.98, -93.27),
    PoP("TOR", "Toronto", "CA", 43.65, -79.38),
    PoP("NYC", "New York", "US", 40.71, -74.01),
    PoP("ASH", "Ashburn", "US", 39.04, -77.49),
    PoP("ATL", "Atlanta", "US", 33.75, -84.39),
    PoP("MIA", "Miami", "US", 25.76, -80.19),
    PoP("LON", "London", "GB", 51.51, -0.13),
    PoP("PAR", "Paris", "FR", 48.86, 2.35),
    PoP("AMS", "Amsterdam", "NL", 52.37, 4.90),
    PoP("FRA", "Frankfurt", "DE", 50.11, 8.68),
    PoP("ZRH", "Zurich", "CH", 47.38, 8.54),
    PoP("HKG", "Hong Kong", "HK", 22.32, 114.17),
]

_HE_LINKS: List[Tuple[str, str]] = [
    # West coast ring
    ("SEA", "PAO"), ("PAO", "FMT"), ("FMT", "SJC"), ("SJC", "LAX"),
    ("PAO", "SJC"),
    # Southwest
    ("LAX", "PHX"), ("LAX", "LAS"), ("LAS", "PHX"), ("PHX", "DAL"),
    # Mountain / central
    ("SEA", "DEN"), ("DEN", "KCY"), ("KCY", "CHI"), ("DEN", "DAL"),
    ("DAL", "HOU"), ("HOU", "ATL"), ("DAL", "CHI"),
    # Midwest / east
    ("CHI", "MSP"), ("MSP", "SEA"), ("CHI", "TOR"), ("TOR", "NYC"),
    ("CHI", "NYC"), ("NYC", "ASH"), ("ASH", "ATL"), ("ATL", "MIA"),
    ("MIA", "HOU"),
    # Transatlantic + Europe
    ("NYC", "LON"), ("ASH", "LON"), ("LON", "PAR"), ("LON", "AMS"),
    ("AMS", "FRA"), ("PAR", "ZRH"), ("FRA", "ZRH"), ("PAR", "FRA"),
    # Transpacific
    ("SJC", "HKG"), ("SEA", "HKG"),
]


def hurricane_electric() -> ZooTopology:
    """The 24-PoP HE backbone used by §4.2's emulation."""
    topology = ZooTopology(name="HurricaneElectric", pops=list(_HE_POPS), links=list(_HE_LINKS))
    topology.validate()
    return topology


def parse_gml(text: str) -> ZooTopology:
    """Parse the GML subset Topology Zoo files use.

    Handles ``node [ id N label "X" ... ]`` and ``edge [ source A target
    B ]`` blocks; attributes beyond id/label/Latitude/Longitude/Country
    are ignored.
    """
    tokens = text.replace("[", " [ ").replace("]", " ] ").split()
    i = 0
    pops: List[PoP] = []
    links: List[Tuple[str, str]] = []
    id_to_name: Dict[str, str] = {}
    name = "zoo"

    def parse_block(start: int) -> Tuple[Dict[str, str], int]:
        assert tokens[start] == "["
        fields: Dict[str, str] = {}
        j = start + 1
        while tokens[j] != "]":
            key = tokens[j]
            if tokens[j + 1] == "[":
                _, j = parse_block(j + 1)  # nested: skip
                continue
            value = tokens[j + 1]
            if value.startswith('"'):
                while not value.endswith('"') or len(value) == 1:
                    j += 1
                    value += " " + tokens[j + 1]
                value = value.strip('"')
            fields[key] = value
            j += 2
        return fields, j + 1

    while i < len(tokens):
        token = tokens[i]
        if token == "node" and i + 1 < len(tokens) and tokens[i + 1] == "[":
            fields, i = parse_block(i + 1)
            node_id = fields.get("id", str(len(pops)))
            label = fields.get("label", node_id)
            id_to_name[node_id] = label
            pops.append(
                PoP(
                    name=label,
                    city=label,
                    country=fields.get("Country", ""),
                    latitude=float(fields.get("Latitude", 0.0)),
                    longitude=float(fields.get("Longitude", 0.0)),
                )
            )
        elif token == "edge" and i + 1 < len(tokens) and tokens[i + 1] == "[":
            fields, i = parse_block(i + 1)
            links.append((id_to_name[fields["source"]], id_to_name[fields["target"]]))
        elif token == "label" and not pops and i + 1 < len(tokens):
            name = tokens[i + 1].strip('"')
            i += 2
        else:
            i += 1

    topology = ZooTopology(name=name, pops=pops, links=links)
    return topology
