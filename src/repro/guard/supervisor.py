"""The supervision layer: one object that makes the testbed self-healing.

``Supervisor`` wires the four guard mechanisms into a running
:class:`~repro.core.testbed.Testbed`:

* a :class:`~repro.guard.breaker.CircuitBreaker` per (server, client)
  attachment, fed by the mux's update path and enforced by abrupt session
  teardown + refusal of channel re-provisioning while OPEN;
* a :class:`~repro.guard.quarantine.QuarantineManager` escalating repeated
  safety violations and breaker trips into testbed-wide containment;
* a :class:`~repro.guard.watchdog.Watchdog` probing every mux and
  orchestrating crash/wedge recovery;
* a :class:`~repro.guard.journal.ControlJournal` recording every control
  action write-ahead, replayed by restarted muxes and verified/repaired
  by the watchdog after each restart.

Enforcement actions propagate through both planes: containment withdraws
go through ``Testbed.retract`` so the propagation engine recomputes
outcomes (no stale :class:`~repro.inet.routing.RoutingOutcome` survives a
quarantine), and recovery re-announces go through ``Testbed.announce`` so
the data plane reinstalls exactly the journaled state.

Usage::

    testbed = Testbed.build_default()
    supervisor = testbed.supervise()        # wires + starts the watchdog
    ...                                     # run experiments; faults heal

All scheduling rides the shared deterministic engine: a chaos plan plus a
seed reproduces the identical supervision trace, event for event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from ..net.addr import Prefix
from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .journal import ControlJournal
from .quarantine import QuarantineConfig, QuarantineManager
from .watchdog import Watchdog, WatchdogConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.safety import SafetyDecision
    from ..core.server import PeeringServer
    from ..core.testbed import Testbed

__all__ = ["Supervisor"]


class Supervisor:
    """Breakers + quarantine + watchdog + journal over one testbed."""

    def __init__(
        self,
        testbed: "Testbed",
        breaker: Optional[BreakerConfig] = None,
        quarantine: Optional[QuarantineConfig] = None,
        watchdog: Optional[WatchdogConfig] = None,
        journal: Optional[ControlJournal] = None,
    ) -> None:
        self.testbed = testbed
        self.engine = testbed.engine
        self.events = testbed.events
        self.journal = journal if journal is not None else ControlJournal()
        self.breaker_config = breaker or BreakerConfig()
        self.quarantine = QuarantineManager(self, quarantine)
        self.watchdog = Watchdog(self, watchdog)
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self.started = False
        # Telemetry: supervision activity counters on the testbed registry.
        metrics = testbed.metrics
        self._trip_counter = metrics.counter(
            "peering_guard_breaker_trips_total",
            "Circuit breaker OPEN transitions",
            ("server", "client"),
        )
        self._containment_counter = metrics.counter(
            "peering_guard_containments_total",
            "Quarantine containments enforced",
            ("client",),
        )
        self._release_counter = metrics.counter(
            "peering_guard_releases_total",
            "Quarantine releases (client re-admitted)",
            ("client",),
        )
        self._repair_counter = metrics.counter(
            "peering_guard_repairs_total",
            "Journal divergences healed after mux restart",
            ("server",),
        )

    # -- wiring -------------------------------------------------------------------

    def start(self) -> "Supervisor":
        """Attach to the testbed and begin supervising."""
        if self.started:
            return self
        self.started = True
        self.testbed.guard = self
        self.testbed.journal = self.journal
        for server in self.testbed.servers.values():
            self.adopt_server(server)
        self.watchdog.start()
        self.events.emit(
            "supervisor-started",
            source="guard",
            servers=len(self.testbed.servers),
            severity="info",
        )
        return self

    def adopt_server(self, server: "PeeringServer") -> None:
        """Wire one mux into the supervision layer (also called by
        ``Testbed.add_server`` for servers deployed after :meth:`start`)."""
        server.guard = self
        server.journal = self.journal
        # Shared sequence: audit entries and journal records interleave on
        # one monotonic timeline (the correlation the satellite asks for).
        server.safety.seq_source = self.journal.next_seq
        server.safety.on_violation = self._violation_handler(server)

    def _violation_handler(
        self, server: "PeeringServer"
    ) -> Callable[[str, "SafetyDecision", float], None]:
        site = server.site.name

        def on_violation(client_id: str, decision: "SafetyDecision", now: float) -> None:
            self.quarantine.strike(
                client_id, f"{site}:{decision.verdict.value}", now
            )

        return on_violation

    # -- breaker registry -----------------------------------------------------------

    def breaker_for(self, server: "PeeringServer", client_id: str) -> CircuitBreaker:
        key = (server.site.name, client_id)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.breaker_config, label=f"{server.site.name}/{client_id}"
            )
            self._breakers[key] = breaker
        return breaker

    def breakers(self) -> Dict[Tuple[str, str], CircuitBreaker]:
        return dict(self._breakers)

    # -- admission gates (called from the mux hot paths) ------------------------------

    def is_quarantined(self, client_id: str) -> bool:
        return self.quarantine.is_quarantined(client_id)

    def admit_update(self, server: "PeeringServer", client_id: str, now: float) -> bool:
        """Gate one client UPDATE message (storm detection)."""
        if self.quarantine.is_quarantined(client_id):
            return False
        breaker = self.breaker_for(server, client_id)
        before = breaker.state
        admitted = breaker.admit_update(now)
        self._after_breaker(server, client_id, breaker, before, now)
        return admitted

    def record_flap(self, server: "PeeringServer", client_id: str, now: float) -> bool:
        """Record churn (withdrawal / re-announcement) into the breaker."""
        breaker = self.breaker_for(server, client_id)
        before = breaker.state
        admitted = breaker.record_flap(now)
        self._after_breaker(server, client_id, breaker, before, now)
        return admitted

    def admit_prefix_count(
        self, server: "PeeringServer", client_id: str, count: int, now: float
    ) -> bool:
        """Gate the concurrent-prefix footprint (max-prefix limit)."""
        if self.quarantine.is_quarantined(client_id):
            return False
        breaker = self.breaker_for(server, client_id)
        before = breaker.state
        admitted = breaker.admit_prefix_count(count, now)
        self._after_breaker(server, client_id, breaker, before, now)
        return admitted

    def is_blocked(self, server: "PeeringServer", client_id: str) -> bool:
        """Currently refused at this mux: quarantined or breaker OPEN."""
        if self.quarantine.is_quarantined(client_id):
            return True
        breaker = self._breakers.get((server.site.name, client_id))
        return breaker is not None and breaker.state is BreakerState.OPEN

    def allows_reprovision(self, server: "PeeringServer", client_id: str) -> bool:
        """May this client pull a fresh session channel?  Refused while
        quarantined or while its breaker is OPEN (HALF_OPEN admits the
        re-admit probe)."""
        if self.quarantine.is_quarantined(client_id):
            return False
        breaker = self._breakers.get((server.site.name, client_id))
        return breaker is None or breaker.state is not BreakerState.OPEN

    def allows_connect(self, client_id: str) -> bool:
        return not self.quarantine.is_quarantined(client_id)

    # -- breaker transitions -----------------------------------------------------------

    def _after_breaker(
        self,
        server: "PeeringServer",
        client_id: str,
        breaker: CircuitBreaker,
        before: BreakerState,
        now: float,
    ) -> None:
        if breaker.state is BreakerState.OPEN and before is not BreakerState.OPEN:
            self._on_trip(server, client_id, breaker, now)

    def _on_trip(
        self,
        server: "PeeringServer",
        client_id: str,
        breaker: CircuitBreaker,
        now: float,
    ) -> None:
        cooldown = breaker.half_open_at - now
        self._trip_counter.labels(server.site.name, client_id).inc()
        self.events.emit(
            "breaker-open",
            source=f"{server.site.name}/{client_id}",
            reason=breaker.trip_reason,
            trips=breaker.trips,
            cooldown=round(cooldown, 3),
            severity="critical",
        )
        # Tear the session(s) down abruptly; reprovision is refused while
        # OPEN, so the client's backoff ladder keeps climbing.
        server.drop_client_sessions(client_id)
        self.engine.schedule(
            cooldown,
            lambda: self._half_open(server, client_id),
            label=f"breaker-half-open:{server.site.name}:{client_id}",
        )
        self.quarantine.strike(client_id, f"breaker: {breaker.trip_reason}", now)

    def _half_open(self, server: "PeeringServer", client_id: str) -> None:
        breaker = self._breakers.get((server.site.name, client_id))
        if breaker is None or breaker.state is not BreakerState.OPEN:
            return
        now = self.engine.now
        if now + 1e-9 < breaker.half_open_at:
            return  # superseded by a later trip's longer cooldown
        breaker.half_open(now)
        self.events.emit(
            "breaker-half-open",
            source=f"{server.site.name}/{client_id}",
            severity="warning",
        )
        marker = len(breaker.transitions)
        self.engine.schedule(
            breaker.config.probe_window,
            lambda: self._probe_close(server, client_id, marker),
            label=f"breaker-close:{server.site.name}:{client_id}",
        )

    def _probe_close(self, server: "PeeringServer", client_id: str, marker: int) -> None:
        breaker = self._breakers.get((server.site.name, client_id))
        if breaker is None or breaker.state is not BreakerState.HALF_OPEN:
            return
        if len(breaker.transitions) != marker:
            return  # re-tripped and half-opened again since; stale probe
        breaker.close(self.engine.now)
        self.events.emit(
            "breaker-closed",
            source=f"{server.site.name}/{client_id}",
            severity="info",
        )

    # -- quarantine enforcement ----------------------------------------------------------

    def contain_client(self, client_id: str, reason: str) -> int:
        """Withdraw the client's announcements everywhere and tear its
        sessions down.  Returns the number of withdrawn announcements.
        Journaled as one ``quarantine`` record (write-ahead: appended
        before the registry mutations it describes)."""
        now = self.engine.now
        self.journal.append(now, "quarantine", client=client_id)
        self._containment_counter.labels(client_id).inc()
        withdrawn = 0
        for name in sorted(self.testbed.servers):
            server = self.testbed.servers[name]
            attachment = server._clients.get(client_id)
            if attachment is None:
                continue
            server.drop_client_sessions(client_id)
            for prefix in list(attachment.announcements):
                attachment.announcements.pop(prefix, None)
                # record=False: the quarantine record subsumes these in replay.
                self.testbed.retract(server, client_id, prefix, record=False)
                withdrawn += 1
        return withdrawn

    def readmit_client(self, client_id: str) -> None:
        """Quarantine release: unblock and clear per-client safety state
        (rate-limit windows, flap-damping penalties, breaker ladders)."""
        now = self.engine.now
        self.journal.append(now, "release", client=client_id)
        self._release_counter.labels(client_id).inc()
        for server in self.testbed.servers.values():
            server.safety.reset_client(client_id)
        for (_site, cid), breaker in self._breakers.items():
            if cid == client_id:
                breaker.reset(now)

    # -- watchdog support -----------------------------------------------------------------

    def repair_server(self, server: "PeeringServer") -> int:
        """Post-restart verification: re-issue any journaled announcement
        the mux did not rebuild.  Normally zero (restart replays the
        journal itself); nonzero means divergence was found and healed."""
        from ..core.server import spec_from_tuple

        want = self.journal.server_state(server.site.name)
        repaired = 0
        announced = self.testbed._announced
        for client_id in sorted(want):
            if self.quarantine.is_quarantined(client_id):
                continue
            attachment = server._clients.get(client_id)
            if attachment is None:
                continue
            for prefix_str in sorted(want[client_id]):
                prefix = Prefix(prefix_str)
                spec = spec_from_tuple(want[client_id][prefix_str])
                registered = server.site.name in announced.get(prefix, {})
                if attachment.announcements.get(prefix) == spec and registered:
                    continue
                attachment.announcements[prefix] = spec
                self.testbed.announce(server, client_id, prefix, spec, record=False)
                repaired += 1
        if repaired:
            self._repair_counter.labels(server.site.name).inc(repaired)
        return repaired

    # -- reporting ----------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        open_breakers: List[str] = [
            f"{site}/{client}"
            for (site, client), breaker in sorted(self._breakers.items())
            if breaker.state is not BreakerState.CLOSED
        ]
        return {
            "breakers": len(self._breakers),
            "breakers_not_closed": open_breakers,
            "quarantine": self.quarantine.stats(),
            "watchdog": self.watchdog.stats(),
            "journal": self.journal.stats(),
        }
