"""Server watchdog: liveness probes + automated mux recovery.

``examples/mux_failover.py`` recovers a crashed mux by hand: the operator
(or the script) calls ``restart()`` at the right moment and resilient
clients slowly pull fresh channels.  The watchdog automates the whole
choreography:

1. **probe** every :class:`~repro.core.server.PeeringServer` on a fixed
   interval (``PeeringServer.probe()`` — false for a dead *or wedged*
   process);
2. a mux that fails ``wedged_after`` consecutive probes while claiming to
   be alive is declared **wedged** and force-crashed (the moral
   equivalent of ``kill -9`` on a hung process);
3. a dead mux is **restarted** after ``restart_delay`` (modelling
   reboot/reschedule time).  ``PeeringServer.restart()`` consults the
   control journal, so announcements return even for clients whose BGP
   sessions are still backing off;
4. after restart the watchdog **repairs divergence**: any journaled
   announcement the mux failed to rebuild (e.g. state written while the
   mux was already sick) is re-issued via ``reconnect_endpoint``-style
   re-provisioning of the control path — the testbed converges back to
   exactly the journal's state with zero manual calls.

Every decision lands on the event bus (``watchdog-*`` events), so chaos
tests assert the recovery sequence deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.server import PeeringServer
    from .supervisor import Supervisor

__all__ = ["WatchdogConfig", "Watchdog"]


@dataclass(frozen=True)
class WatchdogConfig:
    probe_interval: float = 5.0
    wedged_after: int = 2  # consecutive failed probes of an "alive" mux
    restart_delay: float = 10.0  # crash detection -> restart (reboot time)
    auto_restart: bool = True

    def __post_init__(self) -> None:
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if self.wedged_after < 1:
            raise ValueError("wedged_after must be >= 1")


class Watchdog:
    """Periodic liveness sweep over all servers of one testbed."""

    def __init__(
        self, supervisor: "Supervisor", config: Optional[WatchdogConfig] = None
    ) -> None:
        self.supervisor = supervisor
        self.config = config or WatchdogConfig()
        self.running = False
        self.probes = 0
        self.restarts = 0
        self.kills = 0  # wedged muxes force-crashed
        self._failed_probes: Dict[str, int] = {}
        self._restart_pending: Dict[str, float] = {}  # server -> due time
        self.log: List[Tuple[float, str, str]] = []  # (time, action, server)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._schedule_next()

    def stop(self) -> None:
        self.running = False

    def _schedule_next(self) -> None:
        self.supervisor.engine.schedule(
            self.config.probe_interval, self._round, label="watchdog-probe"
        )

    # -- the probe round -----------------------------------------------------------

    def _round(self) -> None:
        if not self.running:
            return
        self.probe_all()
        self._schedule_next()

    def probe_all(self) -> None:
        """One sweep: probe every server, escalate failures."""
        now = self.supervisor.engine.now
        for name in sorted(self.supervisor.testbed.servers):
            server = self.supervisor.testbed.servers[name]
            self.probes += 1
            if server.probe():
                self._failed_probes.pop(name, None)
                continue
            if server.alive:
                # Claims alive but does not answer: wedged process.
                failures = self._failed_probes.get(name, 0) + 1
                self._failed_probes[name] = failures
                if failures >= self.config.wedged_after:
                    self._kill_wedged(server, now)
            else:
                self._handle_dead(server, now)

    def _kill_wedged(self, server: "PeeringServer", now: float) -> None:
        name = server.site.name
        self.kills += 1
        self._failed_probes.pop(name, None)
        self.log.append((now, "kill-wedged", name))
        self.supervisor.events.emit(
            "watchdog-wedged", source=name, severity="critical"
        )
        # kill -9: the process dies hard; announcement state is rebuilt
        # from the journal on restart, not from process memory.
        server.crash(hard=True)
        self._handle_dead(server, now)

    def _handle_dead(self, server: "PeeringServer", now: float) -> None:
        name = server.site.name
        if not self.config.auto_restart or name in self._restart_pending:
            return
        due = now + self.config.restart_delay
        self._restart_pending[name] = due
        self.log.append((now, "restart-scheduled", name))
        self.supervisor.events.emit(
            "watchdog-crash-detected",
            source=name,
            restart_in=self.config.restart_delay,
            severity="warning",
        )
        self.supervisor.engine.schedule(
            self.config.restart_delay,
            lambda: self._restart(server),
            label=f"watchdog-restart:{name}",
        )

    def _restart(self, server: "PeeringServer") -> None:
        name = server.site.name
        self._restart_pending.pop(name, None)
        if server.alive:
            return  # someone beat us to it
        now = self.supervisor.engine.now
        self.restarts += 1
        self.log.append((now, "restart", name))
        server.restart()
        repaired = self.supervisor.repair_server(server)
        self.supervisor.events.emit(
            "watchdog-restarted",
            source=name,
            repaired_announcements=repaired,
            severity="info",
        )

    # -- reporting -------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "running": self.running,
            "probes": self.probes,
            "restarts": self.restarts,
            "kills": self.kills,
            "pending": sorted(self._restart_pending),
        }
