"""Per-client circuit breakers at a mux.

The admission-time :class:`~repro.core.safety.SafetyEnforcer` answers "is
this one announcement legal?".  A breaker answers the *runtime* question
the paper's §3 safety story needs: "is this client's aggregate behaviour
— message rate, flap churn, table footprint — something we should keep
exposing real peers to?".

State machine (classic breaker, re-admit probes instead of test requests):

::

    CLOSED --violation--> OPEN --cooldown--> HALF_OPEN --clean probe--> CLOSED
                           ^                     |
                           +-----violation-------+   (cooldown doubles)

* **CLOSED** — updates admitted; sliding windows track update rate and
  flap (withdrawal) rate; the concurrent-prefix count is checked against
  ``max_prefixes``.  Any threshold crossing trips the breaker.
* **OPEN** — every update is refused; the supervisor tears the client's
  sessions down and refuses channel re-provisioning.  After an
  exponentially growing cooldown (``cooldown · 2^(trips-1)``, capped at
  ``cooldown_max``) the breaker half-opens.
* **HALF_OPEN** — the client may reconnect and send again (the re-admit
  probe).  A further violation re-trips immediately (cooldown doubles);
  surviving ``probe_window`` seconds without one closes the breaker and
  resets the trip ladder.

The breaker is a pure state machine over the engine clock — no timers of
its own.  The :class:`~repro.guard.supervisor.Supervisor` owns scheduling
(half-open and close probes) and enforcement (session teardown).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, Dict, List, Optional, Tuple

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker"]


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds are per client per server (one breaker guards one
    client's attachment at one mux)."""

    window_seconds: float = 30.0
    max_updates_per_window: int = 200  # raw UPDATE messages (storm)
    max_flaps_per_window: int = 12  # withdrawals / re-announcements (churn)
    max_prefixes: int = 64  # concurrent announced prefixes
    cooldown: float = 30.0  # OPEN -> HALF_OPEN base delay
    cooldown_max: float = 900.0
    probe_window: float = 30.0  # clean HALF_OPEN time to re-close

    def __post_init__(self) -> None:
        if self.window_seconds <= 0 or self.cooldown <= 0 or self.probe_window <= 0:
            raise ValueError("breaker windows must be positive")
        if min(self.max_updates_per_window, self.max_flaps_per_window, self.max_prefixes) < 1:
            raise ValueError("breaker thresholds must be >= 1")


class CircuitBreaker:
    """Sliding-window behaviour tracking + the trip/half-open/close FSM."""

    def __init__(self, config: Optional[BreakerConfig] = None, label: str = "") -> None:
        self.config = config or BreakerConfig()
        self.label = label
        self.state = BreakerState.CLOSED
        self.trips = 0
        self.tripped_at = 0.0
        self.trip_reason = ""
        self.half_open_at = 0.0
        self.transitions: List[Tuple[float, str, str]] = []  # (time, state, reason)
        self._updates: Deque[float] = deque()
        self._flaps: Deque[float] = deque()

    # -- window bookkeeping ----------------------------------------------------

    def _expire(self, window: Deque[float], now: float) -> None:
        horizon = now - self.config.window_seconds
        while window and window[0] <= horizon:
            window.popleft()

    def update_rate(self, now: float) -> int:
        self._expire(self._updates, now)
        return len(self._updates)

    def flap_rate(self, now: float) -> int:
        self._expire(self._flaps, now)
        return len(self._flaps)

    # -- admission -------------------------------------------------------------

    def admit_update(self, now: float) -> bool:
        """Record one client UPDATE; False means refuse (breaker OPEN).

        A violation while HALF_OPEN (the probe failing) re-trips.
        """
        if self.state is BreakerState.OPEN:
            return False
        self._updates.append(now)
        if self.update_rate(now) > self.config.max_updates_per_window:
            self.trip(
                now,
                f"update storm: >{self.config.max_updates_per_window} msgs "
                f"in {self.config.window_seconds:g}s",
            )
            return False
        return True

    def record_flap(self, now: float) -> bool:
        """Record churn (a withdrawal or re-announcement); False = tripped."""
        if self.state is BreakerState.OPEN:
            return False
        self._flaps.append(now)
        if self.flap_rate(now) > self.config.max_flaps_per_window:
            self.trip(
                now,
                f"flap rate: >{self.config.max_flaps_per_window} "
                f"in {self.config.window_seconds:g}s",
            )
            return False
        return True

    def admit_prefix_count(self, count: int, now: float) -> bool:
        """Check the concurrent-prefix footprint (max-prefix limit)."""
        if self.state is BreakerState.OPEN:
            return False
        if count > self.config.max_prefixes:
            self.trip(now, f"max-prefix: {count} > {self.config.max_prefixes}")
            return False
        return True

    # -- state transitions -------------------------------------------------------

    def trip(self, now: float, reason: str) -> float:
        """To OPEN.  Returns the cooldown before half-open is due."""
        self.trips += 1
        self.state = BreakerState.OPEN
        self.tripped_at = now
        self.trip_reason = reason
        self._updates.clear()
        self._flaps.clear()
        cooldown = min(
            self.config.cooldown_max,
            self.config.cooldown * (2 ** (self.trips - 1)),
        )
        self.half_open_at = now + cooldown
        self.transitions.append((now, self.state.value, reason))
        return cooldown

    def half_open(self, now: float) -> None:
        """Cooldown elapsed: admit re-admit probes."""
        if self.state is not BreakerState.OPEN:
            return
        self.state = BreakerState.HALF_OPEN
        self._updates.clear()
        self._flaps.clear()
        self.transitions.append((now, self.state.value, "cooldown elapsed"))

    def close(self, now: float) -> None:
        """A clean probe window: back to CLOSED, trip ladder reset."""
        if self.state is not BreakerState.HALF_OPEN:
            return
        self.state = BreakerState.CLOSED
        self.trips = 0
        self.transitions.append((now, self.state.value, "probe clean"))

    def reset(self, now: float) -> None:
        """Administrative reset (quarantine release)."""
        self.state = BreakerState.CLOSED
        self.trips = 0
        self._updates.clear()
        self._flaps.clear()
        self.transitions.append((now, self.state.value, "reset"))

    # -- reporting ----------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "state": self.state.value,
            "trips": self.trips,
            "trip_reason": self.trip_reason,
            "transitions": len(self.transitions),
        }
