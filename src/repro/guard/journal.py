"""Crash-consistent control journaling.

The testbed's authoritative control state — which client announces which
prefix from which server, who is quarantined — lives in mux process
memory.  A hard crash loses it; PR 1's recovery path papered over that by
*retaining* process memory across :meth:`~repro.core.server.PeeringServer.crash`,
which models a polite reboot, not a crash.

:class:`ControlJournal` is the production answer: an append-only
write-ahead log of control actions (connect / announce / withdraw /
disconnect / quarantine / release), each carrying a **monotonic sequence
number** shared with the safety audit log so operators can correlate "the
journal says client X announced P at seq 812" with "the enforcer blocked
X at seq 813".

Write-ahead discipline (the crash-consistency invariant):

* a record is appended **after** validation but **before** the state
  mutation it describes — so a crash between append and apply is healed
  by replay, and a rejected action never reaches the journal;
* replay is **idempotent**: applying a record to state that already
  reflects it is a no-op (announce overwrites, withdraw of an absent
  prefix is ignored);
* :meth:`snapshot` compacts the log into a state snapshot plus an empty
  tail; **replay(snapshot + tail) == replay(full log)** for every prefix
  of the action stream (asserted by ``tests/test_guard.py``).

The journal is owned by the supervisor (conceptually: durable storage
outside the mux process), so a mux that crashes *hard* — losing its
in-memory announcement maps — deterministically rebuilds
``announcements_for()`` from :meth:`server_state` on restart, without
waiting for any client to reconnect and re-announce.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

__all__ = ["JournalRecord", "JournalSnapshot", "ControlJournal"]

# Serialized AnnouncementSpec: (peers or None, prepend, poison).
SpecTuple = Tuple[Optional[Tuple[int, ...]], int, Tuple[int, ...]]

# server -> client -> prefix(str) -> spec
ServerState = Dict[str, Dict[str, Dict[str, SpecTuple]]]


@dataclass(frozen=True)
class JournalRecord:
    """One control action.  ``seq`` is globally monotonic."""

    seq: int
    time: float
    action: str  # connect | disconnect | announce | withdraw | quarantine | release
    server: str = ""  # empty for testbed-wide actions (quarantine/release)
    client: str = ""
    prefix: str = ""
    spec: Optional[SpecTuple] = None

    def to_line(self) -> str:
        """The wire form: one JSON object per line (the WAL file format)."""
        body: Dict[str, object] = {
            "seq": self.seq,
            "time": self.time,
            "action": self.action,
        }
        if self.server:
            body["server"] = self.server
        if self.client:
            body["client"] = self.client
        if self.prefix:
            body["prefix"] = self.prefix
        if self.spec is not None:
            peers, prepend, poison = self.spec
            body["spec"] = {
                "peers": list(peers) if peers is not None else None,
                "prepend": prepend,
                "poison": list(poison),
            }
        return json.dumps(body, sort_keys=True)

    @classmethod
    def from_line(cls, line: str) -> "JournalRecord":
        body = json.loads(line)
        spec: Optional[SpecTuple] = None
        if "spec" in body:
            raw = body["spec"]
            peers = tuple(raw["peers"]) if raw["peers"] is not None else None
            spec = (peers, int(raw["prepend"]), tuple(raw["poison"]))
        return cls(
            seq=int(body["seq"]),
            time=float(body["time"]),
            action=str(body["action"]),
            server=str(body.get("server", "")),
            client=str(body.get("client", "")),
            prefix=str(body.get("prefix", "")),
            spec=spec,
        )


@dataclass
class JournalSnapshot:
    """Compacted journal state as of ``seq``."""

    seq: int
    time: float
    announcements: ServerState = field(default_factory=dict)
    attached: Dict[str, Tuple[str, ...]] = field(default_factory=dict)  # server -> clients
    quarantined: Tuple[str, ...] = ()


class ControlJournal:
    """Append-only control WAL with snapshot + deterministic replay."""

    def __init__(self, seq_start: int = 0) -> None:
        self._seq = itertools.count(seq_start)
        self.records: List[JournalRecord] = []
        self.snapshot_state: Optional[JournalSnapshot] = None
        self.appended = 0  # lifetime count, survives compaction

    # -- sequencing ----------------------------------------------------------

    def next_seq(self) -> int:
        """The shared monotonic sequence.  The safety audit log draws from
        the same source when wired by the supervisor, so audit entries and
        journal records interleave on one timeline."""
        return next(self._seq)

    # -- appending -----------------------------------------------------------

    def append(
        self,
        time: float,
        action: str,
        server: str = "",
        client: str = "",
        prefix: str = "",
        spec: Optional[SpecTuple] = None,
    ) -> JournalRecord:
        record = JournalRecord(
            seq=self.next_seq(),
            time=time,
            action=action,
            server=server,
            client=client,
            prefix=prefix,
            spec=spec,
        )
        self.records.append(record)
        self.appended += 1
        return record

    def __len__(self) -> int:
        return len(self.records)

    # -- replay --------------------------------------------------------------

    @staticmethod
    def _apply(
        state: ServerState,
        attached: Dict[str, Set[str]],
        quarantined: Set[str],
        record: JournalRecord,
    ) -> None:
        """Idempotent application of one record to accumulated state."""
        action = record.action
        if action == "connect":
            attached.setdefault(record.server, set()).add(record.client)
            state.setdefault(record.server, {}).setdefault(record.client, {})
        elif action == "disconnect":
            attached.get(record.server, set()).discard(record.client)
            state.get(record.server, {}).pop(record.client, None)
        elif action == "announce":
            assert record.spec is not None
            state.setdefault(record.server, {}).setdefault(record.client, {})[
                record.prefix
            ] = record.spec
        elif action == "withdraw":
            state.get(record.server, {}).get(record.client, {}).pop(
                record.prefix, None
            )
        elif action == "quarantine":
            quarantined.add(record.client)
            for clients in state.values():
                clients.get(record.client, {}).clear()
        elif action == "release":
            quarantined.discard(record.client)
        # Unknown actions are ignored: forward-compatible replay.

    def replay(self) -> JournalSnapshot:
        """Deterministically fold snapshot + tail into current state."""
        state: ServerState = {}
        attached: Dict[str, Set[str]] = {}
        quarantined: Set[str] = set()
        seq = -1
        time = 0.0
        base = self.snapshot_state
        if base is not None:
            seq, time = base.seq, base.time
            for server, clients in base.announcements.items():
                state[server] = {c: dict(p) for c, p in clients.items()}
            for server, clients in base.attached.items():
                attached[server] = set(clients)
            quarantined = set(base.quarantined)
        for record in self.records:
            self._apply(state, attached, quarantined, record)
            seq, time = record.seq, record.time
        return JournalSnapshot(
            seq=seq,
            time=time,
            announcements=state,
            attached={s: tuple(sorted(c)) for s, c in attached.items()},
            quarantined=tuple(sorted(quarantined)),
        )

    def server_state(self, server: str) -> Dict[str, Dict[str, SpecTuple]]:
        """Replayed announcement state for one server:
        ``{client: {prefix: spec}}`` — what a restarted mux rebuilds."""
        return {
            client: dict(prefixes)
            for client, prefixes in self.replay().announcements.get(server, {}).items()
        }

    def quarantined_clients(self) -> Tuple[str, ...]:
        return self.replay().quarantined

    # -- compaction ----------------------------------------------------------

    def snapshot(self) -> JournalSnapshot:
        """Compact: fold every record into the snapshot and truncate the
        tail.  Replay before and after compaction is identical."""
        snap = self.replay()
        self.snapshot_state = snap
        self.records = []
        return snap

    # -- persistence-shaped helpers (tested round-trip) -----------------------

    def dump_lines(self) -> List[str]:
        return [record.to_line() for record in self.records]

    @classmethod
    def load_lines(cls, lines: Iterator[str]) -> "ControlJournal":
        journal = cls()
        for line in lines:
            if not line.strip():
                continue
            record = JournalRecord.from_line(line)
            journal.records.append(record)
            journal.appended += 1
        if journal.records:
            journal._seq = itertools.count(journal.records[-1].seq + 1)
        return journal

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "records": len(self.records),
            "appended": self.appended,
            "snapshot_seq": -1 if self.snapshot_state is None else self.snapshot_state.seq,
        }
