"""Client quarantine: testbed-wide containment of misbehaving clients.

A circuit breaker is local — one client at one mux.  Quarantine is the
escalation: a client that keeps violating safety rules or tripping
breakers is cut off from the **whole** testbed:

* its announcements are withdrawn at every server (so no real peer keeps
  hearing routes from a client the testbed no longer trusts);
* new announcements, new attachments, and channel re-provisioning are all
  refused while quarantined;
* the event bus carries the escalation trail — ``client-strike``
  (warning) → ``client-quarantined`` (critical) → ``client-released``
  (info) — so operators watch the lifecycle in one ordered log;
* release is automatic on a timed backoff schedule: each repeat offense
  doubles the quarantine (``base · 2^(offenses-1)``, capped), and release
  clears the per-client safety state (rate-limit window, flap-damping
  penalties, breaker trip ladders) via
  :meth:`~repro.core.safety.SafetyEnforcer.reset_client` — a released
  client starts from a clean slate rather than tripping instantly on
  decayed history.

Strikes decay: only strikes inside ``strike_window`` count toward the
``strike_threshold``.  Quarantine actions are journaled (action
``quarantine`` / ``release``), so a crashed-and-restarted control plane
rebuilds the quarantine set too.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .supervisor import Supervisor

__all__ = ["QuarantineConfig", "QuarantineManager"]


@dataclass(frozen=True)
class QuarantineConfig:
    strike_threshold: int = 3  # strikes in window before quarantine
    strike_window: float = 300.0
    base_duration: float = 120.0  # first quarantine length
    max_duration: float = 3600.0

    def __post_init__(self) -> None:
        if self.strike_threshold < 1:
            raise ValueError("strike_threshold must be >= 1")
        if self.strike_window <= 0 or self.base_duration <= 0:
            raise ValueError("quarantine windows must be positive")


class QuarantineManager:
    """Tracks strikes, owns the blocked set, schedules timed release."""

    def __init__(
        self, supervisor: "Supervisor", config: Optional[QuarantineConfig] = None
    ) -> None:
        self.supervisor = supervisor
        self.config = config or QuarantineConfig()
        self._strikes: Dict[str, Deque[Tuple[float, str]]] = {}
        self._blocked: Dict[str, float] = {}  # client -> release due time
        self._offenses: Dict[str, int] = {}  # lifetime quarantine count
        self.history: List[Tuple[float, str, str, str]] = []  # (t, event, client, why)

    # -- queries ---------------------------------------------------------------

    def is_quarantined(self, client_id: str) -> bool:
        return client_id in self._blocked

    def quarantined(self) -> List[str]:
        return sorted(self._blocked)

    def release_due(self, client_id: str) -> Optional[float]:
        return self._blocked.get(client_id)

    def strike_count(self, client_id: str, now: float) -> int:
        window = self._strikes.get(client_id)
        if window is None:
            return 0
        horizon = now - self.config.strike_window
        while window and window[0][0] <= horizon:
            window.popleft()
        return len(window)

    def offenses(self, client_id: str) -> int:
        return self._offenses.get(client_id, 0)

    # -- strikes ---------------------------------------------------------------

    def strike(self, client_id: str, reason: str, now: float) -> bool:
        """One offense (safety violation / breaker trip).  Returns True if
        this strike pushed the client into quarantine."""
        if client_id in self._blocked:
            return False  # already contained
        self._strikes.setdefault(client_id, deque()).append((now, reason))
        count = self.strike_count(client_id, now)
        self.history.append((now, "strike", client_id, reason))
        self.supervisor.events.emit(
            "client-strike",
            source=client_id,
            reason=reason,
            strikes=count,
            threshold=self.config.strike_threshold,
            severity="warning",
        )
        if count >= self.config.strike_threshold:
            self.quarantine(client_id, f"{count} strikes: {reason}", now)
            return True
        return False

    # -- quarantine lifecycle ----------------------------------------------------

    def duration_for(self, client_id: str) -> float:
        """Exponential backoff over lifetime offenses."""
        offenses = self._offenses.get(client_id, 0)
        return min(
            self.config.max_duration,
            self.config.base_duration * (2 ** max(0, offenses - 1)),
        )

    def quarantine(self, client_id: str, reason: str, now: float) -> float:
        """Contain the client everywhere; returns the release delay."""
        if client_id in self._blocked:
            return self._blocked[client_id] - now
        self._offenses[client_id] = self._offenses.get(client_id, 0) + 1
        duration = self.duration_for(client_id)
        due = now + duration
        self._blocked[client_id] = due
        self._strikes.pop(client_id, None)
        self.history.append((now, "quarantine", client_id, reason))
        self.supervisor.contain_client(client_id, reason)
        self.supervisor.events.emit(
            "client-quarantined",
            source=client_id,
            reason=reason,
            duration=duration,
            offense=self._offenses[client_id],
            severity="critical",
        )
        self.supervisor.engine.schedule(
            duration,
            lambda: self._timed_release(client_id),
            label=f"quarantine-release:{client_id}",
        )
        return duration

    def _timed_release(self, client_id: str) -> None:
        due = self._blocked.get(client_id)
        if due is None:
            return  # released manually in the meantime
        now = self.supervisor.engine.now
        if now + 1e-9 < due:
            return  # superseded by a later quarantine
        self.release(client_id, now)

    def release(self, client_id: str, now: float) -> None:
        """Re-admit: unblock and wipe the client's safety history."""
        if self._blocked.pop(client_id, None) is None:
            return
        self.history.append((now, "release", client_id, "backoff elapsed"))
        self.supervisor.readmit_client(client_id)
        self.supervisor.events.emit(
            "client-released",
            source=client_id,
            offense=self._offenses.get(client_id, 0),
            severity="info",
        )

    # -- reporting ----------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "quarantined": self.quarantined(),
            "offenses": dict(sorted(self._offenses.items())),
            "history": len(self.history),
        }
