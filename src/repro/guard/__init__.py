"""repro.guard — the supervision layer (watchdog, breakers, quarantine, journal).

The testbed's self-healing machinery: per-session circuit breakers with
exponential re-admit probes, a testbed-wide client quarantine manager, a
server watchdog that detects crashed/wedged muxes and orchestrates
restart + repair, and a crash-consistent control journal that lets a
restarted mux rebuild its announcement state deterministically.

Entry point: ``Testbed.supervise()`` (or construct a
:class:`Supervisor` directly and call :meth:`Supervisor.start`).
"""

from .breaker import BreakerConfig, BreakerState, CircuitBreaker
from .journal import ControlJournal, JournalRecord, JournalSnapshot
from .quarantine import QuarantineConfig, QuarantineManager
from .supervisor import Supervisor
from .watchdog import Watchdog, WatchdogConfig

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "ControlJournal",
    "JournalRecord",
    "JournalSnapshot",
    "QuarantineConfig",
    "QuarantineManager",
    "Supervisor",
    "Watchdog",
    "WatchdogConfig",
]
