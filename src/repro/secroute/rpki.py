"""RPKI origin validation: ROAs, the registry, and RFC 6811 semantics.

The testbed-side safety layer (:mod:`repro.core.safety`) can only protect
the Internet *from the testbed*; it does nothing for the simulated
ecosystem itself.  This module is the substrate's half of the story: a
Route Origin Authorization database with covering-ROA lookup over the
prefix trie, and the RFC 6811 validation outcome
(:class:`ValidationState`) for any ``(prefix, origin AS)`` pair.

RFC 6811 in one paragraph: collect every ROA whose prefix *covers* the
announced prefix.  No covering ROA → **NotFound**.  At least one covering
ROA whose ASN equals the announced origin, whose maxLength admits the
announced length, and whose ASN is not AS0 → **Valid**.  Covering ROAs
exist but none matches → **Invalid**.  An AS0 ROA (RFC 7607/6483) can
therefore only ever make announcements Invalid — it is how an address
holder says "nothing originates this space".

The registry is shared by both sides of the reproduction: the
propagation-level ROV deployment in :mod:`repro.secroute.policy` and the
testbed's own announcement vetting in :mod:`repro.core.safety`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from ..net.addr import Prefix
from ..net.trie import PrefixTrie

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..telemetry.metrics import CounterChild, MetricsRegistry

__all__ = ["ValidationState", "Roa", "RoaRegistry"]

# Instance serials so two registries never share a cache fingerprint.
_REGISTRY_SERIALS = itertools.count(1)


class ValidationState(Enum):
    """RFC 6811 origin-validation outcome."""

    VALID = "valid"
    NOT_FOUND = "not-found"
    INVALID = "invalid"

    @property
    def rank(self) -> int:
        """Decision-process preference: lower is better (RFC 8481-style
        valid > not-found > invalid)."""
        return _RANK[self]

    def __str__(self) -> str:
        return self.value


_RANK = {
    ValidationState.VALID: 0,
    ValidationState.NOT_FOUND: 1,
    ValidationState.INVALID: 2,
}


@dataclass(frozen=True)
class Roa:
    """One Route Origin Authorization (RFC 6482/9582).

    ``max_length`` defaults to the ROA prefix's own length — the
    conservative form registries recommend.  ``asn=0`` is the AS0 ROA:
    it matches no real origin, so it can only invalidate.
    """

    prefix: Prefix
    asn: int
    max_length: Optional[int] = None

    def __post_init__(self) -> None:
        if self.asn < 0:
            raise ValueError(f"ROA ASN must be >= 0, got {self.asn}")
        if self.max_length is not None and not (
            self.prefix.length <= self.max_length <= self.prefix.bits
        ):
            raise ValueError(
                f"maxLength {self.max_length} outside "
                f"[{self.prefix.length}, {self.prefix.bits}] for {self.prefix}"
            )

    @property
    def effective_max_length(self) -> int:
        return self.prefix.length if self.max_length is None else self.max_length

    def covers(self, prefix: Prefix) -> bool:
        return self.prefix.contains(prefix)

    def permits(self, prefix: Prefix, origin_asn: int) -> bool:
        """Does this ROA make ``(prefix, origin)`` Valid?  AS0 never does."""
        return (
            self.asn != 0
            and self.asn == origin_asn
            and self.covers(prefix)
            and prefix.length <= self.effective_max_length
        )

    def __str__(self) -> str:
        return f"ROA({self.prefix}, AS{self.asn}, maxLength={self.effective_max_length})"


class RoaRegistry:
    """The validated ROA payload set, indexed for covering-ROA lookup.

    Backed by one :class:`~repro.net.trie.PrefixTrie` per address family
    so :meth:`covering_roas` is a single trie ancestry walk.  A version
    counter advances on every mutation; ``fingerprint()`` keys outcome
    caches so a ROA change invalidates anything computed under the old
    payload set (satisfying the same staleness contract the propagation
    engine has with the graph's version counter).
    """

    def __init__(self, roas: Tuple[Roa, ...] = ()) -> None:
        self._tries: Dict[int, PrefixTrie[List[Roa]]] = {
            4: PrefixTrie(4),
            6: PrefixTrie(6),
        }
        self._count = 0
        self._version = 0
        self._serial = next(_REGISTRY_SERIALS)
        self._verdict_children: Dict[str, "CounterChild"] = {}
        for roa in roas:
            self.add(roa)

    @property
    def version(self) -> int:
        return self._version

    def fingerprint(self) -> Tuple[int, int]:
        """Hashable identity of this registry's current contents."""
        return (self._serial, self._version)

    # -- payload maintenance ---------------------------------------------------

    def add(self, roa: Roa) -> None:
        trie = self._tries[roa.prefix.version]
        bucket = trie.get(roa.prefix)
        if bucket is None:
            trie.insert(roa.prefix, [roa])
        elif roa not in bucket:
            bucket.append(roa)
        else:
            return  # duplicate payload; no version bump
        self._count += 1
        self._version += 1

    def remove(self, roa: Roa) -> None:
        trie = self._tries[roa.prefix.version]
        bucket = trie.get(roa.prefix)
        if bucket is None or roa not in bucket:
            raise KeyError(str(roa))
        bucket.remove(roa)
        if not bucket:
            trie.remove(roa.prefix)
        self._count -= 1
        self._version += 1

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Roa]:
        for version in (4, 6):
            for _prefix, bucket in self._tries[version].items():
                yield from bucket

    # -- validation ------------------------------------------------------------

    def covering_roas(self, prefix: Prefix) -> List[Roa]:
        """Every ROA whose prefix covers ``prefix`` (shortest first)."""
        out: List[Roa] = []
        for _covering, bucket in self._tries[prefix.version].covering(prefix):
            out.extend(bucket)
        return out

    def validate(self, prefix: Prefix, origin_asn: int) -> ValidationState:
        """RFC 6811 origin validation of ``(prefix, origin_asn)``."""
        covering = self.covering_roas(prefix)
        if not covering:
            state = ValidationState.NOT_FOUND
        elif any(roa.permits(prefix, origin_asn) for roa in covering):
            state = ValidationState.VALID
        else:
            state = ValidationState.INVALID
        child = self._verdict_children.get(state.value)
        if child is not None:
            child.inc()
        return state

    # -- telemetry -------------------------------------------------------------

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Count every validation as
        ``peering_secroute_rov_verdicts_total{verdict=...}``."""
        counter = metrics.counter(
            "peering_secroute_rov_verdicts_total",
            "RFC 6811 origin-validation outcomes by verdict",
            ("verdict",),
        )
        self._verdict_children = {
            state.value: counter.labels(state.value) for state in ValidationState
        }
