"""RFC 5575 FlowSpec: traffic-filtering rule distribution with validated
installation and graceful degradation.

RPKI and Peerlock (the rest of this package) defend the *control* plane;
FlowSpec is the mechanism an AS under DDoS uses to push *data-plane*
filters upstream: "drop/ratelimit/redirect traffic matching this flow
toward my prefix".  The subsystem models the three pieces real
deployments need and the two failure modes that make robustness the
headline:

* **Rule model** (:class:`FlowSpecRule`): match components — destination
  prefix (mandatory; validation keys on it), source prefix, protocol,
  destination/source port ranges — plus one action
  (:class:`FlowSpecAction`): ``traffic-rate`` (rate 0 = discard),
  ``redirect`` to a scrubbing AS, or ``traffic-marking``.  Rules carry a
  total, deterministic order (:meth:`FlowSpecRule.sort_key`) in the
  spirit of RFC 5575 §5.1: destination specificity dominates, then
  source, protocol, ports; a more-constrained rule precedes a
  less-constrained one.  Enforcement applies the first matching rule in
  this order, and eviction retains the most-specific head of it.

* **Validation** (RFC 5575 §6): an AS only installs a rule if the
  originator is the origin of its *best-match unicast route* for the
  rule's destination prefix — resolved against live routing state
  through a ``resolver`` callable (``(asn, prefix) -> (prefix, route)``;
  both :meth:`repro.secroute.campaign.AttackSurface.resolve` and
  :func:`resolver_from_outcomes` fit).  Rogue rules (originator does not
  own the traffic they filter) are rejected; :meth:`revalidate` re-runs
  the check after unicast route changes (withdrawal, hijack) so stale
  rules are evicted rather than silently enforced.

* **Graceful degradation**: each AS holds at most ``install_limit``
  rules — at capacity the §5.1 order decides, most-specific retained,
  least-specific evicted — and every originator is throttled by a
  :class:`repro.guard.CircuitBreaker` over a logical event clock: an
  originator exceeding its churn budget trips the breaker, its rules
  are purged everywhere, and further announcements are refused until
  the breaker's cooldown admits a re-probe (quarantine).  Counters for
  installed / rejected (by reason) / evicted rules and quarantines are
  exported via :meth:`bind_metrics` and surfaced by the looking glass.

Enforcement itself lives in :meth:`repro.inet.dataplane.DataPlane.send`:
attach a distributor with ``plane.attach_flowspec(dist)`` and every
forwarded packet is checked at each AS hop before forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..guard.breaker import BreakerConfig, BreakerState, CircuitBreaker
from ..net.addr import Prefix
from ..net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..inet.routing import ASRoute, RoutingOutcome
    from ..telemetry.metrics import CounterChild, MetricsRegistry

__all__ = [
    "FlowSpecActionKind",
    "FlowSpecAction",
    "FlowSpecRule",
    "EnforcementVerdict",
    "EnforcementDecision",
    "FlowSpecDistributor",
    "resolver_from_outcomes",
]

PortRanges = Tuple[Tuple[int, int], ...]

# The unicast view validation resolves against: best-match (prefix,
# route) for a destination prefix as seen from one AS, or None.
Resolver = Callable[[int, Prefix], "Optional[Tuple[Prefix, ASRoute]]"]


class FlowSpecActionKind(Enum):
    """The RFC 5575 §7 traffic-filtering actions this model supports."""

    RATE_LIMIT = "traffic-rate"  # rate 0 = discard
    REDIRECT = "redirect"  # divert to a scrubbing AS
    MARK = "traffic-marking"  # rewrite the DSCP field


@dataclass(frozen=True)
class FlowSpecAction:
    """One traffic-filtering action.

    ``rate`` is the per-epoch packet budget of a ``traffic-rate`` action
    (the simulator's deterministic stand-in for bytes/second): matched
    packets beyond the budget are dropped, and
    :meth:`FlowSpecDistributor.new_epoch` refills every bucket.  Rate 0
    is the RFC's encoding of *discard*.
    """

    kind: FlowSpecActionKind
    rate: int = 0
    scrubber: Optional[int] = None
    dscp: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is FlowSpecActionKind.RATE_LIMIT and self.rate < 0:
            raise ValueError(f"traffic-rate must be >= 0, got {self.rate}")
        if self.kind is FlowSpecActionKind.REDIRECT and self.scrubber is None:
            raise ValueError("redirect action needs a scrubber ASN")
        if self.kind is FlowSpecActionKind.MARK and self.dscp is None:
            raise ValueError("traffic-marking action needs a DSCP value")

    @classmethod
    def discard(cls) -> "FlowSpecAction":
        return cls(kind=FlowSpecActionKind.RATE_LIMIT, rate=0)

    @classmethod
    def rate_limit(cls, rate: int) -> "FlowSpecAction":
        return cls(kind=FlowSpecActionKind.RATE_LIMIT, rate=rate)

    @classmethod
    def redirect(cls, scrubber: int) -> "FlowSpecAction":
        return cls(kind=FlowSpecActionKind.REDIRECT, scrubber=scrubber)

    @classmethod
    def mark(cls, dscp: int) -> "FlowSpecAction":
        return cls(kind=FlowSpecActionKind.MARK, dscp=dscp)

    def __str__(self) -> str:
        if self.kind is FlowSpecActionKind.RATE_LIMIT:
            return "discard" if self.rate == 0 else f"rate-limit {self.rate}/epoch"
        if self.kind is FlowSpecActionKind.REDIRECT:
            return f"redirect AS{self.scrubber}"
        return f"mark dscp={self.dscp}"


def _check_ports(ranges: PortRanges, label: str) -> None:
    for lo, hi in ranges:
        if not (0 <= lo <= hi <= 65535):
            raise ValueError(f"invalid {label} port range ({lo}, {hi})")


@dataclass(frozen=True)
class FlowSpecRule:
    """One FlowSpec NLRI: match components plus an action.

    ``originator`` is the AS that announced the rule; RFC 5575 §6
    validation compares it against the origin of the best-match unicast
    route for ``dst_prefix``.  Empty ``protos``/``*_ports`` match
    everything (a component not present in the NLRI).
    """

    dst_prefix: Prefix
    originator: int
    action: FlowSpecAction
    src_prefix: Optional[Prefix] = None
    protos: Tuple[str, ...] = ()
    dst_ports: PortRanges = ()
    src_ports: PortRanges = ()

    def __post_init__(self) -> None:
        _check_ports(self.dst_ports, "dst")
        _check_ports(self.src_ports, "src")

    # -- matching --------------------------------------------------------------

    def matches(self, packet: Packet) -> bool:
        if not self.dst_prefix.contains(packet.dst):
            return False
        if self.src_prefix is not None and not self.src_prefix.contains(packet.src):
            return False
        if self.protos and packet.proto not in self.protos:
            return False
        if self.dst_ports and not _port_in(packet.dst_port, self.dst_ports):
            return False
        if self.src_ports and not _port_in(packet.src_port, self.src_ports):
            return False
        return True

    # -- deterministic ordering ------------------------------------------------

    def sort_key(self) -> Tuple[object, ...]:
        """RFC 5575 §5.1-spirit total order (lowest key = highest
        precedence): longest destination prefix first, ties broken by
        address, then source-prefix specificity, protocol list, and port
        ranges — so a more-constrained rule always precedes a
        less-constrained one and any rule set has exactly one order."""
        src = self.src_prefix
        return (
            -self.dst_prefix.length,
            self.dst_prefix.address.value,
            0 if src is not None else 1,
            -(src.length if src is not None else 0),
            src.address.value if src is not None else 0,
            0 if self.protos else 1,
            self.protos,
            0 if self.dst_ports else 1,
            self.dst_ports,
            0 if self.src_ports else 1,
            self.src_ports,
            self.originator,
            self.action.kind.value,
            self.action.rate,
            self.action.scrubber if self.action.scrubber is not None else -1,
            self.action.dscp if self.action.dscp is not None else -1,
        )

    def __str__(self) -> str:
        parts = [f"dst {self.dst_prefix}"]
        if self.src_prefix is not None:
            parts.append(f"src {self.src_prefix}")
        if self.protos:
            parts.append("proto " + ",".join(self.protos))
        if self.dst_ports:
            parts.append("dport " + _fmt_ports(self.dst_ports))
        if self.src_ports:
            parts.append("sport " + _fmt_ports(self.src_ports))
        return f"flow[{' '.join(parts)}] -> {self.action} (from AS{self.originator})"


def _port_in(port: Optional[int], ranges: PortRanges) -> bool:
    return port is not None and any(lo <= port <= hi for lo, hi in ranges)


def _fmt_ports(ranges: PortRanges) -> str:
    return ",".join(f"{lo}" if lo == hi else f"{lo}-{hi}" for lo, hi in ranges)


class EnforcementVerdict(Enum):
    """What an enforcing AS decided for one packet."""

    DROP = "drop"  # traffic-rate 0 (discard)
    RATE_EXCEEDED = "rate-exceeded"  # traffic-rate budget exhausted
    REDIRECT = "redirect"  # diverted to the scrubber
    MARK = "mark"  # remarked, forwarding continues


@dataclass(frozen=True)
class EnforcementDecision:
    verdict: EnforcementVerdict
    rule: FlowSpecRule

    @property
    def scrubber(self) -> Optional[int]:
        return self.rule.action.scrubber

    @property
    def dscp(self) -> Optional[int]:
        return self.rule.action.dscp


def resolver_from_outcomes(
    outcomes: "Mapping[Prefix, RoutingOutcome]",
) -> Resolver:
    """Adapt a static ``{prefix: RoutingOutcome}`` map into the resolver
    callable validation consumes (longest-prefix match across it)."""
    from ..inet.routing import resolve_lpm

    def resolve(asn: int, target: Prefix) -> "Optional[Tuple[Prefix, ASRoute]]":
        return resolve_lpm(outcomes, asn, target)

    return resolve


_REJECT_REASONS = ("validation", "limit", "quarantine", "stale")


class FlowSpecDistributor:
    """Distributes FlowSpec rules to deploying ASes with §6 validation,
    per-AS install limits, and originator flood quarantine.

    * ``deployers`` — the ASes that accept and enforce FlowSpec (partial
      deployment is the normal case; campaigns sweep this set).
    * ``resolver`` — the unicast view validation checks against.
    * ``install_limit`` — hard per-AS rule capacity; never exceeded
      (most-specific-first retention under the §5.1 order).
    * ``churn_budget`` / ``churn_window`` — originator announce+withdraw
      events admitted per window of the logical event clock (one tick
      per rule event) before the flood breaker trips and quarantines
      the originator.
    """

    def __init__(
        self,
        deployers: Iterable[int],
        resolver: Resolver,
        install_limit: int = 64,
        churn_budget: int = 50,
        churn_window: float = 100.0,
        quarantine_cooldown: float = 1000.0,
    ) -> None:
        if install_limit < 1:
            raise ValueError("install_limit must be >= 1")
        self.deployers: Tuple[int, ...] = tuple(sorted(set(deployers)))
        self.resolver = resolver
        self.install_limit = install_limit
        self._breaker_config = BreakerConfig(
            window_seconds=churn_window,
            max_updates_per_window=churn_budget,
            cooldown=quarantine_cooldown,
        )
        # asn -> rules, kept sorted by sort_key (most specific first).
        self._installed: Dict[int, List[FlowSpecRule]] = {}
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._clock = 0.0  # logical event clock driving the breakers
        # (asn, rule) -> packets admitted this epoch, for traffic-rate.
        self._buckets: Dict[Tuple[int, FlowSpecRule], int] = {}
        self.counts: Dict[str, int] = {
            "installed": 0,
            "evicted": 0,
            "quarantines": 0,
            **{f"rejected_{reason}": 0 for reason in _REJECT_REASONS},
        }
        self._metric_children: Dict[str, "CounterChild"] = {}
        # rule -> [packets, bytes] matched by enforcement (any verdict,
        # including in-budget rate-limit forwards): the "is my filter
        # actually catching the attack" signal operators watch.
        self._rule_traffic: Dict[FlowSpecRule, List[int]] = {}
        self._traffic_children: Dict[str, "CounterChild"] = {}

    # -- telemetry -------------------------------------------------------------

    def bind_metrics(self, metrics: "MetricsRegistry", mux: str = "") -> None:
        """Export rule lifecycle counters:
        ``peering_flowspec_rules_{installed,evicted}_total``,
        ``peering_flowspec_rules_rejected_total{reason=...}``,
        ``peering_flowspec_originator_quarantines_total``, and matched
        traffic volume ``peering_flowspec_matched_{packets,bytes}_total``
        labelled by ``mux`` (the vantage this distributor enforces at;
        one registry can aggregate several muxes' distributors)."""
        installed = metrics.counter(
            "peering_flowspec_rules_installed_total",
            "FlowSpec rules accepted and installed at deploying ASes",
        )
        evicted = metrics.counter(
            "peering_flowspec_rules_evicted_total",
            "FlowSpec rules evicted by per-AS install limits",
        )
        rejected = metrics.counter(
            "peering_flowspec_rules_rejected_total",
            "FlowSpec rules refused, by reason",
            ("reason",),
        )
        quarantines = metrics.counter(
            "peering_flowspec_originator_quarantines_total",
            "Originators quarantined by the rule-flood breaker",
        )
        self._metric_children = {
            "installed": installed.labels(),
            "evicted": evicted.labels(),
            "quarantines": quarantines.labels(),
            **{
                f"rejected_{reason}": rejected.labels(reason)
                for reason in _REJECT_REASONS
            },
        }
        matched_packets = metrics.counter(
            "peering_flowspec_matched_packets_total",
            "Packets matched by installed FlowSpec rules",
            ("mux",),
        )
        matched_bytes = metrics.counter(
            "peering_flowspec_matched_bytes_total",
            "Bytes matched by installed FlowSpec rules",
            ("mux",),
        )
        self._traffic_children = {
            "packets": matched_packets.labels(mux),
            "bytes": matched_bytes.labels(mux),
        }

    def _count(self, key: str, amount: int = 1) -> None:
        if amount <= 0:
            return
        self.counts[key] += amount
        child = self._metric_children.get(key)
        if child is not None:
            child.inc(amount)

    def _account(self, rule: FlowSpecRule, packet: Packet) -> None:
        traffic = self._rule_traffic.setdefault(rule, [0, 0])
        traffic[0] += 1
        traffic[1] += packet.size
        packets = self._traffic_children.get("packets")
        if packets is not None:
            packets.inc()
        matched_bytes = self._traffic_children.get("bytes")
        if matched_bytes is not None and packet.size:
            matched_bytes.inc(packet.size)

    # -- originator flood breaker ----------------------------------------------

    def _breaker(self, originator: int) -> CircuitBreaker:
        breaker = self._breakers.get(originator)
        if breaker is None:
            breaker = self._breakers[originator] = CircuitBreaker(
                self._breaker_config, label=f"flowspec-AS{originator}"
            )
        return breaker

    def _admit_churn(self, originator: int) -> bool:
        """One rule event on the logical clock; False = quarantined."""
        self._clock += 1.0
        breaker = self._breaker(originator)
        if breaker.state is BreakerState.OPEN:
            if self._clock >= breaker.half_open_at:
                breaker.half_open(self._clock)
            else:
                return False
        tripped_before = breaker.trips
        if not breaker.admit_update(self._clock):
            if breaker.trips > tripped_before:
                # Fresh trip: purge everything the flooder installed.
                self._count("quarantines")
                self._purge_originator(originator)
            return False
        return True

    def quarantined_originators(self) -> Tuple[int, ...]:
        return tuple(
            sorted(
                asn
                for asn, breaker in self._breakers.items()
                if breaker.state is BreakerState.OPEN
            )
        )

    def release(self, originator: int) -> None:
        """Administrative re-admission of a quarantined originator."""
        self._breaker(originator).reset(self._clock)

    def _purge_originator(self, originator: int) -> None:
        for asn in list(self._installed):
            kept = [r for r in self._installed[asn] if r.originator != originator]
            if len(kept) != len(self._installed[asn]):
                self._installed[asn] = kept
        self._drop_buckets(lambda rule: rule.originator == originator)

    # -- validation ------------------------------------------------------------

    def _valid_at(self, asn: int, rule: FlowSpecRule) -> bool:
        """RFC 5575 §6: the rule's originator must be the origin of the
        best-match unicast route for the embedded destination prefix."""
        hit = self.resolver(asn, rule.dst_prefix)
        if hit is None:
            return False
        _prefix, route = hit
        origin = route.path[-1] if route.path else asn
        return origin == rule.originator

    # -- rule lifecycle --------------------------------------------------------

    def announce(self, rule: FlowSpecRule) -> int:
        """Offer ``rule`` to every deploying AS.  Returns the number of
        ASes that installed it (0 if quarantined or rejected everywhere).
        """
        if not self._admit_churn(rule.originator):
            self._count("rejected_quarantine")
            return 0
        installed = 0
        for asn in self.deployers:
            rules = self._installed.setdefault(asn, [])
            if rule in rules:
                continue
            if not self._valid_at(asn, rule):
                self._count("rejected_validation")
                continue
            if len(rules) >= self.install_limit:
                # At capacity the §5.1 order decides: the worst (least
                # specific) of incumbents+candidate is the one refused.
                worst = max(rules, key=FlowSpecRule.sort_key)
                if rule.sort_key() >= worst.sort_key():
                    self._count("rejected_limit")
                    continue
                rules.remove(worst)
                self._drop_buckets(lambda r, w=worst: r == w)
                self._count("evicted")
            _insort(rules, rule)
            installed += 1
        self._count("installed", installed)
        return installed

    def withdraw(self, originator: int, dst_prefix: Optional[Prefix] = None) -> int:
        """Withdraw ``originator``'s rules (optionally only those for
        ``dst_prefix``).  Withdrawals count toward the churn budget too —
        announce/withdraw flapping is exactly what the breaker guards.
        Returns the number of (AS, rule) installations removed."""
        if not self._admit_churn(originator):
            self._count("rejected_quarantine")
            return 0
        removed = 0
        for asn in list(self._installed):
            kept = [
                r
                for r in self._installed[asn]
                if r.originator != originator
                or (dst_prefix is not None and r.dst_prefix != dst_prefix)
            ]
            removed += len(self._installed[asn]) - len(kept)
            self._installed[asn] = kept
        self._drop_buckets(
            lambda rule: rule.originator == originator
            and (dst_prefix is None or rule.dst_prefix == dst_prefix)
        )
        return removed

    def revalidate(self) -> int:
        """Re-run §6 validation of every installed rule against the
        current unicast view; rules whose originator lost the best-match
        route are evicted.  Call after any unicast route change
        (withdrawal, hijack, steering).  Returns evictions."""
        stale = 0
        for asn in list(self._installed):
            dead = {
                r for r in self._installed[asn] if not self._valid_at(asn, r)
            }
            if dead:
                self._installed[asn] = [
                    r for r in self._installed[asn] if r not in dead
                ]
                self._drop_buckets(dead.__contains__)
                stale += len(dead)
        self._count("rejected_stale", stale)
        return stale

    # -- enforcement -----------------------------------------------------------

    def rules_at(self, asn: int) -> Tuple[FlowSpecRule, ...]:
        """Installed rules at one AS, in §5.1 enforcement order."""
        return tuple(self._installed.get(asn, ()))

    def installed_counts(self) -> Dict[int, int]:
        """``{asn: installed-rule count}`` for every AS holding rules."""
        return {asn: len(rules) for asn, rules in self._installed.items() if rules}

    def new_epoch(self) -> None:
        """Refill every traffic-rate bucket (start of a rate interval)."""
        self._buckets.clear()

    def _drop_buckets(self, predicate: Callable[[FlowSpecRule], bool]) -> None:
        for key in [k for k in self._buckets if predicate(k[1])]:
            del self._buckets[key]

    def decide(self, asn: int, packet: Packet) -> Optional[EnforcementDecision]:
        """What ``asn`` does with ``packet``: the first installed rule
        (§5.1 order) that matches decides; None = forward normally."""
        rules = self._installed.get(asn)
        if not rules:
            return None
        for rule in rules:
            if not rule.matches(packet):
                continue
            self._account(rule, packet)
            action = rule.action
            if action.kind is FlowSpecActionKind.RATE_LIMIT:
                if action.rate == 0:
                    return EnforcementDecision(EnforcementVerdict.DROP, rule)
                key = (asn, rule)
                used = self._buckets.get(key, 0)
                if used >= action.rate:
                    return EnforcementDecision(EnforcementVerdict.RATE_EXCEEDED, rule)
                self._buckets[key] = used + 1
                return None  # within budget: forward
            if action.kind is FlowSpecActionKind.REDIRECT:
                return EnforcementDecision(EnforcementVerdict.REDIRECT, rule)
            return EnforcementDecision(EnforcementVerdict.MARK, rule)
        return None

    # -- reporting -------------------------------------------------------------

    def rule_counters(self) -> Dict[FlowSpecRule, Tuple[int, int]]:
        """Lifetime ``{rule: (packets, bytes)}`` matched by enforcement —
        survives withdrawal (a withdrawn filter's tally still tells the
        operator what it caught)."""
        return {
            rule: (packets, volume)
            for rule, (packets, volume) in self._rule_traffic.items()
        }

    def stats(self) -> Dict[str, object]:
        """Lifecycle counters plus current install state — the payload
        the looking glass renders."""
        installed_now = self.installed_counts()
        return {
            **self.counts,
            "deployers": len(self.deployers),
            "installed_now": sum(installed_now.values()),
            "max_installed_at_one_as": max(installed_now.values(), default=0),
            "install_limit": self.install_limit,
            "quarantined": list(self.quarantined_originators()),
            "matched_packets": sum(t[0] for t in self._rule_traffic.values()),
            "matched_bytes": sum(t[1] for t in self._rule_traffic.values()),
        }

    def render(self, vantages: Optional[Iterable[int]] = None) -> str:
        """Looking-glass style text view of the FlowSpec state."""
        stats = self.stats()
        lines = [
            "flowspec: "
            f"{stats['installed_now']} rules installed across "
            f"{stats['deployers']} deployers (limit {self.install_limit}/AS)",
            f"  lifetime: installed={self.counts['installed']} "
            f"evicted={self.counts['evicted']} "
            f"rejected(validation/limit/quarantine/stale)="
            f"{self.counts['rejected_validation']}/"
            f"{self.counts['rejected_limit']}/"
            f"{self.counts['rejected_quarantine']}/"
            f"{self.counts['rejected_stale']}",
        ]
        quarantined = self.quarantined_originators()
        if quarantined:
            lines.append(
                "  quarantined originators: "
                + ", ".join(f"AS{a}" for a in quarantined)
            )
        if self._rule_traffic:
            stats_pkts = sum(t[0] for t in self._rule_traffic.values())
            stats_bytes = sum(t[1] for t in self._rule_traffic.values())
            lines.append(
                f"  matched traffic: {stats_pkts} packets / {stats_bytes} bytes"
            )
            top = sorted(
                self._rule_traffic.items(),
                key=lambda kv: (-kv[1][1], -kv[1][0], kv[0].sort_key()),
            )[:3]
            for rule, (packets, volume) in top:
                lines.append(f"    {packets} pkts / {volume} B  {rule}")
        for vantage in vantages or []:
            rules = self.rules_at(vantage)
            lines.append(f"  AS{vantage}: {len(rules)} rules")
            for rule in rules:
                lines.append(f"    {rule}")
        return "\n".join(lines)


def _insort(rules: List[FlowSpecRule], rule: FlowSpecRule) -> None:
    key = rule.sort_key()
    for i, existing in enumerate(rules):
        if key < existing.sort_key():
            rules.insert(i, rule)
            return
    rules.append(rule)
