"""Route security for the simulated Internet: RPKI/ROV, Peerlock, and
the attack-campaign harness that measures them.

The testbed-side safety layer (:mod:`repro.core.safety`, :mod:`repro.guard`)
protects the Internet *from the testbed*; this package gives the
substrate its own defenses and the machinery to score them:

* :mod:`~repro.secroute.rpki` — ROAs, the registry, RFC 6811 validation.
* :mod:`~repro.secroute.policy` — per-AS deployment (ROV modes,
  Peerlock, Peerlock-lite) compiled into the filter form both
  propagation paths consume.
* :mod:`~repro.secroute.campaign` — seeded hijack/leak campaigns and
  coverage-vs-deployment curves (imported lazily: it pulls in the
  propagation engines and the synthetic-Internet generator).
* :mod:`~repro.secroute.flowspec` — RFC 5575 traffic filtering:
  validated rule distribution, per-AS install limits, and rule-flood
  quarantine (enforced in :meth:`repro.inet.dataplane.DataPlane.send`).
* :mod:`~repro.secroute.ddos` — DDoS-scrubbing campaigns sweeping
  FlowSpec deployment (lazy, like campaign: it pulls the generator).
"""

from .flowspec import (
    EnforcementDecision,
    EnforcementVerdict,
    FlowSpecAction,
    FlowSpecActionKind,
    FlowSpecDistributor,
    FlowSpecRule,
    resolver_from_outcomes,
)
from .policy import CompiledSecurity, RovMode, SecurityPolicy
from .rpki import Roa, RoaRegistry, ValidationState

__all__ = [
    "ValidationState",
    "Roa",
    "RoaRegistry",
    "RovMode",
    "SecurityPolicy",
    "CompiledSecurity",
    "FlowSpecActionKind",
    "FlowSpecAction",
    "FlowSpecRule",
    "EnforcementVerdict",
    "EnforcementDecision",
    "FlowSpecDistributor",
    "resolver_from_outcomes",
    # lazily re-exported from .campaign (PEP 562):
    "secure_propagate",
    "AttackSurface",
    "CampaignConfig",
    "ScenarioResult",
    "CampaignResult",
    "run_campaign",
    "SCENARIOS",
    # lazily re-exported from .ddos:
    "DDOS_PREFIX",
    "DDOS_SCENARIOS",
    "DdosCampaignConfig",
    "DdosScenarioResult",
    "RuleFloodResult",
    "DdosCampaignResult",
    "run_ddos_campaign",
]

_CAMPAIGN_EXPORTS = frozenset(
    {
        "secure_propagate",
        "AttackSurface",
        "CampaignConfig",
        "ScenarioResult",
        "CampaignResult",
        "run_campaign",
        "SCENARIOS",
    }
)

_DDOS_EXPORTS = frozenset(
    {
        "DDOS_PREFIX",
        "DDOS_SCENARIOS",
        "DdosCampaignConfig",
        "DdosScenarioResult",
        "RuleFloodResult",
        "DdosCampaignResult",
        "run_ddos_campaign",
    }
)


def __getattr__(name: str) -> object:
    if name in _CAMPAIGN_EXPORTS:
        from . import campaign

        return getattr(campaign, name)
    if name in _DDOS_EXPORTS:
        from . import ddos

        return getattr(ddos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
