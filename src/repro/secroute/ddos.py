"""DDoS-scrubbing campaigns: FlowSpec defense vs. attack volume.

The FlowSpec subsystem (:mod:`~repro.secroute.flowspec`) exists so this
experiment can be run: *how much FlowSpec deployment does a victim need
before an attack is absorbed instead of delivered — and what does the
defense cost bystander traffic?*  A campaign floods a victim prefix with
Zipf-weighted attack traffic (:func:`repro.workloads.zipf_attack_sources`
— a few heavy sources, a long tail, exactly the shape scrubbing centers
see) plus a bystander population of legitimate clients, then sweeps the
FlowSpec deployment rate and scores three defense postures:

* **surgical-discard** — the victim announces a rule matching the attack
  5-tuple (protocol + destination port) with ``traffic-rate 0``; attack
  packets die at the first deploying AS on their path, legitimate
  traffic is untouched.
* **scrubber-redirect** — same match, ``redirect`` to a scrubbing AS:
  attack volume is diverted instead of dropped (the Tangled/anycast
  story — the testbed absorbs the attack somewhere it can be studied).
* **blunt-discard** — a destination-prefix-only discard, the panic
  button: absorbs the most attack volume and the most legitimate
  traffic with it.  The collateral column is the point.

Deployment sampling is **nested** (one permutation per trial, rate ``r``
deploys its first ``ceil(r·n)``), FlowSpec does not alter unicast
routing, and discard/redirect enforcement is volume-independent, so a
packet absorbed at rate ``r`` is absorbed at every higher rate —
per-trial absorbed-volume curves are monotone **by construction**, and
averaging trials preserves that (the ``--check`` gate in
``benchmarks/bench_flowspec.py`` asserts it anyway).

The campaign ends with a **rule-flood** robustness scenario: the victim
floods more (valid) rules than the per-AS install limit admits — the
§5.1 most-specific-first eviction must hold the limit exactly — and a
rogue AS first spews rules for the victim's prefix (all must die in §6
validation), then churns announce/withdraw until the flood breaker
quarantines it.  Everything derives from ``DdosCampaignConfig.seed``;
two runs with equal configs are byte-identical.

Attack waves are driven through :class:`repro.faults.plan.FaultPlan`
(``inject_flowspec`` + ``flood_traffic`` on the shared event engine), so
DDoS scenarios compose with link/mux faults and hijacks on one
deterministic timeline.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.plan import FaultPlan
from ..inet.dataplane import DataPlane, Delivery, DeliveryStatus
from ..inet.engine import PropagationEngine
from ..inet.gen import InternetConfig, build_internet
from ..inet.routing import Announcement, RoutingOutcome
from ..inet.topology import ASGraph
from ..net.addr import IPAddress, Prefix, parse_prefix
from ..net.packet import Packet
from ..sim.engine import Engine
from ..telemetry.metrics import MetricsRegistry
from ..workloads.traffic import attack_flows, client_population, zipf_attack_sources
from .flowspec import (
    FlowSpecAction,
    FlowSpecDistributor,
    FlowSpecRule,
    Resolver,
    resolver_from_outcomes,
)

__all__ = [
    "DDOS_PREFIX",
    "DDOS_SCENARIOS",
    "DdosCampaignConfig",
    "DdosScenarioResult",
    "RuleFloodResult",
    "DdosCampaignResult",
    "run_ddos_campaign",
]

# RFC 2544 benchmark space, distinct from the hijack campaign's block.
DDOS_PREFIX = parse_prefix("198.18.128.0/20")

DDOS_SCENARIOS = ("surgical-discard", "scrubber-redirect", "blunt-discard")

_ABSORBED = (DeliveryStatus.FLOWSPEC_DROPPED, DeliveryStatus.SCRUBBED)


@dataclass(frozen=True)
class DdosCampaignConfig:
    """Knobs for one DDoS campaign; everything derives from ``seed``."""

    seed: int = 2014
    rates: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)
    trials: int = 2
    n_ases: int = 150
    n_tier1: int = 5
    n_sources: int = 20
    attack_packets: int = 400
    legit_clients: int = 12
    legit_packets_each: int = 5
    attack_proto: str = "udp"
    attack_port: int = 123  # NTP-reflection flavor
    legit_proto: str = "tcp"
    legit_port: int = 443
    zipf_exponent: float = 1.1
    install_limit: int = 16
    churn_budget: int = 40

    def __post_init__(self) -> None:
        if not self.rates or any(not (0.0 <= r <= 1.0) for r in self.rates):
            raise ValueError("rates must be within [0, 1]")
        if list(self.rates) != sorted(self.rates):
            raise ValueError("rates must be ascending")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")
        if self.install_limit < 1 or self.churn_budget < 1:
            raise ValueError("install_limit and churn_budget must be >= 1")


@dataclass(frozen=True)
class DdosScenarioResult:
    """Per-rate mean (over trials) volume fractions for one posture."""

    scenario: str
    rates: Tuple[float, ...]
    absorbed: Tuple[float, ...]  # attack volume dropped or scrubbed
    leaked: Tuple[float, ...]  # attack volume delivered to the victim
    collateral: Tuple[float, ...]  # legitimate volume lost to the defense
    trial_absorbed: Tuple[Tuple[float, ...], ...]

    def is_monotone_absorbed(self, tolerance: float = 1e-12) -> bool:
        return all(
            b >= a - tolerance
            for curve in self.trial_absorbed + (self.absorbed,)
            for a, b in zip(curve, curve[1:])
        )


@dataclass(frozen=True)
class RuleFloodResult:
    """Outcome of the rule-flood robustness scenario."""

    rules_offered: int
    install_limit: int
    max_installed_at_one_as: int
    evicted: int
    rejected_validation: int
    rejected_quarantine: int
    quarantined: Tuple[int, ...]
    limits_respected: bool


@dataclass(frozen=True)
class DdosCampaignResult:
    config: DdosCampaignConfig
    victim: int
    scrubber: int
    rogue: int
    attack_volume: int
    legit_volume: int
    scenarios: Dict[str, DdosScenarioResult] = field(default_factory=dict)
    rule_flood: Optional[RuleFloodResult] = None

    def table(self) -> str:
        """Absorbed / leaked / collateral fractions vs deployment rate."""
        rates = self.config.rates
        header = "scenario            metric     " + "".join(
            f"{r:>8.0%}" for r in rates
        )
        lines = [header, "-" * len(header)]
        for name in DDOS_SCENARIOS:
            result = self.scenarios[name]
            for metric, curve in (
                ("absorbed", result.absorbed),
                ("leaked", result.leaked),
                ("collateral", result.collateral),
            ):
                label = name if metric == "absorbed" else ""
                lines.append(
                    f"{label:<20}{metric:<11}"
                    + "".join(f"{v:>8.3f}" for v in curve)
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        flood = self.rule_flood
        return {
            "seed": self.config.seed,
            "rates": list(self.config.rates),
            "victim": self.victim,
            "scrubber": self.scrubber,
            "rogue": self.rogue,
            "attack_volume": self.attack_volume,
            "legit_volume": self.legit_volume,
            "scenarios": {
                name: {
                    "absorbed": list(result.absorbed),
                    "leaked": list(result.leaked),
                    "collateral": list(result.collateral),
                }
                for name, result in self.scenarios.items()
            },
            "rule_flood": None
            if flood is None
            else {
                "rules_offered": flood.rules_offered,
                "install_limit": flood.install_limit,
                "max_installed_at_one_as": flood.max_installed_at_one_as,
                "evicted": flood.evicted,
                "rejected_validation": flood.rejected_validation,
                "rejected_quarantine": flood.rejected_quarantine,
                "quarantined": list(flood.quarantined),
                "limits_respected": flood.limits_respected,
            },
        }


# -- campaign internals --------------------------------------------------------


def _attack_rules(
    config: DdosCampaignConfig, victim: int, scrubber: int
) -> Dict[str, FlowSpecRule]:
    protos = (config.attack_proto,)
    ports: Tuple[Tuple[int, int], ...] = ((config.attack_port, config.attack_port),)
    return {
        "surgical-discard": FlowSpecRule(
            dst_prefix=DDOS_PREFIX,
            originator=victim,
            action=FlowSpecAction.discard(),
            protos=protos,
            dst_ports=ports,
        ),
        "scrubber-redirect": FlowSpecRule(
            dst_prefix=DDOS_PREFIX,
            originator=victim,
            action=FlowSpecAction.redirect(scrubber),
            protos=protos,
            dst_ports=ports,
        ),
        "blunt-discard": FlowSpecRule(
            dst_prefix=DDOS_PREFIX,
            originator=victim,
            action=FlowSpecAction.discard(),
        ),
    }


def _deployers(population: Sequence[int], rate: float) -> Sequence[int]:
    return population[: math.ceil(rate * len(population))]


def _run_wave(
    plane: DataPlane,
    distributor: FlowSpecDistributor,
    rule: FlowSpecRule,
    attack: List[Tuple[int, Packet]],
    legit: List[Tuple[int, Packet]],
) -> Tuple[List[Delivery], List[Delivery]]:
    """One scenario cell on the fault-plan timeline: rule at t=0, attack
    wave at t=1, bystander wave at t=2."""
    engine = Engine(seed=0)
    plan = FaultPlan(engine, name="ddos")
    attack_deliveries: List[Delivery] = []
    legit_deliveries: List[Delivery] = []
    plane.attach_flowspec(distributor)
    plan.inject_flowspec(distributor, rule, at=0.0)
    plan.flood_traffic(plane, attack, at=1.0, collect=attack_deliveries)
    plan.flood_traffic(plane, legit, at=2.0, collect=legit_deliveries)
    engine.run()
    return attack_deliveries, legit_deliveries


def _rule_flood(
    config: DdosCampaignConfig,
    population: Sequence[int],
    resolver: Resolver,
    victim: int,
    rogue: int,
    metrics: Optional[MetricsRegistry],
) -> Tuple[RuleFloodResult, FlowSpecDistributor]:
    """Full-deployment distributor under a rule flood: valid-rule
    pressure on the install limit, rogue-rule validation kills, and a
    churn storm that must end in quarantine."""
    distributor = FlowSpecDistributor(
        deployers=population,
        resolver=resolver,
        install_limit=config.install_limit,
        churn_budget=config.churn_budget,
    )
    if metrics is not None:
        distributor.bind_metrics(metrics)
    offered = 0

    # The victim floods valid rules past the limit: first per-port /20
    # rules, then more-specific /24 sub-prefix rules that must displace
    # them (most-specific-first retention).
    for i in range(config.install_limit + 8):
        distributor.announce(
            FlowSpecRule(
                dst_prefix=DDOS_PREFIX,
                originator=victim,
                action=FlowSpecAction.discard(),
                dst_ports=((1000 + i, 1000 + i),),
            )
        )
        offered += 1
    for sub in list(DDOS_PREFIX.subnets(24))[:8]:
        distributor.announce(
            FlowSpecRule(
                dst_prefix=sub,
                originator=victim,
                action=FlowSpecAction.discard(),
            )
        )
        offered += 1

    # A rogue AS pushes rules for space it does not originate: §6
    # validation must reject every installation.
    for i in range(4):
        distributor.announce(
            FlowSpecRule(
                dst_prefix=DDOS_PREFIX,
                originator=rogue,
                action=FlowSpecAction.discard(),
                dst_ports=((2000 + i, 2000 + i),),
            )
        )
        offered += 1

    # ...then churns announce/withdraw until the flood breaker trips.
    for i in range(config.churn_budget + 10):
        if i % 2 == 0:
            distributor.announce(
                FlowSpecRule(
                    dst_prefix=DDOS_PREFIX,
                    originator=rogue,
                    action=FlowSpecAction.discard(),
                    dst_ports=((3000, 3000),),
                )
            )
        else:
            distributor.withdraw(rogue, DDOS_PREFIX)
        offered += 1

    stats = distributor.stats()
    max_at_one = stats["max_installed_at_one_as"]
    assert isinstance(max_at_one, int)
    return (
        RuleFloodResult(
            rules_offered=offered,
            install_limit=config.install_limit,
            max_installed_at_one_as=max_at_one,
            evicted=distributor.counts["evicted"],
            rejected_validation=distributor.counts["rejected_validation"],
            rejected_quarantine=distributor.counts["rejected_quarantine"],
            quarantined=distributor.quarantined_originators(),
            limits_respected=max_at_one <= config.install_limit,
        ),
        distributor,
    )


def run_ddos_campaign(
    config: DdosCampaignConfig = DdosCampaignConfig(),
    graph: Optional[ASGraph] = None,
    metrics: Optional[MetricsRegistry] = None,
    return_distributor: bool = False,
) -> DdosCampaignResult:
    """Run the three defense postures over the deployment-rate sweep,
    then the rule-flood robustness scenario.

    ``metrics`` receives the FlowSpec lifecycle counters.  Everything is
    seeded: two calls with equal configs produce identical results.
    ``return_distributor`` keeps the rule-flood distributor on the result
    (``result.distributor``) for looking-glass rendering.
    """
    if graph is None:
        graph = build_internet(
            InternetConfig(
                n_ases=config.n_ases, n_tier1=config.n_tier1, seed=config.seed
            )
        ).graph
    engine = PropagationEngine(graph)
    rng = random.Random(config.seed)

    stubs = sorted(asn for asn in graph.stub_asns() if graph.providers(asn))
    if len(stubs) < 2:
        raise ValueError("graph too small for a DDoS campaign")
    victim = rng.choice(stubs)
    scrubber = sorted(graph.tier1_clique())[0]

    announcement = Announcement.single(victim, prefix=DDOS_PREFIX)
    outcome: RoutingOutcome = engine.propagate(announcement)
    reachable = outcome.reachable_asns()
    plane = DataPlane(graph)
    plane.install(DDOS_PREFIX, outcome, owner=victim)
    resolver = resolver_from_outcomes({DDOS_PREFIX: outcome})

    unreachable = set(graph.asns()) - reachable
    sources = zipf_attack_sources(
        graph,
        config.n_sources,
        config.attack_packets,
        seed=config.seed,
        exponent=config.zipf_exponent,
        exclude=sorted(unreachable | {victim}),
    )
    source_asns = {asn for asn, _ in sources}
    rogue = next(asn for asn in sorted(source_asns) if asn != scrubber)
    attack_volume = sum(n for _, n in sources)

    legit_asns = [
        asn
        for asn in client_population(graph, config.legit_clients, seed=config.seed + 1)
        if asn in reachable and asn != victim and asn not in source_asns
    ]
    target = IPAddress(DDOS_PREFIX.address.value + 1, 4)
    legit_flows = [
        (asn, packet)
        for asn in legit_asns
        for _, packet in attack_flows(
            [(asn, config.legit_packets_each)],
            target,
            proto=config.legit_proto,
            dst_port=config.legit_port,
        )
    ]
    legit_volume = len(legit_flows)
    if legit_volume == 0:
        raise ValueError("no legitimate clients reach the victim")

    attack_wave = list(
        attack_flows(
            sources, target, proto=config.attack_proto, dst_port=config.attack_port
        )
    )

    rules = _attack_rules(config, victim, scrubber)
    population = sorted(reachable - source_asns - {victim}) + [victim]

    curves: Dict[str, Dict[str, List[Tuple[float, ...]]]] = {
        name: {"absorbed": [], "leaked": [], "collateral": []}
        for name in DDOS_SCENARIOS
    }
    for trial in range(config.trials):
        trial_rng = random.Random(config.seed * 1_000_003 + trial)
        perm = list(population)
        trial_rng.shuffle(perm)
        for name in DDOS_SCENARIOS:
            absorbed_curve: List[float] = []
            leaked_curve: List[float] = []
            collateral_curve: List[float] = []
            for rate in config.rates:
                distributor = FlowSpecDistributor(
                    deployers=_deployers(perm, rate),
                    resolver=resolver,
                    install_limit=config.install_limit,
                    churn_budget=config.churn_budget,
                )
                if metrics is not None:
                    distributor.bind_metrics(metrics)
                attack_out, legit_out = _run_wave(
                    plane, distributor, rules[name], attack_wave, legit_flows
                )
                absorbed = sum(1 for d in attack_out if d.status in _ABSORBED)
                leaked = sum(
                    1 for d in attack_out if d.status is DeliveryStatus.DELIVERED
                )
                lost = sum(
                    1 for d in legit_out if d.status is not DeliveryStatus.DELIVERED
                )
                absorbed_curve.append(absorbed / attack_volume)
                leaked_curve.append(leaked / attack_volume)
                collateral_curve.append(lost / legit_volume)
            curves[name]["absorbed"].append(tuple(absorbed_curve))
            curves[name]["leaked"].append(tuple(leaked_curve))
            curves[name]["collateral"].append(tuple(collateral_curve))

    def mean_curve(trial_curves: List[Tuple[float, ...]]) -> Tuple[float, ...]:
        return tuple(
            sum(curve[i] for curve in trial_curves) / len(trial_curves)
            for i in range(len(config.rates))
        )

    scenarios = {
        name: DdosScenarioResult(
            scenario=name,
            rates=config.rates,
            absorbed=mean_curve(curves[name]["absorbed"]),
            leaked=mean_curve(curves[name]["leaked"]),
            collateral=mean_curve(curves[name]["collateral"]),
            trial_absorbed=tuple(curves[name]["absorbed"]),
        )
        for name in DDOS_SCENARIOS
    }

    flood_result, flood_distributor = _rule_flood(
        config, population, resolver, victim, rogue, metrics
    )

    result = DdosCampaignResult(
        config=config,
        victim=victim,
        scrubber=scrubber,
        rogue=rogue,
        attack_volume=attack_volume,
        legit_volume=legit_volume,
        scenarios=scenarios,
        rule_flood=flood_result,
    )
    if return_distributor:
        # Not part of the frozen result payload; stashed for the looking
        # glass / examples to render install state after the flood.
        object.__setattr__(result, "distributor", flood_distributor)
    return result
