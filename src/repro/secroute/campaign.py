"""Attack-campaign harness: hijacks and leaks vs. defense deployment.

This is the experiment machinery the route-security subsystem exists to
feed.  A campaign runs three seeded attack scenarios against a synthetic
Internet at a sweep of defense deployment rates and scores **protection
coverage** — the fraction of (eligible) ASes still routing to the
legitimate origin:

* **origin hijack** — the attacker announces the victim's exact prefix;
  ROV deployers drop the RPKI-Invalid attacker routes.
* **sub-prefix hijack** — the attacker announces a more-specific; the
  covering ROA's maxLength makes it Invalid, but longest-prefix match
  means only ASes with *no* route for the sub-prefix stay protected
  (:func:`repro.inet.routing.resolve_lpm` models the data plane).
* **route leak** — a multihomed stub re-originates its learned path for
  the victim's prefix (``OriginSpec.path_suffix``), which its providers
  prefer as a customer route.  The leaked path is RPKI-*Valid* — ROV is
  blind to it — so containment comes from Peerlock at the tier-1 clique
  and Peerlock-lite at transit ASes.

Deployment sampling is **nested**: each trial fixes one random
permutation of the deployer population, and rate ``r`` deploys the first
``ceil(r·n)`` of it.  Higher rates therefore strictly add deployers, and
since every defense is a pure route filter (it only ever removes
attacker/leak candidates), per-trial coverage curves are monotone —
averaging trials preserves that.  Everything derives from
``CampaignConfig.seed``, so a campaign is reproducible run-to-run and
identical between the compiled engine and the reference propagation
path (their route-for-route equivalence is property-tested).

:func:`secure_propagate` also lives here: the two-pass evaluation that
gives ``RovMode.DEPREFER_INVALID`` its semantics (drop Invalid only when
a non-Invalid alternative exists) by composing two plain filtered runs —
strict (deprefer folded into drop) overlaid on loose (drop only).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..inet.engine import PropagationEngine
from ..inet.gen import InternetConfig, build_internet
from ..inet.routing import (
    Announcement,
    ASRoute,
    OriginSpec,
    RoutingOutcome,
    propagate,
    resolve_lpm,
)
from ..inet.topology import ASGraph
from ..net.addr import IPAddress, Prefix, parse_prefix
from ..telemetry.metrics import MetricsRegistry
from .policy import RovMode, SecurityPolicy
from .rpki import Roa, RoaRegistry

__all__ = [
    "secure_propagate",
    "AttackSurface",
    "CampaignConfig",
    "ScenarioResult",
    "CampaignResult",
    "run_campaign",
    "SCENARIOS",
]

SCENARIOS = ("origin-hijack", "subprefix-hijack", "route-leak")

# RFC 2544 benchmark space: guaranteed not to collide with anything the
# testbed-side allocator hands out.
VICTIM_PREFIX = parse_prefix("198.18.0.0/20")
HIJACK_SUBPREFIX = parse_prefix("198.18.0.0/24")


# -- deprefer-aware propagation ------------------------------------------------


class _MergedOutcome:
    """Overlay of the strict pass on the loose pass (see
    :func:`secure_propagate`).  Implements the read side of the
    :class:`~repro.inet.routing.RoutingOutcome` interface."""

    def __init__(self, strict: RoutingOutcome, loose: RoutingOutcome) -> None:
        self._strict = strict
        self._loose = loose

    def route(self, asn: int) -> Optional[ASRoute]:
        route = self._strict.route(asn)
        return route if route is not None else self._loose.route(asn)

    def reaches(self, asn: int) -> bool:
        return self._strict.reaches(asn) or self._loose.reaches(asn)

    def reachable_asns(self) -> Set[int]:
        return self._strict.reachable_asns() | self._loose.reachable_asns()

    def as_path(self, asn: int) -> Optional[Tuple[int, ...]]:
        route = self.route(asn)
        return route.path if route is not None else None

    def __len__(self) -> int:
        return len(self.reachable_asns())

    def items(self) -> Iterable[Tuple[int, ASRoute]]:
        for asn in sorted(self.reachable_asns()):
            route = self.route(asn)
            assert route is not None
            yield asn, route


def _run_filtered(
    graph: ASGraph,
    announcement: Announcement,
    compiled_sec,
    engine: Optional[PropagationEngine],
) -> RoutingOutcome:
    if engine is not None:
        return engine.propagate(announcement, security=compiled_sec)
    return propagate(graph, announcement, compiled_sec)


def secure_propagate(
    graph: ASGraph,
    announcement: Announcement,
    policy: Optional[SecurityPolicy] = None,
    engine: Optional[PropagationEngine] = None,
) -> RoutingOutcome:
    """Converge ``announcement`` under ``policy``, with full
    ``RovMode.DEPREFER_INVALID`` semantics.

    Drop-invalid and Peerlock are plain route filters and run natively
    inside either propagation path.  Deprefer ("accept Invalid only as a
    last resort") is not expressible as a monotone filter, so it is
    evaluated as two filtered runs: pass A treats deprefer deployers as
    droppers; pass B lets them accept.  Where A found a route the
    deployer (or its downstream) had a non-Invalid option — keep it;
    only where A found nothing does B's Invalid-tolerant route apply.
    Both passes use the same native filtering, so the composition is
    identical between the compiled engine and the reference path.
    """
    if policy is None:
        return _run_filtered(graph, announcement, None, engine)
    strict = policy.compile_for(announcement, deprefer_as_drop=True)
    if not policy.has_deprefer():
        return _run_filtered(graph, announcement, strict, engine)
    loose = policy.compile_for(announcement, deprefer_as_drop=False)
    out_strict = _run_filtered(graph, announcement, strict, engine)
    out_loose = _run_filtered(graph, announcement, loose, engine)
    return _MergedOutcome(out_strict, out_loose)


# -- scriptable attack surface -------------------------------------------------


class AttackSurface:
    """Mutable per-prefix announcement state that attack steps drive.

    This is the object :class:`repro.faults.plan.FaultPlan`'s
    ``hijack_prefix`` / ``leak_route`` / ``withdraw_prefix`` steps mutate
    (duck-typed there, so :mod:`repro.faults` never imports this
    package).  Outcomes are recomputed on demand under the surface's
    security policy; :meth:`resolve` applies longest-prefix match across
    every announced prefix."""

    def __init__(
        self,
        graph: ASGraph,
        policy: Optional[SecurityPolicy] = None,
        engine: Optional[PropagationEngine] = None,
    ) -> None:
        self.graph = graph
        self.policy = policy
        self.engine = engine
        self._specs: Dict[Prefix, List[OriginSpec]] = {}

    def announce(self, asn: int, prefix: Prefix, **spec_kwargs) -> None:
        self._specs.setdefault(prefix, []).append(OriginSpec(asn=asn, **spec_kwargs))

    def withdraw(self, asn: int, prefix: Prefix) -> None:
        specs = [s for s in self._specs.get(prefix, []) if s.asn != asn]
        if specs:
            self._specs[prefix] = specs
        else:
            self._specs.pop(prefix, None)

    def leak(self, leaker: int, prefix: Prefix) -> None:
        """Re-originate ``leaker``'s currently-selected route for
        ``prefix`` — the classic path-preserving route leak."""
        path = self.outcome(prefix).as_path(leaker)
        if path is None:
            raise ValueError(f"AS{leaker} holds no route for {prefix}; nothing to leak")
        self.announce(leaker, prefix, path_suffix=path)

    def announced_prefixes(self) -> Tuple[Prefix, ...]:
        return tuple(self._specs)

    def announcement(self, prefix: Prefix) -> Announcement:
        specs = self._specs.get(prefix)
        if not specs:
            raise KeyError(str(prefix))
        return Announcement(origins=tuple(specs), prefix=prefix)

    def outcome(self, prefix: Prefix) -> RoutingOutcome:
        return secure_propagate(
            self.graph, self.announcement(prefix), self.policy, self.engine
        )

    def outcomes(self) -> Dict[Prefix, RoutingOutcome]:
        return {prefix: self.outcome(prefix) for prefix in self._specs}

    def resolve(
        self, asn: int, target: Union[IPAddress, Prefix]
    ) -> Optional[Tuple[Prefix, ASRoute]]:
        return resolve_lpm(self.outcomes(), asn, target)


# -- campaign configuration and results ----------------------------------------


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs for one attack campaign.  Everything is derived from
    ``seed``; two campaigns with equal configs produce equal results."""

    seed: int = 1914
    rates: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)
    trials: int = 3
    rov_mode: RovMode = RovMode.DROP_INVALID
    n_ases: int = 150
    n_tier1: int = 5

    def __post_init__(self) -> None:
        if not self.rates or any(not (0.0 <= r <= 1.0) for r in self.rates):
            raise ValueError("rates must be within [0, 1]")
        if list(self.rates) != sorted(self.rates):
            raise ValueError("rates must be ascending")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")


@dataclass(frozen=True)
class ScenarioResult:
    """Coverage curve for one scenario: per-rate mean over trials, plus
    the per-trial curves for monotonicity/determinism checks."""

    scenario: str
    rates: Tuple[float, ...]
    coverage: Tuple[float, ...]
    trial_curves: Tuple[Tuple[float, ...], ...]

    def is_monotone(self, tolerance: float = 1e-12) -> bool:
        return all(
            b >= a - tolerance for a, b in zip(self.coverage, self.coverage[1:])
        )


@dataclass(frozen=True)
class CampaignResult:
    config: CampaignConfig
    engine: str  # "compiled" | "reference"
    victim: int
    attacker: int
    leaker: int
    scenarios: Dict[str, ScenarioResult] = field(default_factory=dict)
    leaks_contained: int = 0

    def table(self) -> str:
        """Coverage-vs-deployment as an aligned text table."""
        rates = self.config.rates
        header = "scenario          " + "".join(f"{r:>8.0%}" for r in rates)
        lines = [header, "-" * len(header)]
        for name in SCENARIOS:
            result = self.scenarios[name]
            lines.append(
                f"{name:<18}" + "".join(f"{c:>8.3f}" for c in result.coverage)
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.config.seed,
            "engine": self.engine,
            "rates": list(self.config.rates),
            "victim": self.victim,
            "attacker": self.attacker,
            "leaker": self.leaker,
            "coverage": {
                name: list(result.coverage)
                for name, result in self.scenarios.items()
            },
            "leaks_contained": self.leaks_contained,
        }


# -- campaign internals --------------------------------------------------------


def _pick_actors(graph: ASGraph, rng: random.Random) -> Tuple[int, int, int]:
    """Deterministically choose (victim, attacker, leaker): single-homed
    or multihomed stubs for victim/attacker, a multihomed stub for the
    leaker (so it has a provider to leak to and no legitimate transit
    role — any selected path containing it is the leak)."""
    stubs = sorted(asn for asn in graph.stub_asns() if graph.providers(asn))
    multihomed = [asn for asn in stubs if len(graph.providers(asn)) >= 2]
    if len(stubs) < 3 or not multihomed:
        raise ValueError("graph too small for a campaign: need 3 distinct stubs")
    victim = rng.choice(stubs)
    attacker = rng.choice([asn for asn in stubs if asn != victim])
    leaker_pool = [asn for asn in multihomed if asn not in (victim, attacker)]
    if not leaker_pool:
        leaker_pool = [asn for asn in stubs if asn not in (victim, attacker)]
    leaker = rng.choice(leaker_pool)
    return victim, attacker, leaker


def _deployers(population: Sequence[int], rate: float) -> Sequence[int]:
    return population[: math.ceil(rate * len(population))]


def _selects_origin(outcome: RoutingOutcome, asn: int, origin: int) -> bool:
    route = outcome.route(asn)
    return route is not None and bool(route.path) and route.path[-1] == origin


def _rov_policy(
    roas: RoaRegistry, deployers: Iterable[int], mode: RovMode
) -> SecurityPolicy:
    return SecurityPolicy(roas=roas).deploy_rov(deployers, mode)


def _leak_policy(
    tier1: Sequence[int], deployers: Iterable[int]
) -> SecurityPolicy:
    """Tier-1 deployers run full Peerlock over the clique; everyone else
    sampled deploys Peerlock-lite."""
    clique = frozenset(tier1)
    policy = SecurityPolicy(tier1=clique)
    for asn in deployers:
        if asn in clique:
            policy.lock(asn, clique)
        else:
            policy.peerlock_lite = policy.peerlock_lite | {asn}
    return policy


def run_campaign(
    config: CampaignConfig = CampaignConfig(),
    graph: Optional[ASGraph] = None,
    use_reference: bool = False,
    metrics: Optional[MetricsRegistry] = None,
) -> CampaignResult:
    """Run all three scenarios over the deployment-rate sweep.

    ``use_reference=True`` forces the pure-Python reference propagation;
    the default uses the compiled engine.  Both produce identical
    results for the same config (asserted in tests).  ``metrics``
    receives the ROV verdict counters and the campaign-level
    ``peering_secroute_leaks_contained_total`` count.
    """
    if graph is None:
        graph = build_internet(
            InternetConfig(
                n_ases=config.n_ases, n_tier1=config.n_tier1, seed=config.seed
            )
        ).graph
    engine = None if use_reference else PropagationEngine(graph)
    rng = random.Random(config.seed)
    victim, attacker, leaker = _pick_actors(graph, rng)

    roas = RoaRegistry((Roa(VICTIM_PREFIX, victim),))
    leaks_counter = None
    if metrics is not None:
        roas.bind_metrics(metrics)
        leaks_counter = metrics.counter(
            "peering_secroute_leaks_contained_total",
            "Leaked routes removed from AS selections by Peerlock containment",
        ).labels()

    tier1 = sorted(graph.tier1_clique())
    actors = {victim, attacker, leaker}
    rov_population = sorted(set(graph.asns()) - actors)
    leak_population = tier1 + sorted(
        asn for asn in graph.asns()
        if graph.customers(asn) and asn not in tier1 and asn not in actors
    )

    # Attack-free baseline: who can route to the victim at all.  ASes the
    # legitimate announcement never reaches cannot be "protected", so
    # they are excluded from scoring.
    legit = Announcement.single(victim, prefix=VICTIM_PREFIX)
    baseline = _run_filtered(graph, legit, None, engine)
    eligible = sorted(baseline.reachable_asns() - actors)
    leak_path = baseline.as_path(leaker)
    if leak_path is None:
        raise ValueError(f"leaker AS{leaker} unreachable in the baseline")

    hijack = Announcement(
        origins=(OriginSpec(asn=victim), OriginSpec(asn=attacker)),
        prefix=VICTIM_PREFIX,
    )
    sub_hijack = Announcement.single(attacker, prefix=HIJACK_SUBPREFIX)
    leak = Announcement(
        origins=(OriginSpec(asn=victim), OriginSpec(asn=leaker, path_suffix=leak_path)),
        prefix=VICTIM_PREFIX,
    )

    def origin_hijack_coverage(policy: SecurityPolicy) -> float:
        outcome = secure_propagate(graph, hijack, policy, engine)
        good = sum(1 for asn in eligible if _selects_origin(outcome, asn, victim))
        return good / len(eligible)

    def subprefix_coverage(policy: SecurityPolicy) -> float:
        covering = secure_propagate(graph, legit, policy, engine)
        specific = secure_propagate(graph, sub_hijack, policy, engine)
        outcomes = {VICTIM_PREFIX: covering, HIJACK_SUBPREFIX: specific}
        good = 0
        for asn in eligible:
            hit = resolve_lpm(outcomes, asn, HIJACK_SUBPREFIX)
            if hit is not None and hit[1].path and hit[1].path[-1] == victim:
                good += 1
        return good / len(eligible)

    def leak_state(
        policy: Optional[SecurityPolicy],
    ) -> Tuple[RoutingOutcome, Set[int]]:
        outcome = secure_propagate(graph, leak, policy, engine)
        polluted = set()
        for asn in eligible:
            path = outcome.as_path(asn)
            if path is not None and leaker in path:
                polluted.add(asn)
        return outcome, polluted

    _, unprotected_pollution = leak_state(None)

    def leak_coverage(policy: SecurityPolicy) -> Tuple[float, int]:
        outcome, polluted = leak_state(policy)
        good = sum(
            1 for asn in eligible
            if asn not in polluted and outcome.reaches(asn)
        )
        contained = len(unprotected_pollution - polluted)
        return good / len(eligible), contained

    curves: Dict[str, List[Tuple[float, ...]]] = {name: [] for name in SCENARIOS}
    leaks_contained = 0
    for trial in range(config.trials):
        # random.Random wants an int/str seed; derive one per trial.
        trial_rng = random.Random(config.seed * 1_000_003 + trial)
        rov_perm = list(rov_population)
        trial_rng.shuffle(rov_perm)
        leak_perm = list(leak_population)
        trial_rng.shuffle(leak_perm)

        origin_curve: List[float] = []
        sub_curve: List[float] = []
        leak_curve: List[float] = []
        for rate in config.rates:
            rov_policy = _rov_policy(
                roas, _deployers(rov_perm, rate), config.rov_mode
            )
            origin_curve.append(origin_hijack_coverage(rov_policy))
            sub_curve.append(subprefix_coverage(rov_policy))
            coverage, contained = leak_coverage(
                _leak_policy(tier1, _deployers(leak_perm, rate))
            )
            leak_curve.append(coverage)
            leaks_contained += contained
        curves["origin-hijack"].append(tuple(origin_curve))
        curves["subprefix-hijack"].append(tuple(sub_curve))
        curves["route-leak"].append(tuple(leak_curve))

    if leaks_counter is not None and leaks_contained:
        leaks_counter.inc(leaks_contained)

    scenarios = {
        name: ScenarioResult(
            scenario=name,
            rates=config.rates,
            coverage=tuple(
                sum(curve[i] for curve in trial_curves) / len(trial_curves)
                for i in range(len(config.rates))
            ),
            trial_curves=tuple(trial_curves),
        )
        for name, trial_curves in curves.items()
    }
    return CampaignResult(
        config=config,
        engine="reference" if use_reference else "compiled",
        victim=victim,
        attacker=attacker,
        leaker=leaker,
        scenarios=scenarios,
        leaks_contained=leaks_contained,
    )
