"""Substrate security policy: per-AS ROV deployment and Peerlock.

A :class:`SecurityPolicy` describes which ASes on the simulated Internet
deploy which defense:

* **ROV** (RFC 6811 + RFC 8481): an AS in ``rov`` validates the origin of
  every candidate route against the shared :class:`~.rpki.RoaRegistry`.
  ``RovMode.DROP_INVALID`` refuses Invalid routes outright;
  ``RovMode.DEPREFER_INVALID`` accepts them only when no non-Invalid
  alternative exists (see :func:`repro.secroute.campaign.secure_propagate`
  for the two-pass evaluation).
* **Peerlock** (NANOG 67 / the Flexsealing measurement study): a locker AS
  lists *protected* ASNs — typically the other tier-1s — and refuses any
  route whose AS path contains a protected ASN **behind** the first hop.
  A route learned directly from the protected AS is fine; a path that
  transits it via a third party is a leak and is dropped.
* **Peerlock-lite**: an AS in ``peerlock_lite`` refuses customer-learned
  routes whose path (again, behind the first hop) contains any tier-1
  ASN — customers do not legitimately provide transit to the clique.

``compile_for(announcement)`` freezes the policy against one announcement
into a :class:`CompiledSecurity`: origin verdicts resolved, per-origin
drop sets materialized, and protected/tier-1 ASNs assigned bit positions
so both propagation paths can track "does this path contain a locked
ASN?" as a single int mask.  The compiled form also carries a hashable
``fingerprint`` (ROA registry version included) so the propagation
engine's outcome cache distinguishes security configurations.

This module deliberately never imports :mod:`repro.inet` — the
propagation engines consume :class:`CompiledSecurity` by duck type, which
keeps ``repro.bgp -> repro.secroute`` import chains acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from .rpki import RoaRegistry, ValidationState

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..net.addr import Prefix

__all__ = ["RovMode", "SecurityPolicy", "CompiledSecurity"]


class RovMode(Enum):
    """What a deploying AS does with an RPKI-Invalid route."""

    DROP_INVALID = "drop-invalid"
    DEPREFER_INVALID = "deprefer-invalid"

    def __str__(self) -> str:
        return self.value


# The duck type CompiledSecurity expects of an announcement: ``prefix``
# (Optional[Prefix]) and ``origins`` with ``.export_path()`` per spec.
# Annotated loosely to avoid importing repro.inet.
SpecsLike = Sequence[object]


@dataclass
class SecurityPolicy:
    """Deployment state of the substrate's route-security defenses.

    * ``roas`` — the shared ROA payload set (None = RPKI dark, everything
      NotFound).
    * ``rov`` — ASN → :class:`RovMode` for deploying ASes.
    * ``peerlock`` — locker ASN → the ASNs it protects.
    * ``peerlock_lite`` — ASes applying the tier-1-in-customer-path filter.
    * ``tier1`` — the clique the lite filter matches against; defaults to
      the union of all protected sets when left empty.
    """

    roas: Optional[RoaRegistry] = None
    rov: Dict[int, RovMode] = field(default_factory=dict)
    peerlock: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    peerlock_lite: FrozenSet[int] = frozenset()
    tier1: FrozenSet[int] = frozenset()

    # -- construction helpers --------------------------------------------------

    def deploy_rov(self, asns: Iterable[int], mode: RovMode = RovMode.DROP_INVALID) -> "SecurityPolicy":
        for asn in asns:
            self.rov[asn] = mode
        return self

    def lock(self, locker: int, protected: Iterable[int]) -> "SecurityPolicy":
        """Add a Peerlock protected-ASN list at ``locker`` (self-protection
        is meaningless and stripped)."""
        current = self.peerlock.get(locker, frozenset())
        self.peerlock[locker] = current | (frozenset(protected) - {locker})
        return self

    def lock_clique(self, clique: Iterable[int]) -> "SecurityPolicy":
        """Full Peerlock among a tier-1 clique: everyone protects everyone."""
        members = frozenset(clique)
        for member in members:
            self.lock(member, members)
        self.tier1 = self.tier1 | members
        return self

    def effective_tier1(self) -> FrozenSet[int]:
        if self.tier1:
            return self.tier1
        merged: FrozenSet[int] = frozenset()
        for protected in self.peerlock.values():
            merged = merged | protected
        return merged

    # -- validation ------------------------------------------------------------

    def validate_origin(self, prefix: "Optional[Prefix]", origin_asn: int) -> ValidationState:
        if self.roas is None or prefix is None:
            return ValidationState.NOT_FOUND
        return self.roas.validate(prefix, origin_asn)

    # -- compilation -----------------------------------------------------------

    def compile_for(
        self, announcement: object, deprefer_as_drop: bool = False
    ) -> "CompiledSecurity":
        """Freeze this policy against one announcement.

        ``deprefer_as_drop`` folds DEPREFER_INVALID deployers into the
        drop set — the strict first pass of the two-pass deprefer
        evaluation in :func:`repro.secroute.campaign.secure_propagate`.
        """
        prefix = getattr(announcement, "prefix", None)
        origins = getattr(announcement, "origins", ())
        verdicts: Dict[int, ValidationState] = {}
        for spec in origins:
            epath = spec.export_path()  # type: ignore[attr-defined]
            origin_asn = int(epath[-1])
            if origin_asn not in verdicts:
                verdicts[origin_asn] = self.validate_origin(prefix, origin_asn)

        modes = (
            (RovMode.DROP_INVALID, RovMode.DEPREFER_INVALID)
            if deprefer_as_drop
            else (RovMode.DROP_INVALID,)
        )
        droppers = frozenset(asn for asn, mode in self.rov.items() if mode in modes)
        drops = {
            origin: droppers
            for origin, verdict in verdicts.items()
            if verdict is ValidationState.INVALID
        }

        tier1 = self.effective_tier1()
        protected_union = frozenset(
            asn for protected in self.peerlock.values() for asn in protected
        )
        bits = {asn: 1 << i for i, asn in enumerate(sorted(tier1 | protected_union))}
        pmask = {
            locker: sum(bits[p] for p in protected if p in bits)
            for locker, protected in self.peerlock.items()
            if protected
        }
        t1mask = sum(bits[asn] for asn in tier1)

        roa_fp = None if self.roas is None else self.roas.fingerprint()
        prefix_key = None if prefix is None else (str(prefix),)
        fingerprint = (
            roa_fp,
            prefix_key,
            tuple(sorted((a, m.value) for a, m in self.rov.items())),
            tuple(sorted((a, tuple(sorted(p))) for a, p in self.peerlock.items())),
            tuple(sorted(self.peerlock_lite)),
            tuple(sorted(tier1)),
            deprefer_as_drop,
        )
        return CompiledSecurity(
            verdicts=verdicts,
            drops=drops,
            bits=bits,
            pmask=pmask,
            lite=self.peerlock_lite,
            t1mask=t1mask,
            fingerprint=fingerprint,
        )

    def has_deprefer(self) -> bool:
        return any(mode is RovMode.DEPREFER_INVALID for mode in self.rov.values())


@dataclass(frozen=True)
class CompiledSecurity:
    """A :class:`SecurityPolicy` frozen against one announcement.

    The propagation paths consult exactly one predicate:
    :meth:`rejects`.  ``bits``/``pmask``/``t1mask`` expose the same
    decisions as bitmask arithmetic for the compiled engine's
    mask-propagating converge loop (see ``_converge_secure``).
    """

    verdicts: Mapping[int, ValidationState]
    drops: Mapping[int, FrozenSet[int]]  # origin ASN -> ASes refusing it
    bits: Mapping[int, int]  # tracked (protected/tier-1) ASN -> bit
    pmask: Mapping[int, int]  # locker ASN -> protected bitmask
    lite: FrozenSet[int]  # ASes applying Peerlock-lite
    t1mask: int
    fingerprint: Tuple[object, ...]

    def verdict_of(self, origin_asn: int) -> ValidationState:
        return self.verdicts.get(origin_asn, ValidationState.NOT_FOUND)

    def path_mask(self, asns: Iterable[int]) -> int:
        bits = self.bits
        mask = 0
        for asn in asns:
            mask |= bits.get(asn, 0)
        return mask

    def rejects(self, target_asn: int, path: Sequence[int], from_customer: bool) -> bool:
        """Would ``target_asn`` refuse a candidate route with AS path
        ``path`` (first hop first, origin last)?

        Mirrors the compiled engine bit-for-bit: the ROV drop set keys on
        the path origin; the Peerlock masks test the path *behind* the
        first hop (direct announcements from a protected AS pass).
        """
        droppers = self.drops.get(path[-1])
        if droppers is not None and target_asn in droppers:
            return True
        pm = self.pmask.get(target_asn, 0)
        lm = self.t1mask if (from_customer and target_asn in self.lite) else 0
        if pm | lm:
            tail = self.path_mask(path[1:])
            if tail & (pm | lm):
                return True
        return False

    @property
    def active(self) -> bool:
        """False when the compiled form can never reject anything —
        callers may skip the secure propagation path entirely."""
        return bool(self.drops) or bool(self.pmask) or bool(self.lite and self.t1mask)
