"""Internet exchange points, route servers, and the peering ecosystem.

§3 of the paper keys PEERING's connectivity strategy on three facts about
the modern Internet, all modeled here:

* **Route servers** give instant multilateral peering: one BGP session to
  the route server yields peering with every other route-server member
  (554 of AMS-IX's 669 members in the paper's deployment).
* **Open peering policies** are prevalent: many members not on the route
  server still accept bilateral requests from anyone.
* **Remote peering** providers extend one physical deployment to many
  IXPs over virtual layer 2.

An :class:`IXP` tracks its members and their peering behaviour;
:meth:`IXP.join_route_server` and :meth:`IXP.request_bilateral` mutate the
underlying :class:`~repro.inet.topology.ASGraph` by adding peer edges, so
the propagation engine immediately sees the new adjacency.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .topology import ASGraph, ASNode, PeeringPolicy, TopologyError

__all__ = ["RequestOutcome", "PeeringRequest", "IXP", "RemotePeeringProvider"]


class RequestOutcome(Enum):
    """How a bilateral peering request ended (§4.1 "Obtaining peers")."""

    ACCEPTED = "accepted"
    REJECTED = "rejected"
    NO_RESPONSE = "no-response"
    QUESTIONS = "questions"  # replied asking why we want to peer


# Acceptance behaviour by policy, matching the paper's experience: open
# policies almost always accept even a bare request ("the vast majority
# accepted ... a handful have not responded ... one replied with
# questions").
_ACCEPT_PROBABILITY: Dict[PeeringPolicy, float] = {
    PeeringPolicy.OPEN: 0.88,
    PeeringPolicy.SELECTIVE: 0.45,
    PeeringPolicy.CASE_BY_CASE: 0.40,
    PeeringPolicy.CLOSED: 0.0,
    PeeringPolicy.UNLISTED: 0.25,
}
_NO_RESPONSE_PROBABILITY: Dict[PeeringPolicy, float] = {
    PeeringPolicy.OPEN: 0.09,
    PeeringPolicy.SELECTIVE: 0.25,
    PeeringPolicy.CASE_BY_CASE: 0.30,
    PeeringPolicy.CLOSED: 0.50,
    PeeringPolicy.UNLISTED: 0.60,
}
_QUESTIONS_PROBABILITY: Dict[PeeringPolicy, float] = {
    PeeringPolicy.OPEN: 0.03,
    PeeringPolicy.SELECTIVE: 0.10,
    PeeringPolicy.CASE_BY_CASE: 0.15,
    PeeringPolicy.CLOSED: 0.05,
    PeeringPolicy.UNLISTED: 0.05,
}


@dataclass(frozen=True)
class PeeringRequest:
    requester: int
    target: int
    outcome: RequestOutcome

    @property
    def accepted(self) -> bool:
        return self.outcome is RequestOutcome.ACCEPTED


class IXP:
    """One exchange: a membership list, an optional route server, and the
    bilateral-request workflow."""

    def __init__(
        self,
        name: str,
        graph: ASGraph,
        country: str = "NL",
        has_route_server: bool = True,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.graph = graph
        self.country = country
        self.has_route_server = has_route_server
        self._members: Set[int] = set()
        self._route_server_members: Set[int] = set()
        self._bilateral: Set[Tuple[int, int]] = set()
        # zlib.crc32, not hash(): str hashing is randomized per process
        # and would make peering outcomes differ between runs.
        self._rng = random.Random((zlib.crc32(name.encode()) & 0xFFFF) ^ seed)
        self.request_log: List[PeeringRequest] = []

    # -- membership -------------------------------------------------------------

    def add_member(self, asn: int, use_route_server: bool = False) -> None:
        node = self.graph.get(asn)
        self._members.add(asn)
        node.ixps.add(self.name)
        if use_route_server:
            if not self.has_route_server:
                raise TopologyError(f"{self.name} has no route server")
            self.join_route_server(asn)

    def members(self) -> Set[int]:
        return set(self._members)

    def member_count(self) -> int:
        return len(self._members)

    def route_server_members(self) -> Set[int]:
        return set(self._route_server_members)

    def non_route_server_members(self) -> Set[int]:
        return self._members - self._route_server_members

    def is_member(self, asn: int) -> bool:
        return asn in self._members

    def policy_census(self) -> Dict[PeeringPolicy, int]:
        """Peering-policy counts among members NOT on the route server —
        the population the paper characterizes (48/12/40/15 at AMS-IX)."""
        from .topology import ASKind

        census: Dict[PeeringPolicy, int] = {}
        for asn in self.non_route_server_members():
            node = self.graph.get(asn)
            if node.kind is ASKind.TESTBED:
                continue
            census[node.peering_policy] = census.get(node.peering_policy, 0) + 1
        return census

    # -- route server -------------------------------------------------------------

    def join_route_server(self, asn: int) -> Set[int]:
        """Connect ``asn`` to the route server: multilateral peering with
        every current route-server member.  Returns the set of new peers.

        This is the "instant peering with hundreds of ASes" effect from
        §4.1: a single session to the route server stands in for a full
        mesh of bilateral sessions.
        """
        if not self.has_route_server:
            raise TopologyError(f"{self.name} has no route server")
        if asn not in self._members:
            self.add_member(asn)
        gained: Set[int] = set()
        for other in self._route_server_members:
            if other == asn:
                continue
            if self.graph.relationship(asn, other) is None:
                self.graph.add_peering(asn, other)
                gained.add(other)
        self._route_server_members.add(asn)
        self.graph.get(asn).uses_route_server = True
        return gained

    # -- bilateral peering ------------------------------------------------------------

    def request_bilateral(self, requester: int, target: int) -> PeeringRequest:
        """Send a peering request; on acceptance the peer edge is added.

        The outcome is drawn from the target's published policy using this
        IXP's seeded RNG, so runs are reproducible.
        """
        if requester not in self._members or target not in self._members:
            raise TopologyError("both parties must be IXP members")
        if requester == target:
            raise TopologyError("cannot peer with self")
        policy = self.graph.get(target).peering_policy
        existing = self.graph.relationship(requester, target)
        if existing is not None:
            outcome = RequestOutcome.ACCEPTED  # already adjacent
        else:
            outcome = self._draw_outcome(policy)
            if outcome is RequestOutcome.ACCEPTED:
                self.graph.add_peering(requester, target)
                self._bilateral.add((min(requester, target), max(requester, target)))
        request = PeeringRequest(requester, target, outcome)
        self.request_log.append(request)
        return request

    def request_all_open(self, requester: int) -> List[PeeringRequest]:
        """Ask every open-policy non-route-server member to peer."""
        results = []
        for target in sorted(self.non_route_server_members()):
            if target == requester:
                continue
            if self.graph.get(target).peering_policy is PeeringPolicy.OPEN:
                results.append(self.request_bilateral(requester, target))
        return results

    def _draw_outcome(self, policy: PeeringPolicy) -> RequestOutcome:
        roll = self._rng.random()
        accept = _ACCEPT_PROBABILITY[policy]
        no_response = _NO_RESPONSE_PROBABILITY[policy]
        questions = _QUESTIONS_PROBABILITY[policy]
        if roll < accept:
            return RequestOutcome.ACCEPTED
        if roll < accept + no_response:
            return RequestOutcome.NO_RESPONSE
        if roll < accept + no_response + questions:
            return RequestOutcome.QUESTIONS
        return RequestOutcome.REJECTED

    def bilateral_peerings(self) -> Set[Tuple[int, int]]:
        return set(self._bilateral)

    def peers_of(self, asn: int) -> Set[int]:
        """Every IXP member adjacent to ``asn`` in the graph (route-server
        plus bilateral)."""
        return {m for m in self._members if m != asn and self.graph.relationship(asn, m) is not None}


@dataclass
class RemotePeeringProvider:
    """Virtual layer-2 reach from one physical port to many IXPs (the
    Hibernia Networks arrangement in §3): joining through the provider
    makes the AS a member of each reachable IXP without new hardware."""

    name: str
    reachable_ixps: List[IXP] = field(default_factory=list)

    def extend(self, asn: int, use_route_server: bool = True) -> Dict[str, Set[int]]:
        """Join ``asn`` to every reachable IXP; returns peers gained per IXP."""
        gained: Dict[str, Set[int]] = {}
        for ixp in self.reachable_ixps:
            ixp.add_member(asn)
            if use_route_server and ixp.has_route_server:
                gained[ixp.name] = ixp.join_route_server(asn)
            else:
                gained[ixp.name] = set()
        return gained
