"""Simulated Internet substrate: AS topology, Gao–Rexford propagation,
IXPs with route servers, peering ecosystem, and an AS-level data plane."""

from .analysis import (
    PeerReachability,
    country_coverage,
    peer_export_sizes,
    peer_reachability,
    top_cone_overlap,
)
from .dataplane import DataPlane, Delivery, DeliveryStatus
from .engine import (
    CompiledOutcome,
    CompiledTopology,
    OutcomeCache,
    PropagationEngine,
)
from .gen import AmsIxConfig, Internet, InternetConfig, build_amsix, build_internet
from .ixp import IXP, PeeringRequest, RemotePeeringProvider, RequestOutcome
from .rootcause import PathChange, classify_changes, locate_root_cause
from .routing import Announcement, ASRoute, OriginSpec, RouteKind, RoutingOutcome, propagate
from .topology import (
    ASGraph,
    ASKind,
    ASNode,
    PeeringPolicy,
    Relationship,
    TopologyError,
)

__all__ = [
    "PeerReachability",
    "country_coverage",
    "peer_export_sizes",
    "peer_reachability",
    "top_cone_overlap",
    "DataPlane",
    "Delivery",
    "DeliveryStatus",
    "CompiledOutcome",
    "CompiledTopology",
    "OutcomeCache",
    "PropagationEngine",
    "AmsIxConfig",
    "Internet",
    "InternetConfig",
    "build_amsix",
    "build_internet",
    "IXP",
    "PeeringRequest",
    "RemotePeeringProvider",
    "RequestOutcome",
    "PathChange",
    "classify_changes",
    "locate_root_cause",
    "Announcement",
    "ASRoute",
    "OriginSpec",
    "RouteKind",
    "RoutingOutcome",
    "propagate",
    "ASGraph",
    "ASKind",
    "ASNode",
    "PeeringPolicy",
    "Relationship",
    "TopologyError",
]
