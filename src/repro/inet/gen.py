"""Synthetic Internet generator.

Builds a policy-annotated AS graph with the structural features §4.1's
results depend on:

* a **tier-1 clique** (no providers, full peer mesh) atop a
  customer-provider hierarchy grown by preferential attachment, giving
  heavy-tailed customer cones like CAIDA AS-rank;
* **content/CDN ASes** with open peering policies and many prefixes
  (the YouTube/Netflix concentration the paper leans on);
* per-AS **countries** drawn from a worldwide distribution (Europe-heavy
  among IXP members) so "peers based in 59 countries" has an analogue;
* per-AS **prefix counts** drawn from a Zipf-like tail normalized to a
  target global table size (~520K, the Internet of 2014).

The generator is fully deterministic for a given
:class:`InternetConfig.seed`.
"""

from __future__ import annotations

import bz2
import gzip
import os
import random
from dataclasses import dataclass, field
from typing import (
    IO, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union,
)

from .ixp import IXP
from .topology import ASGraph, ASKind, ASNode, PeeringPolicy, Relationship

__all__ = [
    "InternetConfig",
    "AmsIxConfig",
    "CaidaConfig",
    "build_internet",
    "build_amsix",
    "build_caida_like",
    "load_caida_serial",
    "dump_caida_serial",
    "degree_stats",
    "Internet",
]


# Rough worldwide country pool; weights favour regions with dense IXP
# presence.  62 countries so a well-connected AS set can plausibly span
# the paper's 59.
_COUNTRIES: List[Tuple[str, float]] = [
    ("NL", 8), ("DE", 8), ("GB", 7), ("US", 10), ("FR", 5), ("RU", 4),
    ("UA", 2), ("PL", 3), ("SE", 3), ("NO", 2), ("DK", 2), ("FI", 2),
    ("BE", 2), ("CH", 2), ("AT", 2), ("CZ", 2), ("IT", 3), ("ES", 3),
    ("PT", 1), ("IE", 1), ("RO", 2), ("BG", 1), ("HU", 1), ("SK", 1),
    ("GR", 1), ("TR", 2), ("IL", 1), ("AE", 1), ("SA", 1), ("IN", 3),
    ("CN", 3), ("HK", 2), ("SG", 2), ("JP", 3), ("KR", 2), ("TW", 1),
    ("TH", 1), ("MY", 1), ("ID", 1), ("PH", 1), ("VN", 1), ("AU", 2),
    ("NZ", 1), ("BR", 3), ("AR", 1), ("CL", 1), ("CO", 1), ("MX", 2),
    ("PE", 1), ("CA", 2), ("ZA", 1), ("EG", 1), ("NG", 1), ("KE", 1),
    ("MA", 1), ("TN", 1), ("IS", 1), ("EE", 1), ("LV", 1), ("LT", 1),
    ("SI", 1), ("HR", 1),
]


@dataclass(frozen=True)
class InternetConfig:
    """Knobs for the synthetic Internet.  Defaults produce ~4000 ASes with
    a ~520K-prefix global table in a few seconds."""

    n_ases: int = 4000
    n_tier1: int = 12
    transit_fraction: float = 0.12
    content_fraction: float = 0.08
    total_prefixes: int = 520_000
    mean_providers: float = 1.8
    transit_peer_degree: int = 4
    tier1_pool_weight: int = 24
    eyeball_fraction: float = 0.08
    seed: int = 1914
    first_asn: int = 100


@dataclass(frozen=True)
class CaidaConfig:
    """Knobs for the Internet-scale generator (:func:`build_caida_like`).

    Defaults are calibrated against the public AS-level measurements the
    roadmap cites — CAIDA AS-rank for the hierarchy, Loye et al.'s
    complex-network analysis of the public peering ecosystem for the
    IXP-mediated peer edges:

    * **Heavy-tailed customer cones / degrees.** Preferential attachment
      where a provider re-enters the candidate pool once per customer it
      acquires yields a power-law degree tail (exponent ≈ 2.1, the value
      reported for the AS graph); the largest cones cover a large
      fraction of all ASes, as CAIDA AS-rank shows for real tier-1s.
    * **Small clique core.** ~16 tier-1s in a full peer mesh (the
      measured clique is 10–20 ASes).
    * **Zipf-sized IXPs.** Public peering LAN memberships are extremely
      skewed (a few DE-CIX/AMS-IX-scale fabrics, hundreds of small
      ones); IXP sizes here follow a Zipf law and each member peers with
      a *sample* of co-members rather than the full mesh, matching the
      measured mean adjacency (real IXP members do not all peer).
    * **Mean degree ≈ 4–6** overall (real AS graph: ~4.2 counting c2p
      only, ~6 with public p2p edges included).
    """

    n_ases: int = 50_000
    n_tier1: int = 16
    transit_fraction: float = 0.10
    content_fraction: float = 0.05
    mean_providers: float = 1.9
    tier1_seed_weight: int = 6
    n_ixps: int = 120
    ixp_member_fraction: float = 0.30
    ixp_zipf_exponent: float = 1.1
    ixp_peer_degree: int = 4
    total_prefixes: int = 600_000
    seed: int = 1914
    first_asn: int = 1

    def __post_init__(self) -> None:
        if self.n_ases < self.n_tier1 + 10:
            raise ValueError("n_ases too small for the configured tier-1 core")
        if not 1.0 <= self.mean_providers <= 2.0:
            raise ValueError("mean_providers must be in [1, 2]")


@dataclass(frozen=True)
class AmsIxConfig:
    """Membership structure of the modeled AMS-IX, matching §4.1: 669
    members, 554 on the route server; the 115 others split 48 open /
    12 closed / 40 case-by-case / 15 unlisted."""

    total_members: int = 669
    route_server_members: int = 554
    open_policy: int = 48
    closed_policy: int = 12
    case_by_case: int = 40
    unlisted: int = 15
    name: str = "AMS-IX"
    country: str = "NL"

    def __post_init__(self) -> None:
        rest = self.open_policy + self.closed_policy + self.case_by_case + self.unlisted
        if self.route_server_members + rest != self.total_members:
            raise ValueError("AMS-IX member split does not sum to total_members")

    @classmethod
    def scaled(cls, total_members: int, name: str = "AMS-IX", country: str = "NL") -> "AmsIxConfig":
        """The paper's membership structure scaled down to
        ``total_members`` (for small test internets), preserving the
        554:48:12:40:15 proportions."""
        paper = cls()
        factor = total_members / paper.total_members
        rs = round(paper.route_server_members * factor)
        open_p = round(paper.open_policy * factor)
        closed = round(paper.closed_policy * factor)
        cbc = round(paper.case_by_case * factor)
        unlisted = total_members - rs - open_p - closed - cbc
        if unlisted < 0:
            rs += unlisted
            unlisted = 0
        return cls(
            total_members=total_members,
            route_server_members=rs,
            open_policy=open_p,
            closed_policy=closed,
            case_by_case=cbc,
            unlisted=unlisted,
            name=name,
            country=country,
        )


@dataclass
class Internet:
    """The generated world: graph + IXPs + bookkeeping."""

    graph: ASGraph
    ixps: Dict[str, IXP] = field(default_factory=dict)
    config: Optional[InternetConfig] = None
    caida_config: Optional[CaidaConfig] = None

    @property
    def amsix(self) -> IXP:
        return self.ixps["AMS-IX"]

    def total_prefixes(self) -> int:
        return sum(node.prefix_count for node in self.graph.nodes())


def _draw_country(rng: random.Random) -> str:
    total = sum(w for _, w in _COUNTRIES)
    roll = rng.uniform(0, total)
    acc = 0.0
    for country, weight in _COUNTRIES:
        acc += weight
        if roll <= acc:
            return country
    return _COUNTRIES[-1][0]


def _zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


def build_internet(config: InternetConfig = InternetConfig()) -> Internet:
    """Generate the AS graph (no IXPs yet; see :func:`build_amsix`)."""
    rng = random.Random(config.seed)
    graph = ASGraph()
    next_asn = config.first_asn

    n_transit = max(4, int(config.n_ases * config.transit_fraction))
    n_content = max(2, int(config.n_ases * config.content_fraction))
    n_access = config.n_ases - config.n_tier1 - n_transit - n_content
    if n_access <= 0:
        raise ValueError("n_ases too small for the configured fractions")

    # --- Tier-1 clique ------------------------------------------------------
    tier1: List[int] = []
    for i in range(config.n_tier1):
        node = ASNode(
            asn=next_asn,
            name=f"T1-{i}",
            country=_draw_country(rng),
            kind=ASKind.TIER1,
            peering_policy=PeeringPolicy.SELECTIVE,
        )
        graph.add_as(node)
        tier1.append(next_asn)
        next_asn += 1
    for i, a in enumerate(tier1):
        for b in tier1[i + 1 :]:
            graph.add_peering(a, b)

    # --- Transit hierarchy (preferential attachment on current degree) --------
    transit: List[int] = []
    attach_pool: List[int] = list(tier1)  # provider candidates, repeated by cone

    def pick_providers(count: int, pool: Sequence[int], exclude: int) -> Set[int]:
        chosen: Set[int] = set()
        candidates = [asn for asn in pool if asn != exclude]
        while candidates and len(chosen) < count:
            pick = rng.choice(candidates)
            chosen.add(pick)
            candidates = [asn for asn in candidates if asn != pick]
        return chosen

    for i in range(n_transit):
        node = ASNode(
            asn=next_asn,
            name=f"TR-{i}",
            country=_draw_country(rng),
            kind=ASKind.TRANSIT,
            peering_policy=rng.choice(
                [PeeringPolicy.OPEN, PeeringPolicy.SELECTIVE, PeeringPolicy.CASE_BY_CASE]
            ),
        )
        graph.add_as(node)
        n_providers = 1 + (1 if rng.random() < 0.6 else 0)
        for provider in pick_providers(n_providers, attach_pool, node.asn):
            graph.add_provider(node.asn, provider)
        transit.append(node.asn)
        # Preferential attachment: transit providers join the pool several
        # times so later ASes attach to them more often (cone heavy tail).
        attach_pool.extend([node.asn] * 2)
        next_asn += 1

    # Most stub mass attaches directly to tier-1/very large transit (which
    # do not peer at IXP route servers); this is what keeps peer-route
    # coverage at the paper's ~1/4 rather than near-complete.
    attach_pool.extend(tier1 * config.tier1_pool_weight)

    # Peer mesh among transits (sparse, degree-bounded).
    for asn in transit:
        others = [t for t in transit if t != asn]
        rng.shuffle(others)
        for other in others[: config.transit_peer_degree]:
            if graph.relationship(asn, other) is None and rng.random() < 0.35:
                graph.add_peering(asn, other)

    # --- Content / CDN ASes -------------------------------------------------
    content: List[int] = []
    content_names = [
        "Google", "Netflix", "Akamai", "Microsoft", "CloudCo", "StreamCo",
        "Hurricane Electric", "GoDaddy", "Airtel", "Pacnet", "RETN",
        "Terremark", "TransTeleCom", "EdgeCast", "Fastly-like", "OVH-like",
    ]
    for i in range(n_content):
        name = content_names[i] if i < len(content_names) else f"CDN-{i}"
        node = ASNode(
            asn=next_asn,
            name=name,
            country=_draw_country(rng),
            kind=ASKind.CONTENT,
            # Content providers overwhelmingly peer openly (§3).
            peering_policy=PeeringPolicy.OPEN if rng.random() < 0.85 else PeeringPolicy.SELECTIVE,
        )
        graph.add_as(node)
        providers = pick_providers(1 + (1 if rng.random() < 0.5 else 0), transit + tier1, node.asn)
        for provider in providers:
            graph.add_provider(node.asn, provider)
        content.append(node.asn)
        next_asn += 1

    # --- Access / enterprise edge ----------------------------------------------
    access: List[int] = []
    provider_pool = attach_pool  # tier1 + weighted transit
    n_eyeballs = max(1, int(n_access * config.eyeball_fraction))
    for i in range(n_access):
        # A slice of the access tier models large incumbent eyeball ISPs:
        # they buy transit from tier-1s directly and originate a large
        # share of the global table, but are not IXP route-server members.
        # They are the bulk of the ~3/4 of the Internet that PEERING can
        # only reach via transit (§4.1).
        if i < n_eyeballs:
            node = ASNode(
                asn=next_asn,
                name=f"EYEBALL-{i}",
                country=_draw_country(rng),
                kind=ASKind.ACCESS,
                peering_policy=PeeringPolicy.SELECTIVE,
            )
            graph.add_as(node)
            for provider in pick_providers(2, tier1, node.asn):
                graph.add_provider(node.asn, provider)
            access.append(node.asn)
            next_asn += 1
            continue
        kind = ASKind.ACCESS if rng.random() < 0.7 else ASKind.ENTERPRISE
        node = ASNode(
            asn=next_asn,
            name=f"EDGE-{i}",
            country=_draw_country(rng),
            kind=kind,
            peering_policy=rng.choices(
                [
                    PeeringPolicy.OPEN,
                    PeeringPolicy.SELECTIVE,
                    PeeringPolicy.CASE_BY_CASE,
                    PeeringPolicy.CLOSED,
                    PeeringPolicy.UNLISTED,
                ],
                weights=[35, 15, 25, 10, 15],
            )[0],
        )
        graph.add_as(node)
        n_providers = 1 + (1 if rng.random() < (config.mean_providers - 1.0) else 0)
        for provider in pick_providers(n_providers, provider_pool, node.asn):
            graph.add_provider(node.asn, provider)
        access.append(node.asn)
        next_asn += 1

    _assign_prefix_counts(graph, config, rng, tier1, transit, content, access)
    graph.validate()
    return Internet(graph=graph, config=config)


def _assign_prefix_counts(
    graph: ASGraph,
    config: InternetConfig,
    rng: random.Random,
    tier1: List[int],
    transit: List[int],
    content: List[int],
    access: List[int],
) -> None:
    """Zipf-ish prefix counts, normalized so they sum to total_prefixes.

    Kind multipliers keep transit/content ASes originating far more
    prefixes than stubs, which drives the heavy-tailed per-peer export
    sizes in §4.1 ("only our 5 largest peers give us more than 10K").
    """
    multipliers = {
        ASKind.TIER1: 12.0,
        ASKind.TRANSIT: 3.0,
        ASKind.CONTENT: 3.0,
        ASKind.ACCESS: 1.0,
        ASKind.ENTERPRISE: 0.5,
    }
    raw: Dict[int, float] = {}
    for asn in tier1 + transit + content + access:
        node = graph.get(asn)
        base = multipliers.get(node.kind, 1.0)
        if node.name.startswith("EYEBALL-"):
            base = 90.0  # incumbent ISPs hold a large share of the table
        # Mild Pareto tail on top of the kind multiplier.
        raw[asn] = base * rng.paretovariate(1.6)
    scale = config.total_prefixes / sum(raw.values())
    for asn, weight in raw.items():
        graph.get(asn).prefix_count = max(1, round(weight * scale))


def build_amsix(
    internet: Internet,
    config: AmsIxConfig = AmsIxConfig(),
    seed: int = 7,
    rs_sort_jitter: float = 0.8,
) -> IXP:
    """Attach an AMS-IX-shaped IXP to the generated Internet.

    Members are drawn with a European bias and content/transit ASes are
    over-represented (they are the ASes that show up at big IXPs); the
    route-server/bilateral/policy split follows the paper exactly.
    """
    graph = internet.graph
    rng = random.Random(seed)
    ixp = IXP(config.name, graph, country=config.country, seed=seed)

    europe = {
        "NL", "DE", "GB", "FR", "BE", "CH", "AT", "SE", "NO", "DK", "FI",
        "PL", "CZ", "IT", "ES", "PT", "IE", "RO", "BG", "HU", "SK", "GR",
        "EE", "LV", "LT", "SI", "HR", "IS", "RU", "UA", "TR",
    }

    def membership_weight(node: ASNode) -> float:
        # Tier-1s sell transit; they do not join route servers or peer
        # openly at IXPs, so they are absent from the modeled membership
        # (matching why PEERING's peer routes cover only ~1/4 of the
        # Internet: the rest hides behind transit-only ASes).
        if node.kind is ASKind.TIER1:
            return 0.0
        weight = 1.0
        if node.country in europe:
            weight *= 4.0
        if node.kind is ASKind.CONTENT:
            weight *= 8.0
        if node.kind is ASKind.TRANSIT:
            # Big networks show up at big IXPs: presence scales gently
            # with customer-cone size.
            import math

            cone = len(graph.customer_cone(node.asn))
            weight *= 1.0 + math.log2(max(2, cone)) / 2.0
        return weight

    eligible = [
        (node, membership_weight(node)) for node in graph.nodes()
    ]
    eligible = [(node, weight) for node, weight in eligible if weight > 0]
    if len(eligible) < config.total_members:
        raise ValueError(
            f"not enough eligible ASes ({len(eligible)}) for "
            f"{config.total_members} IXP members; use AmsIxConfig.scaled()"
        )
    nodes = [node for node, _ in eligible]
    weights = [weight for _, weight in eligible]
    members: List[int] = []
    chosen: Set[int] = set()
    # Weighted sampling without replacement.
    while len(members) < config.total_members:
        pick = rng.choices(range(len(nodes)), weights=weights)[0]
        asn = nodes[pick].asn
        if asn in chosen:
            continue
        chosen.add(asn)
        members.append(asn)

    # Route-server users skew small, but not strictly: some very large
    # networks (Hurricane Electric, famously) peer with everyone via route
    # servers.  A lognormal jitter on the cone-size sort key keeps a
    # handful of big exporters on the route server while the largest
    # members mostly stay bilateral/selective.
    members.sort(
        key=lambda asn: (
            len(graph.customer_cone(asn)) * rng.lognormvariate(0.0, rs_sort_jitter),
            asn,
        )
    )
    rs_members = members[: config.route_server_members]
    bilateral_only = members[config.route_server_members :]

    for asn in rs_members:
        ixp.add_member(asn)
    # Join the route server in one pass (mesh built incrementally).
    for asn in rs_members:
        ixp.join_route_server(asn)

    # The bilateral-only members get the paper's exact policy split.
    policies = (
        [PeeringPolicy.OPEN] * config.open_policy
        + [PeeringPolicy.CLOSED] * config.closed_policy
        + [PeeringPolicy.CASE_BY_CASE] * config.case_by_case
        + [PeeringPolicy.UNLISTED] * config.unlisted
    )
    rng.shuffle(policies)
    for asn, policy in zip(bilateral_only, policies):
        graph.get(asn).peering_policy = policy
        ixp.add_member(asn)

    internet.ixps[config.name] = ixp
    return ixp


# ---------------------------------------------------------------------------
# Internet-scale generator (CAIDA-calibrated)
# ---------------------------------------------------------------------------


def build_caida_like(
    n_ases: int = 50_000, config: Optional[CaidaConfig] = None
) -> Internet:
    """Generate an Internet-scale AS graph (50k+ ASes in a few seconds).

    Structure targets are documented on :class:`CaidaConfig`; the
    construction differs from :func:`build_internet` in three ways that
    matter at this scale:

    * **One pool slot per customer won.** Provider candidates live in a
      flat list; every time an AS acquires a customer it is appended
      again, so sampling a uniform index *is* preferential attachment —
      O(1) per edge instead of :func:`build_internet`'s per-pick list
      rebuild, and the resulting customer-cone sizes follow the measured
      power law.
    * **Zipf-sized IXPs with sampled peer meshes.** Members draw a
      bounded number of co-member peers instead of joining a full
      route-server mesh (a 3k-member full mesh alone would be ~5M
      edges — the real AS graph has ~0.4M).
    * **Batched mutation.** The whole build runs under
      :meth:`ASGraph.batch`, so ~10^5 edge insertions cost one graph
      version bump and one cache invalidation.

    An explicit ``config`` takes precedence over ``n_ases``.
    """
    cfg = config if config is not None else CaidaConfig(n_ases=n_ases)
    rng = random.Random(cfg.seed)
    graph = ASGraph()

    n_rest = cfg.n_ases - cfg.n_tier1
    n_transit = max(8, int(cfg.n_ases * cfg.transit_fraction))
    n_content = max(4, int(cfg.n_ases * cfg.content_fraction))
    if n_transit + n_content > n_rest:
        raise ValueError("n_ases too small for the configured fractions")
    country_names = [c for c, _ in _COUNTRIES]
    country_weights = [w for _, w in _COUNTRIES]
    countries = rng.choices(country_names, weights=country_weights, k=cfg.n_ases)
    extra_provider_p = cfg.mean_providers - 1.0

    tier1: List[int] = []
    transit: List[int] = []
    content: List[int] = []
    ixps: Dict[str, IXP] = {}

    with graph.batch():
        # --- tier-1 clique core --------------------------------------------
        for i in range(cfg.n_tier1):
            asn = cfg.first_asn + i
            graph.add_as(
                ASNode(
                    asn=asn,
                    name=f"T1-{i}",
                    country=countries[i],
                    kind=ASKind.TIER1,
                    peering_policy=PeeringPolicy.SELECTIVE,
                )
            )
            tier1.append(asn)
        for i, a in enumerate(tier1):
            for b in tier1[i + 1 :]:
                graph.add_peering(a, b)

        # --- customer-provider hierarchy (flat-pool preferential attach) ---
        pool: List[int] = tier1 * cfg.tier1_seed_weight
        pool_append = pool.append
        randrange = rng.randrange
        random_ = rng.random
        next_asn = cfg.first_asn + cfg.n_tier1
        for i in range(n_rest):
            asn = next_asn
            next_asn += 1
            if i < n_transit:
                kind = ASKind.TRANSIT
                policy = (
                    PeeringPolicy.OPEN if random_() < 0.5 else PeeringPolicy.SELECTIVE
                )
                name = f"TR-{i}"
            elif i < n_transit + n_content:
                kind = ASKind.CONTENT
                policy = PeeringPolicy.OPEN
                name = f"CDN-{i - n_transit}"
            else:
                kind = ASKind.ACCESS if random_() < 0.8 else ASKind.ENTERPRISE
                policy = PeeringPolicy.UNLISTED
                name = ""
            graph.add_as(
                ASNode(
                    asn=asn,
                    name=name,
                    country=countries[cfg.n_tier1 + i],
                    kind=kind,
                    peering_policy=policy,
                )
            )
            want = 1 + (1 if random_() < extra_provider_p else 0)
            chosen: Set[int] = set()
            pool_len = len(pool)
            attempts = 0
            # The pool holds only earlier ASes, so attachment is acyclic
            # and never self-referential by construction.
            while len(chosen) < want and attempts < 16:
                attempts += 1
                chosen.add(pool[randrange(pool_len)])
            for provider in chosen:
                graph.add_provider(asn, provider)
                pool_append(provider)  # one slot per customer won
            if kind is ASKind.TRANSIT:
                transit.append(asn)
                pool_append(asn)
            elif kind is ASKind.CONTENT:
                content.append(asn)

        # --- IXP-mediated public peering (Zipf sizes, sampled meshes) -------
        member_slots = int(cfg.n_ases * cfg.ixp_member_fraction)
        zipf = _zipf_weights(cfg.n_ixps, cfg.ixp_zipf_exponent)
        zsum = sum(zipf)
        sizes = [max(4, int(member_slots * w / zsum)) for w in zipf]
        # Degree-weighted membership (big networks show up at big IXPs),
        # content ASes over-represented, tier-1s absent: they sell
        # transit instead of peering openly at public fabrics.
        tier1_set = set(tier1)
        member_pool: List[int] = [a for a in pool if a not in tier1_set]
        member_pool.extend(content * 8)
        if not member_pool:  # degenerate tiny configs
            member_pool = list(transit) or list(content) or list(tier1)
        member_pool_len = len(member_pool)
        for rank, size in enumerate(sizes):
            ixp_name = f"IXP-{rank}"
            ixp = IXP(
                ixp_name, graph, country=_draw_country(rng), seed=cfg.seed + rank
            )
            members_set: Set[int] = set()
            attempts = 0
            limit = size * 8
            while len(members_set) < size and attempts < limit:
                attempts += 1
                members_set.add(member_pool[randrange(member_pool_len)])
            members = sorted(members_set)
            for asn in members:
                ixp.add_member(asn)
            m = len(members)
            for asn in members:
                for _ in range(cfg.ixp_peer_degree):
                    other = members[randrange(m)]
                    if other != asn and graph.relationship(asn, other) is None:
                        graph.add_peering(asn, other)
            ixps[ixp_name] = ixp

        _assign_caida_prefix_counts(graph, cfg, rng)

    graph.validate()
    return Internet(graph=graph, ixps=ixps, caida_config=cfg)


def _assign_caida_prefix_counts(
    graph: ASGraph, cfg: CaidaConfig, rng: random.Random
) -> None:
    """Zipf-ish per-AS prefix counts normalized to the global table size
    (same shape as :func:`_assign_prefix_counts`, one O(n) pass)."""
    multipliers = {
        ASKind.TIER1: 12.0,
        ASKind.TRANSIT: 4.0,
        ASKind.CONTENT: 3.0,
        ASKind.ACCESS: 1.0,
        ASKind.ENTERPRISE: 0.5,
    }
    raw: List[Tuple[ASNode, float]] = []
    total = 0.0
    for node in graph.nodes():
        weight = multipliers.get(node.kind, 1.0) * rng.paretovariate(1.6)
        raw.append((node, weight))
        total += weight
    scale = cfg.total_prefixes / total
    for node, weight in raw:
        node.prefix_count = max(1, round(weight * scale))


def degree_stats(graph: ASGraph) -> Dict[str, float]:
    """Calibration summary for a generated graph.

    Compare against the targets documented on :class:`CaidaConfig`:
    mean degree ≈ 4–6, a heavy tail (the top 1% of ASes holding a large
    share of all adjacencies), and tier-1 customer cones covering most
    of the Internet.
    """
    n = len(graph)
    degrees = sorted(
        (len(graph.neighbors(asn)) for asn in graph.asns()), reverse=True
    )
    edges = graph.edge_count()
    degree_sum = sum(degrees)
    top1 = max(1, n // 100)
    best_cone = 0
    for asn in graph.tier1_clique():
        best_cone = max(best_cone, len(graph.customer_cone(asn)))
    return {
        "n_ases": float(n),
        "edges": float(edges),
        "mean_degree": (2.0 * edges / n) if n else 0.0,
        "max_degree": float(degrees[0]) if degrees else 0.0,
        "top1pct_degree_share": (
            sum(degrees[:top1]) / degree_sum if degree_sum else 0.0
        ),
        "max_cone_fraction": (best_cone / n) if n else 0.0,
    }


# -- CAIDA serial ingestion ----------------------------------------------------

SerialSource = Union[str, "os.PathLike[str]", Iterable[str]]


def _serial_lines(source: SerialSource) -> Iterator[str]:
    """Lines of a serial file: a path (``.gz``/``.bz2`` transparently
    decompressed) or any iterable of strings."""
    if isinstance(source, (str, os.PathLike)):
        path = os.fspath(source)
        fh: IO[str]
        if path.endswith(".bz2"):
            fh = bz2.open(path, "rt", encoding="utf-8")
        elif path.endswith(".gz"):
            fh = gzip.open(path, "rt", encoding="utf-8")
        else:
            fh = open(path, "r", encoding="utf-8")
        with fh:
            yield from fh
    else:
        yield from source


def load_caida_serial(source: SerialSource) -> Internet:
    """Load a published CAIDA AS-relationship *serial* snapshot.

    The public format is one edge per line — ``<provider>|<customer>|-1``
    for transit, ``<peer>|<peer>|0`` for settlement-free peering — with
    ``#`` comment headers; newer snapshots append a fourth ``|source``
    field (``bgp``/``mlp``/…), which is ignored.  ``source`` may be a
    filesystem path (``.gz``/``.bz2`` decompressed transparently) or any
    iterable of lines, so tests can feed literal strings.

    Exact duplicate lines are tolerated (snapshots occasionally repeat
    an edge); conflicting relationships for one AS pair, self-loops,
    unknown codes, and malformed lines raise :class:`ValueError` with
    the offending line number.  The whole build runs under
    :meth:`ASGraph.batch` — one version bump however many edges — and
    node/edge insertion order is a pure function of the input, so the
    resulting graph version and :func:`degree_stats` are identical
    across runs on the same snapshot.

    AS kinds are inferred from the loaded structure (provider-free ASes
    with customers are the clique :meth:`ASGraph.tier1_clique` reports,
    other transit ASes are TRANSIT, the rest ACCESS), which is what
    makes the stats directly comparable with :func:`build_caida_like`
    output.  Node metadata beyond that (names, countries, IXP
    memberships) is not part of the serial format.
    """
    graph = ASGraph()
    # Local bookkeeping: inside batch() the graph's frozen views are
    # deliberately stale, so dup/conflict detection must not consult
    # graph.relationship().
    seen: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
    known: Set[int] = set()
    with graph.batch():
        for lineno, raw in enumerate(_serial_lines(source), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"line {lineno}: expected 'a|b|rel[|source]', got {line!r}"
                )
            try:
                a, b, rel = int(parts[0]), int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise ValueError(
                    f"line {lineno}: non-integer field in {line!r}"
                ) from exc
            if rel not in (-1, 0):
                raise ValueError(
                    f"line {lineno}: unknown relationship code {rel}"
                )
            if a == b:
                raise ValueError(f"line {lineno}: self-loop on AS{a}")
            pair = (a, b) if a < b else (b, a)
            norm = (-1, a, b) if rel == -1 else (0, *pair)
            prev = seen.get(pair)
            if prev is not None:
                if prev != norm:
                    raise ValueError(
                        f"line {lineno}: conflicting relationship for "
                        f"AS{a}--AS{b}"
                    )
                continue  # exact duplicate
            seen[pair] = norm
            for asn in pair:
                if asn not in known:
                    known.add(asn)
                    graph.add_as(ASNode(asn=asn, name=f"AS{asn}"))
            if rel == -1:
                graph.add_provider(customer=b, provider=a)
            else:
                graph.add_peering(a, b)
    for asn in graph.asns():
        node = graph.get(asn)
        if graph.customers(asn):
            node.kind = (
                ASKind.TIER1 if not graph.providers(asn) else ASKind.TRANSIT
            )
        else:
            node.kind = ASKind.ACCESS
    return Internet(graph=graph)


def dump_caida_serial(
    graph: ASGraph,
    path: Union[str, "os.PathLike[str]"],
    comment: str = "repro.inet AS-relationship dump",
) -> None:
    """Write ``graph`` in the CAIDA AS-relationship serial format.

    Edges stream in :meth:`ASGraph.relationship_edges` order, so the
    bytes are a pure function of the graph and
    ``load_caida_serial(path)`` reproduces the topology exactly
    (relationships and ASNs; generator metadata is out of format).
    ``.gz``/``.bz2`` suffixes compress transparently.
    """
    c2p: List[str] = []
    p2p: List[str] = []
    for a, b, rel in graph.relationship_edges():
        if rel is Relationship.CUSTOMER_PROVIDER:
            c2p.append(f"{b}|{a}|-1\n")  # serial code orients provider first
        else:
            p2p.append(f"{a}|{b}|0\n")
    out = os.fspath(path)
    fh: IO[str]
    if out.endswith(".bz2"):
        fh = bz2.open(out, "wt", encoding="utf-8")
    elif out.endswith(".gz"):
        fh = gzip.open(out, "wt", encoding="utf-8")
    else:
        fh = open(out, "w", encoding="utf-8")
    with fh:
        fh.write(f"# {comment}\n")
        fh.write(
            f"# {len(graph)} ASes | {len(c2p)} provider-customer edges"
            f" | {len(p2p)} peer edges\n"
        )
        fh.write("# format: <provider-as>|<customer-as>|-1 "
                 "or <peer-as>|<peer-as>|0\n")
        fh.writelines(c2p)
        fh.writelines(p2p)
