"""PoiRoot-style root-cause localization for interdomain path changes.

PoiRoot (SIGCOMM 2013, [26] in the paper) "made announcements to expose
ASes' routing preferences and find causes of path changes" and "used
PEERING to make controlled path changes, to use as ground truth".  This
module implements the analysis side over our substrate:

Given the converged routing before and after an event, the *root cause*
of a vantage point's path change is the AS closest to the origin whose
selected route changed — every AS between it and the vantage changed
only *because* its downstream choice changed (induced changes), while
ASes past it kept their routes.

:func:`locate_root_cause` walks the old and new paths from the vantage
toward the origin and returns the deepest AS whose own selection
differs; :func:`classify_changes` aggregates over every vantage.  The
controlled-experiment workflow (flip an announcement, diff outcomes,
verify the root cause is the AS you manipulated) is exercised in the
tests and gives exactly the ground-truth loop the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .routing import RoutingOutcome

__all__ = ["PathChange", "locate_root_cause", "classify_changes"]


@dataclass(frozen=True)
class PathChange:
    """One vantage point's observed change and its localized cause."""

    vantage: int
    old_path: Tuple[int, ...]
    new_path: Tuple[int, ...]
    root_cause: Optional[int]  # None when the change couldn't be localized
    induced: Tuple[int, ...]  # ASes that changed only transitively

    @property
    def changed(self) -> bool:
        return self.old_path != self.new_path


def _selection(outcome: RoutingOutcome, asn: int) -> Optional[Tuple[int, ...]]:
    route = outcome.route(asn)
    return None if route is None else route.path


def locate_root_cause(
    before: RoutingOutcome,
    after: RoutingOutcome,
    vantage: int,
) -> PathChange:
    """Localize the cause of ``vantage``'s path change between outcomes.

    The candidate set is every AS on the vantage's old and new forwarding
    chains; the root cause is the candidate *furthest from the vantage*
    (closest to the origin) whose own selected route changed.  ASes
    before it on the chain are classified as induced.
    """
    old_path = _selection(before, vantage) or ()
    new_path = _selection(after, vantage) or ()
    if old_path == new_path:
        return PathChange(vantage, old_path, new_path, root_cause=None, induced=())

    # Candidates ordered vantage-first: the vantage itself, then the hops
    # of both chains in order.  (Chains include origin last.)
    candidates: List[int] = [vantage]
    for hop in list(old_path) + list(new_path):
        if hop not in candidates:
            candidates.append(hop)

    changed = [
        asn
        for asn in candidates
        if _selection(before, asn) != _selection(after, asn)
    ]
    if not changed:
        return PathChange(vantage, old_path, new_path, root_cause=None, induced=())

    # Depth = distance from the origin: fewer remaining hops means deeper.
    def depth(asn: int) -> int:
        selection = _selection(after, asn)
        if selection is None:
            selection = _selection(before, asn) or ()
        return len(selection)

    root = min(changed, key=lambda asn: (depth(asn), asn))

    # Announcement-change attribution: when the deepest changed AS gained
    # or lost a *direct* route to the origin, the true cause is the
    # origin's export change (it started/stopped announcing to that
    # neighbor) — PoiRoot attributes such changes to the origin.
    origin = (new_path or old_path)[-1] if (new_path or old_path) else None
    if origin is not None:
        root_old = _selection(before, root) or ()
        root_new = _selection(after, root) or ()
        gained_direct = root_new == (origin,) and root_old != (origin,)
        lost_direct = root_old == (origin,) and root_new != (origin,)
        if gained_direct or lost_direct:
            changed = [origin] + [asn for asn in changed if asn != origin]
            root = origin

    induced = tuple(asn for asn in changed if asn != root)
    return PathChange(
        vantage, old_path, new_path, root_cause=root, induced=induced
    )


def classify_changes(
    before: RoutingOutcome,
    after: RoutingOutcome,
    vantages: List[int],
) -> Dict[Optional[int], List[PathChange]]:
    """Root-cause report over many vantages: {cause: [changes]}.

    A controlled experiment expects a single dominant cause — the AS (or
    origin) whose announcement the experimenter flipped.
    """
    report: Dict[Optional[int], List[PathChange]] = {}
    for vantage in vantages:
        change = locate_root_cause(before, after, vantage)
        if change.changed:
            report.setdefault(change.root_cause, []).append(change)
    return report
