"""AS-level data plane: packets follow the converged control plane.

Given a :class:`~repro.inet.routing.RoutingOutcome` per destination
prefix, the data plane forwards packets AS by AS, recording the traversed
path, expiring TTLs, and detecting blackholes.  This is what "controlling
traffic" (§2/§3) exercises: PECAN-style alternate-path measurements,
anycast catchment, interception experiments, and spoofing control all ride
on it.

Installed prefixes are indexed in a :class:`~repro.net.trie.PrefixTrie`
per address family, so the per-packet longest-prefix match is one radix
descent instead of a scan over every installed outcome (the win is
measured in ``benchmarks/bench_trie.py`` at forwarding-table scale).

Spoofing: each AS can enforce source-address validation on traffic it
originates (BCP 38).  PEERING's safety rules allow only "carefully
controlled" spoofing — the testbed-level checks live in
:mod:`repro.core.safety`; here the mechanism is modeled.

FlowSpec: attach a :class:`~repro.secroute.flowspec.FlowSpecDistributor`
with :meth:`DataPlane.attach_flowspec` and every packet is checked
against the installed rules at each AS hop *before* forwarding —
discarded (``FLOWSPEC_DROPPED``), rate-limited (``RATE_LIMITED``),
diverted to a scrubbing AS (``SCRUBBED``), or remarked and forwarded.

TTL semantics (pinned by tests): the TTL is a *transit* budget.  It is
checked only when another forwarding hop is required, so a packet whose
TTL reaches zero exactly as it arrives at an origin AS for the matched
prefix is DELIVERED, not TTL_EXPIRED — the origin check deliberately
precedes the expiry check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from ..net.addr import IPAddress, Prefix
from ..net.packet import Packet
from ..net.trie import PrefixTrie
from ..secroute.flowspec import EnforcementVerdict
from .routing import RoutingOutcome
from .topology import ASGraph

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..secroute.flowspec import FlowSpecDistributor

__all__ = ["DeliveryStatus", "Delivery", "DataPlane"]


from dataclasses import dataclass
from enum import Enum


class DeliveryStatus(Enum):
    DELIVERED = "delivered"
    BLACKHOLE = "blackhole"  # some AS had no route
    TTL_EXPIRED = "ttl-expired"
    SOURCE_FILTERED = "source-filtered"  # BCP 38 dropped a spoofed packet
    INTERCEPTED = "intercepted"  # delivered to an AS that is not the
    # legitimate origin (hijack experiments)
    FLOWSPEC_DROPPED = "flowspec-dropped"  # traffic-rate 0 (discard) rule
    RATE_LIMITED = "rate-limited"  # traffic-rate budget exhausted
    SCRUBBED = "scrubbed"  # redirected to a scrubbing AS


@dataclass
class Delivery:
    """Outcome of injecting one packet at an AS."""

    status: DeliveryStatus
    packet: Packet
    path: Tuple[int, ...]  # ASes traversed, in order, starting at ingress
    final_asn: Optional[int] = None

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)


class DataPlane:
    """Forwards packets over per-prefix routing outcomes.

    ``outcomes`` maps a destination prefix to the converged routing state
    for its announcement; longest-prefix match picks which outcome governs
    a packet (more-specific hijacks therefore attract traffic, as they do
    in the wild).
    """

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph
        self._outcomes: Dict[Prefix, RoutingOutcome] = {}
        self._tries: Dict[int, PrefixTrie[RoutingOutcome]] = {
            4: PrefixTrie(4),
            6: PrefixTrie(6),
        }
        self._prefix_owner: Dict[Prefix, int] = {}
        self._source_validators: Set[int] = set()
        self._taps: Dict[int, Callable[[Packet], None]] = {}
        self._flowspec: Optional["FlowSpecDistributor"] = None
        # Called before every lookup; lets the owner (the testbed) flush
        # lazily recomputed routing outcomes.
        self.prepare: Optional[Callable[[], None]] = None

    def install(self, prefix: Prefix, outcome: RoutingOutcome, owner: Optional[int] = None) -> None:
        """Install the routing outcome governing ``prefix``.

        ``owner`` is the legitimate origin; deliveries ending elsewhere are
        flagged INTERCEPTED.
        """
        self._outcomes[prefix] = outcome
        self._tries[prefix.version].insert(prefix, outcome)
        if owner is not None:
            self._prefix_owner[prefix] = owner

    def uninstall(self, prefix: Prefix) -> None:
        if self._outcomes.pop(prefix, None) is not None:
            self._tries[prefix.version].remove(prefix)
        self._prefix_owner.pop(prefix, None)

    def enable_source_validation(self, asn: int) -> None:
        """Turn on BCP 38 filtering at ``asn``: packets originated there
        must carry a source address the AS legitimately announces."""
        self._source_validators.add(asn)

    def register_tap(self, asn: int, callback: Callable[[Packet], None]) -> None:
        """Observe every packet transiting ``asn`` (DPI / decoy-routing
        style processing at a PEERING server)."""
        self._taps[asn] = callback

    def attach_flowspec(self, distributor: "FlowSpecDistributor") -> None:
        """Enforce ``distributor``'s installed rules at every AS hop."""
        self._flowspec = distributor

    def _match(self, dst: IPAddress) -> Optional[Tuple[Prefix, RoutingOutcome]]:
        """Longest-prefix match over installed outcomes (radix descent)."""
        return self._tries[dst.version].lookup(dst)

    def send(
        self,
        ingress_asn: int,
        packet: Packet,
        legitimate_sources: Optional[Set[Prefix]] = None,
    ) -> Delivery:
        """Inject ``packet`` at ``ingress_asn`` and forward to delivery.

        ``legitimate_sources``: prefixes the ingress AS may legitimately
        source traffic from; consulted only when the ingress enforces
        source validation.  Passing an explicitly *empty* set means the
        ingress may source nothing — every packet is SOURCE_FILTERED —
        exactly like passing None; BCP 38 admits only what is listed.
        """
        if self.prepare is not None:
            self.prepare()
        if ingress_asn in self._source_validators:
            allowed = legitimate_sources or set()
            if not any(prefix.contains(packet.src) for prefix in allowed):
                return Delivery(
                    status=DeliveryStatus.SOURCE_FILTERED,
                    packet=packet,
                    path=(ingress_asn,),
                    final_asn=ingress_asn,
                )

        match = self._match(packet.dst)
        if match is None:
            return Delivery(
                status=DeliveryStatus.BLACKHOLE,
                packet=packet,
                path=(ingress_asn,),
                final_asn=ingress_asn,
            )
        prefix, outcome = match

        flowspec = self._flowspec
        current = ingress_asn
        path: List[int] = [current]
        while True:
            tap = self._taps.get(current)
            if tap is not None:
                tap(packet)
            if flowspec is not None:
                decision = flowspec.decide(current, packet)
                if decision is not None:
                    if decision.verdict is EnforcementVerdict.DROP:
                        return Delivery(
                            DeliveryStatus.FLOWSPEC_DROPPED, packet, tuple(path), current
                        )
                    if decision.verdict is EnforcementVerdict.RATE_EXCEEDED:
                        return Delivery(
                            DeliveryStatus.RATE_LIMITED, packet, tuple(path), current
                        )
                    if decision.verdict is EnforcementVerdict.REDIRECT:
                        scrubber = decision.scrubber
                        assert scrubber is not None
                        return Delivery(
                            DeliveryStatus.SCRUBBED,
                            packet,
                            tuple(path) + (scrubber,),
                            scrubber,
                        )
                    assert decision.dscp is not None
                    packet = packet.mark(decision.dscp)
            route = outcome.route(current)
            if route is None:
                return Delivery(DeliveryStatus.BLACKHOLE, packet, tuple(path), current)
            if route.via is None:
                # Reached an origin for this prefix.  Deliberately checked
                # before TTL expiry: the TTL budgets *transit* hops, so
                # arriving at the origin with TTL 0 still delivers (see
                # module docstring; pinned by tests).
                owner = self._prefix_owner.get(prefix)
                status = (
                    DeliveryStatus.INTERCEPTED
                    if owner is not None and current != owner
                    else DeliveryStatus.DELIVERED
                )
                return Delivery(status, packet, tuple(path), current)
            if packet.expired:
                return Delivery(DeliveryStatus.TTL_EXPIRED, packet, tuple(path), current)
            packet = packet.hop(current)
            current = route.via
            path.append(current)

    def traceroute(self, ingress_asn: int, dst: IPAddress, src: IPAddress) -> List[int]:
        """AS-level traceroute: the forward path a probe would reveal."""
        delivery = self.send(ingress_asn, Packet(src=src, dst=dst))
        return list(delivery.path)

    def catchment(self, prefix: Prefix) -> Dict[int, int]:
        """For an anycast prefix: which origin each AS's traffic lands at.

        Returns ``{asn: origin_asn}`` for every AS with a route.
        """
        if self.prepare is not None:
            self.prepare()
        outcome = self._outcomes.get(prefix)
        if outcome is None:
            raise KeyError(prefix)
        result: Dict[int, int] = {}
        for asn, _route in outcome.items():
            chain = outcome.forwarding_chain(asn)
            terminal = chain[-1]
            terminal_route = outcome.route(terminal)
            if terminal_route is not None and terminal_route.via is None:
                result[asn] = terminal
        return result
