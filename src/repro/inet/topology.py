"""AS-level Internet topology with business relationships.

The graph follows the standard model used by interdomain routing research
(and by the studies PEERING enables): nodes are ASes, edges carry a
relationship — customer-to-provider or settlement-free peer — and routing
policy derives from those relationships (Gao–Rexford, see
:mod:`repro.inet.routing`).

ASes carry the metadata §4.1 evaluates against: country, an optional set
of IXP memberships, a peering policy, a kind (transit / content / access /
enterprise), and the number of prefixes they originate.  Customer cones
(used for the "we peer with 13 of the top 50 ASes" result) are computed
here.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = [
    "Relationship",
    "PeeringPolicy",
    "ASKind",
    "ASNode",
    "ASGraph",
    "TopologyError",
]


class TopologyError(Exception):
    """Raised for malformed topologies (unknown AS, conflicting edges)."""


class Relationship(Enum):
    """Direction is encoded at lookup time: an edge is stored once."""

    CUSTOMER_PROVIDER = "c2p"  # first AS is the customer of the second
    PEER = "p2p"


class PeeringPolicy(Enum):
    """How an AS answers bilateral peering requests (PeeringDB-style)."""

    OPEN = "open"
    SELECTIVE = "selective"
    CASE_BY_CASE = "case-by-case"
    CLOSED = "closed"
    UNLISTED = "unlisted"


class ASKind(Enum):
    TIER1 = "tier1"
    TRANSIT = "transit"
    CONTENT = "content"
    ACCESS = "access"
    ENTERPRISE = "enterprise"
    IXP_ROUTE_SERVER = "route-server"
    TESTBED = "testbed"


@dataclass
class ASNode:
    """One autonomous system and its §4.1-relevant metadata."""

    asn: int
    name: str = ""
    country: str = "US"
    kind: ASKind = ASKind.ACCESS
    peering_policy: PeeringPolicy = PeeringPolicy.UNLISTED
    prefix_count: int = 1
    ixps: Set[str] = field(default_factory=set)
    uses_route_server: bool = False

    def __str__(self) -> str:
        return f"AS{self.asn}({self.name or self.kind.value})"


class ASGraph:
    """Mutable AS-level topology.

    Adjacency is stored per-AS as three sets — ``providers``, ``customers``,
    ``peers`` — which is exactly the shape the Gao–Rexford propagation
    engine consumes.

    Every mutation bumps :attr:`version`, which is what
    :class:`repro.inet.engine.PropagationEngine` keys its compiled
    topology and result cache on.  The frozen/sorted adjacency views
    returned by the accessors are cached between mutations so hot loops
    (route propagation, export checks) don't pay a set copy per call.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, ASNode] = {}
        self._providers: Dict[int, Set[int]] = {}
        self._customers: Dict[int, Set[int]] = {}
        self._peers: Dict[int, Set[int]] = {}
        self._version = 0
        # asn -> cached immutable view, dropped wholesale on mutation.
        self._fz_providers: Dict[int, FrozenSet[int]] = {}
        self._fz_customers: Dict[int, FrozenSet[int]] = {}
        self._fz_peers: Dict[int, FrozenSet[int]] = {}
        self._fz_neighbors: Dict[int, FrozenSet[int]] = {}
        self._sorted_providers: Dict[int, Tuple[int, ...]] = {}
        self._sorted_customers: Dict[int, Tuple[int, ...]] = {}
        self._sorted_peers: Dict[int, Tuple[int, ...]] = {}
        self._in_batch = False
        self._batch_dirty = False

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every node/edge mutation."""
        return self._version

    def _mutated(self) -> None:
        if self._in_batch:
            self._batch_dirty = True
            return
        self._version += 1
        self._fz_providers.clear()
        self._fz_customers.clear()
        self._fz_peers.clear()
        self._fz_neighbors.clear()
        self._sorted_providers.clear()
        self._sorted_customers.clear()
        self._sorted_peers.clear()

    @contextmanager
    def batch(self) -> Iterator["ASGraph"]:
        """Group many mutations into one version bump.

        Bulk construction (the 50k-AS generator adds ~10^5 edges) would
        otherwise bump :attr:`version` and clear the adjacency-view caches
        once per edge.  Inside the block mutations only mark the graph
        dirty; one bump-and-clear happens at exit (only if something
        actually mutated).  Cached adjacency views read *inside* the block
        may be stale — batch() is for build phases, not for interleaved
        read/write use.  Reentrant: nested batches defer to the outermost.
        """
        if self._in_batch:
            yield self
            return
        self._in_batch = True
        try:
            yield self
        finally:
            self._in_batch = False
            if self._batch_dirty:
                self._batch_dirty = False
                self._mutated()

    # -- nodes ---------------------------------------------------------------

    def add_as(self, node: ASNode) -> ASNode:
        if node.asn in self._nodes:
            raise TopologyError(f"AS{node.asn} already exists")
        self._nodes[node.asn] = node
        self._providers[node.asn] = set()
        self._customers[node.asn] = set()
        self._peers[node.asn] = set()
        self._mutated()
        return node

    def get(self, asn: int) -> ASNode:
        try:
            return self._nodes[asn]
        except KeyError:
            raise TopologyError(f"unknown AS{asn}") from None

    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[ASNode]:
        return iter(self._nodes.values())

    def asns(self) -> Iterator[int]:
        return iter(self._nodes)

    def remove_as(self, asn: int) -> None:
        self.get(asn)
        for provider in list(self._providers[asn]):
            self._customers[provider].discard(asn)
        for customer in list(self._customers[asn]):
            self._providers[customer].discard(asn)
        for peer in list(self._peers[asn]):
            self._peers[peer].discard(asn)
        del self._nodes[asn], self._providers[asn], self._customers[asn], self._peers[asn]
        self._mutated()

    # -- edges -----------------------------------------------------------------

    def add_provider(self, customer: int, provider: int) -> None:
        """Record that ``customer`` buys transit from ``provider``."""
        if customer == provider:
            raise TopologyError("an AS cannot be its own provider")
        self.get(customer), self.get(provider)
        if provider in self._customers[customer] or provider in self._peers[customer]:
            raise TopologyError(
                f"AS{customer}-AS{provider} already related differently"
            )
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)
        self._mutated()

    def add_peering(self, a: int, b: int) -> None:
        """Record a settlement-free peering between ``a`` and ``b``."""
        if a == b:
            raise TopologyError("an AS cannot peer with itself")
        self.get(a), self.get(b)
        if b in self._providers[a] or b in self._customers[a]:
            raise TopologyError(f"AS{a}-AS{b} already related differently")
        self._peers[a].add(b)
        self._peers[b].add(a)
        self._mutated()

    def remove_peering(self, a: int, b: int) -> None:
        self._peers[a].discard(b)
        self._peers[b].discard(a)
        self._mutated()

    def providers(self, asn: int) -> FrozenSet[int]:
        view = self._fz_providers.get(asn)
        if view is None:
            view = self._fz_providers[asn] = frozenset(self._providers[asn])
        return view

    def customers(self, asn: int) -> FrozenSet[int]:
        view = self._fz_customers.get(asn)
        if view is None:
            view = self._fz_customers[asn] = frozenset(self._customers[asn])
        return view

    def peers(self, asn: int) -> FrozenSet[int]:
        view = self._fz_peers.get(asn)
        if view is None:
            view = self._fz_peers[asn] = frozenset(self._peers[asn])
        return view

    def neighbors(self, asn: int) -> FrozenSet[int]:
        view = self._fz_neighbors.get(asn)
        if view is None:
            view = self._fz_neighbors[asn] = frozenset(
                self._providers[asn] | self._customers[asn] | self._peers[asn]
            )
        return view

    def sorted_providers(self, asn: int) -> Tuple[int, ...]:
        """Ascending-ASN provider tuple, cached between mutations (the
        propagation hot loops iterate these thousands of times)."""
        view = self._sorted_providers.get(asn)
        if view is None:
            view = self._sorted_providers[asn] = tuple(sorted(self._providers[asn]))
        return view

    def sorted_customers(self, asn: int) -> Tuple[int, ...]:
        view = self._sorted_customers.get(asn)
        if view is None:
            view = self._sorted_customers[asn] = tuple(sorted(self._customers[asn]))
        return view

    def sorted_peers(self, asn: int) -> Tuple[int, ...]:
        view = self._sorted_peers.get(asn)
        if view is None:
            view = self._sorted_peers[asn] = tuple(sorted(self._peers[asn]))
        return view

    def relationship(self, a: int, b: int) -> Optional[Relationship]:
        """The relationship of the a--b edge, or None.  For
        CUSTOMER_PROVIDER the orientation is "a is the customer"."""
        if b in self._providers[a]:
            return Relationship.CUSTOMER_PROVIDER
        if b in self._customers[a]:
            # b is a's customer: from a's side this is provider-to-customer;
            # callers wanting orientation should query (b, a).
            return Relationship.CUSTOMER_PROVIDER
        if b in self._peers[a]:
            return Relationship.PEER
        return None

    def edge_count(self) -> int:
        c2p = sum(len(s) for s in self._providers.values())
        p2p = sum(len(s) for s in self._peers.values()) // 2
        return c2p + p2p

    def relationship_edges(self) -> Iterator[Tuple[int, int, Relationship]]:
        """Every edge exactly once, in a deterministic order.

        Customer-provider edges stream first as ``(customer, provider,
        CUSTOMER_PROVIDER)`` ordered by (customer, provider) ASN; peer
        edges follow as ``(lo, hi, PEER)`` ordered by (lo, hi).  This is
        the canonical ordering :func:`repro.inet.gen.dump_caida_serial`
        writes, so dump → load round-trips are byte-stable.
        """
        for asn in sorted(self._nodes):
            for provider in sorted(self._providers[asn]):
                yield asn, provider, Relationship.CUSTOMER_PROVIDER
        for asn in sorted(self._nodes):
            for peer in sorted(self._peers[asn]):
                if asn < peer:
                    yield asn, peer, Relationship.PEER

    # -- analysis ----------------------------------------------------------------

    def customer_cone(self, asn: int) -> Set[int]:
        """All ASes reachable by walking provider→customer edges (inclusive).

        The size of this set is CAIDA's AS-rank metric the paper cites.
        """
        self.get(asn)
        cone: Set[int] = {asn}
        frontier = [asn]
        while frontier:
            current = frontier.pop()
            for customer in self._customers[current]:
                if customer not in cone:
                    cone.add(customer)
                    frontier.append(customer)
        return cone

    def rank_by_cone(self) -> List[Tuple[int, int]]:
        """(asn, cone size) for every AS, largest cone first.

        Ties break by ASN so the ranking is deterministic.
        """
        sizes = [(asn, len(self.customer_cone(asn))) for asn in self._nodes]
        sizes.sort(key=lambda item: (-item[1], item[0]))
        return sizes

    def validate(self) -> None:
        """Check structural invariants; raises TopologyError on violation."""
        for asn in self._nodes:
            for provider in self._providers[asn]:
                if asn not in self._customers[provider]:
                    raise TopologyError(f"asymmetric c2p edge AS{asn}->AS{provider}")
            for peer in self._peers[asn]:
                if asn not in self._peers[peer]:
                    raise TopologyError(f"asymmetric p2p edge AS{asn}--AS{peer}")
            overlap = (
                self._providers[asn] & self._customers[asn]
                or self._providers[asn] & self._peers[asn]
                or self._customers[asn] & self._peers[asn]
            )
            if overlap:
                raise TopologyError(f"conflicting relationships at AS{asn}: {overlap}")

    def stub_asns(self) -> List[int]:
        """ASes with no customers (the edge of the Internet)."""
        return [asn for asn in self._nodes if not self._customers[asn]]

    def tier1_clique(self) -> List[int]:
        """ASes with no providers (the default-free zone)."""
        return [asn for asn in self._nodes if not self._providers[asn]]
